#!/usr/bin/env bash
# One-command verify gate: the tier1 test suite in the default tree, then
# the same gate under ASan+UBSan, then tier1 plus the `tsan`-labelled
# concurrency stress suite under TSan (trees: build/, build-asan/,
# build-tsan/ — see CMakePresets.json).
#
#   ./check.sh          # everything
#   ./check.sh fast     # default tree only (the quick tier1 gate)
#
# JOBS=<n> overrides the parallelism (default: nproc).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

gate() {
  local preset="$1" dir="$2" labels="$3"
  local started="${SECONDS}"
  echo "=== ${preset}: configure + build (${dir}) ==="
  cmake --preset "${preset}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${preset}: ctest -L '${labels}' ==="
  ctest --test-dir "${dir}" -L "${labels}" --output-on-failure -j "${JOBS}"
  echo "=== ${preset}: passed in $((SECONDS - started))s ==="
}

gate default build tier1
if [ "${MODE}" != "fast" ]; then
  gate build-asan build-asan tier1
  gate build-tsan build-tsan "tier1|tsan"
fi
echo "all gates passed in ${SECONDS}s"
