#!/usr/bin/env bash
# One-command verify gate: the tier1 test suite in the default tree, the
# static-analysis gate (vgbl-lint + clang thread-safety analysis), then the
# same test gate under ASan+UBSan, tier1 under fatal-report UBSan, then
# tier1 plus the `tsan`-labelled concurrency stress suite under TSan
# (trees: build/, build-asan/, build-ubsan/, build-tsan/, build-clang-tsa/
# — see CMakePresets.json).
#
#   ./check.sh          # everything
#   ./check.sh fast     # default tree: tier1 + vgbl-lint + bench-diff gate
#   ./check.sh lint     # static analysis only (vgbl-lint + clang TSA)
#   ./check.sh ubsan    # tier1 under UBSan with reports fatal (build-ubsan/)
#   ./check.sh bench    # perf regression gate only (bench-diff)
#   ./check.sh pgo      # profile-guided build exercise (build-pgo/, optional)
#
# JOBS=<n> overrides the parallelism (default: nproc).
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

gate() {
  local preset="$1" dir="$2" labels="$3"
  local started="${SECONDS}"
  echo "=== ${preset}: configure + build (${dir}) ==="
  cmake --preset "${preset}" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== ${preset}: ctest -L '${labels}' ==="
  ctest --test-dir "${dir}" -L "${labels}" --output-on-failure -j "${JOBS}"
  echo "=== ${preset}: passed in $((SECONDS - started))s ==="
}

# Perf regression gate (DESIGN.md §5i): run the cheap benches with a short
# min-time and diff their headline metrics against the committed baselines
# in bench/baselines/. Only benches cheap enough for every run live here —
# the heavy ones (classroom, district, streaming) run in CI's bench job.
bench_gate() {
  local started="${SECONDS}"
  echo "=== bench: bench-diff vs bench/baselines ==="
  cmake --preset default >/dev/null
  cmake --build build -j "${JOBS}" \
    --target bench_diff bench_event_dispatch bench_hit_test \
    bench_codec bench_pipeline
  local fresh="build/bench-fresh"
  rm -rf "${fresh}" && mkdir -p "${fresh}"
  ./build/bench/bench_event_dispatch --benchmark_min_time=0.05 \
    --out "${fresh}/BENCH_event_dispatch.json" >/dev/null
  ./build/bench/bench_hit_test --benchmark_min_time=0.05 \
    --out "${fresh}/BENCH_hit_test.json" >/dev/null
  # Codec hot-path gate (ISSUE 9): the smallest resolution keeps the run
  # cheap; the headline (raw-mode stream decode) is what the quant-table /
  # batch-decode overhaul sped up, and the committed baselines already hold
  # the post-overhaul numbers — a regression to the pre-overhaul path
  # trips the tolerance immediately.
  ./build/bench/bench_codec --benchmark_min_time=0.05 \
    --benchmark_filter='160/120' --out "${fresh}/BENCH_codec.json" >/dev/null
  ./build/bench/bench_pipeline --benchmark_min_time=0.05 \
    --out "${fresh}/BENCH_pipeline.json" >/dev/null
  # 35%: the short min-time arms are noisy; the gate is for step-function
  # regressions (accidental O(n^2), lost parallelism), not percent drift.
  ./build/tools/bench-diff bench/baselines "${fresh}" --tolerance 0.35
  echo "=== bench: passed in $((SECONDS - started))s ==="
}

# Profile-guided build exercise (DESIGN.md §5j): instrument, train on
# tools/pgo_workload, rebuild with -fprofile-use, then prove the PGO binary
# still emits the golden bitstream. Optional (not part of `all`) because it
# builds the tree twice; CI runs it in its own job.
pgo_gate() {
  local started="${SECONDS}"
  if ! printf 'int main(){return 0;}\n' |
       "${CXX:-c++}" -x c++ -fprofile-generate -o /dev/null - 2>/dev/null; then
    echo "=== pgo: toolchain lacks -fprofile-generate; skipping ==="
    return 0
  fi
  echo "=== pgo: phase 1 — instrumented build + training workload ==="
  cmake --preset build-pgo-instrument >/dev/null
  cmake --build build-pgo -j "${JOBS}" \
    --target vgbl_cli bench_codec codec_golden_test
  ./tools/pgo_workload build-pgo
  echo "=== pgo: phase 2 — rebuild with -fprofile-use ==="
  cmake --preset build-pgo-use >/dev/null
  cmake --build build-pgo -j "${JOBS}" \
    --target vgbl_cli bench_codec codec_golden_test
  echo "=== pgo: golden bitstream check under PGO ==="
  ./build-pgo/tests/codec_golden_test
  echo "=== pgo: passed in $((SECONDS - started))s ==="
}

# vgbl-lint (DESIGN.md §5f, §5k): builds the binary in the default tree
# and sweeps src/ + tools/ — per-file rules plus the cross-TU taint,
# lock-order and nodiscard passes. Cheap enough (~150 ms) to ride in the
# fast gate as well as the full lint gate.
vgbl_lint_run() {
  echo "=== lint: vgbl-lint over src/ tools/ ==="
  cmake --preset default >/dev/null
  cmake --build build --target vgbl_lint -j "${JOBS}"
  ./build/tools/vgbl-lint --rules lint_rules src tools
}

# Static analysis (DESIGN.md §5f): vgbl-lint always runs; the clang
# thread-safety tree and clang-tidy run only where clang is installed (CI
# installs it — see .github/workflows/ci.yml).
lint_gate() {
  local started="${SECONDS}"
  vgbl_lint_run

  if command -v clang++ >/dev/null 2>&1; then
    echo "=== lint: clang -Werror=thread-safety (build-clang-tsa) ==="
    cmake --preset build-clang-tsa >/dev/null
    cmake --build build-clang-tsa -j "${JOBS}"
  else
    echo "=== lint: clang++ not installed; skipping thread-safety tree ==="
  fi

  if command -v clang-tidy >/dev/null 2>&1 &&
     [ -f build-clang-tsa/compile_commands.json ]; then
    echo "=== lint: clang-tidy (advisory, .clang-tidy) ==="
    # Advisory only: surface findings without failing the gate.
    git ls-files 'src/*.cpp' 'tools/*.cpp' |
      xargs -r clang-tidy -p build-clang-tsa --quiet || true
  fi
  echo "=== lint: passed in $((SECONDS - started))s ==="
}

case "${MODE}" in
  lint)
    lint_gate
    ;;
  fast)
    gate default build tier1
    vgbl_lint_run
    bench_gate
    ;;
  ubsan)
    gate build-ubsan build-ubsan tier1
    ;;
  bench)
    bench_gate
    ;;
  pgo)
    pgo_gate
    ;;
  all)
    gate default build tier1
    bench_gate
    lint_gate
    gate build-asan build-asan tier1
    gate build-ubsan build-ubsan tier1
    gate build-tsan build-tsan "tier1|tsan"
    ;;
  *)
    echo "usage: ./check.sh [all|fast|lint|ubsan|bench|pgo]" >&2
    exit 2
    ;;
esac
echo "all gates passed in ${SECONDS}s"
