// Science quiz: the extension features working together — a quiz-gated
// game played entirely with keyboard/remote-control input, while a session
// recorder captures the run as a replayable JSON script.
#include <cstdio>

#include "core/platform.hpp"
#include "runtime/keyboard.hpp"
#include "runtime/recorder.hpp"

using namespace vgbl;

int main() {
  auto project = build_science_quiz_project();
  if (!project.ok()) {
    std::fprintf(stderr, "authoring failed: %s\n",
                 project.error().to_string().c_str());
    return 1;
  }
  auto bundle = publish(project.value());
  if (!bundle.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 bundle.error().to_string().c_str());
    return 1;
  }
  std::printf("'%s': %zu quiz question(s), pass >= %.0f%%\n",
              bundle.value()->meta.title.c_str(),
              bundle.value()->quizzes[0].size(),
              bundle.value()->quizzes[0].pass_fraction() * 100);

  SimClock clock;
  GameSession session(bundle.value(), &clock);
  if (auto st = session.start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.error().to_string().c_str());
    return 1;
  }
  KeyboardController keys(&session);

  // Play with the TV remote: Tab to the quiz button, Enter, answer with
  // the digit keys (2, 1, 3 are the correct options).
  std::printf("\n[remote] TAB -> ");
  (void)keys.press(Key::kTab);
  const InteractiveObject* focused =
      session.bundle().find_object(keys.focused());
  std::printf("focus on '%s'\n", focused ? focused->name.c_str() : "?");
  std::printf("[remote] ENTER -> start quiz\n");
  (void)keys.press(Key::kEnter);

  int question = 1;
  const Key answers[] = {Key::kDigit2, Key::kDigit1, Key::kDigit3};
  for (Key answer : answers) {
    if (!session.in_quiz()) break;
    const auto& q = session.ui().quiz();
    std::printf("\nQ%d: %s\n", question++, q->prompt.c_str());
    for (size_t i = 0; i < q->options.size(); ++i) {
      std::printf("   %zu) %s\n", i + 1, q->options[i].c_str());
    }
    (void)keys.press(answer);
    if (session.ui().message()) {
      std::printf("   -> %s\n", session.ui().message()->text.c_str());
    }
  }

  std::printf("\n%s\n", session.tracker().report(clock.now()).c_str());
  std::printf("outcome: %s, score %lld\n",
              session.succeeded() ? "PASSED" : "failed",
              static_cast<long long>(session.score()));

  // Demonstrate record/replay with the scripted API instead: record a
  // scripted pass, dump it as JSON, replay it, compare outcomes.
  SimClock clock2;
  GameSession session2(bundle.value(), &clock2);
  (void)session2.start();
  SessionRecorder rec2(&session2, &clock2);
  Point quiz_button{};
  for (const auto* o : session2.visible_objects()) {
    if (o->name == "TAKE QUIZ") {
      const Point c = o->placement.rect.center();
      const Point origin = session2.ui().layout().video_area.origin();
      quiz_button = {c.x + origin.x, c.y + origin.y};
    }
  }
  (void)rec2.click(quiz_button);
  (void)rec2.answer_quiz(1);
  (void)rec2.answer_quiz(0);
  (void)rec2.answer_quiz(2);
  const std::string script_json = script_to_json(rec2.script()).dump(-1);
  std::printf("\nrecorded script (%zu bytes): %s\n", script_json.size(),
              script_json.c_str());

  auto replay_script = script_from_json(Json::parse(script_json).value());
  auto replay = play_scripted(bundle.value(), replay_script.value());
  if (!replay.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replay.error().to_string().c_str());
    return 1;
  }
  std::printf("replay: %s with score %lld (recorded run scored %lld)\n",
              replay.value().succeeded ? "PASSED" : "failed",
              static_cast<long long>(replay.value().score),
              static_cast<long long>(session2.score()));
  return session.succeeded() && replay.value().succeeded &&
                 replay.value().score == session2.score()
             ? 0
             : 1;
}
