// Streaming classroom: 32 students stream the treasure-hunt game over the
// simulated shared school link, with and without branch-aware prefetch.
// Shows startup delay and rebuffering — the interactive-TV delivery story
// of the paper's related work (§2). Before the delivery experiment, the
// same cohort *plays* the game on the parallel classroom engine
// (`--threads N`, default 4; 0 = sequential) — gameplay and delivery are
// the two halves of the multi-client story.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/classroom.hpp"
#include "core/platform.hpp"
#include "net/streaming.hpp"
#include "util/text.hpp"

using namespace vgbl;

namespace {

void run_gameplay_cohort(std::shared_ptr<const GameBundle> bundle,
                         int threads) {
  ClassroomOptions options;
  options.student_count = 16;
  options.max_steps_per_student = 250;
  options.seed = 99;
  options.worker_threads = threads;

  const auto t0 = std::chrono::steady_clock::now();
  const ClassroomSummary summary = simulate_classroom(std::move(bundle),
                                                      options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%zu students played on %d worker thread(s) in %.2fs "
              "(%.1f students/s)\n",
              summary.students.size(), threads, elapsed,
              elapsed > 0
                  ? static_cast<double>(summary.students.size()) / elapsed
                  : 0.0);
  std::printf("completion %.0f%%, mean score %.1f, mean play time %.1fs\n",
              summary.completion_rate * 100, summary.mean_score,
              summary.mean_play_seconds);
}

void run_cohort(const GameBundle& bundle, int clients, bool prefetch,
                const char* fault_profile) {
  StreamReplayOptions options;
  options.client_count = clients;
  options.seed = 5;
  options.fault_profile = fault_profile;
  options.streaming.prefetch_enabled = prefetch;
  options.deadline = seconds(300);
  const StreamReplaySummary s = replay_classroom_stream(bundle, options);

  const auto& agg = s.aggregate;
  std::printf(
      "%8d  %-8s  %-8s  %10.1f  %11.1f  %10.3f  %8d  %6llu  %5d  %8.2f MiB\n",
      clients, prefetch ? "yes" : "no", fault_profile, agg.mean_startup_ms,
      agg.mean_switch_ms, agg.mean_rebuffer_ratio, agg.total_rebuffer_events,
      static_cast<unsigned long long>(agg.retransmits), agg.frames_skipped,
      static_cast<double>(agg.bytes_sent) / (1024.0 * 1024.0));
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    }
  }
  auto project = build_treasure_hunt_project();
  if (!project.ok()) {
    std::fprintf(stderr, "authoring failed\n");
    return 1;
  }
  auto bundle = publish(project.value());
  if (!bundle.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 bundle.error().to_string().c_str());
    return 1;
  }

  std::printf("playing '%s' (parallel classroom engine)\n",
              bundle.value()->meta.title.c_str());
  run_gameplay_cohort(bundle.value(), threads < 0 ? 0 : threads);

  std::printf("\nstreaming '%s' (%s of video)\n",
              bundle.value()->meta.title.c_str(),
              format_bytes(bundle.value()->video->total_bytes()).c_str());
  std::printf("%8s  %-8s  %-8s  %10s  %11s  %10s  %8s  %6s  %5s  %8s\n",
              "clients", "prefetch", "faults", "startup ms", "switch ms",
              "rebuf rate", "stalls", "rexmit", "skips", "sent");
  for (int clients : {4, 16, 32}) {
    run_cohort(*bundle.value(), clients, false, "clean");
    run_cohort(*bundle.value(), clients, true, "clean");
  }
  // Delivery robustness: the same cohort under injected faults — bursty
  // loss, then the full stress profile (burst loss + link flap + mid-run
  // bandwidth degradation). Recovery is ARQ retransmits; unrecoverable
  // frames become counted skips, never permanent stalls.
  for (const char* profile : {"bursty", "stress"}) {
    run_cohort(*bundle.value(), 16, true, profile);
  }
  return 0;
}
