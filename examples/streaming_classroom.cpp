// Streaming classroom: 32 students stream the treasure-hunt game over the
// simulated shared school link, with and without branch-aware prefetch.
// Shows startup delay and rebuffering — the interactive-TV delivery story
// of the paper's related work (§2).
#include <cstdio>

#include "core/platform.hpp"
#include "net/streaming.hpp"
#include "util/text.hpp"

using namespace vgbl;

namespace {

void run_cohort(const GameBundle& bundle, int clients, bool prefetch) {
  StreamingConfig config;
  config.network.bandwidth_bps = 40'000'000;  // 40 Mbit school downlink
  config.network.base_latency = milliseconds(15);
  config.network.jitter = milliseconds(5);
  config.network.loss_rate = 0.002;
  config.prefetch_enabled = prefetch;

  StreamServer server(bundle.video.get(), config, /*seed=*/5);
  Rng rng(123);
  for (int i = 0; i < clients; ++i) {
    server.add_client(random_student_path(bundle.graph, 12, rng));
  }
  server.run(seconds(300));

  const auto agg = server.aggregate();
  std::printf("%8d  %-8s  %10.1f  %11.1f  %10.3f  %8d  %9d  %8.2f MiB\n",
              clients, prefetch ? "yes" : "no", agg.mean_startup_ms,
              agg.mean_switch_ms, agg.mean_rebuffer_ratio,
              agg.total_rebuffer_events, agg.prefetch_hits,
              static_cast<double>(agg.bytes_sent) / (1024.0 * 1024.0));
}

}  // namespace

int main() {
  auto project = build_treasure_hunt_project();
  if (!project.ok()) {
    std::fprintf(stderr, "authoring failed\n");
    return 1;
  }
  auto bundle = publish(project.value());
  if (!bundle.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 bundle.error().to_string().c_str());
    return 1;
  }
  std::printf("streaming '%s' (%s of video)\n",
              bundle.value()->meta.title.c_str(),
              format_bytes(bundle.value()->video->total_bytes()).c_str());
  std::printf("%8s  %-8s  %10s  %11s  %10s  %8s  %9s  %8s\n", "clients",
              "prefetch", "startup ms", "switch ms", "rebuf rate", "stalls",
              "pf hits", "sent");
  for (int clients : {4, 16, 32}) {
    run_cohort(*bundle.value(), clients, false);
    run_cohort(*bundle.value(), clients, true);
  }
  return 0;
}
