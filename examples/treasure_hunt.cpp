// Treasure hunt: a larger branching adventure (4 scenarios, item
// combining, hidden objects, weighted transitions). Three bot policies
// play it and their learning outcomes are compared — the "different
// students play differently" story of game-based learning.
#include <cstdio>

#include "core/platform.hpp"

using namespace vgbl;

int main() {
  auto project = build_treasure_hunt_project();
  if (!project.ok()) {
    std::fprintf(stderr, "authoring failed: %s\n",
                 project.error().to_string().c_str());
    return 1;
  }
  auto bundle = publish(project.value());
  if (!bundle.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 bundle.error().to_string().c_str());
    return 1;
  }
  std::printf("'%s': %zu scenarios, %zu objects, %zu rules, %zu dialogues\n",
              bundle.value()->meta.title.c_str(),
              bundle.value()->graph.size(), bundle.value()->objects.size(),
              bundle.value()->rules.size(),
              bundle.value()->dialogues.size());

  // First: the intended walkthrough, scripted.
  const InputScript walkthrough = {
      ScriptStep::drag_to_inventory("torn map"),
      ScriptStep::click("TO CAVE"),
      ScriptStep::click("lantern"),
      ScriptStep::combine("torn_map", "lantern"),
      ScriptStep::click("TO BEACH"),
      ScriptStep::click("TO LIBRARY"),
      ScriptStep::click("librarian"),
      ScriptStep::choose(0),      // "Where is the vault key?"
      ScriptStep::advance(),      // hint node -> end
      ScriptStep::examine("bookshelf"),
      ScriptStep::click("old key"),
      ScriptStep::click("TO BEACH"),
      ScriptStep::click("TO CAVE"),
      ScriptStep::click("vault door"),
  };
  auto scripted = play_scripted(bundle.value(), walkthrough);
  if (!scripted.ok()) {
    std::fprintf(stderr, "walkthrough failed: %s\n",
                 scripted.error().to_string().c_str());
    return 1;
  }
  std::printf("\nscripted walkthrough: %s, score %lld\n",
              scripted.value().succeeded ? "SUCCESS" : "incomplete",
              static_cast<long long>(scripted.value().score));
  std::printf("%s\n", scripted.value().learning_report.c_str());

  // Then: three bot personalities, compared.
  struct Run {
    const char* name;
    BotPolicy policy;
    int budget;
  };
  const Run runs[] = {
      {"explorer (examines everything)", BotPolicy::kExplorer, 600},
      {"speedrunner (skips reading)", BotPolicy::kSpeedrun, 600},
      {"random clicker", BotPolicy::kRandom, 600},
  };
  std::printf("%-34s %-6s %-7s %-7s %-8s %s\n", "policy", "done", "steps",
              "score", "items", "rewards");
  for (const auto& run : runs) {
    SimClock clock;
    GameSession session(bundle.value(), &clock);
    (void)session.start();
    const BotResult result =
        run_bot(session, clock, run.policy, run.budget, /*seed=*/2718);
    std::printf("%-34s %-6s %-7d %-7lld %-8zu %zu\n", run.name,
                result.succeeded ? "yes" : "no", result.steps,
                static_cast<long long>(session.score()),
                session.tracker().items_collected().size(),
                session.tracker().rewards_earned().size());
  }
  return scripted.value().succeeded ? 0 : 1;
}
