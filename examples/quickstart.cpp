// Quickstart: author a tiny two-scenario game through the public API,
// publish it to a bundle, play it with a scripted player, and print the
// runtime screen. ~60 lines of API use end to end.
#include <cstdio>

#include "core/platform.hpp"

int main() {
  using namespace vgbl;

  // 1. Author. build_quickstart_project() composes the same public Editor
  //    calls shown in examples/classroom_repair.cpp; here we take the
  //    ready-made project to stay brief.
  auto project = build_quickstart_project();
  if (!project.ok()) {
    std::fprintf(stderr, "authoring failed: %s\n",
                 project.error().to_string().c_str());
    return 1;
  }
  std::printf("authored '%s': %zu scenarios, %zu objects, %zu rules\n",
              project.value().meta.title.c_str(), project.value().graph.size(),
              project.value().objects.size(), project.value().rules.size());

  // 2. Publish: encode video, pack the bundle, reload it.
  auto bundle = publish(project.value());
  if (!bundle.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 bundle.error().to_string().c_str());
    return 1;
  }
  std::printf("bundle: %d frames of %dx%d video, %zu rules\n",
              bundle.value()->video->frame_count(),
              bundle.value()->video->width(), bundle.value()->video->height(),
              bundle.value()->rules.size());

  // 3. Play: pick up the coin, then press FINISH.
  const InputScript script = {
      ScriptStep::examine("coin"),
      ScriptStep::click("coin"),
      ScriptStep::wait(milliseconds(500)),
      ScriptStep::click("FINISH"),
  };
  auto run = play_scripted(bundle.value(), script);
  if (!run.ok()) {
    std::fprintf(stderr, "playthrough failed: %s\n",
                 run.error().to_string().c_str());
    return 1;
  }

  std::printf("\n--- final screen -------------------------------------\n%s\n",
              run.value().final_screen.c_str());
  std::printf("%s\n", run.value().learning_report.c_str());
  std::printf("game over: %s, score: %lld\n",
              run.value().succeeded ? "success" : "not finished",
              static_cast<long long>(run.value().score));
  return run.value().succeeded ? 0 : 1;
}
