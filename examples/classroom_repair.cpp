// The paper's §3.2 worked example, end to end: "in a classroom in game,
// the NPC told players a computer was not worked and order players to fix
// it. Players examine the computer in video first and find a broken
// component inside. Finally, players move to another scenario, markets, to
// get the components they needed and return to classroom and fix the
// computer."
//
// This example authors that game, publishes it, plays the canonical
// walkthrough, renders the Figure-2-style runtime view at the key beats,
// and prints the knowledge-delivery report.
#include <cstdio>

#include "core/platform.hpp"

using namespace vgbl;

namespace {

void banner(const char* text) {
  std::printf("\n============ %s ============\n", text);
}

}  // namespace

int main() {
  auto project = build_classroom_repair_project();
  if (!project.ok()) {
    std::fprintf(stderr, "authoring failed: %s\n",
                 project.error().to_string().c_str());
    return 1;
  }

  banner("LINT");
  for (const auto& issue : project.value().lint()) {
    std::printf("%s %s\n", issue.level == LintLevel::kError ? "E" : "W",
                issue.message.c_str());
  }
  std::printf("(bundleable: %s)\n",
              project.value().bundleable() ? "yes" : "no");

  auto bundle = publish(project.value());
  if (!bundle.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 bundle.error().to_string().c_str());
    return 1;
  }

  SimClock clock;
  GameSession session(bundle.value(), &clock);
  if (auto st = session.start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.error().to_string().c_str());
    return 1;
  }
  ScriptRunner runner(&session, &clock);

  // The §3.2 walkthrough, step by step.
  struct Beat {
    const char* label;
    InputScript script;
  };
  const Beat beats[] = {
      {"1. The teacher gives the mission",
       {ScriptStep::click("teacher"), ScriptStep::choose(0),
        ScriptStep::advance()}},
      {"2. Examine the computer, find the dead PSU",
       {ScriptStep::examine("computer")}},
      {"3. Read up on power supplies",
       {ScriptStep::click("PSU INFO")}},
      {"4. Go to the market and buy the part",
       {ScriptStep::click("GO MARKET"), ScriptStep::wait(milliseconds(800)),
        ScriptStep::click("psu_box")}},
      {"5. Return and install the part",
       {ScriptStep::click("BACK TO CLASS"),
        ScriptStep::use_item("psu_part", "computer")}},
  };

  for (const auto& beat : beats) {
    banner(beat.label);
    if (auto st = runner.run(beat.script); !st.ok()) {
      std::fprintf(stderr, "step failed: %s\n",
                   st.error().to_string().c_str());
      return 1;
    }
    if (session.ui().message()) {
      std::printf("message: %s\n", session.ui().message()->text.c_str());
    }
    std::printf("scenario: %s   score: %lld\n",
                session.current_scenario_info()
                    ? session.current_scenario_info()->name.c_str()
                    : "-",
                static_cast<long long>(session.score()));
  }

  banner("FIGURE 2: runtime interface (final state)");
  std::printf("%s", render_runtime_view(session).c_str());

  banner("KNOWLEDGE-DELIVERY REPORT (for the lecturer)");
  std::printf("%s", session.tracker().report(clock.now()).c_str());

  banner("EVENT LOG (last 12)");
  const auto& log = session.event_log();
  const size_t start = log.size() > 12 ? log.size() - 12 : 0;
  for (size_t i = start; i < log.size(); ++i) {
    std::printf("%7.2fs  %s\n", to_seconds(log[i].when), log[i].text.c_str());
  }

  return session.succeeded() ? 0 : 1;
}
