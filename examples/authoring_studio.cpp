// Authoring-tool walkthrough (paper §4.1–§4.2): import video, watch it get
// divided into scenario components, place and edit objects with undo/redo,
// validate, render the Figure-1-style authoring interface, and save both
// the text project and the binary bundle.
#include <cstdio>

#include "core/platform.hpp"
#include "util/text.hpp"

using namespace vgbl;

int main() {
  std::printf("=== VGBL authoring studio ===\n\n");

  // 1. Import: "select video files ... divided into scenario components".
  Project project;
  project.meta.title = "Studio Demo";
  project.meta.author = "course designer";

  ClipSpec clip;
  clip.width = 320;
  clip.height = 240;
  clip.fps = 24;
  clip.seed = 2024;
  clip.scenes.push_back({"street", scene_style("street"), 60});
  clip.scenes.push_back({"lab", scene_style("lab"), 72});
  clip.scenes.push_back({"office", scene_style("office"), 48});

  auto report = import_clip(project, clip);
  if (!report.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 report.error().to_string().c_str());
    return 1;
  }
  std::printf("imported %d frames -> %d cuts -> %d scenario segments:\n",
              report.value().frame_count, report.value().cut_count,
              report.value().segment_count);
  for (const auto& name : report.value().scenario_names) {
    std::printf("  scenario '%s'\n", name.c_str());
  }

  // 2. Edit with the object editor; exercise undo/redo.
  Editor edit(&project);
  const Scenario* street = project.graph.find_by_name("street");
  const Scenario* lab = project.graph.find_by_name("lab");
  const Scenario* office = project.graph.find_by_name("office");
  if (!street || !lab || !office) {
    std::fprintf(stderr, "segmentation did not produce expected scenarios\n");
    return 1;
  }

  ItemDef keycard;
  keycard.name = "keycard";
  keycard.icon = "key";
  auto keycard_id = edit.add_item(keycard);

  InteractiveObject card;
  card.name = "keycard";
  card.kind = ObjectKind::kItem;
  card.scenario = street->id;
  card.placement.rect = {50, 190, 30, 30};
  card.sprite_spec = "icon:key:30";
  card.grants_item = keycard_id.value();
  auto card_id = edit.place_object(card);

  InteractiveObject door_btn;
  door_btn.name = "ENTER LAB";
  door_btn.kind = ObjectKind::kButton;
  door_btn.scenario = street->id;
  door_btn.placement.rect = {220, 10, 90, 22};
  auto btn_id = edit.place_object(door_btn);

  (void)edit.set_terminal(office->id, true);
  (void)edit.add_transition({street->id, lab->id, "enter lab", "", 1.0});
  (void)edit.add_transition({lab->id, office->id, "meet the boss", "", 1.0});

  EventRule enter_rule;
  enter_rule.name = "enter lab (needs keycard)";
  enter_rule.trigger.type = TriggerType::kClick;
  enter_rule.trigger.object = btn_id.value();
  enter_rule.condition = Condition::has_item(keycard_id.value());
  enter_rule.actions = {Action::switch_scenario(lab->id)};
  (void)edit.add_rule(enter_rule);

  // Undo/redo demonstration: move the keycard, change our mind, redo.
  std::printf("\nobject editor session:\n");
  (void)edit.move_object(card_id.value(), {80, 150});
  std::printf("  moved keycard to (80,150)\n");
  (void)edit.undo();
  std::printf("  undo  -> keycard back at %s\n",
              to_string(project.find_object(card_id.value())->placement.rect)
                  .c_str());
  (void)edit.redo();
  std::printf("  redo  -> keycard at %s\n",
              to_string(project.find_object(card_id.value())->placement.rect)
                  .c_str());
  std::printf("  command history:\n");
  for (const auto& entry : edit.history()) {
    std::printf("    - %s\n", entry.c_str());
  }

  // 3. Validate. (The lab scenario is a dead end until we wire the office
  //    transition rule — the lint panel in the Figure-1 view shows this.)
  std::printf("\n=== FIGURE 1: authoring interface ===\n");
  std::printf("%s", render_authoring_view(project, street->id).c_str());

  // 4. Fix the lint finding, then save.
  EventRule office_rule;
  office_rule.name = "auto-advance lab->office";
  office_rule.trigger.type = TriggerType::kSegmentEnd;
  office_rule.trigger.scenario = lab->id;
  office_rule.actions = {Action::switch_scenario(office->id)};
  (void)edit.add_rule(office_rule);

  const std::string text = save_project_text(project);
  std::printf("saved text project: %zu bytes (%s)\n", text.size(),
              format_bytes(text.size()).c_str());

  auto bundle_bytes = build_bundle(project);
  if (!bundle_bytes.ok()) {
    std::fprintf(stderr, "bundle failed: %s\n",
                 bundle_bytes.error().to_string().c_str());
    return 1;
  }
  std::printf("built binary bundle: %s\n",
              format_bytes(bundle_bytes.value().size()).c_str());

  // Round-trip check: reload the text project and confirm equivalence.
  auto reloaded = load_project_text(text);
  if (!reloaded.ok() ||
      save_project_text(reloaded.value()) != text) {
    std::fprintf(stderr, "text project did not round-trip!\n");
    return 1;
  }
  std::printf("text project round-trips byte-identically.\n");
  return 0;
}
