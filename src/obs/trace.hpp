// Lightweight trace spans. A SpanScope stamps the sim clock (when the
// instrumented code has one) at open and close and measures wall duration;
// the finished span lands in a per-thread ring buffer, so memory stays
// bounded (kRingCapacity events per thread, oldest overwritten) and a
// span's hot-path cost is one uncontended mutex lock plus a slot write.
// Rings are recycled when their thread exits, so long-lived processes that
// churn thread pools stay bounded by the *peak concurrent* thread count.
//
// Like metrics (metrics.hpp), tracing is observe-only and gated on the
// global `obs::enabled()` flag: a disabled span is a relaxed load and a
// branch.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "util/sim_clock.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace vgbl::obs {

struct TraceEvent {
  /// Span name. Must be a string with static lifetime (a literal) — the
  /// ring stores the pointer, not a copy.
  const char* name = "";
  MicroTime sim_start = 0;  ///< sim-clock stamp at open (0: no clock)
  MicroTime sim_end = 0;    ///< sim-clock stamp at close
  i64 wall_start_us = 0;    ///< steady_clock at open
  f64 wall_ms = 0;          ///< wall duration of the span
  u32 thread_index = 0;     ///< per-ring index, stable for a thread's life
};

class TraceLog {
 public:
  static constexpr size_t kRingCapacity = 4096;

  /// Process-wide log every SpanScope writes to. Never destroyed (worker
  /// threads may finish spans during teardown).
  static TraceLog& global();

  /// Appends one finished span to the calling thread's ring. Callers that
  /// are not lexical scopes (e.g. a request→playing transition measured in
  /// sim time) can build the event by hand and record it here.
  void record(TraceEvent event);

  /// Copies every ring, oldest-first within each thread. Safe to call
  /// while other threads record; each ring is copied under its own lock.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const
      VGBL_EXCLUDES(rings_mutex_);

  /// Drops all recorded events (rings stay allocated for their threads).
  void clear() VGBL_EXCLUDES(rings_mutex_);

  /// Rings ever allocated — bounded by peak concurrent recording threads.
  [[nodiscard]] size_t ring_count() const VGBL_EXCLUDES(rings_mutex_);

  /// One thread's circular buffer. Opaque outside trace.cpp; public only
  /// so the thread-local cache that recycles rings can hold a pointer.
  struct Ring;

 private:
  Ring& ring_for_this_thread() VGBL_EXCLUDES(rings_mutex_);

  mutable Mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_ VGBL_GUARDED_BY(rings_mutex_);
};

/// Records a hand-built sim-time span (a non-lexical interval such as
/// segment request → arrival) into the global log. Guard-baked like the
/// VGBL_* macros: when observability is disabled this is one relaxed load,
/// and no event is built. `name` must have static lifetime.
void record_span(const char* name, MicroTime sim_start, MicroTime sim_end);

/// RAII span: open at construction, recorded at destruction. When metrics
/// are disabled at construction, the whole scope is a no-op (no clock
/// reads, nothing recorded).
class SpanScope {
 public:
  explicit SpanScope(const char* name, const Clock* sim_clock = nullptr);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;  // null: disabled at construction
  const Clock* sim_clock_ = nullptr;
  MicroTime sim_start_ = 0;
  std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace vgbl::obs
