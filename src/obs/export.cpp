#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "util/text.hpp"

namespace vgbl::obs {

namespace {

std::string format_bound(f64 bound) {
  if (std::isinf(bound)) return "+Inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", bound);
  return buf;
}

std::string format_value(f64 v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    if (!c.help.empty()) out += "# HELP " + c.name + " " + c.help + "\n";
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    if (!g.help.empty()) out += "# HELP " + g.name + " " + g.help + "\n";
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + format_value(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    if (!h.help.empty()) out += "# HELP " + h.name + " " + h.help + "\n";
    out += "# TYPE " + h.name + " histogram\n";
    u64 cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const f64 bound = i < h.bounds.size()
                            ? h.bounds[i]
                            : std::numeric_limits<f64>::infinity();
      out += h.name + "_bucket{le=\"" + format_bound(bound) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_sum " + format_value(h.sum) + "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

Json to_json(const MetricsSnapshot& snapshot) {
  JsonObject counters;
  for (const CounterSample& c : snapshot.counters) {
    counters.set(c.name, Json(static_cast<i64>(c.value)));
  }
  JsonObject gauges;
  for (const GaugeSample& g : snapshot.gauges) {
    gauges.set(g.name, Json(g.value));
  }
  JsonObject histograms;
  for (const HistogramSample& h : snapshot.histograms) {
    JsonObject entry;
    JsonArray bounds;
    for (f64 b : h.bounds) bounds.push_back(Json(b));
    JsonArray counts;
    for (u64 c : h.counts) counts.push_back(Json(static_cast<i64>(c)));
    entry.set("bounds", Json(std::move(bounds)));
    entry.set("counts", Json(std::move(counts)));
    entry.set("count", Json(static_cast<i64>(h.count)));
    entry.set("sum", Json(h.sum));
    histograms.set(h.name, Json(std::move(entry)));
  }
  JsonObject root;
  root.set("counters", Json(std::move(counters)));
  root.set("gauges", Json(std::move(gauges)));
  root.set("histograms", Json(std::move(histograms)));
  return Json(std::move(root));
}

Result<MetricsSnapshot> snapshot_from_json(const Json& json) {
  if (!json.is_object()) {
    return corrupt_data("metrics scrape must be a JSON object");
  }
  MetricsSnapshot snap;

  const Json& counters = json["counters"];
  if (!counters.is_null()) {
    if (!counters.is_object()) {
      return corrupt_data("'counters' must be an object");
    }
    for (const auto& [name, value] : counters.as_object().members()) {
      if (!value.is_number()) {
        return corrupt_data("counter '" + name + "' must be a number");
      }
      snap.counters.push_back(
          {name, "", static_cast<u64>(std::max<i64>(0, value.as_int()))});
    }
  }

  const Json& gauges = json["gauges"];
  if (!gauges.is_null()) {
    if (!gauges.is_object()) return corrupt_data("'gauges' must be an object");
    for (const auto& [name, value] : gauges.as_object().members()) {
      if (!value.is_number()) {
        return corrupt_data("gauge '" + name + "' must be a number");
      }
      snap.gauges.push_back({name, "", value.as_double()});
    }
  }

  const Json& histograms = json["histograms"];
  if (!histograms.is_null()) {
    if (!histograms.is_object()) {
      return corrupt_data("'histograms' must be an object");
    }
    for (const auto& [name, value] : histograms.as_object().members()) {
      if (!value.is_object()) {
        return corrupt_data("histogram '" + name + "' must be an object");
      }
      HistogramSample h;
      h.name = name;
      const Json& bounds = value["bounds"];
      const Json& counts = value["counts"];
      if (!bounds.is_array() || !counts.is_array()) {
        return corrupt_data("histogram '" + name +
                            "' needs 'bounds' and 'counts' arrays");
      }
      for (const Json& b : bounds.as_array()) h.bounds.push_back(b.as_double());
      for (const Json& c : counts.as_array()) {
        h.counts.push_back(static_cast<u64>(std::max<i64>(0, c.as_int())));
      }
      if (h.counts.size() != h.bounds.size() + 1) {
        return corrupt_data("histogram '" + name + "' has " +
                            std::to_string(h.counts.size()) + " counts for " +
                            std::to_string(h.bounds.size()) + " bounds");
      }
      h.count = static_cast<u64>(std::max<i64>(0, value["count"].as_int()));
      h.sum = value["sum"].as_double();
      snap.histograms.push_back(std::move(h));
    }
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::string render_snapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  out += "subsystems: ";
  const auto subsystems = snapshot.subsystems();
  for (size_t i = 0; i < subsystems.size(); ++i) {
    out += (i > 0 ? ", " : "") + subsystems[i];
  }
  out += "\n";

  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    for (const CounterSample& c : snapshot.counters) {
      out += "  " + pad_right(c.name, 44) + std::to_string(c.value) + "\n";
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    for (const GaugeSample& g : snapshot.gauges) {
      out += "  " + pad_right(g.name, 44) + format_double(g.value, 2) + "\n";
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    out += "  " + pad_right("name", 44) + pad_right("count", 10) +
           pad_right("mean", 10) + pad_right("p50", 10) + "p99\n";
    for (const HistogramSample& h : snapshot.histograms) {
      out += "  " + pad_right(h.name, 44) +
             pad_right(std::to_string(h.count), 10) +
             pad_right(format_double(h.mean(), 2), 10) +
             pad_right(format_double(h.quantile(0.5), 2), 10) +
             format_double(h.quantile(0.99), 2) + "\n";
    }
  }
  return out;
}

std::string render_trace_summary(const std::vector<TraceEvent>& events) {
  struct Agg {
    u64 count = 0;
    f64 wall_ms = 0;
    f64 sim_ms = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : events) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.wall_ms += e.wall_ms;
    a.sim_ms += to_millis(e.sim_end - e.sim_start);
  }
  std::string out;
  out += pad_right("span", 28) + pad_right("count", 10) +
         pad_right("wall ms", 12) + pad_right("mean ms", 12) + "mean sim ms\n";
  for (const auto& [name, a] : by_name) {
    const f64 n = static_cast<f64>(a.count);
    out += pad_right(name, 28) + pad_right(std::to_string(a.count), 10) +
           pad_right(format_double(a.wall_ms, 2), 12) +
           pad_right(format_double(a.wall_ms / n, 3), 12) +
           format_double(a.sim_ms / n, 2) + "\n";
  }
  return out;
}

}  // namespace vgbl::obs
