// Exporters for metrics scrapes and trace snapshots: Prometheus text
// exposition for ops tooling, a JSON form (the BENCH_*-file dialect:
// plain nested objects, f64/u64 leaves) that round-trips back into a
// MetricsSnapshot, and human-readable tables for `vgbl metrics`.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace vgbl::obs {

/// Prometheus text exposition format (# HELP / # TYPE, histogram
/// `_bucket{le="..."}` series with a +Inf bucket, `_sum` and `_count`).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON document:
///   {"counters": {name: value}, "gauges": {name: value},
///    "histograms": {name: {"bounds": [...], "counts": [...],
///                          "count": n, "sum": s}}}
/// Help strings are presentation-only and not serialised.
[[nodiscard]] Json to_json(const MetricsSnapshot& snapshot);

/// Inverse of `to_json`. Typed kCorruptData errors on structural
/// mismatches (so `vgbl metrics` rejects non-scrape JSON cleanly).
[[nodiscard]] Result<MetricsSnapshot> snapshot_from_json(const Json& json);

/// Table form for terminals: counters, gauges, then histograms with
/// count/mean/p50/p99, prefixed by the subsystems present.
[[nodiscard]] std::string render_snapshot(const MetricsSnapshot& snapshot);

/// Aggregates spans by name: count, total/mean wall ms, mean sim ms.
[[nodiscard]] std::string render_trace_summary(
    const std::vector<TraceEvent>& events);

}  // namespace vgbl::obs
