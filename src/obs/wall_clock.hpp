#pragma once

#include <chrono>

#include "util/types.hpp"

namespace vgbl::obs {

// The single sanctioned wall-clock read for observe-only timing (DESIGN.md
// §5f). Deterministic layers must never branch on wall time — vgbl-lint's
// `determinism-wallclock` rule bans the std::chrono clocks there — but
// metrics like student wall_ms or thread-pool idle time legitimately measure
// it. Those sites call this helper so every wall-clock read in the tree is
// greppable and the lint allowlist stays one entry long.
//
// steady_clock, not system_clock: the values are only ever subtracted, and
// a monotonic source can't go backwards under NTP adjustment.
[[nodiscard]] inline i64 wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace vgbl::obs
