#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>

namespace vgbl::obs {

namespace {

std::atomic<bool> g_enabled{false};

i64 steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void atomic_add(std::atomic<f64>& target, f64 delta) {
  f64 cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

size_t thread_shard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::string name, std::string help, std::vector<f64> bounds)
    : name_(std::move(name)), help_(std::move(help)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (bounds_.empty()) bounds_.push_back(1.0);
  buckets_ = std::make_unique<std::atomic<u64>[]>(bounds_.size() + 1);
}

void Histogram::observe(f64 v) {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::vector<u64> Histogram::bucket_counts() const {
  std::vector<u64> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<f64> linear_buckets(f64 start, f64 width, int count) {
  std::vector<f64> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<f64>(i));
  }
  return bounds;
}

std::vector<f64> exponential_buckets(f64 start, f64 factor, int count) {
  std::vector<f64> bounds;
  bounds.reserve(static_cast<size_t>(std::max(0, count)));
  f64 bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

// --- snapshots --------------------------------------------------------------

f64 HistogramSample::quantile(f64 q) const {
  if (count == 0 || counts.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const f64 target = q * static_cast<f64>(count);
  u64 cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const u64 in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<f64>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return bounds.empty() ? 0 : bounds.back();
    }
    const f64 lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    const f64 hi = bounds[i];
    const f64 within =
        (target - static_cast<f64>(cumulative)) / static_cast<f64>(in_bucket);
    return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
  }
  return bounds.empty() ? 0 : bounds.back();
}

namespace {

template <typename Sample>
const Sample* find_by_name(const std::vector<Sample>& samples,
                           std::string_view name) {
  for (const Sample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

const CounterSample* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSample* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSample* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name);
}

std::vector<std::string> MetricsSnapshot::subsystems() const {
  std::vector<std::string> out;
  auto add = [&out](const std::string& name) {
    const size_t underscore = name.find('_');
    std::string prefix =
        underscore == std::string::npos ? name : name.substr(0, underscore);
    if (std::find(out.begin(), out.end(), prefix) == out.end()) {
      out.push_back(std::move(prefix));
    }
  };
  for (const auto& s : counters) add(s.name);
  for (const auto& s : gauges) add(s.name);
  for (const auto& s : histograms) add(s.name);
  std::sort(out.begin(), out.end());
  return out;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: pool workers and thread-local teardown may record
  // metrics after main() returns; a destroyed registry would be a
  // use-after-free lottery.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     name, help)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name, help)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<f64> bounds,
                                      const std::string& help) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, help, std::move(bounds))))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::scrape() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->help(), c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->help(), g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.help = h->help();
    s.bounds = h->bounds();
    s.counts = h->bucket_counts();
    s.count = h->count();
    s.sum = h->sum();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

// --- ScopedTimer ------------------------------------------------------------

ScopedTimer::ScopedTimer(Histogram& histogram) {
  if (!enabled()) return;
  histogram_ = &histogram;
  start_ns_ = steady_ns();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->observe(static_cast<f64>(steady_ns() - start_ns_) / 1e6);
}

}  // namespace vgbl::obs
