#include "obs/trace.hpp"

#include <atomic>

#include "obs/metrics.hpp"

namespace vgbl::obs {

struct TraceLog::Ring {
  Mutex mutex;
  std::vector<TraceEvent> events VGBL_GUARDED_BY(mutex);  // circular
  size_t next VGBL_GUARDED_BY(mutex) = 0;
  bool wrapped VGBL_GUARDED_BY(mutex) = false;
  u32 thread_index = 0;  // immutable after construction
  std::atomic<bool> in_use{false};
};

namespace {

/// Releases the thread's ring back to the log when the thread exits, so a
/// later thread can recycle the storage instead of growing the ring list.
struct ThreadRingCache {
  TraceLog::Ring* ring = nullptr;
  ~ThreadRingCache();
};

thread_local ThreadRingCache t_ring_cache;

}  // namespace

ThreadRingCache::~ThreadRingCache() {
  if (ring != nullptr) {
    ring->in_use.store(false, std::memory_order_release);
  }
}

TraceLog& TraceLog::global() {
  // Leaked on purpose, mirroring MetricsRegistry::global().
  static TraceLog* log = new TraceLog();
  return *log;
}

TraceLog::Ring& TraceLog::ring_for_this_thread() {
  if (t_ring_cache.ring != nullptr) return *t_ring_cache.ring;

  MutexLock lock(rings_mutex_);
  for (auto& ring : rings_) {
    bool expected = false;
    if (ring->in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      // Recycled from a finished thread: the dead thread's history goes,
      // keeping total memory bounded by peak concurrency.
      MutexLock ring_lock(ring->mutex);
      ring->events.clear();
      ring->next = 0;
      ring->wrapped = false;
      t_ring_cache.ring = ring.get();
      return *ring;
    }
  }
  auto ring = std::make_unique<Ring>();
  ring->events.reserve(kRingCapacity);
  ring->thread_index = static_cast<u32>(rings_.size());
  ring->in_use.store(true, std::memory_order_release);
  rings_.push_back(std::move(ring));
  t_ring_cache.ring = rings_.back().get();
  return *rings_.back();
}

void TraceLog::record(TraceEvent event) {
  if (!enabled()) return;
  Ring& ring = ring_for_this_thread();
  event.thread_index = ring.thread_index;
  MutexLock lock(ring.mutex);
  if (ring.events.size() < kRingCapacity) {
    ring.events.push_back(event);
  } else {
    ring.events[ring.next] = event;
    ring.wrapped = true;
  }
  ring.next = (ring.next + 1) % kRingCapacity;
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  std::vector<TraceEvent> out;
  MutexLock lock(rings_mutex_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mutex);
    if (ring->wrapped) {
      // Oldest-first: [next, end) then [0, next).
      out.insert(out.end(), ring->events.begin() + static_cast<i64>(ring->next),
                 ring->events.end());
      out.insert(out.end(), ring->events.begin(),
                 ring->events.begin() + static_cast<i64>(ring->next));
    } else {
      out.insert(out.end(), ring->events.begin(), ring->events.end());
    }
  }
  return out;
}

void TraceLog::clear() {
  MutexLock lock(rings_mutex_);
  for (const auto& ring : rings_) {
    MutexLock ring_lock(ring->mutex);
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
}

size_t TraceLog::ring_count() const {
  MutexLock lock(rings_mutex_);
  return rings_.size();
}

void record_span(const char* name, MicroTime sim_start, MicroTime sim_end) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.sim_start = sim_start;
  event.sim_end = sim_end;
  TraceLog::global().record(event);
}

SpanScope::SpanScope(const char* name, const Clock* sim_clock) {
  if (!enabled()) return;
  name_ = name;
  sim_clock_ = sim_clock;
  sim_start_ = sim_clock != nullptr ? sim_clock->now() : 0;
  wall_start_ = std::chrono::steady_clock::now();
}

SpanScope::~SpanScope() {
  if (name_ == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.sim_start = sim_start_;
  event.sim_end = sim_clock_ != nullptr ? sim_clock_->now() : 0;
  event.wall_start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          wall_start_.time_since_epoch())
          .count();
  event.wall_ms = std::chrono::duration<f64, std::milli>(
                      std::chrono::steady_clock::now() - wall_start_)
                      .count();
  TraceLog::global().record(event);
}

}  // namespace vgbl::obs
