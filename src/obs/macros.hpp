#pragma once

// Guard-baking instrumentation macros (DESIGN.md §5f). Every metric/trace
// call site outside src/obs/ must go through these — vgbl-lint's
// `obs-guarded-metric` rule rejects raw Counter/Histogram mutations and raw
// SpanScope/ScopedTimer spellings elsewhere — so the `obs::enabled()` guard
// is structural: it cannot be forgotten the way the PR 4
// `net_packets_lost_total` site forgot it.
//
// The guard does double duty. Counter/Gauge/Histogram already check
// `enabled()` internally (so correctness never depended on call-site
// guards), but the *expression computing the metric reference* — typically
// `XxxMetrics::get()`, a function-local static behind an init-guard — and
// any argument computation run before that internal check. Baking the
// branch into the macro keeps the disabled cost of a site at one relaxed
// load, arguments unevaluated.
//
// Batching is still allowed: a block under a raw `if (obs::enabled())` may
// cache `XxxMetrics& m = XxxMetrics::get();` once and use these macros on
// `m.field` inside — the inner check is a second relaxed load, not a
// second registry lookup.

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vgbl::obs::detail {

inline void count(Counter& counter) { counter.increment(); }
inline void count(Counter& counter, u64 n) { counter.add(n); }

}  // namespace vgbl::obs::detail

/// Increment a counter: VGBL_COUNT(m.steps) or VGBL_COUNT(m.bytes, n).
#define VGBL_COUNT(...)                       \
  do {                                        \
    if (::vgbl::obs::enabled()) {             \
      ::vgbl::obs::detail::count(__VA_ARGS__); \
    }                                         \
  } while (0)

/// Record one histogram observation.
#define VGBL_OBSERVE(histogram, value)           \
  do {                                           \
    if (::vgbl::obs::enabled()) {                \
      (histogram).observe(value);                \
    }                                            \
  } while (0)

/// Set a gauge to an absolute value.
#define VGBL_GAUGE_SET(gauge, value)             \
  do {                                           \
    if (::vgbl::obs::enabled()) {                \
      (gauge).set(value);                        \
    }                                            \
  } while (0)

/// Apply a signed delta to a gauge (paired enter/exit sites).
#define VGBL_GAUGE_ADD(gauge, delta)             \
  do {                                           \
    if (::vgbl::obs::enabled()) {                \
      (gauge).add(delta);                        \
    }                                            \
  } while (0)

#define VGBL_OBS_CONCAT_INNER(a, b) a##b
#define VGBL_OBS_CONCAT(a, b) VGBL_OBS_CONCAT_INNER(a, b)

/// Open a RAII trace span for the rest of the enclosing scope:
/// VGBL_SPAN("persist.checkpoint") or VGBL_SPAN("core.student", &clock).
/// SpanScope is itself a no-op when disabled; the macro exists so the
/// spelling is lintable and uniform with the other sites.
#define VGBL_SPAN(...)                                       \
  ::vgbl::obs::SpanScope VGBL_OBS_CONCAT(vgbl_span_, __LINE__) { \
    __VA_ARGS__                                              \
  }

/// Time the rest of the enclosing scope into a histogram (milliseconds).
#define VGBL_TIMER(histogram)                                     \
  ::vgbl::obs::ScopedTimer VGBL_OBS_CONCAT(vgbl_timer_, __LINE__) { \
    histogram                                                     \
  }
