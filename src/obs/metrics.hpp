// Low-overhead metrics for the whole platform: named counters, gauges and
// fixed-bucket histograms owned by a MetricsRegistry and read out through
// scrape snapshots (export.hpp renders those as Prometheus text or JSON).
//
// Hot-path design. Counters are sharded per thread: each counter owns a
// small array of cache-line-aligned atomic slots and a thread picks its
// slot once (thread-local), so concurrent increments from pool workers
// never contend on one cache line. Scrapes sum the slots. Histograms and
// gauges are single atomics — their call sites are orders of magnitude
// colder than counter increments.
//
// Idle-by-default. The whole subsystem is gated on a global enabled flag
// (`obs::set_enabled`): every add/observe/set is a relaxed load + branch
// when metrics are off, so instrumentation can stay compiled into hot
// paths permanently (bench_obs measures the enabled-vs-idle gap; the
// budget is <2% classroom throughput, DESIGN.md §5d).
//
// Determinism. Metrics are observe-only: no instrumentation site feeds a
// value back into simulation state, RNG, or the sim clock, so the PR 2
// parallel == sequential contract is untouched with metrics enabled.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace vgbl::obs {

/// Global instrumentation switch. Off by default: a disabled platform pays
/// one relaxed atomic load per instrumentation site.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// RAII enable for tests and benchmarks; restores the previous state.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : previous_(enabled()) {
    set_enabled(on);
  }
  ~ScopedEnable() { set_enabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

/// Shards per counter. A power of two around typical worker counts: enough
/// that concurrent incrementers rarely share a line, small enough that
/// scraping stays a trivial sum.
inline constexpr size_t kCounterShards = 16;

/// This thread's counter shard, assigned round-robin on first use.
[[nodiscard]] size_t thread_shard();

/// Monotonic counter. Increment-only by convention (scrape consumers treat
/// decreases as a restart, Prometheus-style).
class Counter {
 public:
  void add(u64 n) {
    if (!enabled()) return;
    slots_[thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Sum over all shards. Concurrent adds may or may not be included —
  /// the value is always a valid monotone reading, never torn.
  [[nodiscard]] u64 value() const {
    u64 total = 0;
    for (const Slot& s : slots_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  struct alignas(64) Slot {
    std::atomic<u64> value{0};
  };

  std::string name_;
  std::string help_;
  std::array<Slot, kCounterShards> slots_{};
};

/// Point-in-time value (queue depth, buffered frames, ...). `add` takes a
/// signed delta so paired increment/decrement sites can track a level.
class Gauge {
 public:
  void set(f64 v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(f64 delta) {
    if (!enabled()) return;
    f64 cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] f64 value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  std::string name_;
  std::string help_;
  std::atomic<f64> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges (Prometheus
/// `le` semantics) plus an implicit overflow bucket, so an observation
/// lands in the first bucket whose bound is >= the value. Buckets are
/// chosen at registration and never rebalanced — quantile error is bounded
/// by the width of the bucket the quantile falls in.
class Histogram {
 public:
  void observe(f64 v);

  [[nodiscard]] u64 count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] f64 sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::vector<f64>& bounds() const { return bounds_; }
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  [[nodiscard]] std::vector<u64> bucket_counts() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& help() const { return help_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::string help, std::vector<f64> bounds);

  std::string name_;
  std::string help_;
  std::vector<f64> bounds_;  // strictly increasing
  std::unique_ptr<std::atomic<u64>[]> buckets_;  // bounds_.size() + 1
  std::atomic<u64> count_{0};
  std::atomic<f64> sum_{0};
};

/// `count` upper bounds start, start+width, start+2*width, ...
[[nodiscard]] std::vector<f64> linear_buckets(f64 start, f64 width, int count);
/// `count` upper bounds start, start*factor, start*factor^2, ...
[[nodiscard]] std::vector<f64> exponential_buckets(f64 start, f64 factor,
                                                   int count);

// --- scrape snapshots -------------------------------------------------------

struct CounterSample {
  std::string name;
  std::string help;
  u64 value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  f64 value = 0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  std::vector<f64> bounds;
  std::vector<u64> counts;  // bounds.size() + 1, last = overflow
  u64 count = 0;
  f64 sum = 0;

  /// Quantile estimate for q in [0, 1]: find the bucket holding the target
  /// rank, interpolate linearly inside it. Exact to within one bucket
  /// width; the overflow bucket reports its lower edge.
  [[nodiscard]] f64 quantile(f64 q) const;
  [[nodiscard]] f64 mean() const {
    return count > 0 ? sum / static_cast<f64>(count) : 0.0;
  }
};

/// One scrape of a registry. Samples are sorted by name within each kind.
/// Not a consistent cut across metrics — each sample is individually
/// coherent, but a scrape taken while writers run may see metric A ahead
/// of metric B.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] const CounterSample* find_counter(std::string_view name) const;
  [[nodiscard]] const GaugeSample* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSample* find_histogram(
      std::string_view name) const;

  /// Distinct metric-name prefixes up to the first '_' ("classroom_..."
  /// -> "classroom"), sorted — the subsystems present in this scrape.
  [[nodiscard]] std::vector<std::string> subsystems() const;
};

/// Owns metrics by name. Registration takes a mutex (call sites cache the
/// returned reference, typically in a function-local static); reads and
/// writes of registered metrics are lock-free. Metrics live as long as the
/// registry; references stay valid forever.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry every built-in instrumentation site uses.
  /// Never destroyed, so worker threads may touch it during teardown.
  static MetricsRegistry& global();

  /// Returns the metric registered under `name`, creating it on first
  /// call. `help` (and for histograms, `bounds`) only matter on that first
  /// call; later calls return the existing metric unchanged.
  Counter& counter(const std::string& name, const std::string& help = "")
      VGBL_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const std::string& help = "")
      VGBL_EXCLUDES(mutex_);
  Histogram& histogram(const std::string& name, std::vector<f64> bounds,
                       const std::string& help = "") VGBL_EXCLUDES(mutex_);

  [[nodiscard]] MetricsSnapshot scrape() const VGBL_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  // std::map: stable addresses via unique_ptr, and scrape() comes out
  // name-sorted for free. Registration is rare; lookups hit cached refs.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      VGBL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      VGBL_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      VGBL_GUARDED_BY(mutex_);
};

/// Times a block into a histogram of milliseconds; a no-op (no clock read)
/// while metrics are disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;  // null: disabled at construction
  i64 start_ns_ = 0;
};

}  // namespace vgbl::obs
