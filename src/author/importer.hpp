// Video import — the scenario editor's entry point (paper §4.1): "The
// users just need to select video files from network or video cameras such
// that video can be divided into scenario components by the authoring
// tool." Here the "video file" is a ClipSpec recipe rendered by the
// synthetic generator; the segmentation pipeline is the real one.
#pragma once

#include "author/project.hpp"
#include "util/result.hpp"

namespace vgbl {

struct ImportOptions {
  SegmentationConfig segmentation;
  /// Create one scenario per detected segment, wired to it, and set the
  /// first as the start scenario (the tool's default workflow).
  bool create_scenarios = true;
};

struct ImportReport {
  int frame_count = 0;
  int cut_count = 0;
  int segment_count = 0;
  std::vector<std::string> scenario_names;
};

/// Imports a clip into the project: renders it, auto-segments it into
/// scenario components, assigns segment ids, and (optionally) creates one
/// scenario per segment. Replaces any previously imported video; fails
/// with kFailedPrecondition if scenarios already reference old segments
/// and `create_scenarios` is false.
[[nodiscard]] Result<ImportReport> import_clip(Project& project, ClipSpec spec,
                                 const ImportOptions& options = {});

/// Re-renders the project's clip from its recipe (authoring preview and
/// bundling both need the frames).
[[nodiscard]] Result<Clip> render_project_clip(const Project& project);

}  // namespace vgbl
