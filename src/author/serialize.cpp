#include "author/serialize.hpp"

namespace vgbl {
namespace {

Json color_to_json(Color c) {
  JsonArray a{Json(static_cast<i64>(c.r)), Json(static_cast<i64>(c.g)),
              Json(static_cast<i64>(c.b))};
  return Json(std::move(a));
}

[[nodiscard]] Result<Color> color_from_json(const Json& json) {
  const auto& a = json.as_array();
  if (!json.is_array() || a.size() != 3) {
    return corrupt_data("color must be a 3-element array");
  }
  return Color{static_cast<u8>(a[0].as_int()), static_cast<u8>(a[1].as_int()),
               static_cast<u8>(a[2].as_int())};
}

Json rect_to_json(const Rect& r) {
  JsonArray a{Json(r.x), Json(r.y), Json(r.width), Json(r.height)};
  return Json(std::move(a));
}

[[nodiscard]] Result<Rect> rect_from_json(const Json& json) {
  const auto& a = json.as_array();
  if (!json.is_array() || a.size() != 4) {
    return corrupt_data("rect must be a 4-element array");
  }
  return Rect{static_cast<i32>(a[0].as_int()), static_cast<i32>(a[1].as_int()),
              static_cast<i32>(a[2].as_int()), static_cast<i32>(a[3].as_int())};
}

}  // namespace

Json clip_spec_to_json(const ClipSpec& spec) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("width", Json(spec.width));
  o.set("height", Json(spec.height));
  o.set("fps", Json(spec.fps));
  o.set("seed", Json(static_cast<i64>(spec.seed)));
  JsonArray scenes;
  for (const auto& s : spec.scenes) {
    Json sj = Json::object();
    auto& so = sj.mutable_object();
    so.set("name", Json(s.name));
    so.set("duration_frames", Json(s.duration_frames));
    Json style = Json::object();
    auto& st = style.mutable_object();
    st.set("background_top", color_to_json(s.style.background_top));
    st.set("background_bottom", color_to_json(s.style.background_bottom));
    st.set("prop_count", Json(s.style.prop_count));
    st.set("character_count", Json(s.style.character_count));
    st.set("motion_speed", Json(s.style.motion_speed));
    st.set("noise_level", Json(s.style.noise_level));
    so.set("style", std::move(style));
    scenes.push_back(std::move(sj));
  }
  o.set("scenes", Json(std::move(scenes)));
  return out;
}

Result<ClipSpec> clip_spec_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("clip spec must be an object");
  ClipSpec spec;
  spec.width = static_cast<i32>(json["width"].as_int());
  spec.height = static_cast<i32>(json["height"].as_int());
  spec.fps = static_cast<int>(json["fps"].as_int(24));
  spec.seed = static_cast<u64>(json["seed"].as_int(1));
  for (const auto& sj : json["scenes"].as_array()) {
    SceneSpec scene;
    scene.name = sj["name"].as_string();
    scene.duration_frames = static_cast<int>(sj["duration_frames"].as_int());
    const Json& st = sj["style"];
    auto top = color_from_json(st["background_top"]);
    auto bottom = color_from_json(st["background_bottom"]);
    if (!top.ok()) return top.error();
    if (!bottom.ok()) return bottom.error();
    scene.style.background_top = top.value();
    scene.style.background_bottom = bottom.value();
    scene.style.prop_count = static_cast<int>(st["prop_count"].as_int());
    scene.style.character_count = static_cast<int>(st["character_count"].as_int());
    scene.style.motion_speed = st["motion_speed"].as_double(2.0);
    scene.style.noise_level = st["noise_level"].as_double(0.0);
    spec.scenes.push_back(std::move(scene));
  }
  return spec;
}

Json condition_to_json(const Condition& c) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("op", Json(condition_op_name(c.op)));
  if (c.item.valid()) o.set("item", Json(c.item.value));
  if (c.scenario.valid()) o.set("scenario", Json(c.scenario.value));
  if (!c.flag.empty()) o.set("flag", Json(c.flag));
  if (c.value != 0) o.set("value", Json(c.value));
  if (!c.children.empty()) {
    JsonArray children;
    for (const auto& child : c.children) {
      children.push_back(condition_to_json(child));
    }
    o.set("children", Json(std::move(children)));
  }
  return out;
}

Result<Condition> condition_from_json(const Json& json) {
  if (json.is_null()) return Condition::always();
  if (!json.is_object()) return corrupt_data("condition must be an object");
  auto op = condition_op_from_name(json["op"].as_string());
  if (!op.ok()) return op.error();
  Condition c;
  c.op = op.value();
  c.item = ItemId{static_cast<u32>(json["item"].as_int())};
  c.scenario = ScenarioId{static_cast<u32>(json["scenario"].as_int())};
  c.flag = json["flag"].as_string();
  c.value = json["value"].as_int();
  for (const auto& child : json["children"].as_array()) {
    auto parsed = condition_from_json(child);
    if (!parsed.ok()) return parsed.error();
    c.children.push_back(std::move(parsed.value()));
  }
  return c;
}

Json trigger_to_json(const Trigger& t) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("type", Json(trigger_type_name(t.type)));
  if (t.object.valid()) o.set("object", Json(t.object.value));
  if (t.item.valid()) o.set("item", Json(t.item.value));
  if (t.second_item.valid()) o.set("second_item", Json(t.second_item.value));
  if (t.scenario.valid()) o.set("scenario", Json(t.scenario.value));
  if (t.delay != 0) o.set("delay_us", Json(t.delay));
  if (!t.tag.empty()) o.set("tag", Json(t.tag));
  return out;
}

Result<Trigger> trigger_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("trigger must be an object");
  auto type = trigger_type_from_name(json["type"].as_string());
  if (!type.ok()) return type.error();
  Trigger t;
  t.type = type.value();
  t.object = ObjectId{static_cast<u32>(json["object"].as_int())};
  t.item = ItemId{static_cast<u32>(json["item"].as_int())};
  t.second_item = ItemId{static_cast<u32>(json["second_item"].as_int())};
  t.scenario = ScenarioId{static_cast<u32>(json["scenario"].as_int())};
  t.delay = json["delay_us"].as_int();
  t.tag = json["tag"].as_string();
  return t;
}

Json action_to_json(const Action& a) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("type", Json(action_type_name(a.type)));
  if (a.scenario.valid()) o.set("scenario", Json(a.scenario.value));
  if (a.object.valid()) o.set("object", Json(a.object.value));
  if (a.item.valid()) o.set("item", Json(a.item.value));
  if (a.dialogue.valid()) o.set("dialogue", Json(a.dialogue.value));
  if (a.quiz.valid()) o.set("quiz", Json(a.quiz.value));
  if (!a.text.empty()) o.set("text", Json(a.text));
  if (a.amount != 0) o.set("amount", Json(a.amount));
  if (a.type == ActionType::kEndGame) o.set("success", Json(a.success_outcome));
  return out;
}

Result<Action> action_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("action must be an object");
  auto type = action_type_from_name(json["type"].as_string());
  if (!type.ok()) return type.error();
  Action a;
  a.type = type.value();
  a.scenario = ScenarioId{static_cast<u32>(json["scenario"].as_int())};
  a.object = ObjectId{static_cast<u32>(json["object"].as_int())};
  a.item = ItemId{static_cast<u32>(json["item"].as_int())};
  a.dialogue = DialogueId{static_cast<u32>(json["dialogue"].as_int())};
  a.quiz = QuizId{static_cast<u32>(json["quiz"].as_int())};
  a.text = json["text"].as_string();
  a.amount = json["amount"].as_int();
  a.success_outcome = json["success"].as_bool(true);
  return a;
}

Json rule_to_json(const EventRule& r) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("id", Json(r.id.value));
  o.set("name", Json(r.name));
  if (r.once) o.set("once", Json(true));
  o.set("trigger", trigger_to_json(r.trigger));
  if (!(r.condition == Condition::always())) {
    o.set("condition", condition_to_json(r.condition));
  }
  JsonArray actions;
  for (const auto& a : r.actions) actions.push_back(action_to_json(a));
  o.set("actions", Json(std::move(actions)));
  return out;
}

Result<EventRule> rule_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("rule must be an object");
  EventRule r;
  r.id = RuleId{static_cast<u32>(json["id"].as_int())};
  if (!r.id.valid()) return corrupt_data("rule id missing");
  r.name = json["name"].as_string();
  r.once = json["once"].as_bool(false);
  auto trigger = trigger_from_json(json["trigger"]);
  if (!trigger.ok()) return trigger.error();
  r.trigger = std::move(trigger.value());
  auto condition = condition_from_json(json["condition"]);
  if (!condition.ok()) return condition.error();
  r.condition = std::move(condition.value());
  for (const auto& aj : json["actions"].as_array()) {
    auto action = action_from_json(aj);
    if (!action.ok()) return action.error();
    r.actions.push_back(std::move(action.value()));
  }
  return r;
}

Json dialogue_to_json(const DialogueTree& d) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("id", Json(d.id().value));
  o.set("name", Json(d.name()));
  o.set("entry", Json(d.entry()));
  JsonArray nodes;
  for (const auto& n : d.nodes()) {
    Json nj = Json::object();
    auto& no = nj.mutable_object();
    no.set("id", Json(n.id));
    if (!n.speaker.empty()) no.set("speaker", Json(n.speaker));
    no.set("line", Json(n.line));
    if (n.next_node != kEndDialogue) no.set("next", Json(n.next_node));
    if (!n.action_tag.empty()) no.set("action_tag", Json(n.action_tag));
    if (!n.choices.empty()) {
      JsonArray choices;
      for (const auto& c : n.choices) {
        Json cj = Json::object();
        auto& co = cj.mutable_object();
        co.set("text", Json(c.text));
        if (c.next_node != kEndDialogue) co.set("next", Json(c.next_node));
        if (!c.action_tag.empty()) co.set("action_tag", Json(c.action_tag));
        choices.push_back(std::move(cj));
      }
      no.set("choices", Json(std::move(choices)));
    }
    nodes.push_back(std::move(nj));
  }
  o.set("nodes", Json(std::move(nodes)));
  return out;
}

Result<DialogueTree> dialogue_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("dialogue must be an object");
  const DialogueId id{static_cast<u32>(json["id"].as_int())};
  if (!id.valid()) return corrupt_data("dialogue id missing");
  DialogueTree tree(id, json["name"].as_string());
  for (const auto& nj : json["nodes"].as_array()) {
    DialogueNode n;
    n.id = static_cast<int>(nj["id"].as_int());
    n.speaker = nj["speaker"].as_string();
    n.line = nj["line"].as_string();
    n.next_node = static_cast<int>(nj["next"].as_int(kEndDialogue));
    n.action_tag = nj["action_tag"].as_string();
    for (const auto& cj : nj["choices"].as_array()) {
      DialogueChoice c;
      c.text = cj["text"].as_string();
      c.next_node = static_cast<int>(cj["next"].as_int(kEndDialogue));
      c.action_tag = cj["action_tag"].as_string();
      n.choices.push_back(std::move(c));
    }
    if (auto st = tree.add_node(std::move(n)); !st.ok()) return st.error();
  }
  const int entry = static_cast<int>(json["entry"].as_int(kEndDialogue));
  if (entry != kEndDialogue) {
    if (auto st = tree.set_entry(entry); !st.ok()) return st.error();
  }
  return tree;
}

Json quiz_to_json(const Quiz& q) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("id", Json(q.id().value));
  o.set("name", Json(q.name()));
  if (q.pass_fraction() != 0.6) o.set("pass_fraction", Json(q.pass_fraction()));
  JsonArray questions;
  for (const auto& question : q.questions()) {
    Json qj = Json::object();
    auto& qo = qj.mutable_object();
    qo.set("prompt", Json(question.prompt));
    JsonArray options;
    for (const auto& opt : question.options) options.push_back(Json(opt));
    qo.set("options", Json(std::move(options)));
    qo.set("correct", Json(static_cast<i64>(question.correct_option)));
    if (!question.explanation.empty()) {
      qo.set("explanation", Json(question.explanation));
    }
    if (question.points != 10) qo.set("points", Json(question.points));
    questions.push_back(std::move(qj));
  }
  o.set("questions", Json(std::move(questions)));
  return out;
}

Result<Quiz> quiz_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("quiz must be an object");
  const QuizId id{static_cast<u32>(json["id"].as_int())};
  if (!id.valid()) return corrupt_data("quiz id missing");
  Quiz quiz(id, json["name"].as_string());
  quiz.set_pass_fraction(json["pass_fraction"].as_double(0.6));
  for (const auto& qj : json["questions"].as_array()) {
    QuizQuestion q;
    q.prompt = qj["prompt"].as_string();
    for (const auto& opt : qj["options"].as_array()) {
      q.options.push_back(opt.as_string());
    }
    q.correct_option = static_cast<size_t>(qj["correct"].as_int());
    q.explanation = qj["explanation"].as_string();
    q.points = qj["points"].as_int(10);
    quiz.add_question(std::move(q));
  }
  return quiz;
}

Json object_to_json(const InteractiveObject& o) {
  Json out = Json::object();
  auto& j = out.mutable_object();
  j.set("id", Json(o.id.value));
  j.set("name", Json(o.name));
  j.set("kind", Json(object_kind_name(o.kind)));
  j.set("scenario", Json(o.scenario.value));
  j.set("rect", rect_to_json(o.placement.rect));
  if (o.placement.first_frame != 0) j.set("first_frame", Json(o.placement.first_frame));
  if (o.placement.frame_count >= 0) j.set("frame_count", Json(o.placement.frame_count));
  if (o.placement.z != 0) j.set("z", Json(o.placement.z));
  if (!o.placement.visible) j.set("visible", Json(false));
  if (o.draggable) j.set("draggable", Json(true));
  if (!o.sprite_spec.empty()) j.set("sprite", Json(o.sprite_spec));
  if (!o.description.empty()) j.set("description", Json(o.description));
  if (o.grants_item.valid()) j.set("grants_item", Json(o.grants_item.value));
  if (o.dialogue.valid()) j.set("dialogue", Json(o.dialogue.value));
  if (!o.properties.empty()) j.set("properties", o.properties.to_json());
  return out;
}

Result<InteractiveObject> object_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("object must be an object");
  InteractiveObject o;
  o.id = ObjectId{static_cast<u32>(json["id"].as_int())};
  if (!o.id.valid()) return corrupt_data("object id missing");
  o.name = json["name"].as_string();
  auto kind = object_kind_from_name(json["kind"].as_string());
  if (!kind.ok()) return kind.error();
  o.kind = kind.value();
  o.scenario = ScenarioId{static_cast<u32>(json["scenario"].as_int())};
  auto rect = rect_from_json(json["rect"]);
  if (!rect.ok()) return rect.error();
  o.placement.rect = rect.value();
  o.placement.first_frame = static_cast<int>(json["first_frame"].as_int(0));
  o.placement.frame_count = static_cast<int>(json["frame_count"].as_int(-1));
  o.placement.z = static_cast<i32>(json["z"].as_int(0));
  o.placement.visible = json["visible"].as_bool(true);
  o.draggable = json["draggable"].as_bool(false);
  o.sprite_spec = json["sprite"].as_string();
  if (!o.sprite_spec.empty()) {
    auto sprite = Sprite::from_spec(o.sprite_spec);
    if (!sprite.ok()) return sprite.error();
    o.sprite = std::move(sprite.value());
  }
  o.description = json["description"].as_string();
  o.grants_item = ItemId{static_cast<u32>(json["grants_item"].as_int())};
  o.dialogue = DialogueId{static_cast<u32>(json["dialogue"].as_int())};
  auto props = PropertyBag::from_json(json["properties"]);
  if (!props.ok()) return props.error();
  o.properties = std::move(props.value());
  return o;
}

Json project_to_json(const Project& project) {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("format_version", Json(kProjectFormatVersion));

  Json meta = Json::object();
  auto& m = meta.mutable_object();
  m.set("title", Json(project.meta.title));
  m.set("author", Json(project.meta.author));
  m.set("description", Json(project.meta.description));
  o.set("meta", std::move(meta));

  if (project.clip_spec) o.set("clip", clip_spec_to_json(*project.clip_spec));

  JsonArray segments;
  for (size_t i = 0; i < project.segments.size(); ++i) {
    Json sj = Json::object();
    auto& so = sj.mutable_object();
    so.set("id", Json(i < project.segment_ids.size()
                          ? project.segment_ids[i].value
                          : 0u));
    so.set("name", Json(project.segments[i].suggested_name));
    so.set("first_frame", Json(project.segments[i].first_frame));
    so.set("frame_count", Json(project.segments[i].frame_count));
    segments.push_back(std::move(sj));
  }
  o.set("segments", Json(std::move(segments)));

  JsonArray scenarios;
  for (const auto& s : project.graph.scenarios()) {
    Json sj = Json::object();
    auto& so = sj.mutable_object();
    so.set("id", Json(s.id.value));
    so.set("name", Json(s.name));
    so.set("segment", Json(s.segment.value));
    if (!s.description.empty()) so.set("description", Json(s.description));
    if (s.terminal) so.set("terminal", Json(true));
    scenarios.push_back(std::move(sj));
  }
  o.set("scenarios", Json(std::move(scenarios)));
  if (project.graph.start().valid()) {
    o.set("start_scenario", Json(project.graph.start().value));
  }

  JsonArray transitions;
  for (const auto& t : project.graph.transitions()) {
    Json tj = Json::object();
    auto& to = tj.mutable_object();
    to.set("from", Json(t.from.value));
    to.set("to", Json(t.to.value));
    to.set("label", Json(t.label));
    if (!t.guard_hint.empty()) to.set("guard_hint", Json(t.guard_hint));
    if (t.weight != 1.0) to.set("weight", Json(t.weight));
    transitions.push_back(std::move(tj));
  }
  o.set("transitions", Json(std::move(transitions)));

  JsonArray objects;
  for (const auto& obj : project.objects) objects.push_back(object_to_json(obj));
  o.set("objects", Json(std::move(objects)));

  JsonArray items;
  for (const auto& def : project.items.all()) {
    Json ij = Json::object();
    auto& io = ij.mutable_object();
    io.set("id", Json(def.id.value));
    io.set("name", Json(def.name));
    if (!def.description.empty()) io.set("description", Json(def.description));
    if (!def.icon.empty()) io.set("icon", Json(def.icon));
    if (def.stackable) io.set("stackable", Json(true));
    // max_stack is meaningful independently of stackable (an importer may
    // flip stackable later); write it whenever it differs from the default
    // so the field round-trips for every combination.
    if (def.max_stack != 1) io.set("max_stack", Json(def.max_stack));
    if (def.is_reward) io.set("is_reward", Json(true));
    if (def.bonus_points != 0) io.set("bonus_points", Json(def.bonus_points));
    items.push_back(std::move(ij));
  }
  o.set("items", Json(std::move(items)));

  JsonArray combines;
  for (const auto& c : project.combines.rules()) {
    Json cj = Json::object();
    auto& co = cj.mutable_object();
    co.set("a", Json(c.a.value));
    co.set("b", Json(c.b.value));
    co.set("result", Json(c.result.value));
    if (!c.consume_inputs) co.set("consume_inputs", Json(false));
    if (!c.description.empty()) co.set("description", Json(c.description));
    combines.push_back(std::move(cj));
  }
  o.set("combines", Json(std::move(combines)));

  JsonArray rules;
  for (const auto& r : project.rules) rules.push_back(rule_to_json(r));
  o.set("rules", Json(std::move(rules)));

  JsonArray dialogues;
  for (const auto& d : project.dialogues) dialogues.push_back(dialogue_to_json(d));
  o.set("dialogues", Json(std::move(dialogues)));

  if (!project.quizzes.empty()) {
    JsonArray quizzes;
    for (const auto& q : project.quizzes) quizzes.push_back(quiz_to_json(q));
    o.set("quizzes", Json(std::move(quizzes)));
  }

  return out;
}

std::string save_project_text(const Project& project) {
  return project_to_json(project).dump(2) + "\n";
}

Result<Project> project_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("project must be a JSON object");
  const int version = static_cast<int>(json["format_version"].as_int(1));
  if (version < 1 || version > kProjectFormatVersion) {
    return unsupported("project format version " + std::to_string(version));
  }

  Project p;
  p.meta.title = json["meta"]["title"].as_string();
  p.meta.author = json["meta"]["author"].as_string();
  p.meta.description = json["meta"]["description"].as_string();
  p.meta.format_version = version;

  if (!json["clip"].is_null()) {
    auto spec = clip_spec_from_json(json["clip"]);
    if (!spec.ok()) return spec.error();
    p.clip_spec = std::move(spec.value());
  }

  for (const auto& sj : json["segments"].as_array()) {
    VideoSegment seg;
    seg.suggested_name = sj["name"].as_string();
    seg.first_frame = static_cast<int>(sj["first_frame"].as_int());
    seg.frame_count = static_cast<int>(sj["frame_count"].as_int());
    const SegmentId id{static_cast<u32>(sj["id"].as_int())};
    if (!id.valid()) return corrupt_data("segment id missing");
    p.segments.push_back(std::move(seg));
    p.segment_ids.push_back(id);
    p.segment_id_alloc.reserve(id);
  }

  for (const auto& sj : json["scenarios"].as_array()) {
    Scenario s;
    s.id = ScenarioId{static_cast<u32>(sj["id"].as_int())};
    s.name = sj["name"].as_string();
    s.segment = SegmentId{static_cast<u32>(sj["segment"].as_int())};
    s.description = sj["description"].as_string();
    s.terminal = sj["terminal"].as_bool(false);
    p.scenario_ids.reserve(s.id);
    if (auto st = p.graph.add_scenario(std::move(s)); !st.ok()) {
      return st.error();
    }
  }
  const ScenarioId start{static_cast<u32>(json["start_scenario"].as_int())};
  if (start.valid()) {
    if (auto st = p.graph.set_start(start); !st.ok()) return st.error();
  }

  for (const auto& tj : json["transitions"].as_array()) {
    ScenarioTransition t;
    t.from = ScenarioId{static_cast<u32>(tj["from"].as_int())};
    t.to = ScenarioId{static_cast<u32>(tj["to"].as_int())};
    t.label = tj["label"].as_string();
    t.guard_hint = tj["guard_hint"].as_string();
    t.weight = tj["weight"].as_double(1.0);  // v1 migration: default weight
    if (auto st = p.graph.add_transition(std::move(t)); !st.ok()) {
      return st.error();
    }
  }

  for (const auto& oj : json["objects"].as_array()) {
    auto obj = object_from_json(oj);
    if (!obj.ok()) return obj.error();
    p.object_ids.reserve(obj.value().id);
    p.objects.push_back(std::move(obj.value()));
  }

  for (const auto& ij : json["items"].as_array()) {
    ItemDef def;
    def.id = ItemId{static_cast<u32>(ij["id"].as_int())};
    def.name = ij["name"].as_string();
    def.description = ij["description"].as_string();
    def.icon = ij["icon"].as_string();
    def.stackable = ij["stackable"].as_bool(false);
    def.max_stack = static_cast<int>(ij["max_stack"].as_int(1));
    def.is_reward = ij["is_reward"].as_bool(false);
    def.bonus_points = ij["bonus_points"].as_int(0);
    p.item_ids.reserve(def.id);
    if (auto st = p.items.add(std::move(def)); !st.ok()) return st.error();
  }

  for (const auto& cj : json["combines"].as_array()) {
    CombineRule c;
    c.a = ItemId{static_cast<u32>(cj["a"].as_int())};
    c.b = ItemId{static_cast<u32>(cj["b"].as_int())};
    c.result = ItemId{static_cast<u32>(cj["result"].as_int())};
    c.consume_inputs = cj["consume_inputs"].as_bool(true);
    c.description = cj["description"].as_string();
    p.combines.add(std::move(c));
  }

  for (const auto& rj : json["rules"].as_array()) {
    auto rule = rule_from_json(rj);
    if (!rule.ok()) return rule.error();
    p.rule_ids.reserve(rule.value().id);
    p.rules.push_back(std::move(rule.value()));
  }

  for (const auto& dj : json["dialogues"].as_array()) {
    auto dialogue = dialogue_from_json(dj);
    if (!dialogue.ok()) return dialogue.error();
    p.dialogue_ids.reserve(dialogue.value().id());
    p.dialogues.push_back(std::move(dialogue.value()));
  }

  for (const auto& qj : json["quizzes"].as_array()) {
    auto quiz = quiz_from_json(qj);
    if (!quiz.ok()) return quiz.error();
    p.quiz_ids.reserve(quiz.value().id());
    p.quizzes.push_back(std::move(quiz.value()));
  }

  return p;
}

Result<Project> load_project_text(const std::string& text) {
  auto json = Json::parse(text);
  if (!json.ok()) return json.error();
  return project_from_json(json.value());
}

}  // namespace vgbl
