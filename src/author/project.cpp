#include "author/project.hpp"

#include <unordered_set>

namespace vgbl {

const InteractiveObject* Project::find_object(ObjectId id) const {
  for (const auto& o : objects) {
    if (o.id == id) return &o;
  }
  return nullptr;
}

InteractiveObject* Project::find_object_mutable(ObjectId id) {
  for (auto& o : objects) {
    if (o.id == id) return &o;
  }
  return nullptr;
}

const InteractiveObject* Project::find_object_by_name(
    std::string_view name) const {
  for (const auto& o : objects) {
    if (o.name == name) return &o;
  }
  return nullptr;
}

std::vector<const InteractiveObject*> Project::objects_in(
    ScenarioId scenario) const {
  std::vector<const InteractiveObject*> out;
  for (const auto& o : objects) {
    if (o.scenario == scenario) out.push_back(&o);
  }
  return out;
}

const DialogueTree* Project::find_dialogue(DialogueId id) const {
  for (const auto& d : dialogues) {
    if (d.id() == id) return &d;
  }
  return nullptr;
}

const Quiz* Project::find_quiz(QuizId id) const {
  for (const auto& q : quizzes) {
    if (q.id() == id) return &q;
  }
  return nullptr;
}

const EventRule* Project::find_rule(RuleId id) const {
  for (const auto& r : rules) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

Size Project::frame_size() const {
  if (!clip_spec) return {};
  return {clip_spec->width, clip_spec->height};
}

namespace {

void check_condition_refs(const Condition& c, const Project& p,
                          const std::string& rule_name,
                          std::vector<LintIssue>& issues) {
  switch (c.op) {
    case ConditionOp::kHasItem:
    case ConditionOp::kItemCountAtLeast:
      if (!p.items.find(c.item)) {
        issues.push_back({LintLevel::kError,
                          "rule '" + rule_name + "' condition references missing item " +
                              std::to_string(c.item.value)});
      }
      break;
    case ConditionOp::kVisited:
      if (!p.graph.find(c.scenario)) {
        issues.push_back({LintLevel::kError,
                          "rule '" + rule_name +
                              "' condition references missing scenario " +
                              std::to_string(c.scenario.value)});
      }
      break;
    default:
      break;
  }
  for (const auto& child : c.children) {
    check_condition_refs(child, p, rule_name, issues);
  }
}

}  // namespace

std::vector<LintIssue> Project::lint() const {
  std::vector<LintIssue> issues;
  const auto err = [&](std::string m) {
    issues.push_back({LintLevel::kError, std::move(m)});
  };
  const auto warn = [&](std::string m) {
    issues.push_back({LintLevel::kWarning, std::move(m)});
  };

  // Graph structure. A game can end either by reaching a terminal scenario
  // or through an end_game rule action, so the "cannot end" graph finding
  // is downgraded when such a rule exists.
  bool has_end_game_rule = false;
  for (const auto& r : rules) {
    for (const auto& a : r.actions) {
      if (a.type == ActionType::kEndGame) has_end_game_rule = true;
    }
  }
  for (auto& m : graph.validate()) {
    if (has_end_game_rule &&
        m == "no terminal scenario is reachable: the game cannot end") {
      continue;
    }
    const bool dead_end_with_endgame =
        has_end_game_rule && m.find("dead end") != std::string::npos;
    issues.push_back({dead_end_with_endgame ? LintLevel::kWarning
                                            : LintLevel::kError,
                      std::move(m)});
  }

  // Scenario -> segment wiring.
  std::unordered_set<u32> segment_set;
  for (const auto sid : segment_ids) segment_set.insert(sid.value);
  for (const auto& s : graph.scenarios()) {
    if (!s.segment.valid()) {
      err("scenario '" + s.name + "' has no video segment assigned");
    } else if (!segment_set.count(s.segment.value)) {
      err("scenario '" + s.name + "' references missing segment " +
          std::to_string(s.segment.value));
    }
  }

  // Objects.
  const Size fs = frame_size();
  std::unordered_set<std::string> object_names;
  for (const auto& o : objects) {
    if (!graph.find(o.scenario)) {
      err("object '" + o.name + "' belongs to missing scenario " +
          std::to_string(o.scenario.value));
    }
    if (!object_names.insert(o.name).second) {
      warn("duplicate object name '" + o.name + "'");
    }
    if (fs.width > 0 &&
        o.placement.rect.intersection({0, 0, fs.width, fs.height}).empty()) {
      warn("object '" + o.name + "' is placed entirely off-frame");
    }
    if (o.kind == ObjectKind::kItem && !o.grants_item.valid()) {
      err("item object '" + o.name + "' grants no inventory item");
    }
    if (o.grants_item.valid() && !items.find(o.grants_item)) {
      err("object '" + o.name + "' grants missing item " +
          std::to_string(o.grants_item.value));
    }
    if (o.kind == ObjectKind::kNpc && !o.dialogue.valid()) {
      warn("NPC '" + o.name + "' has no dialogue attached");
    }
    if (o.dialogue.valid() && !find_dialogue(o.dialogue)) {
      err("object '" + o.name + "' references missing dialogue " +
          std::to_string(o.dialogue.value));
    }
  }

  // Rules.
  for (const auto& r : rules) {
    if (r.trigger.object.valid() && !find_object(r.trigger.object)) {
      err("rule '" + r.name + "' trigger references missing object " +
          std::to_string(r.trigger.object.value));
    }
    if (r.trigger.scenario.valid() && !graph.find(r.trigger.scenario)) {
      err("rule '" + r.name + "' trigger references missing scenario " +
          std::to_string(r.trigger.scenario.value));
    }
    if (r.trigger.item.valid() && !items.find(r.trigger.item)) {
      err("rule '" + r.name + "' trigger references missing item " +
          std::to_string(r.trigger.item.value));
    }
    check_condition_refs(r.condition, *this, r.name, issues);
    if (r.condition.node_count() > 256) {
      warn("rule '" + r.name + "' condition is very large (" +
           std::to_string(r.condition.node_count()) + " nodes)");
    }
    if (r.actions.empty()) {
      warn("rule '" + r.name + "' has no actions");
    }
    for (const auto& a : r.actions) {
      switch (a.type) {
        case ActionType::kSwitchScenario:
          if (!graph.find(a.scenario)) {
            err("rule '" + r.name + "' switches to missing scenario " +
                std::to_string(a.scenario.value));
          }
          break;
        case ActionType::kGiveItem:
        case ActionType::kRemoveItem:
          if (!items.find(a.item)) {
            err("rule '" + r.name + "' moves missing item " +
                std::to_string(a.item.value));
          }
          break;
        case ActionType::kGrantReward: {
          const ItemDef* def = items.find(a.item);
          if (!def) {
            err("rule '" + r.name + "' grants missing reward item " +
                std::to_string(a.item.value));
          } else if (!def->is_reward) {
            warn("rule '" + r.name + "' grants item '" + def->name +
                 "' as a reward but it is not marked is_reward");
          }
          break;
        }
        case ActionType::kStartDialogue:
          if (!find_dialogue(a.dialogue)) {
            err("rule '" + r.name + "' starts missing dialogue " +
                std::to_string(a.dialogue.value));
          }
          break;
        case ActionType::kStartQuiz:
          if (!find_quiz(a.quiz)) {
            err("rule '" + r.name + "' starts missing quiz " +
                std::to_string(a.quiz.value));
          }
          break;
        case ActionType::kRevealObject:
        case ActionType::kHideObject:
          if (!find_object(a.object)) {
            err("rule '" + r.name + "' toggles missing object " +
                std::to_string(a.object.value));
          }
          break;
        default:
          break;
      }
    }
  }

  // Dialogues.
  for (const auto& d : dialogues) {
    for (auto& m : d.validate()) {
      issues.push_back({LintLevel::kError, std::move(m)});
    }
  }

  // Quizzes.
  for (const auto& q : quizzes) {
    for (auto& m : q.validate()) {
      issues.push_back({LintLevel::kError, std::move(m)});
    }
  }

  // Items: warn when an item gates a condition but nothing grants it.
  std::unordered_set<u32> grantable;
  for (const auto& o : objects) {
    if (o.grants_item.valid()) grantable.insert(o.grants_item.value);
  }
  for (const auto& r : rules) {
    for (const auto& a : r.actions) {
      if (a.type == ActionType::kGiveItem || a.type == ActionType::kGrantReward) {
        grantable.insert(a.item.value);
      }
    }
  }
  for (const auto& rule : combines.rules()) {
    grantable.insert(rule.result.value);
  }
  for (const auto& def : items.all()) {
    if (!grantable.count(def.id.value)) {
      warn("item '" + def.name + "' can never be obtained");
    }
  }

  // Combine rules reference existing items.
  for (const auto& c : combines.rules()) {
    for (ItemId id : {c.a, c.b, c.result}) {
      if (!items.find(id)) {
        err("combine rule '" + c.description + "' references missing item " +
            std::to_string(id.value));
      }
    }
  }

  return issues;
}

bool Project::bundleable() const {
  for (const auto& issue : lint()) {
    if (issue.level == LintLevel::kError) return false;
  }
  return true;
}

}  // namespace vgbl
