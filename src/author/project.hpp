// The authoring-time project model: everything a course designer creates
// with the authoring tool (paper §4) before it is packed into a playable
// bundle — scenario graph, interactive objects, items, combine rules,
// event rules, dialogues, and the video source recipe.
//
// The video is stored as a *recipe* (ClipSpec) plus segmentation results,
// not as pixels: the text project format stays small and diffable, and the
// synthetic generator reproduces identical frames from the recipe (our
// stand-in for the paper's video files on disk; see DESIGN.md §2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dialogue/dialogue.hpp"
#include "dialogue/quiz.hpp"
#include "event/rule.hpp"
#include "inventory/inventory.hpp"
#include "object/interactive_object.hpp"
#include "scenario/scenario_graph.hpp"
#include "util/types.hpp"
#include "video/scene_detect.hpp"
#include "video/synthetic.hpp"

namespace vgbl {

inline constexpr int kProjectFormatVersion = 2;

struct ProjectMeta {
  std::string title;
  std::string author;
  std::string description;
  int format_version = kProjectFormatVersion;
};

/// Severity for lint findings.
enum class LintLevel { kWarning, kError };

struct LintIssue {
  LintLevel level = LintLevel::kError;
  std::string message;
};

class Project {
 public:
  ProjectMeta meta;

  // --- Video source -------------------------------------------------------
  /// The imported clip recipe; segments index into the clip it generates.
  std::optional<ClipSpec> clip_spec;
  std::vector<VideoSegment> segments;   // authoring-time segmentation
  /// Segment id assignment (parallel to `segments`).
  std::vector<SegmentId> segment_ids;

  // --- Game structure -----------------------------------------------------
  ScenarioGraph graph;
  std::vector<InteractiveObject> objects;
  ItemCatalog items;
  CombineTable combines;
  std::vector<EventRule> rules;
  std::vector<DialogueTree> dialogues;
  std::vector<Quiz> quizzes;

  // --- Id allocation ------------------------------------------------------
  IdAllocator<ScenarioId> scenario_ids;
  IdAllocator<ObjectId> object_ids;
  IdAllocator<ItemId> item_ids;
  IdAllocator<RuleId> rule_ids;
  IdAllocator<DialogueId> dialogue_ids;
  IdAllocator<QuizId> quiz_ids;
  IdAllocator<SegmentId> segment_id_alloc;

  // --- Object accessors ---------------------------------------------------
  [[nodiscard]] const InteractiveObject* find_object(ObjectId id) const;
  [[nodiscard]] InteractiveObject* find_object_mutable(ObjectId id);
  [[nodiscard]] const InteractiveObject* find_object_by_name(
      std::string_view name) const;
  [[nodiscard]] std::vector<const InteractiveObject*> objects_in(
      ScenarioId scenario) const;

  [[nodiscard]] const DialogueTree* find_dialogue(DialogueId id) const;
  [[nodiscard]] const Quiz* find_quiz(QuizId id) const;
  [[nodiscard]] const EventRule* find_rule(RuleId id) const;

  /// Frame dimensions of the project's video (0x0 before import).
  [[nodiscard]] Size frame_size() const;

  /// Cross-module consistency lint — the authoring tool's "check project"
  /// button. Errors make the project unbundleable; warnings do not.
  [[nodiscard]] std::vector<LintIssue> lint() const;

  /// True when lint() reports no errors (warnings allowed).
  [[nodiscard]] bool bundleable() const;
};

}  // namespace vgbl
