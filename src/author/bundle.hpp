// Game bundles: the runtime-loadable artifact the authoring tool produces.
// A bundle packs the encoded video container together with the compiled
// game data (graph, objects, rules, items, dialogues) into one CRC-guarded
// binary blob — the file a teacher would hand to students.
#pragma once

#include <memory>

#include "author/project.hpp"
#include "util/bytes.hpp"
#include "video/container.hpp"

namespace vgbl {

/// Everything the runtime needs to play a game. Produced by `load_bundle`
/// (or assembled directly by tests).
struct GameBundle {
  ProjectMeta meta;
  ScenarioGraph graph;
  std::vector<InteractiveObject> objects;
  ItemCatalog items;
  CombineTable combines;
  std::vector<EventRule> rules;
  std::vector<DialogueTree> dialogues;
  std::vector<Quiz> quizzes;
  std::shared_ptr<VideoContainer> video;

  [[nodiscard]] const InteractiveObject* find_object(ObjectId id) const {
    for (const auto& o : objects) {
      if (o.id == id) return &o;
    }
    return nullptr;
  }
  [[nodiscard]] const DialogueTree* find_dialogue(DialogueId id) const {
    for (const auto& d : dialogues) {
      if (d.id() == id) return &d;
    }
    return nullptr;
  }
  [[nodiscard]] const Quiz* find_quiz(QuizId id) const {
    for (const auto& q : quizzes) {
      if (q.id() == id) return &q;
    }
    return nullptr;
  }
};

struct BundleOptions {
  CodecConfig codec;  // how the clip is encoded into the bundle
};

/// Renders the project's clip, encodes it (keyframes forced at segment
/// starts so every scenario is instantly seekable), muxes the container
/// and serialises the game data. Fails if the project lint has errors.
[[nodiscard]] Result<Bytes> build_bundle(const Project& project, const BundleOptions& options);
inline Result<Bytes> build_bundle(const Project& project) {
  return build_bundle(project, BundleOptions{});
}

/// Parses and validates a bundle produced by `build_bundle`.
[[nodiscard]] Result<GameBundle> load_bundle(Bytes data);

/// Convenience: build then immediately load (authoring-tool "preview").
[[nodiscard]] Result<GameBundle> build_and_load(const Project& project,
                                  const BundleOptions& options);
inline Result<GameBundle> build_and_load(const Project& project) {
  return build_and_load(project, BundleOptions{});
}

}  // namespace vgbl
