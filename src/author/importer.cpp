#include "author/importer.hpp"

namespace vgbl {

Result<ImportReport> import_clip(Project& project, ClipSpec spec,
                                 const ImportOptions& options) {
  if (spec.scenes.empty()) {
    return invalid_argument("clip spec has no scenes");
  }
  if (spec.width < 16 || spec.height < 16) {
    return invalid_argument("clip dimensions too small");
  }
  if (!project.graph.empty() && !options.create_scenarios) {
    return failed_precondition(
        "project already has scenarios; re-import requires create_scenarios");
  }

  const Clip clip = generate_clip(spec);
  std::vector<VideoSegment> segments =
      segment_scenarios(clip.frames, options.segmentation);
  if (segments.empty()) {
    return internal_error("segmentation produced no segments");
  }

  project.clip_spec = std::move(spec);
  project.segments = segments;
  project.segment_ids.clear();
  for (size_t i = 0; i < segments.size(); ++i) {
    project.segment_ids.push_back(project.segment_id_alloc.next());
  }

  ImportReport report;
  report.frame_count = static_cast<int>(clip.frames.size());
  report.cut_count = static_cast<int>(segments.size()) - 1;
  report.segment_count = static_cast<int>(segments.size());

  if (options.create_scenarios) {
    for (size_t i = 0; i < segments.size(); ++i) {
      // Prefer the ground-truth scene name of the segment's first frame as
      // the scenario name when available — it matches what the designer
      // filmed; fall back to the detector's suggested name.
      std::string name = segments[i].suggested_name;
      const size_t frame = static_cast<size_t>(segments[i].first_frame);
      if (frame < clip.scene_of_frame.size() &&
          !clip.scene_of_frame[frame].empty()) {
        name = clip.scene_of_frame[frame];
      }
      // Disambiguate collisions (two segments may come from one scene).
      if (project.graph.find_by_name(name)) {
        name += "_" + std::to_string(i);
      }
      Scenario s;
      s.id = project.scenario_ids.next();
      s.name = name;
      s.segment = project.segment_ids[i];
      if (auto st = project.graph.add_scenario(std::move(s)); !st.ok()) {
        return st.error();
      }
      report.scenario_names.push_back(name);
    }
    if (!project.graph.scenarios().empty()) {
      (void)project.graph.set_start(project.graph.scenarios().front().id);
    }
  }
  return report;
}

Result<Clip> render_project_clip(const Project& project) {
  if (!project.clip_spec) {
    return failed_precondition("project has no imported video");
  }
  return generate_clip(*project.clip_spec);
}

}  // namespace vgbl
