#include "author/editor.hpp"

#include <algorithm>

namespace vgbl {

Status Editor::execute(Command command) {
  if (auto st = command.apply(); !st.ok()) return st;
  undo_.push_back(std::move(command));
  redo_.clear();
  return {};
}

Status Editor::undo() {
  if (undo_.empty()) return failed_precondition("nothing to undo");
  Command cmd = std::move(undo_.back());
  undo_.pop_back();
  cmd.revert();
  redo_.push_back(std::move(cmd));
  return {};
}

Status Editor::redo() {
  if (redo_.empty()) return failed_precondition("nothing to redo");
  Command cmd = std::move(redo_.back());
  redo_.pop_back();
  if (auto st = cmd.apply(); !st.ok()) {
    // Redo of a previously valid command cannot fail against the same
    // state; if it does, drop it rather than corrupt the history.
    return st;
  }
  undo_.push_back(std::move(cmd));
  return {};
}

std::vector<std::string> Editor::history() const {
  std::vector<std::string> out;
  out.reserve(undo_.size());
  for (const auto& c : undo_) out.push_back(c.description);
  return out;
}

// --- Scenario editor ---------------------------------------------------------

Result<ScenarioId> Editor::add_scenario(std::string name, SegmentId segment) {
  const ScenarioId id = project_->scenario_ids.next();
  Project* p = project_;
  Scenario scenario{id, std::move(name), segment, "", false};
  auto st = execute({"add scenario '" + scenario.name + "'",
                     [p, scenario] { return p->graph.add_scenario(scenario); },
                     [p, id] { (void)p->graph.remove_scenario(id); }});
  if (!st.ok()) return st.error();
  return id;
}

Status Editor::remove_scenario(ScenarioId id) {
  Project* p = project_;
  const Scenario* s = p->graph.find(id);
  if (!s) return not_found("scenario " + std::to_string(id.value));

  // Snapshot everything the removal destroys.
  Scenario snapshot = *s;
  std::vector<ScenarioTransition> lost_transitions;
  for (const auto& t : p->graph.transitions()) {
    if (t.from == id || t.to == id) lost_transitions.push_back(t);
  }
  const ScenarioId old_start = p->graph.start();

  return execute(
      {"remove scenario '" + snapshot.name + "'",
       [p, id] { return p->graph.remove_scenario(id); },
       [p, snapshot, lost_transitions, old_start] {
         (void)p->graph.add_scenario(snapshot);
         for (const auto& t : lost_transitions) {
           (void)p->graph.add_transition(t);
         }
         if (old_start == snapshot.id) (void)p->graph.set_start(old_start);
       }});
}

Status Editor::rename_scenario(ScenarioId id, std::string new_name) {
  Project* p = project_;
  const Scenario* s = p->graph.find(id);
  if (!s) return not_found("scenario " + std::to_string(id.value));
  if (new_name.empty()) return invalid_argument("scenario name must not be empty");
  const std::string old_name = s->name;
  return execute({"rename scenario '" + old_name + "' -> '" + new_name + "'",
                  [p, id, new_name]() -> Status {
                    p->graph.find_mutable(id)->name = new_name;
                    return {};
                  },
                  [p, id, old_name] {
                    p->graph.find_mutable(id)->name = old_name;
                  }});
}

Status Editor::set_start_scenario(ScenarioId id) {
  Project* p = project_;
  const ScenarioId old_start = p->graph.start();
  return execute({"set start scenario " + std::to_string(id.value),
                  [p, id] { return p->graph.set_start(id); },
                  [p, old_start] {
                    if (old_start.valid()) (void)p->graph.set_start(old_start);
                  }});
}

Status Editor::set_terminal(ScenarioId id, bool terminal) {
  Project* p = project_;
  const Scenario* s = p->graph.find(id);
  if (!s) return not_found("scenario " + std::to_string(id.value));
  const bool old_terminal = s->terminal;
  return execute({"set terminal=" + std::to_string(terminal),
                  [p, id, terminal]() -> Status {
                    p->graph.find_mutable(id)->terminal = terminal;
                    return {};
                  },
                  [p, id, old_terminal] {
                    p->graph.find_mutable(id)->terminal = old_terminal;
                  }});
}

Status Editor::add_transition(ScenarioTransition transition) {
  Project* p = project_;
  return execute({"add transition '" + transition.label + "'",
                  [p, transition] { return p->graph.add_transition(transition); },
                  [p, transition] {
                    (void)p->graph.remove_transition(transition.from,
                                                     transition.to,
                                                     transition.label);
                  }});
}

Status Editor::remove_transition(ScenarioId from, ScenarioId to,
                                 std::string label) {
  Project* p = project_;
  const ScenarioTransition* found = nullptr;
  for (const auto& t : p->graph.transitions()) {
    if (t.from == from && t.to == to && t.label == label) {
      found = &t;
      break;
    }
  }
  if (!found) return not_found("transition '" + label + "'");
  ScenarioTransition snapshot = *found;
  return execute({"remove transition '" + label + "'",
                  [p, from, to, label] {
                    return p->graph.remove_transition(from, to, label);
                  },
                  [p, snapshot] { (void)p->graph.add_transition(snapshot); }});
}

// --- Object editor -----------------------------------------------------------

Result<ObjectId> Editor::place_object(InteractiveObject proto) {
  Project* p = project_;
  if (proto.name.empty()) return invalid_argument("object name must not be empty");
  if (!p->graph.find(proto.scenario)) {
    return not_found("scenario " + std::to_string(proto.scenario.value));
  }
  proto.id = p->object_ids.next();
  if (proto.sprite.empty() && !proto.sprite_spec.empty()) {
    auto sprite = Sprite::from_spec(proto.sprite_spec);
    if (!sprite.ok()) return sprite.error();
    proto.sprite = std::move(sprite.value());
  }
  const ObjectId id = proto.id;
  auto st = execute({"place object '" + proto.name + "'",
                     [p, proto]() -> Status {
                       p->objects.push_back(proto);
                       return {};
                     },
                     [p, id] {
                       std::erase_if(p->objects, [id](const InteractiveObject& o) {
                         return o.id == id;
                       });
                     }});
  if (!st.ok()) return st.error();
  return id;
}

Status Editor::remove_object(ObjectId id) {
  Project* p = project_;
  const InteractiveObject* o = p->find_object(id);
  if (!o) return not_found("object " + std::to_string(id.value));
  InteractiveObject snapshot = *o;
  return execute({"remove object '" + snapshot.name + "'",
                  [p, id]() -> Status {
                    std::erase_if(p->objects, [id](const InteractiveObject& obj) {
                      return obj.id == id;
                    });
                    return {};
                  },
                  [p, snapshot] { p->objects.push_back(snapshot); }});
}

Status Editor::move_object(ObjectId id, Point new_origin) {
  Project* p = project_;
  const InteractiveObject* o = p->find_object(id);
  if (!o) return not_found("object " + std::to_string(id.value));
  const Point old_origin = o->placement.rect.origin();
  return execute({"move object '" + o->name + "'",
                  [p, id, new_origin]() -> Status {
                    auto* obj = p->find_object_mutable(id);
                    obj->placement.rect.x = new_origin.x;
                    obj->placement.rect.y = new_origin.y;
                    return {};
                  },
                  [p, id, old_origin] {
                    auto* obj = p->find_object_mutable(id);
                    obj->placement.rect.x = old_origin.x;
                    obj->placement.rect.y = old_origin.y;
                  }});
}

Status Editor::resize_object(ObjectId id, Size new_size) {
  Project* p = project_;
  const InteractiveObject* o = p->find_object(id);
  if (!o) return not_found("object " + std::to_string(id.value));
  if (new_size.empty()) return invalid_argument("object size must be positive");
  const Size old_size = o->placement.rect.size();
  return execute({"resize object '" + o->name + "'",
                  [p, id, new_size]() -> Status {
                    auto* obj = p->find_object_mutable(id);
                    obj->placement.rect.width = new_size.width;
                    obj->placement.rect.height = new_size.height;
                    return {};
                  },
                  [p, id, old_size] {
                    auto* obj = p->find_object_mutable(id);
                    obj->placement.rect.width = old_size.width;
                    obj->placement.rect.height = old_size.height;
                  }});
}

Status Editor::set_object_property(ObjectId id, std::string key,
                                   PropertyValue value) {
  Project* p = project_;
  const InteractiveObject* o = p->find_object(id);
  if (!o) return not_found("object " + std::to_string(id.value));
  const auto old_value = o->properties.get(key);
  return execute({"set property '" + key + "' on '" + o->name + "'",
                  [p, id, key, value]() -> Status {
                    p->find_object_mutable(id)->properties.set(key, value);
                    return {};
                  },
                  [p, id, key, old_value] {
                    auto* obj = p->find_object_mutable(id);
                    if (old_value) {
                      obj->properties.set(key, *old_value);
                    } else {
                      obj->properties.remove(key);
                    }
                  }});
}

Status Editor::set_object_sprite(ObjectId id, std::string spec) {
  Project* p = project_;
  const InteractiveObject* o = p->find_object(id);
  if (!o) return not_found("object " + std::to_string(id.value));
  auto sprite = Sprite::from_spec(spec);
  if (!sprite.ok()) return sprite.error();
  const std::string old_spec = o->sprite_spec;
  const Sprite old_sprite = o->sprite;
  Sprite new_sprite = std::move(sprite.value());
  return execute({"set sprite on '" + o->name + "'",
                  [p, id, spec, new_sprite]() -> Status {
                    auto* obj = p->find_object_mutable(id);
                    obj->sprite_spec = spec;
                    obj->sprite = new_sprite;
                    return {};
                  },
                  [p, id, old_spec, old_sprite] {
                    auto* obj = p->find_object_mutable(id);
                    obj->sprite_spec = old_spec;
                    obj->sprite = old_sprite;
                  }});
}

Status Editor::set_object_description(ObjectId id, std::string description) {
  Project* p = project_;
  const InteractiveObject* o = p->find_object(id);
  if (!o) return not_found("object " + std::to_string(id.value));
  const std::string old_description = o->description;
  return execute({"set description on '" + o->name + "'",
                  [p, id, description]() -> Status {
                    p->find_object_mutable(id)->description = description;
                    return {};
                  },
                  [p, id, old_description] {
                    p->find_object_mutable(id)->description = old_description;
                  }});
}

Status Editor::set_object_visible(ObjectId id, bool visible) {
  Project* p = project_;
  const InteractiveObject* o = p->find_object(id);
  if (!o) return not_found("object " + std::to_string(id.value));
  const bool old_visible = o->placement.visible;
  return execute({"set visible=" + std::to_string(visible),
                  [p, id, visible]() -> Status {
                    p->find_object_mutable(id)->placement.visible = visible;
                    return {};
                  },
                  [p, id, old_visible] {
                    p->find_object_mutable(id)->placement.visible = old_visible;
                  }});
}

// --- Items / rules / dialogues -------------------------------------------------

Result<ItemId> Editor::add_item(ItemDef proto) {
  Project* p = project_;
  proto.id = p->item_ids.next();
  const ItemId id = proto.id;
  auto st = execute({"add item '" + proto.name + "'",
                     [p, proto] { return p->items.add(proto); },
                     [p, id] {
                       // ItemCatalog has no remove; rebuild without the item.
                       ItemCatalog rebuilt;
                       for (const auto& def : p->items.all()) {
                         if (def.id != id) (void)rebuilt.add(def);
                       }
                       p->items = std::move(rebuilt);
                     }});
  if (!st.ok()) return st.error();
  return id;
}

Result<RuleId> Editor::add_rule(EventRule proto) {
  Project* p = project_;
  proto.id = p->rule_ids.next();
  const RuleId id = proto.id;
  auto st = execute({"add rule '" + proto.name + "'",
                     [p, proto]() -> Status {
                       p->rules.push_back(proto);
                       return {};
                     },
                     [p, id] {
                       std::erase_if(p->rules, [id](const EventRule& r) {
                         return r.id == id;
                       });
                     }});
  if (!st.ok()) return st.error();
  return id;
}

Status Editor::remove_rule(RuleId id) {
  Project* p = project_;
  const EventRule* r = p->find_rule(id);
  if (!r) return not_found("rule " + std::to_string(id.value));
  EventRule snapshot = *r;
  return execute({"remove rule '" + snapshot.name + "'",
                  [p, id]() -> Status {
                    std::erase_if(p->rules,
                                  [id](const EventRule& e) { return e.id == id; });
                    return {};
                  },
                  [p, snapshot] { p->rules.push_back(snapshot); }});
}

Result<DialogueId> Editor::add_dialogue(DialogueTree tree) {
  Project* p = project_;
  const DialogueId id = p->dialogue_ids.next();
  DialogueTree named(id, tree.name());
  for (const auto& n : tree.nodes()) (void)named.add_node(n);
  if (tree.entry() != kEndDialogue) (void)named.set_entry(tree.entry());
  auto st = execute({"add dialogue '" + tree.name() + "'",
                     [p, named]() -> Status {
                       p->dialogues.push_back(named);
                       return {};
                     },
                     [p, id] {
                       std::erase_if(p->dialogues, [id](const DialogueTree& d) {
                         return d.id() == id;
                       });
                     }});
  if (!st.ok()) return st.error();
  return id;
}

Result<QuizId> Editor::add_quiz(Quiz quiz) {
  Project* p = project_;
  const QuizId id = p->quiz_ids.next();
  Quiz named(id, quiz.name());
  named.set_pass_fraction(quiz.pass_fraction());
  for (const auto& q : quiz.questions()) named.add_question(q);
  auto st = execute({"add quiz '" + quiz.name() + "'",
                     [p, named]() -> Status {
                       p->quizzes.push_back(named);
                       return {};
                     },
                     [p, id] {
                       std::erase_if(p->quizzes,
                                     [id](const Quiz& q) { return q.id() == id; });
                     }});
  if (!st.ok()) return st.error();
  return id;
}

Status Editor::add_combine_rule(CombineRule rule) {
  Project* p = project_;
  const size_t index = p->combines.rules().size();
  return execute({"add combine rule '" + rule.description + "'",
                  [p, rule]() -> Status {
                    p->combines.add(rule);
                    return {};
                  },
                  [p, index] {
                    CombineTable rebuilt;
                    const auto& rules = p->combines.rules();
                    for (size_t i = 0; i < rules.size(); ++i) {
                      if (i != index) rebuilt.add(rules[i]);
                    }
                    p->combines = std::move(rebuilt);
                  }});
}

}  // namespace vgbl
