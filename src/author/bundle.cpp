#include "author/bundle.hpp"

#include <algorithm>

#include "author/importer.hpp"
#include "author/serialize.hpp"
#include "util/crc32.hpp"

namespace vgbl {
namespace {

constexpr char kBundleMagic[4] = {'V', 'G', 'B', '1'};
constexpr u16 kBundleVersion = 1;

}  // namespace

Result<Bytes> build_bundle(const Project& project,
                           const BundleOptions& options) {
  // Refuse to ship a broken game; warnings are allowed.
  for (const auto& issue : project.lint()) {
    if (issue.level == LintLevel::kError) {
      return failed_precondition("project has lint errors: " + issue.message);
    }
  }
  auto clip = render_project_clip(project);
  if (!clip.ok()) return clip.error();

  // Force keyframes at segment starts: scenario switches must never decode
  // across a segment boundary.
  std::vector<int> segment_starts;
  for (const auto& seg : project.segments) {
    segment_starts.push_back(seg.first_frame);
  }
  std::sort(segment_starts.begin(), segment_starts.end());

  auto stream = encode_stream(clip.value().frames, options.codec,
                              clip.value().fps, segment_starts);
  if (!stream.ok()) return stream.error();

  std::vector<ContainerSegment> segments;
  for (size_t i = 0; i < project.segments.size(); ++i) {
    ContainerSegment cs;
    cs.id = project.segment_ids[i];
    cs.name = project.segments[i].suggested_name;
    cs.first_frame = project.segments[i].first_frame;
    cs.frame_count = project.segments[i].frame_count;
    segments.push_back(std::move(cs));
  }
  const Bytes container =
      mux_container(stream.value(), segments, &clip.value().audio);

  const std::string game_json = project_to_json(project).dump(-1);

  ByteWriter w(container.size() + game_json.size() + 64);
  w.put_raw(kBundleMagic, 4);
  w.put_u16(kBundleVersion);
  w.put_u32(crc32(std::span<const u8>(
      reinterpret_cast<const u8*>(game_json.data()), game_json.size())));
  w.put_string(game_json);
  w.put_u32(crc32(container));
  w.put_blob(container);
  return std::move(w).take();
}

Result<GameBundle> load_bundle(Bytes data) {
  ByteReader r(data);
  auto magic = r.view(4);
  if (!magic.ok() ||
      !std::equal(magic.value().begin(), magic.value().end(),
                  reinterpret_cast<const u8*>(kBundleMagic))) {
    return corrupt_data("not a VGBL bundle (bad magic)");
  }
  auto version = r.u16_();
  if (!version.ok()) return version.error();
  if (version.value() != kBundleVersion) {
    return unsupported("bundle version " + std::to_string(version.value()));
  }
  auto json_crc = r.u32_();
  auto game_json = r.string();
  if (!json_crc.ok() || !game_json.ok()) {
    return corrupt_data("truncated bundle header");
  }
  if (crc32(std::span<const u8>(
          reinterpret_cast<const u8*>(game_json.value().data()),
          game_json.value().size())) != json_crc.value()) {
    return corrupt_data("bundle game data CRC mismatch");
  }
  auto container_crc = r.u32_();
  auto container_bytes = r.blob();
  if (!container_crc.ok() || !container_bytes.ok()) {
    return corrupt_data("truncated bundle video section");
  }
  if (crc32(container_bytes.value()) != container_crc.value()) {
    return corrupt_data("bundle video CRC mismatch");
  }

  auto project = load_project_text(game_json.value());
  if (!project.ok()) return project.error();
  auto container = VideoContainer::parse(std::move(container_bytes.value()));
  if (!container.ok()) return container.error();

  GameBundle bundle;
  Project& p = project.value();
  bundle.meta = std::move(p.meta);
  bundle.graph = std::move(p.graph);
  bundle.objects = std::move(p.objects);
  bundle.items = std::move(p.items);
  bundle.combines = std::move(p.combines);
  bundle.rules = std::move(p.rules);
  bundle.dialogues = std::move(p.dialogues);
  bundle.quizzes = std::move(p.quizzes);
  bundle.video = std::make_shared<VideoContainer>(std::move(container.value()));

  // Cross-check: every scenario's segment must exist in the container.
  for (const auto& s : bundle.graph.scenarios()) {
    if (!bundle.video->segment_by_id(s.segment)) {
      return corrupt_data("bundle scenario '" + s.name +
                          "' references segment missing from container");
    }
  }
  return bundle;
}

Result<GameBundle> build_and_load(const Project& project,
                                  const BundleOptions& options) {
  auto bytes = build_bundle(project, options);
  if (!bytes.ok()) return bytes.error();
  return load_bundle(std::move(bytes.value()));
}

}  // namespace vgbl
