// The authoring tool's editing surface: scenario editor (§4.1) + object
// editor (§4.2) operations over a Project, with full undo/redo. Every
// mutation goes through a Command so the tool can offer the edit history
// a GUI front-end would show.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "author/project.hpp"

namespace vgbl {

class Editor {
 public:
  explicit Editor(Project* project) : project_(project) {}

  // --- Scenario editor (paper §4.1) --------------------------------------
  /// Adds a scenario presenting `segment`; returns the new id.
  [[nodiscard]] Result<ScenarioId> add_scenario(std::string name, SegmentId segment);
  Status remove_scenario(ScenarioId id);
  Status rename_scenario(ScenarioId id, std::string new_name);
  Status set_start_scenario(ScenarioId id);
  Status set_terminal(ScenarioId id, bool terminal);
  Status add_transition(ScenarioTransition transition);
  Status remove_transition(ScenarioId from, ScenarioId to, std::string label);

  // --- Object editor (paper §4.2) -----------------------------------------
  /// Places `proto` (id field ignored; a fresh id is assigned). The sprite
  /// is built from proto.sprite_spec when the sprite itself is empty.
  [[nodiscard]] Result<ObjectId> place_object(InteractiveObject proto);
  Status remove_object(ObjectId id);
  Status move_object(ObjectId id, Point new_origin);
  Status resize_object(ObjectId id, Size new_size);
  Status set_object_property(ObjectId id, std::string key, PropertyValue value);
  Status set_object_sprite(ObjectId id, std::string spec);
  Status set_object_description(ObjectId id, std::string description);
  Status set_object_visible(ObjectId id, bool visible);

  // --- Items / rules / dialogues ------------------------------------------
  [[nodiscard]] Result<ItemId> add_item(ItemDef proto);
  [[nodiscard]] Result<RuleId> add_rule(EventRule proto);
  Status remove_rule(RuleId id);
  [[nodiscard]] Result<DialogueId> add_dialogue(DialogueTree tree);
  [[nodiscard]] Result<QuizId> add_quiz(Quiz quiz);
  Status add_combine_rule(CombineRule rule);

  // --- History --------------------------------------------------------------
  [[nodiscard]] bool can_undo() const { return !undo_.empty(); }
  [[nodiscard]] bool can_redo() const { return !redo_.empty(); }
  Status undo();
  Status redo();
  /// Human-readable descriptions of applied commands, oldest first.
  [[nodiscard]] std::vector<std::string> history() const;
  [[nodiscard]] size_t command_count() const { return undo_.size(); }

 private:
  struct Command {
    std::string description;
    std::function<Status()> apply;
    std::function<void()> revert;
  };

  /// Runs `command.apply`; on success records it for undo and clears the
  /// redo stack (standard linear-history semantics).
  Status execute(Command command);

  Project* project_;
  std::vector<Command> undo_;
  std::vector<Command> redo_;
};

}  // namespace vgbl
