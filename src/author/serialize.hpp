// Project (de)serialization: the human-readable `.vgbl` JSON format. The
// video is stored as its ClipSpec recipe; sprites as specs; everything else
// verbatim. Round-trips exactly (property-tested) and is versioned so old
// projects keep loading.
#pragma once

#include <string>

#include "author/project.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace vgbl {

/// Serialises the full project to a JSON document.
[[nodiscard]] Json project_to_json(const Project& project);

/// Text form (pretty-printed, VCS-diffable).
[[nodiscard]] std::string save_project_text(const Project& project);

/// Parses a project document; performs schema-version migration (v1
/// projects lack transition weights; they default to 1.0).
[[nodiscard]] Result<Project> project_from_json(const Json& json);
[[nodiscard]] Result<Project> load_project_text(const std::string& text);

// Entity-level helpers shared with the bundle writer (exposed for tests).
[[nodiscard]] Json condition_to_json(const Condition& c);
[[nodiscard]] Result<Condition> condition_from_json(const Json& json);
[[nodiscard]] Json action_to_json(const Action& a);
[[nodiscard]] Result<Action> action_from_json(const Json& json);
[[nodiscard]] Json trigger_to_json(const Trigger& t);
[[nodiscard]] Result<Trigger> trigger_from_json(const Json& json);
[[nodiscard]] Json rule_to_json(const EventRule& r);
[[nodiscard]] Result<EventRule> rule_from_json(const Json& json);
[[nodiscard]] Json dialogue_to_json(const DialogueTree& d);
[[nodiscard]] Result<DialogueTree> dialogue_from_json(const Json& json);
[[nodiscard]] Json quiz_to_json(const Quiz& q);
[[nodiscard]] Result<Quiz> quiz_from_json(const Json& json);
[[nodiscard]] Json object_to_json(const InteractiveObject& o);
[[nodiscard]] Result<InteractiveObject> object_from_json(const Json& json);
[[nodiscard]] Json clip_spec_to_json(const ClipSpec& spec);
[[nodiscard]] Result<ClipSpec> clip_spec_from_json(const Json& json);

}  // namespace vgbl
