#include "sim/district.hpp"

#include <algorithm>
#include <utility>

#include "core/classroom_engine.hpp"
#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/wall_clock.hpp"
#include "sim/classroom_des.hpp"
#include "sim/stream_actor.hpp"
#include "util/text.hpp"

namespace vgbl::sim {

namespace {

/// District-level metrics. Updated once per run, after the scheduler's
/// final barrier, on the calling thread — same observe-only discipline as
/// the classroom aggregation.
struct DistrictMetrics {
  obs::Counter& runs;
  obs::Gauge& students;
  obs::Gauge& students_per_sec;

  static DistrictMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static DistrictMetrics m{
        reg.counter("district_runs_total", "district simulations executed"),
        reg.gauge("district_students",
                  "students simulated by the latest district run"),
        reg.gauge("district_students_per_sec",
                  "student throughput of the latest district run")};
    return m;
  }
};

std::string hex64(u64 v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// Per-classroom durable + streaming state owned for the duration of the
/// run. Sessions and badge grants land in the classroom's own directory
/// shard, so classrooms never contend on files either.
struct ClassroomState {
  ClassroomOptions options;
  std::unique_ptr<SessionStore> session_store;
  std::unique_ptr<rewards::BadgeStore> badge_store;
  std::vector<std::optional<StudentResult>> results;
  std::unique_ptr<StreamServer> stream_server;
  std::unique_ptr<StreamActor> stream_actor;
};

StreamingConfig district_stream_config(const DistrictOptions& options) {
  StreamingConfig config = StreamReplayOptions::classroom_link_defaults();
  config.faults = FaultSchedule::profile(options.fault_profile);
  if (options.fault_profile == "iid2") {
    config.network.loss_rate = std::max(config.network.loss_rate, 0.02);
  }
  return config;
}

}  // namespace

int DistrictSummary::total_students() const {
  int n = 0;
  for (const auto& c : classrooms) {
    n += static_cast<int>(c.summary.students.size());
  }
  return n;
}

Result<DistrictSummary> run_district(std::shared_ptr<const GameBundle> bundle,
                                     const DistrictOptions& options) {
  if (options.classrooms < 1) {
    return invalid_argument("district needs at least one classroom");
  }
  if (options.students_per_classroom < 1) {
    return invalid_argument("district needs at least one student per room");
  }
  const i64 run_started_us = obs::wall_now_us();
  const int classrooms = options.classrooms;
  const int per_room = options.students_per_classroom;

  // Per-classroom state first, so every pointer handed to an actor is
  // stable for the whole run.
  std::vector<ClassroomState> rooms(static_cast<size_t>(classrooms));
  for (int c = 0; c < classrooms; ++c) {
    ClassroomState& room = rooms[static_cast<size_t>(c)];
    // The classroom seed is derived exactly like a student seed, one level
    // up the hierarchy — pure in (district seed, classroom id), so rooms
    // are independent of each other and of execution order.
    const u64 room_seed = classroom_student_seed(options.seed, c + 1);
    room.options.student_count = per_room;
    room.options.max_steps_per_student = options.max_steps_per_student;
    room.options.policies = options.policies;
    room.options.seed = room_seed;
    room.options.reward_rules = options.reward_rules;

    if (!options.persist_dir.empty()) {
      const std::string room_dir =
          options.persist_dir + "/classroom-" + std::to_string(c + 1);
      SessionStoreOptions store_options;
      store_options.directory = room_dir + "/sessions";
      store_options.session.reward_rules = options.reward_rules;
      // Store-opened sessions live as long as their student actor; keep
      // them poolless too or a persisted district would leak one decode
      // thread per live student.
      store_options.session.decode_threads = 0;
      room.session_store = std::make_unique<SessionStore>(store_options);
      room.options.store = room.session_store.get();

      auto badges =
          rewards::BadgeStore::open({.directory = room_dir + "/badges"});
      if (!badges.ok()) return badges.error();
      room.badge_store = std::move(badges.value());
      room.options.badge_store = room.badge_store.get();
    }
    room.results.resize(static_cast<size_t>(per_room));

    if (options.stream) {
      room.stream_server = std::make_unique<StreamServer>(
          bundle->video.get(), district_stream_config(options), room_seed);
      const int clients =
          options.stream_clients > 0 ? options.stream_clients : per_room;
      for (int i = 0; i < clients; ++i) {
        Rng rng(classroom_student_seed(room_seed, i + 1));
        room.stream_server->add_client(
            random_student_path(bundle->graph, options.stream_max_hops, rng));
      }
      room.stream_actor = std::make_unique<StreamActor>(
          room.stream_server.get(), options.stream_deadline);
    }
  }

  SchedulerOptions sched;
  sched.shards = options.shards > 0 ? static_cast<u32>(options.shards)
                                    : static_cast<u32>(classrooms);
  sched.worker_threads = options.worker_threads;
  sched.epoch_width = options.epoch_width;
  Scheduler scheduler(sched);

  // Whole classrooms pin to shards: students of one room share its stores,
  // so keeping the room on one shard keeps store access single-threaded
  // within an epoch while rooms run in parallel.
  std::vector<std::unique_ptr<StudentActor>> students;
  students.reserve(static_cast<size_t>(classrooms) *
                   static_cast<size_t>(per_room));
  for (int c = 0; c < classrooms; ++c) {
    ClassroomState& room = rooms[static_cast<size_t>(c)];
    const u32 shard = static_cast<u32>(c) % scheduler.shard_count();
    for (int i = 0; i < per_room; ++i) {
      students.push_back(std::make_unique<StudentActor>(
          bundle, room.options, i, &room.results[static_cast<size_t>(i)]));
      const ActorId id = scheduler.add_actor(students.back().get(), shard);
      scheduler.schedule(id, 0);
    }
    if (room.stream_actor != nullptr) {
      const ActorId id = scheduler.add_actor(room.stream_actor.get(), shard);
      scheduler.schedule(id, 0);
    }
  }

  DistrictSummary out;
  out.scheduler = scheduler.run();

  // Post-barrier aggregation, classroom by classroom in index order — the
  // district-level mirror of the classroom contract.
  for (int c = 0; c < classrooms; ++c) {
    ClassroomState& room = rooms[static_cast<size_t>(c)];
    DistrictClassroomResult result;
    result.summary = classroom_engine::aggregate_classroom_results(
        std::move(room.results), room.options, run_started_us);
    result.fingerprint = classroom_fingerprint(result.summary);
    if (room.stream_server != nullptr) {
      StreamReplaySummary stream;
      stream.end_time = room.stream_actor->finished()
                            ? room.stream_actor->end_time()
                            : options.stream_deadline;
      stream.aggregate = room.stream_server->aggregate();
      stream.arq = room.stream_server->arq_stats();
      stream.packets_sent = room.stream_server->network().stats().packets_sent;
      stream.packets_lost = room.stream_server->network().stats().packets_lost;
      result.stream = std::move(stream);
    }
    out.classrooms.push_back(std::move(result));
  }

  if (options.reward_rules != nullptr) {
    std::vector<rewards::LeaderboardRow> district_rows;
    for (int c = 0; c < classrooms; ++c) {
      const ClassroomSummary& summary =
          out.classrooms[static_cast<size_t>(c)].summary;
      for (const StudentResult& s : summary.students) {
        rewards::LeaderboardRow row;
        row.student_id = "c" + std::to_string(c + 1) + "/student-" +
                         std::to_string(s.student_id);
        row.badges = static_cast<int>(s.unlocks.size());
        row.badge_points = s.badge_points;
        row.score = s.score - s.badge_points;
        for (const auto& u : s.unlocks) row.badge_names.push_back(u.badge);
        district_rows.push_back(std::move(row));
      }
    }
    out.leaderboard = rewards::build_leaderboard(std::move(district_rows));
    rewards::export_leaderboard_metrics(out.leaderboard);
  }

  // Combined fingerprint: classroom fingerprints in order, then the
  // district leaderboard — the one artifact bench_district and the CLI
  // compare across shard counts and reruns.
  {
    u64 h = 14695981039346656037ULL;
    auto mix = [&h](u64 v) {
      for (int i = 0; i < 8; ++i) {
        h ^= static_cast<u8>(v >> (i * 8));
        h *= 1099511628211ULL;
      }
    };
    mix(out.classrooms.size());
    for (const auto& room : out.classrooms) mix(room.fingerprint);
    mix(out.leaderboard.rows.size());
    for (const auto& row : out.leaderboard.rows) {
      mix(static_cast<u64>(row.rank));
      mix(row.student_id.size());
      for (char ch : row.student_id) mix(static_cast<u8>(ch));
      mix(static_cast<u64>(row.badges));
      mix(static_cast<u64>(row.badge_points));
      mix(static_cast<u64>(row.score));
    }
    out.fingerprint = h;
  }

  out.wall_ms =
      static_cast<f64>(obs::wall_now_us() - run_started_us) / 1000.0;
  if (obs::enabled()) {
    DistrictMetrics& metrics = DistrictMetrics::get();
    VGBL_COUNT(metrics.runs);
    const int n = out.total_students();
    VGBL_GAUGE_SET(metrics.students, static_cast<f64>(n));
    VGBL_GAUGE_SET(metrics.students_per_sec,
                   out.wall_ms > 0 ? static_cast<f64>(n) / (out.wall_ms / 1000.0)
                                   : 0);
  }
  return out;
}

std::string DistrictSummary::report() const {
  std::string out;
  out += "=== District summary (" + std::to_string(classrooms.size()) +
         " classrooms, " + std::to_string(total_students()) +
         " students) ===\n";
  out += "timeline: " + std::to_string(scheduler.events) + " events in " +
         std::to_string(scheduler.epochs) + " epochs, " +
         std::to_string(scheduler.mails_delivered) +
         " cross-shard mails, peak queue depth " +
         std::to_string(scheduler.max_queue_depth) + "\n";
  out += "fingerprint: " + hex64(fingerprint) + "\n";
  out += pad_right("room", 6) + pad_right("students", 10) +
         pad_right("complete", 10) + pad_right("mean score", 12) +
         "fingerprint\n";
  for (size_t c = 0; c < classrooms.size(); ++c) {
    const auto& room = classrooms[c];
    out += pad_right("#" + std::to_string(c + 1), 6) +
           pad_right(std::to_string(room.summary.students.size()), 10) +
           pad_right(format_double(room.summary.completion_rate * 100, 1) + "%",
                     10) +
           pad_right(format_double(room.summary.mean_score, 1), 12) +
           hex64(room.fingerprint) + "\n";
    if (room.stream.has_value()) {
      out += "      streaming: " + room.stream->report();
    }
  }
  if (!leaderboard.rows.empty()) {
    out += "=== District leaderboard ===\n";
    out += leaderboard.report();
  }
  return out;
}

}  // namespace vgbl::sim
