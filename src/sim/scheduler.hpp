// Discrete-event simulation core (DESIGN.md §5i): one virtual timeline, a
// sharded priority event queue, and actors that advance by scheduling
// their own next firing. A simulated student is an event stream, not a
// thread — which is what lets a district workload hold 100k+ concurrent
// students in one process (ROADMAP: district-scale simulation).
//
// Determinism contract. Global execution order is the lexicographic key
// (time, shard, actor, seq): `time` is sim time, `shard` the event-queue
// shard, `actor` the scheduling actor, and `seq` a per-shard monotone
// counter that makes every key unique. Shards execute an epoch
// [t, t + epoch_width) in parallel with no cross-shard interaction;
// cross-actor messages (`Context::post`) are buffered per shard and merged
// at the epoch barrier in (delivery time, sender, sender-seq) order, so
// delivery order — and therefore every downstream bit — is invariant
// across shard and worker-thread counts for a fixed epoch width. Within a
// shard, self-scheduled events are totally ordered by the key alone.
#pragma once

#include <memory>
#include <queue>
#include <tuple>
#include <vector>

#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {
class ThreadPool;
}  // namespace vgbl

namespace vgbl::sim {

using ActorId = u32;
inline constexpr ActorId kInvalidActor = ~0u;

/// One scheduled firing, keyed (time, shard, actor, seq).
struct Event {
  MicroTime time = 0;
  u32 shard = 0;
  ActorId actor = kInvalidActor;
  u64 seq = 0;
  /// Actor-defined discriminator for multi-stream actors.
  u64 tag = 0;
};

/// Min-heap ordering over the (time, shard, actor, seq) key.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    return std::tie(b.time, b.shard, b.actor, b.seq) <
           std::tie(a.time, a.shard, a.actor, a.seq);
  }
};

class Scheduler;

/// What an actor sees while one of its events fires. Scheduling through
/// the context touches only the firing shard's own queue/outbox, so no
/// locking exists anywhere on the hot path.
class Context {
 public:
  [[nodiscard]] MicroTime now() const { return event_->time; }
  [[nodiscard]] u64 tag() const { return event_->tag; }
  [[nodiscard]] ActorId self() const { return event_->actor; }

  /// Schedules this actor's next firing at sim time `at` (clamped to now —
  /// the timeline never runs backwards) on its own shard.
  void schedule(MicroTime at, u64 tag = 0);

  /// Posts a message-event to another actor (any shard). Delivery is
  /// deferred to the epoch barrier and happens at
  /// max(at, end of the posting epoch), merged across shards in
  /// (delivery time, sender, sender-seq) order — the cross-shard
  /// determinism contract. Same-shard posts take the identical path so
  /// results cannot depend on the actor-to-shard mapping.
  void post(ActorId to, MicroTime at, u64 tag = 0);

 private:
  friend class Scheduler;
  Scheduler* scheduler_ = nullptr;
  const Event* event_ = nullptr;
  u32 shard_ = 0;
};

/// An event-driven participant in the timeline. Actors own their state and
/// must touch nothing shared during on_event — cross-actor communication
/// goes through Context::post.
class Actor {
 public:
  virtual ~Actor() = default;
  virtual void on_event(Context& ctx) = 0;
};

struct SchedulerOptions {
  /// Event-queue shards (>= 1). Results are bit-identical across any
  /// shard count; more shards expose more parallelism.
  u32 shards = 1;
  /// Worker threads running shards concurrently. 0 runs every shard on
  /// the calling thread (still epoch-ordered, still the same bits).
  int worker_threads = 0;
  /// Parallel window width. Part of the cross-shard message contract:
  /// posts land at epoch boundaries, so changing the width can reorder
  /// mail delivery (shard and thread counts cannot).
  MicroTime epoch_width = milliseconds(100);
};

struct SchedulerStats {
  u64 events = 0;           ///< events executed
  u64 epochs = 0;           ///< parallel windows run
  u64 mails_delivered = 0;  ///< cross-actor messages merged at barriers
  u64 max_queue_depth = 0;  ///< peak pending events across shards
  MicroTime end_time = 0;   ///< time of the last executed event
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers an actor (not owned; must outlive run()). Round-robin
  /// shard placement unless `shard` pins one.
  ActorId add_actor(Actor* actor);
  ActorId add_actor(Actor* actor, u32 shard);

  [[nodiscard]] u32 shard_of(ActorId actor) const;
  [[nodiscard]] u32 shard_count() const;

  /// Seeds an actor's first firing before run(). (During run, actors
  /// schedule through their Context.)
  void schedule(ActorId actor, MicroTime at, u64 tag = 0);

  /// Drains the timeline: epochs of parallel shard execution separated by
  /// merge barriers, until no events remain. Obs gauges (queue depth,
  /// epoch width, events/sec) are updated only at barriers, on the
  /// coordinating thread.
  SchedulerStats run();

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

 private:
  friend class Context;

  /// A cross-actor message buffered until the epoch barrier.
  struct Mail {
    MicroTime at = 0;
    ActorId to = kInvalidActor;
    u64 tag = 0;
    ActorId from = kInvalidActor;
    u64 from_seq = 0;
  };

  struct Shard {
    std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
    u64 next_seq = 0;
    u64 mail_seq = 0;
    std::vector<Mail> outbox;
    u64 events_executed = 0;
    /// Sim time of this shard's last executed event (monotone within the
    /// shard; events pop in key order). Folded into stats at barriers.
    MicroTime last_event_time = 0;
  };

  void push_event(u32 shard, MicroTime at, ActorId actor, u64 tag);
  /// Executes one shard's events with time < epoch_end, in key order.
  void run_shard(u32 shard, MicroTime epoch_end);
  /// Merges all outboxes deterministically into destination shards.
  void deliver_mail(MicroTime epoch_end);
  [[nodiscard]] u64 pending_events() const;

  SchedulerOptions options_;
  std::vector<Shard> shards_;
  struct ActorRec {
    Actor* actor = nullptr;
    u32 shard = 0;
  };
  std::vector<ActorRec> actors_;
  std::unique_ptr<ThreadPool> pool_;
  SchedulerStats stats_;
};

}  // namespace vgbl::sim
