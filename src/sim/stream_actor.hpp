// Streaming delivery as a timeline actor (DESIGN.md §5i): a StreamServer's
// 2 ms delivery loop — SimulatedNetwork arrivals, client feedback, ARQ
// retransmission timers, playback deadlines — re-expressed as an event
// stream, so classroom gameplay and media delivery share one DES timeline
// instead of each owning a private clock loop. Because StreamServer::run()
// is itself step() in a kStepInterval loop, the actor-driven server is
// step-for-step identical to the blocking one.
#pragma once

#include "net/streaming.hpp"
#include "sim/scheduler.hpp"

namespace vgbl::sim {

class StreamActor : public Actor {
 public:
  /// `server` must outlive the scheduler run. The actor stops at the
  /// first step() where all clients finished, or at `deadline` — exactly
  /// StreamServer::run(deadline)'s exit conditions.
  StreamActor(StreamServer* server, MicroTime deadline)
      : server_(server), deadline_(deadline) {}

  void on_event(Context& ctx) override {
    if (done_) return;
    const MicroTime now = ctx.now();
    if (now >= deadline_ || server_->step(now)) {
      end_time_ = now;
      done_ = true;
      return;
    }
    ctx.schedule(now + StreamServer::kStepInterval);
  }

  [[nodiscard]] bool finished() const { return done_; }
  /// Sim time when the cohort finished (or the deadline cut it off);
  /// meaningful once finished().
  [[nodiscard]] MicroTime end_time() const { return end_time_; }

 private:
  StreamServer* server_;
  MicroTime deadline_;
  MicroTime end_time_ = 0;
  bool done_ = false;
};

}  // namespace vgbl::sim
