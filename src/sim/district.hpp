// District-scale workload (DESIGN.md §5i): N classrooms × M students on
// one DES timeline. Each classroom keeps its own seed lineage, optional
// SessionStore shard + journal + BadgeStore, and optional streaming
// cohort; classrooms map to event-queue shards, so a district run is the
// scheduler's natural parallel shape. After the final barrier the
// per-classroom summaries aggregate into a district-wide ranked
// leaderboard and a combined fingerprint that must be bit-identical
// across shard counts, worker-thread counts and reruns.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/classroom.hpp"
#include "sim/scheduler.hpp"

namespace vgbl::sim {

struct DistrictOptions {
  int classrooms = 4;
  int students_per_classroom = 8;
  int max_steps_per_student = 400;
  /// Policy mix per classroom; students cycle through these.
  std::vector<BotPolicy> policies{BotPolicy::kExplorer, BotPolicy::kSpeedrun,
                                  BotPolicy::kRandom};
  /// District seed. Classroom c's seed is
  /// classroom_student_seed(seed, c + 1) — the same pure derivation the
  /// classroom applies to its students, one level up.
  u64 seed = 99;
  /// Worker threads driving the scheduler (0: calling thread only).
  int worker_threads = 0;
  /// Event-queue shards (0: one per classroom). Bit-identical across any
  /// value.
  int shards = 0;
  /// Scheduler epoch width (part of the cross-shard message contract).
  MicroTime epoch_width = milliseconds(100);

  /// Reward rules evaluated in every session; also enables classroom and
  /// district leaderboards. Null keeps rewards off everywhere.
  const rewards::RewardRuleSet* reward_rules = nullptr;

  /// When non-empty, every classroom gets its own durable state under
  /// `<persist_dir>/classroom-<c>`: a SessionStore shard (snapshot +
  /// journal per student, suspend/resume mid-run) and a BadgeStore the
  /// finished students commit their unlock logs to.
  std::string persist_dir;

  /// Adds a streaming cohort per classroom on the same timeline: each
  /// classroom runs a StreamServer whose 2 ms delivery steps interleave
  /// with gameplay events.
  bool stream = false;
  /// Streaming clients per classroom (0: one per student).
  int stream_clients = 0;
  /// FaultSchedule::profile applied to every classroom's link.
  std::string fault_profile = "clean";
  /// Scenario-walk length cap per streaming client.
  int stream_max_hops = 12;
  /// Streaming cutoff in sim time.
  MicroTime stream_deadline = seconds(600);
};

/// One classroom's share of the district run.
struct DistrictClassroomResult {
  ClassroomSummary summary;
  /// classroom_fingerprint(summary) — the per-classroom determinism
  /// artifact.
  u64 fingerprint = 0;
  /// Present when the district streamed (DistrictOptions::stream).
  std::optional<StreamReplaySummary> stream;
};

struct DistrictSummary {
  std::vector<DistrictClassroomResult> classrooms;
  /// District-wide standings (empty without reward rules). Rows carry
  /// classroom-qualified ids ("c3/student-7"); built post-barrier in
  /// (classroom, student) order, so ranking ties resolve identically on
  /// every run.
  rewards::Leaderboard leaderboard;
  /// Combined determinism artifact: per-classroom fingerprints + the
  /// district leaderboard, mixed in classroom order. Must be bit-identical
  /// across shard counts, thread counts and reruns.
  u64 fingerprint = 0;
  SchedulerStats scheduler;
  /// Wall-clock time of the whole run (measurement only).
  f64 wall_ms = 0;

  [[nodiscard]] int total_students() const;
  [[nodiscard]] std::string report() const;
};

/// Runs the district on one sharded DES timeline. Fails (error Status) only
/// on setup problems — a persist directory that cannot be created, a badge
/// store that cannot open; individual students that fail to start are
/// skipped exactly as in simulate_classroom.
[[nodiscard]] Result<DistrictSummary> run_district(std::shared_ptr<const GameBundle> bundle,
                                     const DistrictOptions& options);

}  // namespace vgbl::sim
