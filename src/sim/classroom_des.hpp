// Classroom cohort on the DES core (DESIGN.md §5i): each student is a
// StudentActor whose events are single BotDriver iterations, so thousands
// of classrooms' worth of students share one timeline instead of one
// thread each. Fills the same pre-allocated result slots the legacy
// thread-per-student engine fills — both funnel into
// classroom_engine::aggregate_classroom_results, so engine choice cannot
// leak into summary bits.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/classroom.hpp"
#include "sim/scheduler.hpp"

namespace vgbl::sim {

/// One simulated student as an event stream. Every firing executes exactly
/// one BotDriver iteration (one bot action plus its clock advance/ticks)
/// and reschedules at the session clock's new time — the student's local
/// clock and the shared timeline are the same axis. Store-backed students
/// replay the legacy engine's phases exactly: half the budget, checkpoint
/// + teardown, reopen, remaining budget under seed+1.
///
/// Session state is allocated lazily at the first firing and released at
/// the last, so a district run's footprint tracks *live* students.
class StudentActor : public Actor {
 public:
  /// `options` and `slot` must outlive the scheduler run. `slot` is this
  /// student's pre-allocated result cell; it stays nullopt when a session
  /// cannot be opened/started (the student is skipped, as in the legacy
  /// engine).
  StudentActor(std::shared_ptr<const GameBundle> bundle,
               const ClassroomOptions& options, int index,
               std::optional<StudentResult>* slot);
  ~StudentActor() override;

  void on_event(Context& ctx) override;

  [[nodiscard]] bool finished() const { return phase_ == Phase::kDone; }

 private:
  enum class Phase : u8 {
    kStart,        // allocate the session, run the first iteration
    kPlay,         // direct (storeless) run
    kPlayFirst,    // store-backed: first half of the budget
    kPlaySecond,   // store-backed: resumed second half
    kDone,
  };

  void begin(Context& ctx);
  void step(Context& ctx);
  /// Checkpoint + teardown + reopen between the store-backed halves.
  void suspend_and_resume(Context& ctx);
  void finish(Context& ctx);
  void abandon();

  [[nodiscard]] std::string student_name() const;
  [[nodiscard]] SimClock& active_clock() const;
  [[nodiscard]] GameSession& active_session() const;

  std::shared_ptr<const GameBundle> bundle_;
  const ClassroomOptions* options_;
  int index_ = 0;
  std::optional<StudentResult>* slot_ = nullptr;

  Phase phase_ = Phase::kStart;
  BotPolicy policy_ = BotPolicy::kExplorer;
  u64 bot_seed_ = 0;

  // Direct-run state (storeless).
  std::unique_ptr<SimClock> clock_;
  std::unique_ptr<GameSession> session_;
  // Store-backed state.
  std::unique_ptr<PersistedSession> persisted_;
  BotResult first_half_;
  std::unique_ptr<BotDriver> driver_;
  /// Wall time attributed to this student's events; accumulated only while
  /// metrics are on (measurement-only field, excluded from fingerprints).
  i64 wall_us_ = 0;
};

/// Runs `options.student_count` students on the DES scheduler and fills
/// `results` (size must equal the student count). Shard count comes from
/// options.des_shards (0: one shard per worker thread); every shard/thread
/// combination is bit-identical.
void run_classroom_des(const std::shared_ptr<const GameBundle>& bundle,
                       const ClassroomOptions& options,
                       std::vector<std::optional<StudentResult>>& results);

}  // namespace vgbl::sim
