#include "sim/scheduler.hpp"

#include <algorithm>

#include "concurrency/thread_pool.hpp"
#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/wall_clock.hpp"

namespace vgbl::sim {

namespace {

/// Scheduler metrics. Every update happens on the coordinating thread at
/// an epoch barrier (or after run() drains), never inside a worker's shard
/// loop, so instrumentation cannot perturb event execution.
struct SimMetrics {
  obs::Counter& events;
  obs::Counter& epochs;
  obs::Counter& mails;
  obs::Gauge& queue_depth;
  obs::Gauge& epoch_width_us;
  obs::Gauge& events_per_sec;
  obs::Histogram& epoch_events;

  static SimMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static SimMetrics m{
        reg.counter("sim_events_total", "DES events executed"),
        reg.counter("sim_epochs_total", "DES parallel epochs run"),
        reg.counter("sim_mail_delivered_total",
                    "cross-actor messages merged at epoch barriers"),
        reg.gauge("sim_queue_depth",
                  "pending DES events across shards at the last barrier"),
        reg.gauge("sim_epoch_width_us", "DES parallel window width"),
        reg.gauge("sim_events_per_sec",
                  "event throughput of the latest scheduler run"),
        reg.histogram("sim_epoch_events",
                      obs::exponential_buckets(1, 4, 12),
                      "events executed per epoch")};
    return m;
  }
};

}  // namespace

Scheduler::Scheduler(SchedulerOptions options) : options_(options) {
  options_.shards = std::max(1u, options_.shards);
  options_.epoch_width = std::max<MicroTime>(1, options_.epoch_width);
  shards_.resize(options_.shards);
  if (options_.worker_threads > 0 && options_.shards > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<unsigned>(options_.worker_threads));
  }
}

Scheduler::~Scheduler() = default;

ActorId Scheduler::add_actor(Actor* actor) {
  return add_actor(actor,
                   static_cast<u32>(actors_.size() % shards_.size()));
}

ActorId Scheduler::add_actor(Actor* actor, u32 shard) {
  actors_.push_back(
      ActorRec{actor, shard % static_cast<u32>(shards_.size())});
  return static_cast<ActorId>(actors_.size() - 1);
}

u32 Scheduler::shard_of(ActorId actor) const {
  return actors_[actor].shard;
}

u32 Scheduler::shard_count() const {
  return static_cast<u32>(shards_.size());
}

void Scheduler::push_event(u32 shard, MicroTime at, ActorId actor, u64 tag) {
  Shard& s = shards_[shard];
  s.queue.push(Event{at, shard, actor, s.next_seq++, tag});
}

void Scheduler::schedule(ActorId actor, MicroTime at, u64 tag) {
  push_event(actors_[actor].shard, at, actor, tag);
}

void Context::schedule(MicroTime at, u64 tag) {
  scheduler_->push_event(shard_, std::max(at, event_->time), event_->actor,
                         tag);
}

void Context::post(ActorId to, MicroTime at, u64 tag) {
  Scheduler::Shard& shard = scheduler_->shards_[shard_];
  shard.outbox.push_back(Scheduler::Mail{std::max(at, event_->time), to, tag,
                                         event_->actor, shard.mail_seq++});
}

void Scheduler::run_shard(u32 shard_index, MicroTime epoch_end) {
  // Only this worker touches this shard during the epoch: the queue, the
  // outbox and every actor mapped here are shard-private by construction,
  // so the loop is lock-free and the pop order is the deterministic
  // (time, shard, actor, seq) key order.
  Shard& shard = shards_[shard_index];
  Context ctx;
  ctx.scheduler_ = this;
  ctx.shard_ = shard_index;
  while (!shard.queue.empty() && shard.queue.top().time < epoch_end) {
    const Event event = shard.queue.top();
    shard.queue.pop();
    ctx.event_ = &event;
    actors_[event.actor].actor->on_event(ctx);
    ++shard.events_executed;
    shard.last_event_time = event.time;
  }
}

void Scheduler::deliver_mail(MicroTime epoch_end) {
  std::vector<Mail> mail;
  for (Shard& shard : shards_) {
    mail.insert(mail.end(), shard.outbox.begin(), shard.outbox.end());
    shard.outbox.clear();
  }
  if (mail.empty()) return;
  // Quantize to the barrier, then merge in (time, sender, sender-seq)
  // order. The sender-seq only breaks ties between one sender's own posts
  // (posting order), so the merged order cannot depend on how actors were
  // packed into shards — the cross-shard determinism contract.
  for (Mail& m : mail) m.at = std::max(m.at, epoch_end);
  std::sort(mail.begin(), mail.end(), [](const Mail& a, const Mail& b) {
    return std::tie(a.at, a.from, a.from_seq) <
           std::tie(b.at, b.from, b.from_seq);
  });
  for (const Mail& m : mail) {
    push_event(actors_[m.to].shard, m.at, m.to, m.tag);
  }
  stats_.mails_delivered += mail.size();
  VGBL_COUNT(SimMetrics::get().mails, mail.size());
}

u64 Scheduler::pending_events() const {
  u64 depth = 0;
  for (const Shard& shard : shards_) depth += shard.queue.size();
  return depth;
}

SchedulerStats Scheduler::run() {
  const i64 t0_us = obs::wall_now_us();
  // The run span rides a clock mirroring the timeline: it is advanced to
  // each epoch's end at the barrier, so the trace shows sim-time progress.
  SimClock epoch_clock;
  VGBL_SPAN("sim.run", &epoch_clock);
  SimMetrics& metrics = SimMetrics::get();
  VGBL_GAUGE_SET(metrics.epoch_width_us,
                 static_cast<f64>(options_.epoch_width));

  const i64 shard_count = static_cast<i64>(shards_.size());
  while (true) {
    bool any = false;
    MicroTime t_min = 0;
    for (const Shard& shard : shards_) {
      if (!shard.queue.empty() &&
          (!any || shard.queue.top().time < t_min)) {
        t_min = shard.queue.top().time;
        any = true;
      }
    }
    if (!any) break;
    const MicroTime epoch_end = t_min + options_.epoch_width;

    if (pool_ != nullptr) {
      pool_->parallel_for(
          0, shard_count,
          [&](i64 i) { run_shard(static_cast<u32>(i), epoch_end); },
          /*grain=*/1);
    } else {
      for (i64 i = 0; i < shard_count; ++i) {
        run_shard(static_cast<u32>(i), epoch_end);
      }
    }
    // Barrier: merge cross-shard mail, then refresh stats and gauges from
    // the coordinating thread only.
    deliver_mail(epoch_end);
    ++stats_.epochs;
    u64 executed = 0;
    for (const Shard& shard : shards_) {
      executed += shard.events_executed;
      stats_.end_time = std::max(stats_.end_time, shard.last_event_time);
    }
    const u64 epoch_events = executed - stats_.events;
    stats_.events = executed;
    const u64 depth = pending_events();
    stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
    VGBL_COUNT(metrics.events, epoch_events);
    VGBL_COUNT(metrics.epochs);
    VGBL_OBSERVE(metrics.epoch_events, static_cast<f64>(epoch_events));
    VGBL_GAUGE_SET(metrics.queue_depth, static_cast<f64>(depth));
    if (obs::enabled() && epoch_clock.now() < epoch_end) {
      epoch_clock.advance_to(epoch_end);
    }
  }
  if (obs::enabled()) {
    const f64 elapsed = static_cast<f64>(obs::wall_now_us() - t0_us) / 1e6;
    VGBL_GAUGE_SET(metrics.events_per_sec,
                   elapsed > 0 ? static_cast<f64>(stats_.events) / elapsed
                               : 0);
  }
  return stats_;
}

}  // namespace vgbl::sim
