#include "sim/classroom_des.hpp"

#include <algorithm>
#include <utility>

#include "core/classroom_engine.hpp"
#include "obs/wall_clock.hpp"

namespace vgbl::sim {

StudentActor::StudentActor(std::shared_ptr<const GameBundle> bundle,
                           const ClassroomOptions& options, int index,
                           std::optional<StudentResult>* slot)
    : bundle_(std::move(bundle)),
      options_(&options),
      index_(index),
      slot_(slot) {}

StudentActor::~StudentActor() = default;

std::string StudentActor::student_name() const {
  return "student-" + std::to_string(index_ + 1);
}

SimClock& StudentActor::active_clock() const {
  return persisted_ != nullptr ? persisted_->clock() : *clock_;
}

GameSession& StudentActor::active_session() const {
  return persisted_ != nullptr ? persisted_->session() : *session_;
}

void StudentActor::abandon() {
  // Session open/start failed: the slot stays nullopt (skipped student,
  // same as the legacy engine) and all session state is released now.
  driver_.reset();
  persisted_.reset();
  session_.reset();
  clock_.reset();
  phase_ = Phase::kDone;
}

void StudentActor::begin(Context& ctx) {
  policy_ = classroom_engine::student_policy(*options_, index_);
  bot_seed_ = classroom_student_seed(options_->seed, index_ + 1);

  if (options_->store == nullptr) {
    clock_ = std::make_unique<SimClock>();
    SessionOptions session_options;
    session_options.reward_rules = options_->reward_rules;
    // Synchronous decode: a DES cohort keeps every student's session alive
    // at once, so per-session decode pools would exhaust OS threads at
    // district scale (100k+ students).
    session_options.decode_threads = 0;
    session_ =
        std::make_unique<GameSession>(bundle_, clock_.get(), session_options);
    if (!session_->start().ok()) {
      abandon();
      return;
    }
    driver_ = std::make_unique<BotDriver>(*session_, *clock_, policy_,
                                          options_->max_steps_per_student,
                                          bot_seed_);
    phase_ = Phase::kPlay;
  } else {
    // Store-backed run, first half: fresh session through the store (the
    // legacy engine's remove + open), clock at zero like the timeline.
    (void)options_->store->remove_session(student_name());
    auto opened = options_->store->open_session(bundle_, student_name());
    if (!opened.ok()) {
      abandon();
      return;
    }
    persisted_ = std::move(opened.value());
    driver_ = std::make_unique<BotDriver>(
        persisted_->session(), persisted_->clock(), policy_,
        options_->max_steps_per_student / 2, bot_seed_);
    phase_ = Phase::kPlayFirst;
  }
  step(ctx);
}

void StudentActor::suspend_and_resume(Context& ctx) {
  // Mirrors the legacy store path exactly: checkpoint, tear the live
  // session down, reopen from disk, then (unless already complete) spend
  // the remaining budget under bot_seed + 1. The restored clock continues
  // at the checkpointed sim time, which *is* the current timeline time —
  // suspension consumes no sim time.
  first_half_ = driver_->result();
  driver_.reset();
  if (!persisted_->checkpoint().ok()) {
    abandon();
    return;
  }
  persisted_.reset();  // suspend: the live session is gone

  auto resumed = options_->store->open_session(bundle_, student_name());
  if (!resumed.ok()) {
    abandon();
    return;
  }
  persisted_ = std::move(resumed.value());
  if (first_half_.completed) {
    finish(ctx);
    return;
  }
  const int first_half_budget = options_->max_steps_per_student / 2;
  driver_ = std::make_unique<BotDriver>(
      persisted_->session(), persisted_->clock(), policy_,
      options_->max_steps_per_student - first_half_budget, bot_seed_ + 1);
  phase_ = Phase::kPlaySecond;
  step(ctx);
}

void StudentActor::step(Context& ctx) {
  if (driver_ != nullptr && !driver_->done()) {
    driver_->run_iteration();
  }
  if (driver_ == nullptr || driver_->done()) {
    switch (phase_) {
      case Phase::kPlay:
      case Phase::kPlaySecond:
        finish(ctx);
        return;
      case Phase::kPlayFirst:
        suspend_and_resume(ctx);
        return;
      default:
        return;
    }
  }
  // The driver left the session clock at the next iteration's sim time;
  // that is this actor's next firing.
  ctx.schedule(active_clock().now());
}

void StudentActor::finish(Context& ctx) {
  (void)ctx;
  StudentResult r;
  r.student_id = index_ + 1;
  r.policy = policy_;

  BotResult bot;
  if (phase_ == Phase::kPlay) {
    bot = driver_->result();
  } else if (phase_ == Phase::kPlaySecond) {
    const BotResult rest = driver_->result();
    bot = first_half_;
    bot.steps += rest.steps;
    bot.completed = rest.completed;
    bot.succeeded = rest.succeeded;
  } else {
    bot = first_half_;  // completed within the first half
  }

  if (persisted_ != nullptr) {
    (void)persisted_->checkpoint();
    r.resumed = persisted_->resumed();
  }
  classroom_engine::fill_student_result(r, active_session(), active_clock(),
                                        bot);
  classroom_engine::commit_unlocks(options_->badge_store, student_name(), r);
  r.wall_ms = static_cast<f64>(wall_us_) / 1000.0;
  *slot_ = std::move(r);

  driver_.reset();
  persisted_.reset();
  session_.reset();
  clock_.reset();
  phase_ = Phase::kDone;
}

void StudentActor::on_event(Context& ctx) {
  const bool timed = obs::enabled();
  const i64 t0_us = timed ? obs::wall_now_us() : 0;
  switch (phase_) {
    case Phase::kStart:
      begin(ctx);
      break;
    case Phase::kPlay:
    case Phase::kPlayFirst:
    case Phase::kPlaySecond:
      step(ctx);
      break;
    case Phase::kDone:
      break;
  }
  if (timed && phase_ != Phase::kDone) {
    wall_us_ += obs::wall_now_us() - t0_us;
  }
}

void run_classroom_des(const std::shared_ptr<const GameBundle>& bundle,
                       const ClassroomOptions& options,
                       std::vector<std::optional<StudentResult>>& results) {
  const int count = std::max(0, options.student_count);
  SchedulerOptions sched;
  sched.shards = options.des_shards > 0
                     ? static_cast<u32>(options.des_shards)
                     : static_cast<u32>(std::max(1, options.worker_threads));
  sched.worker_threads = options.worker_threads;
  Scheduler scheduler(sched);

  std::vector<std::unique_ptr<StudentActor>> actors;
  actors.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    actors.push_back(std::make_unique<StudentActor>(
        bundle, options, i, &results[static_cast<size_t>(i)]));
    const ActorId id = scheduler.add_actor(actors.back().get());
    scheduler.schedule(id, 0);
  }
  (void)scheduler.run();
}

}  // namespace vgbl::sim
