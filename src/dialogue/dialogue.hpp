// NPC dialogue: "there are also non player characters to give fixed
// conversation to guide players" (paper §3.1). Conversations are trees of
// fixed lines with optional player choices; a runner walks one tree and
// records a transcript the analytics tracker consumes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

struct DialogueChoice {
  std::string text;
  /// Node id to jump to; kEndDialogue ends the conversation.
  int next_node = -1;
  /// Opaque tag surfaced to the event system when this choice is taken
  /// (e.g. "accept_mission"); empty = no side effect.
  std::string action_tag;
};

inline constexpr int kEndDialogue = -1;

struct DialogueNode {
  int id = 0;
  std::string speaker;  // display name; empty = narrator
  std::string line;
  /// Player options. Empty means the node auto-advances to `next_node`.
  std::vector<DialogueChoice> choices;
  int next_node = kEndDialogue;
  std::string action_tag;  // fired when this node is shown
};

class DialogueTree {
 public:
  DialogueTree() = default;
  DialogueTree(DialogueId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  [[nodiscard]] DialogueId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  Status add_node(DialogueNode node);
  Status set_entry(int node_id);
  [[nodiscard]] int entry() const { return entry_; }
  [[nodiscard]] const DialogueNode* find(int node_id) const;
  [[nodiscard]] const std::vector<DialogueNode>& nodes() const { return nodes_; }

  /// Lint: entry set and present, all referenced nodes exist, every node
  /// reachable from entry, and the conversation can terminate.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  DialogueId id_;
  std::string name_;
  std::vector<DialogueNode> nodes_;
  int entry_ = kEndDialogue;
};

/// One line shown to the player (for transcripts and the message UI).
struct DialogueEvent {
  std::string speaker;
  std::string line;
  std::string chosen;      // the choice text that led here (if any)
  std::string action_tag;  // tag fired by this node/choice
};

/// Walks a tree. The runtime shows `current()`, then either `advance()` (no
/// choices) or `choose(i)`.
class DialogueRunner {
 public:
  explicit DialogueRunner(const DialogueTree* tree);

  [[nodiscard]] bool active() const { return node_ != nullptr; }
  [[nodiscard]] const DialogueNode* current() const { return node_; }

  /// Advances an auto node; fails if the node offers choices.
  Status advance();
  /// Takes choice `index`; fails when out of range or on an auto node.
  Status choose(size_t index);

  [[nodiscard]] const std::vector<DialogueEvent>& transcript() const {
    return transcript_;
  }
  /// Action tags fired so far, in order (consumed by the event system).
  [[nodiscard]] const std::vector<std::string>& fired_tags() const {
    return fired_tags_;
  }

 private:
  void enter(int node_id, std::string chosen_text);

  const DialogueTree* tree_;
  const DialogueNode* node_ = nullptr;
  std::vector<DialogueEvent> transcript_;
  std::vector<std::string> fired_tags_;
};

}  // namespace vgbl
