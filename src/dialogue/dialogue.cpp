#include "dialogue/dialogue.hpp"

#include <deque>
#include <unordered_set>

namespace vgbl {

Status DialogueTree::add_node(DialogueNode node) {
  if (find(node.id)) {
    return already_exists("dialogue node " + std::to_string(node.id));
  }
  if (entry_ == kEndDialogue) entry_ = node.id;  // first node is the default entry
  nodes_.push_back(std::move(node));
  return {};
}

Status DialogueTree::set_entry(int node_id) {
  if (!find(node_id)) {
    return not_found("dialogue node " + std::to_string(node_id));
  }
  entry_ = node_id;
  return {};
}

const DialogueNode* DialogueTree::find(int node_id) const {
  for (const auto& n : nodes_) {
    if (n.id == node_id) return &n;
  }
  return nullptr;
}

std::vector<std::string> DialogueTree::validate() const {
  std::vector<std::string> issues;
  if (nodes_.empty()) {
    issues.emplace_back("dialogue '" + name_ + "' has no nodes");
    return issues;
  }
  if (entry_ == kEndDialogue || !find(entry_)) {
    issues.emplace_back("dialogue '" + name_ + "' has no valid entry node");
    return issues;
  }

  auto check_ref = [&](int target, int from) {
    if (target != kEndDialogue && !find(target)) {
      issues.push_back("dialogue '" + name_ + "' node " + std::to_string(from) +
                       " references missing node " + std::to_string(target));
    }
  };
  for (const auto& n : nodes_) {
    if (n.choices.empty()) {
      check_ref(n.next_node, n.id);
    } else {
      for (const auto& c : n.choices) check_ref(c.next_node, n.id);
    }
  }

  // Reachability + termination via BFS from the entry.
  std::unordered_set<int> seen{entry_};
  std::deque<int> queue{entry_};
  bool can_end = false;
  while (!queue.empty()) {
    const DialogueNode* n = find(queue.front());
    queue.pop_front();
    if (!n) continue;
    auto visit = [&](int target) {
      if (target == kEndDialogue) {
        can_end = true;
      } else if (find(target) && seen.insert(target).second) {
        queue.push_back(target);
      }
    };
    if (n->choices.empty()) {
      visit(n->next_node);
    } else {
      for (const auto& c : n->choices) visit(c.next_node);
    }
  }
  for (const auto& n : nodes_) {
    if (!seen.count(n.id)) {
      issues.push_back("dialogue '" + name_ + "' node " + std::to_string(n.id) +
                       " is unreachable");
    }
  }
  if (!can_end) {
    issues.push_back("dialogue '" + name_ + "' cannot terminate");
  }
  return issues;
}

DialogueRunner::DialogueRunner(const DialogueTree* tree) : tree_(tree) {
  if (tree_ && tree_->entry() != kEndDialogue) {
    enter(tree_->entry(), "");
  }
}

void DialogueRunner::enter(int node_id, std::string chosen_text) {
  node_ = node_id == kEndDialogue ? nullptr : tree_->find(node_id);
  if (!node_) return;
  DialogueEvent ev;
  ev.speaker = node_->speaker;
  ev.line = node_->line;
  ev.chosen = std::move(chosen_text);
  ev.action_tag = node_->action_tag;
  if (!node_->action_tag.empty()) fired_tags_.push_back(node_->action_tag);
  transcript_.push_back(std::move(ev));
}

Status DialogueRunner::advance() {
  if (!node_) return failed_precondition("dialogue not active");
  if (!node_->choices.empty()) {
    return failed_precondition("node offers choices; call choose()");
  }
  enter(node_->next_node, "");
  return {};
}

Status DialogueRunner::choose(size_t index) {
  if (!node_) return failed_precondition("dialogue not active");
  if (node_->choices.empty()) {
    return failed_precondition("node has no choices; call advance()");
  }
  if (index >= node_->choices.size()) {
    return out_of_range("choice index " + std::to_string(index));
  }
  const DialogueChoice& c = node_->choices[index];
  if (!c.action_tag.empty()) fired_tags_.push_back(c.action_tag);
  enter(c.next_node, c.text);
  return {};
}

}  // namespace vgbl
