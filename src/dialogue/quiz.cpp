#include "dialogue/quiz.hpp"

namespace vgbl {

std::vector<std::string> Quiz::validate() const {
  std::vector<std::string> issues;
  if (questions_.empty()) {
    issues.push_back("quiz '" + name_ + "' has no questions");
  }
  for (size_t i = 0; i < questions_.size(); ++i) {
    const QuizQuestion& q = questions_[i];
    if (q.options.size() < 2) {
      issues.push_back("quiz '" + name_ + "' question " + std::to_string(i + 1) +
                       " needs at least two options");
    }
    if (q.correct_option >= q.options.size()) {
      issues.push_back("quiz '" + name_ + "' question " + std::to_string(i + 1) +
                       " marks a missing option as correct");
    }
    if (q.prompt.empty()) {
      issues.push_back("quiz '" + name_ + "' question " + std::to_string(i + 1) +
                       " has an empty prompt");
    }
  }
  if (pass_fraction_ <= 0.0 || pass_fraction_ > 1.0) {
    issues.push_back("quiz '" + name_ + "' pass fraction must be in (0, 1]");
  }
  return issues;
}

Result<bool> QuizRunner::answer(size_t option) {
  if (finished()) return failed_precondition("quiz already finished");
  const QuizQuestion& q = quiz_->questions()[index_];
  if (option >= q.options.size()) {
    return out_of_range("option " + std::to_string(option));
  }
  QuizAnswer record;
  record.question_index = index_;
  record.chosen_option = option;
  record.correct = option == q.correct_option;
  record.points_earned = record.correct ? q.points : 0;
  answers_.push_back(record);
  ++index_;
  return record.correct;
}

QuizOutcome QuizRunner::outcome() const {
  QuizOutcome out;
  out.total = quiz_ ? static_cast<int>(quiz_->size()) : 0;
  for (const auto& a : answers_) {
    out.correct_count += a.correct ? 1 : 0;
    out.points_earned += a.points_earned;
  }
  out.answers = answers_;
  out.passed = quiz_ && out.total > 0 &&
               out.fraction_correct() >= quiz_->pass_fraction();
  return out;
}

}  // namespace vgbl
