// Quizzes: structured knowledge checks. The paper's §3.2 frames knowledge
// delivery as "the process of making decision and interaction"; quizzes
// make that measurable — designers attach them to rules (e.g. after the
// repair is done) and the learning report records per-question outcomes,
// which is what the lecturer grades against (§3.3).
#pragma once

#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

struct QuizTag;
using QuizId = Id<QuizTag>;

struct QuizQuestion {
  std::string prompt;
  std::vector<std::string> options;
  size_t correct_option = 0;
  /// Shown after answering (right or wrong) — the teaching moment.
  std::string explanation;
  i64 points = 10;
};

class Quiz {
 public:
  Quiz() = default;
  Quiz(QuizId id, std::string name) : id_(id), name_(std::move(name)) {}

  [[nodiscard]] QuizId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void add_question(QuizQuestion q) { questions_.push_back(std::move(q)); }
  [[nodiscard]] const std::vector<QuizQuestion>& questions() const {
    return questions_;
  }
  [[nodiscard]] size_t size() const { return questions_.size(); }

  /// Fraction of questions that must be correct to pass (default 60%).
  void set_pass_fraction(f64 f) { pass_fraction_ = f; }
  [[nodiscard]] f64 pass_fraction() const { return pass_fraction_; }

  [[nodiscard]] i64 max_points() const {
    i64 total = 0;
    for (const auto& q : questions_) total += q.points;
    return total;
  }

  /// Lint: at least one question; every question has ≥2 options and a
  /// valid correct index; pass fraction in (0, 1].
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  QuizId id_;
  std::string name_;
  std::vector<QuizQuestion> questions_;
  f64 pass_fraction_ = 0.6;
};

/// Per-question record of one attempt.
struct QuizAnswer {
  size_t question_index = 0;
  size_t chosen_option = 0;
  bool correct = false;
  i64 points_earned = 0;
};

struct QuizOutcome {
  int correct_count = 0;
  int total = 0;
  i64 points_earned = 0;
  bool passed = false;
  std::vector<QuizAnswer> answers;

  [[nodiscard]] f64 fraction_correct() const {
    return total ? static_cast<f64>(correct_count) / total : 0.0;
  }
};

/// Walks one quiz attempt: show `current()`, call `answer(i)` per
/// question, read `outcome()` when `finished()`.
class QuizRunner {
 public:
  explicit QuizRunner(const Quiz* quiz) : quiz_(quiz) {}

  [[nodiscard]] bool finished() const {
    return !quiz_ || index_ >= quiz_->size();
  }
  [[nodiscard]] const QuizQuestion* current() const {
    return finished() ? nullptr : &quiz_->questions()[index_];
  }
  [[nodiscard]] size_t question_number() const { return index_ + 1; }

  /// Answers the current question; returns whether it was correct.
  /// Fails when finished or the option index is out of range.
  [[nodiscard]] Result<bool> answer(size_t option);

  [[nodiscard]] QuizOutcome outcome() const;

 private:
  const Quiz* quiz_;
  size_t index_ = 0;
  std::vector<QuizAnswer> answers_;
};

}  // namespace vgbl
