// Scenario model: the branching structure of an interactive video game.
// Each scenario presents one video segment; transitions are the designer-
// declared ways play can move between scenarios (buttons, item use, NPC
// outcomes). The graph supports the authoring-time validation the paper's
// authoring tool needs ("does every scene remain reachable?") and the
// branch-aware prefetch used by the streaming substrate.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

struct Scenario {
  ScenarioId id;
  std::string name;
  SegmentId segment;        // video segment presented in this scenario
  std::string description;  // designer notes / learning goal
  bool terminal = false;    // reaching it can end the game
};

/// A designer-declared edge. `guard_hint` is an opaque condition label used
/// by validation reports and prefetch weighting; actual runtime gating
/// happens in the event system.
struct ScenarioTransition {
  ScenarioId from;
  ScenarioId to;
  std::string label;
  std::string guard_hint;
  /// Designer-estimated likelihood weight for prefetch ordering (higher =
  /// prefetched first); default 1.
  f64 weight = 1.0;
};

class ScenarioGraph {
 public:
  /// Adds a scenario; fails on duplicate id or empty name.
  Status add_scenario(Scenario scenario);
  Status remove_scenario(ScenarioId id);

  /// Adds a transition; both endpoints must exist.
  Status add_transition(ScenarioTransition transition);
  Status remove_transition(ScenarioId from, ScenarioId to,
                           const std::string& label);

  Status set_start(ScenarioId id);
  [[nodiscard]] ScenarioId start() const { return start_; }

  [[nodiscard]] const Scenario* find(ScenarioId id) const;
  [[nodiscard]] Scenario* find_mutable(ScenarioId id);
  [[nodiscard]] const Scenario* find_by_name(std::string_view name) const;

  [[nodiscard]] const std::vector<Scenario>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] const std::vector<ScenarioTransition>& transitions() const {
    return transitions_;
  }
  [[nodiscard]] std::vector<const ScenarioTransition*> out_edges(
      ScenarioId from) const;
  [[nodiscard]] std::vector<const ScenarioTransition*> in_edges(
      ScenarioId to) const;
  [[nodiscard]] size_t size() const { return scenarios_.size(); }
  [[nodiscard]] bool empty() const { return scenarios_.empty(); }

  /// Scenarios reachable from `from` (inclusive), BFS order.
  [[nodiscard]] std::vector<ScenarioId> reachable_from(ScenarioId from) const;

  /// Fewest-transitions path between two scenarios; empty when unreachable.
  [[nodiscard]] std::vector<ScenarioId> shortest_path(ScenarioId from,
                                                      ScenarioId to) const;

  /// Successors ordered by descending transition weight — the prefetch
  /// priority list for the streaming client.
  [[nodiscard]] std::vector<ScenarioId> prefetch_order(ScenarioId from) const;

  /// Structural lint. Reported issues (as human-readable strings):
  ///   - no start scenario set / start missing
  ///   - scenario unreachable from start
  ///   - non-terminal scenario with no outgoing transitions (dead end)
  ///   - transition endpoint missing (defensive; add_transition prevents it)
  ///   - no terminal scenario reachable (game cannot end)
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  std::vector<Scenario> scenarios_;
  std::vector<ScenarioTransition> transitions_;
  // lint allow replay-state-unordered: lookup index over immutable
  // authored data; iteration never feeds an encoding (canonical order
  // comes from scenarios_, which preserves authoring order).
  std::unordered_map<ScenarioId, size_t> by_id_;
  ScenarioId start_;
};

}  // namespace vgbl
