#include "scenario/scenario_graph.hpp"

// lint allow replay-state-unordered: the unordered sets/maps below are
// traversal-local visited/parent tables used only for membership tests;
// every returned ordering comes from the BFS queue or the stable edge
// sort, never from hash-table iteration.
#include <algorithm>
#include <deque>
#include <unordered_set>

namespace vgbl {

Status ScenarioGraph::add_scenario(Scenario scenario) {
  if (!scenario.id.valid()) {
    return invalid_argument("scenario id must be non-zero");
  }
  if (scenario.name.empty()) {
    return invalid_argument("scenario name must not be empty");
  }
  if (by_id_.count(scenario.id)) {
    return already_exists("scenario id " + std::to_string(scenario.id.value));
  }
  by_id_[scenario.id] = scenarios_.size();
  scenarios_.push_back(std::move(scenario));
  return {};
}

Status ScenarioGraph::remove_scenario(ScenarioId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return not_found("scenario id " + std::to_string(id.value));
  }
  scenarios_.erase(scenarios_.begin() + static_cast<std::ptrdiff_t>(it->second));
  // Rebuild the index map (indices after the erased element shifted).
  by_id_.clear();
  for (size_t i = 0; i < scenarios_.size(); ++i) by_id_[scenarios_[i].id] = i;
  // Drop transitions touching the removed scenario.
  std::erase_if(transitions_, [id](const ScenarioTransition& t) {
    return t.from == id || t.to == id;
  });
  if (start_ == id) start_ = ScenarioId{};
  return {};
}

Status ScenarioGraph::add_transition(ScenarioTransition transition) {
  if (!by_id_.count(transition.from)) {
    return not_found("transition source " + std::to_string(transition.from.value));
  }
  if (!by_id_.count(transition.to)) {
    return not_found("transition target " + std::to_string(transition.to.value));
  }
  for (const auto& t : transitions_) {
    if (t.from == transition.from && t.to == transition.to &&
        t.label == transition.label) {
      return already_exists("duplicate transition '" + transition.label + "'");
    }
  }
  transitions_.push_back(std::move(transition));
  return {};
}

Status ScenarioGraph::remove_transition(ScenarioId from, ScenarioId to,
                                        const std::string& label) {
  const size_t before = transitions_.size();
  std::erase_if(transitions_, [&](const ScenarioTransition& t) {
    return t.from == from && t.to == to && t.label == label;
  });
  if (transitions_.size() == before) {
    return not_found("transition '" + label + "'");
  }
  return {};
}

Status ScenarioGraph::set_start(ScenarioId id) {
  if (!by_id_.count(id)) {
    return not_found("start scenario " + std::to_string(id.value));
  }
  start_ = id;
  return {};
}

const Scenario* ScenarioGraph::find(ScenarioId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &scenarios_[it->second];
}

Scenario* ScenarioGraph::find_mutable(ScenarioId id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &scenarios_[it->second];
}

const Scenario* ScenarioGraph::find_by_name(std::string_view name) const {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const ScenarioTransition*> ScenarioGraph::out_edges(
    ScenarioId from) const {
  std::vector<const ScenarioTransition*> out;
  for (const auto& t : transitions_) {
    if (t.from == from) out.push_back(&t);
  }
  return out;
}

std::vector<const ScenarioTransition*> ScenarioGraph::in_edges(
    ScenarioId to) const {
  std::vector<const ScenarioTransition*> out;
  for (const auto& t : transitions_) {
    if (t.to == to) out.push_back(&t);
  }
  return out;
}

std::vector<ScenarioId> ScenarioGraph::reachable_from(ScenarioId from) const {
  std::vector<ScenarioId> order;
  if (!by_id_.count(from)) return order;
  std::unordered_set<ScenarioId> seen{from};
  std::deque<ScenarioId> queue{from};
  while (!queue.empty()) {
    const ScenarioId cur = queue.front();
    queue.pop_front();
    order.push_back(cur);
    for (const auto* t : out_edges(cur)) {
      if (seen.insert(t->to).second) queue.push_back(t->to);
    }
  }
  return order;
}

std::vector<ScenarioId> ScenarioGraph::shortest_path(ScenarioId from,
                                                     ScenarioId to) const {
  if (!by_id_.count(from) || !by_id_.count(to)) return {};
  std::unordered_map<ScenarioId, ScenarioId> parent;
  std::deque<ScenarioId> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    const ScenarioId cur = queue.front();
    queue.pop_front();
    if (cur == to) {
      std::vector<ScenarioId> path;
      for (ScenarioId p = to;; p = parent[p]) {
        path.push_back(p);
        if (p == from) break;
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const auto* t : out_edges(cur)) {
      if (!parent.count(t->to)) {
        parent[t->to] = cur;
        queue.push_back(t->to);
      }
    }
  }
  return {};
}

std::vector<ScenarioId> ScenarioGraph::prefetch_order(ScenarioId from) const {
  std::vector<const ScenarioTransition*> edges = out_edges(from);
  std::stable_sort(edges.begin(), edges.end(),
                   [](const auto* a, const auto* b) { return a->weight > b->weight; });
  std::vector<ScenarioId> out;
  std::unordered_set<ScenarioId> seen;
  for (const auto* t : edges) {
    if (seen.insert(t->to).second) out.push_back(t->to);
  }
  return out;
}

std::vector<std::string> ScenarioGraph::validate() const {
  std::vector<std::string> issues;
  if (scenarios_.empty()) {
    issues.emplace_back("graph has no scenarios");
    return issues;
  }
  if (!start_.valid() || !by_id_.count(start_)) {
    issues.emplace_back("no start scenario set");
    return issues;
  }

  const std::vector<ScenarioId> reachable = reachable_from(start_);
  std::unordered_set<ScenarioId> reachable_set(reachable.begin(),
                                               reachable.end());

  bool terminal_reachable = false;
  for (const auto& s : scenarios_) {
    if (!reachable_set.count(s.id)) {
      issues.push_back("scenario '" + s.name + "' is unreachable from start");
      continue;
    }
    if (s.terminal) {
      terminal_reachable = true;
    } else if (out_edges(s.id).empty()) {
      issues.push_back("scenario '" + s.name +
                       "' is a dead end (no outgoing transitions and not terminal)");
    }
  }
  if (!terminal_reachable) {
    issues.emplace_back("no terminal scenario is reachable: the game cannot end");
  }
  return issues;
}

}  // namespace vgbl
