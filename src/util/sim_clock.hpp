// Virtual time. The runtime, media pipeline and network simulator all run
// against a Clock interface so tests and benchmarks control time precisely
// (no sleeps, no flaky wall-clock dependencies).
#pragma once

#include <chrono>
#include <cstdint>

#include "util/types.hpp"

namespace vgbl {

/// Microsecond timestamps/durations — enough resolution for per-frame and
/// per-packet scheduling, no floating point drift.
using MicroTime = i64;

constexpr MicroTime microseconds(i64 us) { return us; }
constexpr MicroTime milliseconds(i64 ms) { return ms * 1000; }
constexpr MicroTime seconds(i64 s) { return s * 1'000'000; }
constexpr f64 to_seconds(MicroTime t) { return static_cast<f64>(t) / 1e6; }
constexpr f64 to_millis(MicroTime t) { return static_cast<f64>(t) / 1e3; }

/// Time source abstraction.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual MicroTime now() const = 0;
};

/// Deterministic, manually advanced clock for simulations and tests.
class SimClock final : public Clock {
 public:
  explicit SimClock(MicroTime start = 0) : now_(start) {}

  [[nodiscard]] MicroTime now() const override { return now_; }

  void advance(MicroTime delta) { now_ += delta; }
  void advance_to(MicroTime t) {
    if (t > now_) now_ = t;
  }

 private:
  MicroTime now_;
};

/// Monotonic wall clock for benchmarks and interactive runs.
///
/// lint_rules allowlists this file for `determinism-wallclock`: SystemClock
/// is the one sanctioned wall-clock *implementation* in the deterministic
/// layers, and it is safe precisely because it is injected — deterministic
/// code paths receive a SimClock through the same Clock interface and never
/// construct a SystemClock themselves (vgbl-lint would reject the
/// steady_clock read at any such site). Keep every other wall-clock read
/// behind obs::wall_now_us() (src/obs/wall_clock.hpp).
class SystemClock final : public Clock {
 public:
  [[nodiscard]] MicroTime now() const override {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(t).count();
  }
};

}  // namespace vgbl
