#include "util/fileio.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace vgbl {
namespace {

Error file_error(const std::string& what, const std::string& path) {
  return io_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Result<Bytes> read_binary_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return not_found("no such file: " + path);
    return file_error("cannot open", path);
  }
  Bytes data;
  u8 chunk[16384];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return file_error("cannot read", path);
  return data;
}

Status write_binary_file_atomic(const std::string& path,
                                std::span<const u8> data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return file_error("cannot create", tmp);
  const bool wrote =
      std::fwrite(data.data(), 1, data.size(), f) == data.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp.c_str());
    return file_error("cannot write", tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return io_error("cannot rename '" + tmp + "' over '" + path +
                    "': " + ec.message());
  }
  return {};
}

}  // namespace vgbl
