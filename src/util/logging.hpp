// Thread-safe leveled logger. Benchmarks set the level to kWarn so logging
// never perturbs measurements; tests capture records through a sink hook.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

#include "util/thread_annotations.hpp"

namespace vgbl {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

const char* log_level_name(LogLevel level);

/// Global logger configuration. Sinks receive fully formatted records.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  // The level is atomic: `enabled()` runs unsynchronised on every logging
  // thread while tests (and operators) flip `set_level()` concurrently. A
  // relaxed load is all the gate needs — a racing change may affect the
  // current statement either way, but never tears.
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Replaces the output sink (default writes to stderr). Pass nullptr to
  /// restore the default.
  void set_sink(Sink sink) VGBL_EXCLUDES(sink_mutex_);

  void log(LogLevel level, const std::string& message)
      VGBL_EXCLUDES(sink_mutex_);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  // The sink was previously guarded by a file-static mutex in logging.cpp;
  // holding it as a member lets the guarded_by relationship be stated (and
  // checked under clang -Wthread-safety).
  Mutex sink_mutex_;
  Sink sink_ VGBL_GUARDED_BY(sink_mutex_);
};

/// Stream-style log statement builder: LOG(kInfo) << "x=" << x;
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { Logger::instance().log(level_, stream_.str()); }

  template <typename T>
  LogStatement& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace vgbl

#define VGBL_LOG(level)                                     \
  if (!::vgbl::Logger::instance().enabled(::vgbl::LogLevel::level)) { \
  } else                                                    \
    ::vgbl::LogStatement(::vgbl::LogLevel::level)
