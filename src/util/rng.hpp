// Deterministic pseudo-random number generation. All stochastic components
// (synthetic video, bot players, network jitter) take an explicit Rng so
// every experiment is reproducible from a seed printed in its header.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace vgbl {

/// SplitMix64 — used to expand a single user seed into generator state.
constexpr u64 splitmix64(u64& state) {
  state += 0x9E3779B97F4A7C15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic across platforms.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x5EEDBA5Eu) {
    u64 sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  u64 below(u64 bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // statistical bias at 64-bit width is negligible for simulation use.
    return static_cast<u64>((static_cast<__uint128_t>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  i64 range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  f64 uniform() {
    return static_cast<f64>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(f64 p) { return uniform() < p; }

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 draws);
  /// adequate for jitter models, avoids <cmath> transcendental cost.
  f64 normal(f64 mean, f64 stddev) {
    f64 acc = 0;
    for (int i = 0; i < 12; ++i) acc += uniform();
    return mean + (acc - 6.0) * stddev;
  }

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() { return Rng(next()); }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4]{};
};

}  // namespace vgbl
