// Minimal JSON document model + parser + writer, used by the human-readable
// `.vgbl` project format. Object members preserve insertion order so saved
// projects diff cleanly under version control.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

class Json;

using JsonArray = std::vector<Json>;
using JsonMember = std::pair<std::string, Json>;

/// Order-preserving object representation. Lookup is linear — project files
/// have small objects and parse time is dominated by the lexer anyway.
class JsonObject {
 public:
  /// Sets (or replaces) a member, preserving first-insertion order.
  void set(std::string key, Json value);

  /// Returns the member value or nullptr.
  [[nodiscard]] const Json* find(std::string_view key) const;

  [[nodiscard]] const std::vector<JsonMember>& members() const { return members_; }
  [[nodiscard]] size_t size() const { return members_.size(); }
  [[nodiscard]] bool empty() const { return members_.empty(); }

 private:
  std::vector<JsonMember> members_;
};

/// A JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so ids round-trip exactly.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}            // NOLINT
  Json(i64 v) : kind_(Kind::kInt), int_(v) {}               // NOLINT
  Json(int v) : Json(static_cast<i64>(v)) {}                // NOLINT
  Json(u32 v) : Json(static_cast<i64>(v)) {}                // NOLINT
  Json(f64 v) : kind_(Kind::kDouble), double_(v) {}         // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}             // NOLINT
  Json(JsonArray a)                                         // NOLINT
      : kind_(Kind::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
  Json(JsonObject o)                                        // NOLINT
      : kind_(Kind::kObject), object_(std::make_shared<JsonObject>(std::move(o))) {}

  static Json array() { return Json(JsonArray{}); }
  static Json object() { return Json(JsonObject{}); }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] i64 as_int(i64 fallback = 0) const {
    if (kind_ == Kind::kInt) return int_;
    if (kind_ == Kind::kDouble) return static_cast<i64>(double_);
    return fallback;
  }
  [[nodiscard]] f64 as_double(f64 fallback = 0) const {
    if (kind_ == Kind::kDouble) return double_;
    if (kind_ == Kind::kInt) return static_cast<f64>(int_);
    return fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }

  /// Mutable array access; converts a null value into an empty array.
  JsonArray& mutable_array();
  /// Mutable object access; converts a null value into an empty object.
  JsonObject& mutable_object();

  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object member lookup; returns a shared null Json when missing or when
  /// this value is not an object, so lookups chain safely.
  [[nodiscard]] const Json& operator[](std::string_view key) const;

  /// Serialises this document. `indent` < 0 produces compact one-line form;
  /// otherwise pretty-printed with `indent` spaces per level.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a JSON document; reports line/column on failure.
  [[nodiscard]] static Result<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  i64 int_ = 0;
  f64 double_ = 0;
  std::string string_;
  // shared_ptr keeps Json cheap to copy; documents are treated as immutable
  // after construction except through mutable_* accessors (copy-on-write is
  // NOT provided — callers building documents own them uniquely).
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

}  // namespace vgbl
