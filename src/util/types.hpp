// Core type aliases and strongly-typed identifiers used across the VGBL
// platform. Strong id types prevent cross-wiring (e.g. passing an object id
// where a scenario id is expected) at compile time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace vgbl {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// A strongly-typed 32-bit identifier. `Tag` is a phantom type used only to
/// distinguish id families; ids are totally ordered and hashable so they can
/// key maps. Value 0 is reserved as "invalid".
template <typename Tag>
struct Id {
  u32 value = 0;

  constexpr Id() = default;
  constexpr explicit Id(u32 v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != 0; }
  constexpr auto operator<=>(const Id&) const = default;
};

struct ScenarioTag;
struct ObjectTag;
struct ItemTag;
struct RuleTag;
struct DialogueTag;
struct SegmentTag;

using ScenarioId = Id<ScenarioTag>;
using ObjectId = Id<ObjectTag>;
using ItemId = Id<ItemTag>;
using RuleId = Id<RuleTag>;
using DialogueId = Id<DialogueTag>;
using SegmentId = Id<SegmentTag>;

/// Monotonic generator handing out unique ids within one id family.
template <typename IdT>
class IdAllocator {
 public:
  /// Returns a fresh id, never 0 and never previously returned.
  IdT next() { return IdT{++last_}; }

  /// Informs the allocator that `id` is in use (e.g. after deserialising a
  /// project) so future ids do not collide with it.
  void reserve(IdT id) {
    if (id.value > last_) last_ = id.value;
  }

  [[nodiscard]] u32 high_water() const { return last_; }

 private:
  u32 last_ = 0;
};

}  // namespace vgbl

template <typename Tag>
struct std::hash<vgbl::Id<Tag>> {
  size_t operator()(const vgbl::Id<Tag>& id) const noexcept {
    return std::hash<vgbl::u32>{}(id.value);
  }
};
