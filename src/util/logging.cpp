#include "util/logging.hpp"

#include <cstdio>

namespace vgbl {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  MutexLock lock(sink_mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  MutexLock lock(sink_mutex_);
  if (sink_) {
    sink_(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
  }
}

}  // namespace vgbl
