#include "util/result.hpp"

namespace vgbl {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kCorruptData:
      return "corrupt_data";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kIoError:
      return "io_error";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

}  // namespace vgbl
