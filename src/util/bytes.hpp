// Byte-level serialization primitives: little-endian writer/reader over a
// growable buffer, with varint and length-prefixed string support. All
// container/bundle formats are built on these.
#pragma once

#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

using Bytes = std::vector<u8>;

/// Appends fixed-width little-endian scalars, varints and strings to an
/// owned buffer. Writing never fails; memory growth is amortised.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_le(v); }
  void put_u32(u32 v) { put_le(v); }
  void put_u64(u64 v) { put_le(v); }
  void put_i32(i32 v) { put_le(static_cast<u32>(v)); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v)); }

  void put_f64(f64 v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  /// LEB128 unsigned varint: compact for small values (ids, counts).
  void put_varint(u64 v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<u8>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<u8>(v));
  }

  /// Zig-zag signed varint.
  void put_svarint(i64 v) {
    put_varint((static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63));
  }

  /// Length-prefixed (varint) UTF-8 string.
  void put_string(std::string_view s) {
    put_varint(s.size());
    put_raw(s.data(), s.size());
  }

  /// Length-prefixed (varint) byte blob.
  void put_blob(std::span<const u8> b) {
    put_varint(b.size());
    put_raw(b.data(), b.size());
  }

  void put_raw(const void* data, size_t n) {
    const auto* p = static_cast<const u8*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Overwrites 4 bytes at `offset` with `v` — used to back-patch section
  /// sizes after their content has been written.
  void patch_u32(size_t offset, u32 v) {
    for (int i = 0; i < 4; ++i) buf_[offset + i] = static_cast<u8>(v >> (8 * i));
  }

  [[nodiscard]] size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }

  Bytes buf_;
};

/// Bounds-checked reader over a byte span. Every accessor returns a Result;
/// once an error is hit the reader stays usable (subsequent reads also
/// fail), so callers may batch checks at the end of a record.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] size_t position() const { return pos_; }
  [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  [[nodiscard]] Result<u8> u8_() { return get_le<u8>(); }
  [[nodiscard]] Result<u16> u16_() { return get_le<u16>(); }
  [[nodiscard]] Result<u32> u32_() { return get_le<u32>(); }
  [[nodiscard]] Result<u64> u64_() { return get_le<u64>(); }
  [[nodiscard]] Result<i32> i32_() {
    auto r = get_le<u32>();
    if (!r.ok()) return r.error();
    return static_cast<i32>(r.value());
  }
  [[nodiscard]] Result<i64> i64_() {
    auto r = get_le<u64>();
    if (!r.ok()) return r.error();
    return static_cast<i64>(r.value());
  }

  [[nodiscard]] Result<f64> f64_() {
    auto r = u64_();
    if (!r.ok()) return r.error();
    f64 v;
    u64 bits = r.value();
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] Result<u64> varint() {
    u64 v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) return truncated();
      const u8 byte = data_[pos_++];
      if (shift >= 63 && (byte & 0x7F) > 1) {
        return corrupt_data("varint overflows 64 bits");
      }
      v |= static_cast<u64>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] Result<i64> svarint() {
    auto r = varint();
    if (!r.ok()) return r.error();
    const u64 u = r.value();
    return static_cast<i64>((u >> 1) ^ (~(u & 1) + 1));
  }

  [[nodiscard]] Result<std::string> string() {
    auto len = varint();
    if (!len.ok()) return len.error();
    if (len.value() > remaining()) return truncated();
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<size_t>(len.value()));
    pos_ += static_cast<size_t>(len.value());
    return s;
  }

  [[nodiscard]] Result<Bytes> blob() {
    auto len = varint();
    if (!len.ok()) return len.error();
    if (len.value() > remaining()) return truncated();
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
    pos_ += static_cast<size_t>(len.value());
    return b;
  }

  /// A non-owning view of the next `n` bytes, advancing past them.
  [[nodiscard]] Result<std::span<const u8>> view(size_t n) {
    if (n > remaining()) return truncated();
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] Status skip(size_t n) {
    if (n > remaining()) return truncated();
    pos_ += n;
    return {};
  }

  [[nodiscard]] Status seek(size_t absolute) {
    if (absolute > data_.size()) return truncated();
    pos_ = absolute;
    return {};
  }

 private:
  static Error truncated() { return corrupt_data("unexpected end of data"); }

  template <typename T>
  [[nodiscard]] Result<T> get_le() {
    if (sizeof(T) > remaining()) return truncated();
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const u8> data_;
  size_t pos_ = 0;
};

}  // namespace vgbl
