#pragma once

// Clang Thread Safety Analysis support (DESIGN.md §5f).
//
// The macros below expand to clang's capability attributes when the tree is
// compiled with clang (`-Wthread-safety`, promoted to an error by the
// `build-clang-tsa` preset) and to nothing everywhere else, so gcc builds are
// unaffected. libstdc++'s std::mutex carries no annotations, so the analysis
// only works through the annotated wrappers at the bottom of this header:
// vgbl::Mutex plus the scoped lockers MutexLock / UniqueLock. Every
// mutex-holding class in the tree uses these wrappers; the "public method
// locks, `_locked` body requires the lock" convention is expressed with
// VGBL_REQUIRES on the `_locked` delegate.

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VGBL_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef VGBL_THREAD_ANNOTATION
#define VGBL_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// A type that acts as a lock: vgbl::Mutex below, or any future capability.
#define VGBL_CAPABILITY(x) VGBL_THREAD_ANNOTATION(capability(x))

// RAII types whose lifetime equals the period the capability is held.
#define VGBL_SCOPED_CAPABILITY VGBL_THREAD_ANNOTATION(scoped_lockable)

// Data members that may only be touched while the named capability is held.
#define VGBL_GUARDED_BY(x) VGBL_THREAD_ANNOTATION(guarded_by(x))
#define VGBL_PT_GUARDED_BY(x) VGBL_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions that must be called with the capability already held — this is
// the `_locked` contract: the public wrapper acquires, the `_locked` body
// declares VGBL_REQUIRES and the compiler rejects any unlocked call path.
#define VGBL_REQUIRES(...) \
  VGBL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define VGBL_REQUIRES_SHARED(...) \
  VGBL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions that acquire / release the capability themselves.
#define VGBL_ACQUIRE(...) VGBL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VGBL_RELEASE(...) VGBL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define VGBL_TRY_ACQUIRE(...) \
  VGBL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Functions that must NOT be called while holding the capability
// (self-deadlock guard for public methods that lock internally).
#define VGBL_EXCLUDES(...) VGBL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define VGBL_ASSERT_CAPABILITY(x) \
  VGBL_THREAD_ANNOTATION(assert_capability(x))
#define VGBL_RETURN_CAPABILITY(x) VGBL_THREAD_ANNOTATION(lock_returned(x))
#define VGBL_NO_THREAD_SAFETY_ANALYSIS \
  VGBL_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vgbl {

// Annotated drop-in for std::mutex. Same cost (it IS a std::mutex), but the
// capability attribute lets clang track acquire/release through it.
class VGBL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VGBL_ACQUIRE() { inner_.lock(); }
  void unlock() VGBL_RELEASE() { inner_.unlock(); }
  bool try_lock() VGBL_TRY_ACQUIRE(true) { return inner_.try_lock(); }

 private:
  std::mutex inner_;
};

// lock_guard-style scoped locker: held for the full scope, never released
// early. Use for plain critical sections.
class VGBL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) VGBL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() VGBL_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// unique_lock-style scoped locker: relockable, so it satisfies BasicLockable
// for std::condition_variable_any::wait and supports the unlock-before-notify
// pattern in BoundedQueue. The destructor releases only if still owned.
class VGBL_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) VGBL_ACQUIRE(mutex)
      : mutex_(mutex), owned_(true) {
    mutex_.lock();
  }
  ~UniqueLock() VGBL_RELEASE() {
    if (owned_) mutex_.unlock();
  }

  void lock() VGBL_ACQUIRE() {
    mutex_.lock();
    owned_ = true;
  }
  void unlock() VGBL_RELEASE() {
    mutex_.unlock();
    owned_ = false;
  }
  [[nodiscard]] bool owns_lock() const { return owned_; }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mutex_;
  bool owned_;
};

}  // namespace vgbl
