// Lightweight error handling: `Error` (code + human message) and
// `Result<T>` (value-or-error). Used instead of exceptions on all fallible
// library boundaries, per the project's no-exceptions-on-hot-paths rule.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace vgbl {

/// Machine-readable error category. Keep coarse; the message carries detail.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruptData,
  kUnsupported,
  kFailedPrecondition,
  kResourceExhausted,
  kIoError,
  kTimeout,
  kInternal,
};

/// Returns a stable lowercase name for an error code (used in logs/tests).
const char* error_code_name(ErrorCode code);

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  [[nodiscard]] std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

/// Value-or-error. `ok()` must be checked before `value()`; accessing the
/// wrong alternative asserts in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : data_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialisation for operations with no payload.
class Status {
 public:
  Status() = default;                                 // success
  Status(Error err) : error_(std::move(err)), failed_(true) {}  // NOLINT

  static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

/// Convenience constructors mirroring absl-style factories.
inline Error invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Error not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Error already_exists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Error out_of_range(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Error corrupt_data(std::string msg) {
  return {ErrorCode::kCorruptData, std::move(msg)};
}
inline Error unsupported(std::string msg) {
  return {ErrorCode::kUnsupported, std::move(msg)};
}
inline Error failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Error resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Error io_error(std::string msg) {
  return {ErrorCode::kIoError, std::move(msg)};
}
inline Error timeout_error(std::string msg) {
  return {ErrorCode::kTimeout, std::move(msg)};
}
inline Error internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

}  // namespace vgbl
