// Bit-granular writer/reader used by the video codec's entropy stage.
// Bits are packed MSB-first within each byte so streams are byte-dump
// debuggable and platform-independent.
#pragma once

#include <span>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

class BitWriter {
 public:
  /// Appends the low `count` bits of `bits` (MSB of the group first).
  /// count must be in [0, 57] so the accumulator cannot overflow.
  void put_bits(u64 bits, int count) {
    acc_ = (acc_ << count) | (bits & mask(count));
    filled_ += count;
    while (filled_ >= 8) {
      filled_ -= 8;
      buf_.push_back(static_cast<u8>(acc_ >> filled_));
    }
  }

  void put_bit(bool b) { put_bits(b ? 1 : 0, 1); }

  /// Exponential-Golomb-style unsigned code: efficient for the
  /// small-magnitude-dominated residuals the codec produces.
  void put_ue(u32 v) {
    const u64 x = static_cast<u64>(v) + 1;
    int len = 0;
    for (u64 t = x; t > 1; t >>= 1) ++len;
    put_bits(0, len);
    put_bits(x, len + 1);
  }

  /// Signed exp-Golomb via zig-zag mapping.
  void put_se(i32 v) {
    const u32 z = (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
    put_ue(z);
  }

  /// Flushes partial bits padded with zeros and returns the byte stream.
  [[nodiscard]] Bytes finish() && {
    if (filled_ > 0) {
      buf_.push_back(static_cast<u8>(acc_ << (8 - filled_)));
      filled_ = 0;
    }
    return std::move(buf_);
  }

  [[nodiscard]] size_t bit_count() const { return buf_.size() * 8 + filled_; }

 private:
  static constexpr u64 mask(int count) {
    return count >= 64 ? ~0ULL : (1ULL << count) - 1;
  }

  Bytes buf_;
  u64 acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const u8> data) : data_(data) {}

  /// Reads `count` bits (MSB-first); fails on stream exhaustion.
  [[nodiscard]] Result<u64> bits(int count) {
    u64 v = 0;
    for (int i = 0; i < count; ++i) {
      auto b = bit();
      if (!b.ok()) return b.error();
      v = (v << 1) | (b.value() ? 1 : 0);
    }
    return v;
  }

  [[nodiscard]] Result<bool> bit() {
    const size_t byte = pos_ >> 3;
    if (byte >= data_.size()) return corrupt_data("bitstream exhausted");
    const bool v = (data_[byte] >> (7 - (pos_ & 7))) & 1;
    ++pos_;
    return v;
  }

  [[nodiscard]] Result<u32> ue() {
    int zeros = 0;
    while (true) {
      auto b = bit();
      if (!b.ok()) return b.error();
      if (b.value()) break;
      if (++zeros > 32) return corrupt_data("exp-golomb prefix too long");
    }
    auto rest = bits(zeros);
    if (!rest.ok()) return rest.error();
    const u64 x = (1ULL << zeros) | rest.value();
    return static_cast<u32>(x - 1);
  }

  [[nodiscard]] Result<i32> se() {
    auto z = ue();
    if (!z.ok()) return z.error();
    const u32 u = z.value();
    return static_cast<i32>((u >> 1) ^ (~(u & 1) + 1));
  }

  [[nodiscard]] size_t bit_position() const { return pos_; }

 private:
  std::span<const u8> data_;
  size_t pos_ = 0;
};

}  // namespace vgbl
