// Bit-granular writer/reader used by the video codec's entropy stage.
// Bits are packed MSB-first within each byte so streams are byte-dump
// debuggable and platform-independent.
#pragma once

#include <bit>
#include <span>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

class BitWriter {
 public:
  /// Appends the low `count` bits of `bits` (MSB of the group first).
  /// count must be in [0, 57] so the accumulator cannot overflow.
  void put_bits(u64 bits, int count) {
    acc_ = (acc_ << count) | (bits & mask(count));
    filled_ += count;
    while (filled_ >= 8) {
      filled_ -= 8;
      buf_.push_back(static_cast<u8>(acc_ >> filled_));
    }
  }

  void put_bit(bool b) { put_bits(b ? 1 : 0, 1); }

  /// Exponential-Golomb-style unsigned code: efficient for the
  /// small-magnitude-dominated residuals the codec produces.
  void put_ue(u32 v) {
    const u64 x = static_cast<u64>(v) + 1;
    int len = 0;
    for (u64 t = x; t > 1; t >>= 1) ++len;
    put_bits(0, len);
    put_bits(x, len + 1);
  }

  /// Signed exp-Golomb via zig-zag mapping.
  void put_se(i32 v) {
    const u32 z = (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
    put_ue(z);
  }

  /// Flushes partial bits padded with zeros and returns the byte stream.
  [[nodiscard]] Bytes finish() && {
    if (filled_ > 0) {
      buf_.push_back(static_cast<u8>(acc_ << (8 - filled_)));
      filled_ = 0;
    }
    return std::move(buf_);
  }

  [[nodiscard]] size_t bit_count() const { return buf_.size() * 8 + filled_; }

 private:
  static constexpr u64 mask(int count) {
    return count >= 64 ? ~0ULL : (1ULL << count) - 1;
  }

  Bytes buf_;
  u64 acc_ = 0;
  int filled_ = 0;
};

/// Accumulator-based reader: bytes are pulled into a 64-bit MSB-first
/// window so `ue`/`se`/`bits` run on shifts and a count-leading-zeros
/// instead of one bounds-checked call per bit. This is the video codec's
/// entropy-decode hot loop (ISSUE 9); parsing semantics and error
/// behaviour are unchanged from the per-bit reader it replaced.
class BitReader {
 public:
  explicit BitReader(std::span<const u8> data) : data_(data) {}

  /// Reads `count` bits (MSB-first); fails on stream exhaustion.
  [[nodiscard]] Result<u64> bits(int count) {
    if (count <= 0) return u64{0};
    if (count > 57) {  // split so the accumulator cannot overflow
      auto hi = bits(count - 32);
      if (!hi.ok()) return hi;
      auto lo = bits(32);
      if (!lo.ok()) return lo;
      return (hi.value() << 32) | lo.value();
    }
    refill();
    if (count > acc_bits_) return exhausted();
    acc_bits_ -= count;
    return (acc_ >> acc_bits_) & mask(count);
  }

  [[nodiscard]] Result<bool> bit() {
    refill();
    if (acc_bits_ == 0) return exhausted();
    --acc_bits_;
    return ((acc_ >> acc_bits_) & 1) != 0;
  }

  [[nodiscard]] Result<u32> ue() {
    refill();
    const int avail = acc_bits_;
    const u64 window = avail == 0 ? 0 : acc_ << (64 - avail);
    const int zeros = window == 0 ? avail : std::countl_zero(window);
    if (zeros > 32) return corrupt_data("exp-golomb prefix too long");
    // refill() tops up to > 56 bits whenever bytes remain, so a prefix
    // spanning the whole window means the stream ended mid-code.
    if (zeros >= avail) return exhausted();
    acc_bits_ -= zeros + 1;  // consume the zero prefix and its 1 terminator
    auto rest = bits(zeros);
    if (!rest.ok()) return rest.error();
    const u64 x = (1ULL << zeros) | rest.value();
    return static_cast<u32>(x - 1);
  }

  [[nodiscard]] Result<i32> se() {
    auto z = ue();
    if (!z.ok()) return z.error();
    const u32 u = z.value();
    return static_cast<i32>((u >> 1) ^ (~(u & 1) + 1));
  }

  [[nodiscard]] size_t bit_position() const {
    return byte_pos_ * 8 - static_cast<size_t>(acc_bits_);
  }

 private:
  static constexpr u64 mask(int count) {
    return count >= 64 ? ~0ULL : (1ULL << count) - 1;
  }

  static Error exhausted() { return corrupt_data("bitstream exhausted"); }

  void refill() {
    while (acc_bits_ <= 56 && byte_pos_ < data_.size()) {
      acc_ = (acc_ << 8) | data_[byte_pos_++];
      acc_bits_ += 8;
    }
  }

  std::span<const u8> data_;
  size_t byte_pos_ = 0;  ///< bytes pulled into the accumulator so far
  u64 acc_ = 0;          ///< low acc_bits_ bits are unconsumed input
  int acc_bits_ = 0;
};

}  // namespace vgbl
