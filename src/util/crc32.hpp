// CRC-32 (IEEE 802.3 polynomial, reflected). Used for bitstream and bundle
// integrity checks so corrupt data is rejected instead of mis-decoded.
#pragma once

#include <span>

#include "util/types.hpp"

namespace vgbl {

/// One-shot CRC-32 of a byte span.
[[nodiscard]] u32 crc32(std::span<const u8> data);

/// Incremental CRC-32 for streamed writers.
class Crc32 {
 public:
  void update(std::span<const u8> data);
  void update_byte(u8 b);
  [[nodiscard]] u32 value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  u32 state_ = 0xFFFFFFFFu;
};

}  // namespace vgbl
