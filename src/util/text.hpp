// Small string utilities shared by the text project format, logging and
// report generation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vgbl {

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Joins parts with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Escapes a string for embedding in the JSON-subset text format.
[[nodiscard]] std::string escape_json(std::string_view s);

/// Left-pads/truncates to exactly `width` columns (used by ASCII UI).
[[nodiscard]] std::string pad_right(std::string_view s, size_t width);

/// printf-style float formatting with fixed precision.
[[nodiscard]] std::string format_double(double v, int precision);

/// Human-readable byte count, e.g. "12.4 KiB".
[[nodiscard]] std::string format_bytes(std::uint64_t n);

}  // namespace vgbl
