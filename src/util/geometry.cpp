#include "util/geometry.hpp"

namespace vgbl {

std::string to_string(Point p) {
  return "(" + std::to_string(p.x) + ", " + std::to_string(p.y) + ")";
}

std::string to_string(Size s) {
  return std::to_string(s.width) + "x" + std::to_string(s.height);
}

std::string to_string(const Rect& r) {
  return "[" + std::to_string(r.x) + ", " + std::to_string(r.y) + ", " +
         std::to_string(r.width) + "x" + std::to_string(r.height) + "]";
}

}  // namespace vgbl
