#include "util/crc32.hpp"

#include <array>

namespace vgbl {
namespace {

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

void Crc32::update_byte(u8 b) {
  state_ = kTable[(state_ ^ b) & 0xFF] ^ (state_ >> 8);
}

void Crc32::update(std::span<const u8> data) {
  for (u8 b : data) update_byte(b);
}

u32 crc32(std::span<const u8> data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace vgbl
