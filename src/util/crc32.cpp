#include "util/crc32.hpp"

#include <array>

namespace vgbl {
namespace {

/// Slicing-by-8 tables. t[0] is the classic byte-at-a-time table; t[j]
/// advances a byte through j further zero bytes, so eight lookups retire
/// eight input bytes per iteration. The polynomial (and therefore every
/// CRC value) is unchanged from the byte-wise implementation — frame and
/// bundle checksums written before this existed still verify.
struct CrcTables {
  u32 t[8][256];
};

constexpr CrcTables make_tables() {
  CrcTables tb{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    tb.t[0][i] = c;
  }
  for (u32 i = 0; i < 256; ++i) {
    u32 c = tb.t[0][i];
    for (int j = 1; j < 8; ++j) {
      c = tb.t[0][c & 0xFF] ^ (c >> 8);
      tb.t[j][i] = c;
    }
  }
  return tb;
}

constexpr auto kTables = make_tables();

constexpr u32 load_le32(const u8* p) {
  return static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
         static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
}

}  // namespace

void Crc32::update_byte(u8 b) {
  state_ = kTables.t[0][(state_ ^ b) & 0xFF] ^ (state_ >> 8);
}

void Crc32::update(std::span<const u8> data) {
  u32 s = state_;
  const u8* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    const u32 lo = s ^ load_le32(p);
    const u32 hi = load_le32(p + 4);
    s = kTables.t[7][lo & 0xFF] ^ kTables.t[6][(lo >> 8) & 0xFF] ^
        kTables.t[5][(lo >> 16) & 0xFF] ^ kTables.t[4][lo >> 24] ^
        kTables.t[3][hi & 0xFF] ^ kTables.t[2][(hi >> 8) & 0xFF] ^
        kTables.t[1][(hi >> 16) & 0xFF] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n) {
    s = kTables.t[0][(s ^ *p++) & 0xFF] ^ (s >> 8);
  }
  state_ = s;
}

u32 crc32(std::span<const u8> data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace vgbl
