#include "util/text.hpp"

#include <cctype>
#include <cstdio>

namespace vgbl {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string pad_right(std::string_view s, size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string format_bytes(std::uint64_t n) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(n);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return std::to_string(n) + " B";
  return format_double(v, 1) + " " + units[u];
}

}  // namespace vgbl
