// Shared binary-file helpers for the persistence-shaped subsystems
// (src/persist session store, src/rewards badge store). Moved down from
// src/persist so stores outside that layer can share the atomic-write
// discipline without depending on the session-store stack.
#pragma once

#include <span>
#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace vgbl {

/// Reads a whole file. kNotFound when absent, kIoError on read failure.
[[nodiscard]] Result<Bytes> read_binary_file(const std::string& path);

/// Writes `data` atomically: to `path + ".tmp"`, then rename over `path`.
/// Readers therefore never observe a half-written file.
[[nodiscard]] Status write_binary_file_atomic(const std::string& path,
                                              std::span<const u8> data);

}  // namespace vgbl
