#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/text.hpp"

namespace vgbl {

void JsonObject::set(std::string key, Json value) {
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const Json* JsonObject::find(std::string_view key) const {
  for (const auto& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonArray& Json::mutable_array() {
  if (kind_ != Kind::kArray) {
    kind_ = Kind::kArray;
    array_ = std::make_shared<JsonArray>();
  }
  return *array_;
}

JsonObject& Json::mutable_object() {
  if (kind_ != Kind::kObject) {
    kind_ = Kind::kObject;
    object_ = std::make_shared<JsonObject>();
  }
  return *object_;
}

const JsonArray& Json::as_array() const {
  static const JsonArray kEmpty;
  return is_array() ? *array_ : kEmpty;
}

const JsonObject& Json::as_object() const {
  static const JsonObject kEmpty;
  return is_object() ? *object_ : kEmpty;
}

const Json& Json::operator[](std::string_view key) const {
  static const Json kNull;
  if (!is_object()) return kNull;
  const Json* v = object_->find(key);
  return v ? *v : kNull;
}

namespace {

/// Recursive-descent JSON parser with a depth limit to bound stack use on
/// hostile inputs (failure-injection tests feed arbitrary bytes here).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Result<Json> parse() {
    auto v = value(0);
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[nodiscard]] Result<Json> value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"': {
        auto s = string();
        if (!s.ok()) return s.error();
        return Json(std::move(s.value()));
      }
      case 't':
        return literal("true", Json(true));
      case 'f':
        return literal("false", Json(false));
      case 'n':
        return literal("null", Json());
      default:
        return number();
    }
  }

  [[nodiscard]] Result<Json> literal(std::string_view word, Json result) {
    if (text_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return result;
  }

  [[nodiscard]] Result<Json> object(int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected member name");
      auto key = string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (peek() != ':') return fail("expected ':' after member name");
      ++pos_;
      auto val = value(depth + 1);
      if (!val.ok()) return val;
      obj.set(std::move(key.value()), std::move(val.value()));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      return fail("expected ',' or '}' in object");
    }
  }

  [[nodiscard]] Result<Json> array(int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      auto val = value(depth + 1);
      if (!val.ok()) return val;
      arr.push_back(std::move(val.value()));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      return fail("expected ',' or ']' in array");
    }
  }

  [[nodiscard]] Result<std::string> string() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            u32 cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9')
                cp |= static_cast<u32>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<u32>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<u32>(h - 'A' + 10);
              else
                return fail("bad hex digit in \\u escape");
            }
            // Encode the BMP code point as UTF-8 (surrogate pairs are kept
            // as-is; the project format only emits BMP escapes).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  [[nodiscard]] Result<Json> number() {
    const size_t start = pos_;
    bool is_double = false;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("invalid number");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (is_double) {
      char* end = nullptr;
      const f64 v = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) return fail("invalid number");
      return Json(v);
    }
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    return Json(static_cast<i64>(v));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Error fail(std::string_view what) const {
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return corrupt_data(std::string(what) + " at line " + std::to_string(line) +
                        ", column " + std::to_string(col));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void append_number(std::string& out, f64 v) {
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
    // %.17g prints whole values without a fraction ("2", not "2.0"), which
    // the parser would re-type as kInt and break typed round-trips (e.g.
    // PropertyBag doubles). Force a marker that keeps the token a double.
    if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos) {
      out += ".0";
    }
  } else {
    out += "null";  // JSON cannot represent inf/nan
  }
}

}  // namespace

Result<Json> Json::parse(std::string_view text) { return Parser(text).parse(); }

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };

  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kDouble:
      append_number(out, double_);
      break;
    case Kind::kString:
      out += '"';
      out += escape_json(string_);
      out += '"';
      break;
    case Kind::kArray: {
      const auto& arr = *array_;
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      const auto& obj = *object_;
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj.members()) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += escape_json(key);
        out += "\":";
        if (pretty) out += ' ';
        value.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace vgbl
