// Integer 2D geometry used for frame coordinates, object placement and
// hit-testing. Coordinates follow raster convention: x grows right, y grows
// down, rectangles are half-open on neither side (width/height counts).
#pragma once

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/types.hpp"

namespace vgbl {

struct Point {
  i32 x = 0;
  i32 y = 0;

  constexpr auto operator<=>(const Point&) const = default;
  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

struct Size {
  i32 width = 0;
  i32 height = 0;

  constexpr auto operator<=>(const Size&) const = default;
  [[nodiscard]] constexpr i64 area() const {
    return static_cast<i64>(width) * height;
  }
  [[nodiscard]] constexpr bool empty() const { return width <= 0 || height <= 0; }
};

/// Axis-aligned rectangle: origin (top-left) + size. A point is inside when
/// origin <= p < origin + size (half-open, raster convention).
struct Rect {
  i32 x = 0;
  i32 y = 0;
  i32 width = 0;
  i32 height = 0;

  constexpr Rect() = default;
  constexpr Rect(i32 x_, i32 y_, i32 w, i32 h) : x(x_), y(y_), width(w), height(h) {}
  constexpr Rect(Point origin, Size size)
      : x(origin.x), y(origin.y), width(size.width), height(size.height) {}

  constexpr auto operator<=>(const Rect&) const = default;

  [[nodiscard]] constexpr Point origin() const { return {x, y}; }
  [[nodiscard]] constexpr Size size() const { return {width, height}; }
  [[nodiscard]] constexpr i32 right() const { return x + width; }
  [[nodiscard]] constexpr i32 bottom() const { return y + height; }
  [[nodiscard]] constexpr Point center() const {
    return {x + width / 2, y + height / 2};
  }
  [[nodiscard]] constexpr bool empty() const { return width <= 0 || height <= 0; }

  [[nodiscard]] constexpr bool contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }

  [[nodiscard]] constexpr bool intersects(const Rect& o) const {
    return x < o.right() && o.x < right() && y < o.bottom() && o.y < bottom();
  }

  /// Intersection; empty rect (w==h==0 at the clamped origin) when disjoint.
  [[nodiscard]] constexpr Rect intersection(const Rect& o) const {
    const i32 nx = std::max(x, o.x);
    const i32 ny = std::max(y, o.y);
    const i32 nr = std::min(right(), o.right());
    const i32 nb = std::min(bottom(), o.bottom());
    if (nr <= nx || nb <= ny) return {nx, ny, 0, 0};
    return {nx, ny, nr - nx, nb - ny};
  }

  /// Smallest rect containing both (treats empty operands as identity).
  [[nodiscard]] constexpr Rect united(const Rect& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    const i32 nx = std::min(x, o.x);
    const i32 ny = std::min(y, o.y);
    return {nx, ny, std::max(right(), o.right()) - nx,
            std::max(bottom(), o.bottom()) - ny};
  }

  [[nodiscard]] Rect translated(Point d) const {
    return {x + d.x, y + d.y, width, height};
  }

  /// Clamps this rect so it fits inside `bounds` (shrinking if necessary).
  [[nodiscard]] constexpr Rect clamped_to(const Rect& bounds) const {
    return intersection(bounds);
  }
};

/// Manhattan distance between points; used by bot players to pick the
/// nearest interactive object.
[[nodiscard]] constexpr i32 manhattan_distance(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

[[nodiscard]] std::string to_string(Point p);
[[nodiscard]] std::string to_string(Size s);
[[nodiscard]] std::string to_string(const Rect& r);

}  // namespace vgbl
