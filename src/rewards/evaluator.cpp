#include "rewards/evaluator.hpp"

#include <algorithm>
#include <utility>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"

namespace vgbl::rewards {
namespace {

struct EvaluatorMetrics {
  obs::Counter& events;
  obs::Counter& rule_evals;
  obs::Counter& unlocks;

  static EvaluatorMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static EvaluatorMetrics m{
        reg.counter("rewards_events_total",
                    "session events fed to reward evaluators"),
        reg.counter("rewards_rule_evals_total",
                    "reward rule evaluations (subscribed, not yet unlocked)"),
        reg.counter("rewards_unlocks_total", "badges unlocked in sessions")};
    return m;
  }
};

/// Whether `rule.target` accepts an event with subject `name` and
/// secondary attribute `detail`. Empty target = accept everything.
bool target_matches(const RewardRule& rule, const std::string& name,
                    const std::string& detail) {
  return rule.target.empty() || rule.target == name || rule.target == detail;
}

}  // namespace

RewardEvaluator::RewardEvaluator(const RewardRuleSet* rules) : rules_(rules) {
  if (rules_ != nullptr) {
    state_.progress.assign(rules_->size(), 0);
    state_.unlocked.assign(rules_->size(), 0);
  }
}

void RewardEvaluator::unlock(size_t index, MicroTime now) {
  state_.unlocked[index] = 1;
  const RewardRule& rule = rules_->at(index);
  state_.unlocks.push_back(
      {now, rule.id, rule.badge, rule.bonus_points});
  VGBL_COUNT(EvaluatorMetrics::get().unlocks);
}

void RewardEvaluator::bump(size_t index, i64 amount, MicroTime now) {
  state_.progress[index] += amount;
  if (state_.progress[index] >= rules_->at(index).threshold) {
    unlock(index, now);
  }
}

void RewardEvaluator::feed(const RewardEvent& event) {
  if (rules_ == nullptr) return;
  EvaluatorMetrics& metrics = EvaluatorMetrics::get();
  VGBL_COUNT(metrics.events);

  // Kind-specific shared bookkeeping, before per-rule matching.
  TriggerKind primary;
  switch (event.kind) {
    case RewardEvent::Kind::kScenarioEntered: {
      primary = TriggerKind::kScenarioEntered;
      const auto it = std::lower_bound(state_.scenarios_explored.begin(),
                                       state_.scenarios_explored.end(),
                                       event.name);
      if (it == state_.scenarios_explored.end() || *it != event.name) {
        state_.scenarios_explored.insert(it, event.name);
      }
      for (u32 index : rules_->subscribed(TriggerKind::kScenariosExplored)) {
        if (state_.unlocked[index] != 0) continue;
        VGBL_COUNT(metrics.rule_evals);
        state_.progress[index] =
            static_cast<i64>(state_.scenarios_explored.size());
        if (state_.progress[index] >= rules_->at(index).threshold) {
          unlock(index, event.when);
        }
      }
      break;
    }
    case RewardEvent::Kind::kGameCompleted:
      primary = TriggerKind::kGameCompleted;
      if (state_.completion_seen) return;
      state_.completion_seen = true;
      if (!event.success) return;
      break;
    case RewardEvent::Kind::kInteraction: {
      primary = TriggerKind::kObjectInteracted;
      // Streak rules ride every interaction regardless of target.
      if (state_.streak_active) {
        state_.streak_length += 1;
      } else {
        state_.streak_active = true;
        state_.streak_length = 1;
      }
      for (u32 index : rules_->subscribed(TriggerKind::kInteractionStreak)) {
        if (state_.unlocked[index] != 0) continue;
        VGBL_COUNT(metrics.rule_evals);
        const RewardRule& rule = rules_->at(index);
        if (state_.streak_length > 1 &&
            event.when - state_.streak_last > rule.window) {
          // Gap too long for this rule: its streak restarts here. Streak
          // state is shared (one chain of interactions), so the chain is
          // reset for every streak rule; with one streak rule per set —
          // the common case — that is exact.
          state_.streak_length = 1;
        }
        state_.progress[index] = state_.streak_length;
        if (state_.streak_length >= rule.threshold) {
          unlock(index, event.when);
        }
      }
      state_.streak_last = event.when;
      break;
    }
    case RewardEvent::Kind::kItemCollected:
      primary = TriggerKind::kItemCollected;
      break;
    case RewardEvent::Kind::kItemUsed:
      primary = TriggerKind::kItemUsed;
      break;
    case RewardEvent::Kind::kDialogueDecision:
      primary = TriggerKind::kDialogueDecision;
      break;
    case RewardEvent::Kind::kQuizOutcome:
      primary = TriggerKind::kQuizPassed;
      if (!event.success) return;
      break;
  }

  for (u32 index : rules_->subscribed(primary)) {
    if (state_.unlocked[index] != 0) continue;
    VGBL_COUNT(metrics.rule_evals);
    if (!target_matches(rules_->at(index), event.name, event.detail)) continue;
    bump(index, 1, event.when);
  }
}

void RewardEvaluator::observe_score(i64 total, MicroTime now) {
  if (rules_ == nullptr) return;
  for (u32 index : rules_->subscribed(TriggerKind::kScoreReached)) {
    if (state_.unlocked[index] != 0) continue;
    VGBL_COUNT(EvaluatorMetrics::get().rule_evals);
    state_.progress[index] = total;
    if (total >= rules_->at(index).threshold) {
      unlock(index, now);
    }
  }
}

void RewardEvaluator::mark_consumed(u32 interactions, u32 items,
                                    u32 decisions, u32 visits) {
  state_.interactions_seen = interactions;
  state_.items_seen = items;
  state_.decisions_seen = decisions;
  state_.visits_seen = visits;
}

std::vector<Unlock> RewardEvaluator::take_pending() {
  std::vector<Unlock> fresh(state_.unlocks.begin() +
                                static_cast<std::ptrdiff_t>(pending_from_),
                            state_.unlocks.end());
  pending_from_ = state_.unlocks.size();
  return fresh;
}

i64 RewardEvaluator::total_bonus_points() const {
  i64 total = 0;
  for (const Unlock& u : state_.unlocks) total += u.points;
  return total;
}

Status RewardEvaluator::restore_state(EvaluatorState state) {
  const size_t rule_count = rules_ != nullptr ? rules_->size() : 0;
  if (state.progress.size() != rule_count ||
      state.unlocked.size() != rule_count) {
    return failed_precondition(
        "rewards state does not match the configured rule set (" +
        std::to_string(state.progress.size()) + " rules saved, " +
        std::to_string(rule_count) + " configured)");
  }
  if (!std::is_sorted(state.scenarios_explored.begin(),
                      state.scenarios_explored.end())) {
    return corrupt_data("rewards state: explored scenarios not sorted");
  }
  state_ = std::move(state);
  // Everything already in the restored log was awarded before the capture;
  // only unlocks appended after this point are new.
  pending_from_ = state_.unlocks.size();
  return {};
}

Bytes encode_unlock_log(const std::vector<Unlock>& unlocks) {
  ByteWriter w;
  w.put_varint(unlocks.size());
  for (const Unlock& u : unlocks) {
    w.put_i64(u.sim_time);
    w.put_u32(u.rule_id);
    w.put_string(u.badge);
    w.put_svarint(u.points);
  }
  return std::move(w).take();
}

Result<std::vector<Unlock>> decode_unlock_log(std::span<const u8> data) {
  ByteReader r(data);
  auto count = r.varint();
  if (!count.ok()) return count.error();
  if (count.value() > data.size()) {
    return corrupt_data("unlock log count exceeds payload");
  }
  std::vector<Unlock> out;
  out.reserve(count.value());
  for (u64 i = 0; i < count.value(); ++i) {
    auto when = r.i64_();
    auto rule = r.u32_();
    auto badge = r.string();
    auto points = r.svarint();
    if (!when.ok()) return when.error();
    if (!rule.ok()) return rule.error();
    if (!badge.ok()) return badge.error();
    if (!points.ok()) return points.error();
    out.push_back({when.value(), rule.value(), std::move(badge).value(),
                   points.value()});
  }
  if (!r.at_end()) return corrupt_data("trailing bytes after unlock log");
  return out;
}

}  // namespace vgbl::rewards
