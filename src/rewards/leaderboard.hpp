// Classroom-wide leaderboards: deterministic ranking over per-student
// badge/score totals, built by simulate_classroom (live session results)
// or from a BadgeStore (durable cross-session totals), and exported
// through the obs gauges so a Prometheus/JSON scrape carries the current
// standings (PAPERS.md: the EViE-m platform motivates classroom-wide
// score aggregation).
//
// Determinism: ranking orders by (total points desc, badges desc,
// student id asc) — every tie is broken by the student id, so the same
// inputs always produce the same row order regardless of how the rows
// were gathered.
#pragma once

#include <string>
#include <vector>

#include "rewards/badge_store.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace vgbl::rewards {

struct LeaderboardRow {
  int rank = 0;  ///< 1-based; rows with equal points and badges share rank
  std::string student_id;
  int badges = 0;
  i64 badge_points = 0;  ///< bonus points from unlocks
  i64 score = 0;         ///< gameplay score, excluding badge bonuses
  std::vector<std::string> badge_names;  ///< in unlock order

  [[nodiscard]] i64 total_points() const { return score + badge_points; }
};

struct Leaderboard {
  std::vector<LeaderboardRow> rows;  ///< rank order

  /// Teacher-facing plain-text table.
  [[nodiscard]] std::string report() const;
  /// Machine-readable form (CLI --rewards output, gradebook export).
  [[nodiscard]] Json to_json() const;
};

/// Sorts and ranks `rows` (rank fields are overwritten).
[[nodiscard]] Leaderboard build_leaderboard(std::vector<LeaderboardRow> rows);

/// Leaderboard over a badge store's durable totals. Scores are the
/// stores' badge points (the store does not persist session ledgers).
[[nodiscard]] Leaderboard leaderboard_from_store(const BadgeStore& store);

/// Publishes the standings as obs gauges (rewards_leaderboard_*): ranked
/// student count, top total points, and total badges granted.
void export_leaderboard_metrics(const Leaderboard& board);

}  // namespace vgbl::rewards
