#include "rewards/leaderboard.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"

namespace vgbl::rewards {
namespace {

struct LeaderboardMetrics {
  obs::Gauge& students;
  obs::Gauge& top_points;
  obs::Gauge& total_badges;

  static LeaderboardMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static LeaderboardMetrics m{
        reg.gauge("rewards_leaderboard_students",
                  "students on the latest classroom leaderboard"),
        reg.gauge("rewards_leaderboard_top_points",
                  "total points of the leaderboard leader"),
        reg.gauge("rewards_leaderboard_badges",
                  "badges held across the latest leaderboard")};
    return m;
  }
};

}  // namespace

Leaderboard build_leaderboard(std::vector<LeaderboardRow> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const LeaderboardRow& a, const LeaderboardRow& b) {
              if (a.total_points() != b.total_points()) {
                return a.total_points() > b.total_points();
              }
              if (a.badges != b.badges) return a.badges > b.badges;
              return a.student_id < b.student_id;
            });
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0 && rows[i].total_points() == rows[i - 1].total_points() &&
        rows[i].badges == rows[i - 1].badges) {
      rows[i].rank = rows[i - 1].rank;
    } else {
      rows[i].rank = static_cast<int>(i) + 1;
    }
  }
  Leaderboard board;
  board.rows = std::move(rows);
  return board;
}

Leaderboard leaderboard_from_store(const BadgeStore& store) {
  std::vector<LeaderboardRow> rows;
  for (const StudentBadges& record : store.all()) {
    LeaderboardRow row;
    row.student_id = record.student_id;
    row.badges = static_cast<int>(record.grants.size());
    row.badge_points = record.total_points;
    for (const BadgeGrant& grant : record.grants) {
      row.badge_names.push_back(grant.badge);
    }
    rows.push_back(std::move(row));
  }
  return build_leaderboard(std::move(rows));
}

std::string Leaderboard::report() const {
  std::string out;
  out += "rank  student           points  badges\n";
  char line[160];
  for (const LeaderboardRow& row : rows) {
    std::snprintf(line, sizeof line, "%4d  %-16s  %6lld  %6d",
                  row.rank, row.student_id.c_str(),
                  static_cast<long long>(row.total_points()), row.badges);
    out += line;
    if (!row.badge_names.empty()) {
      out += "  [";
      for (size_t i = 0; i < row.badge_names.size(); ++i) {
        if (i > 0) out += ", ";
        out += row.badge_names[i];
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

Json Leaderboard::to_json() const {
  JsonArray entries;
  for (const LeaderboardRow& row : rows) {
    JsonObject o;
    o.set("rank", Json(row.rank));
    o.set("student", Json(row.student_id));
    o.set("total_points", Json(row.total_points()));
    o.set("badge_points", Json(row.badge_points));
    o.set("score", Json(row.score));
    o.set("badges", Json(row.badges));
    JsonArray names;
    for (const std::string& name : row.badge_names) {
      names.emplace_back(name);
    }
    o.set("badge_names", Json(std::move(names)));
    entries.push_back(Json(std::move(o)));
  }
  JsonObject root;
  root.set("students", Json(static_cast<i64>(rows.size())));
  root.set("leaderboard", Json(std::move(entries)));
  return Json(std::move(root));
}

void export_leaderboard_metrics(const Leaderboard& board) {
  LeaderboardMetrics& metrics = LeaderboardMetrics::get();
  i64 total_badges = 0;
  for (const LeaderboardRow& row : board.rows) total_badges += row.badges;
  VGBL_GAUGE_SET(metrics.students, static_cast<f64>(board.rows.size()));
  VGBL_GAUGE_SET(metrics.top_points,
                 board.rows.empty()
                     ? 0.0
                     : static_cast<f64>(board.rows.front().total_points()));
  VGBL_GAUGE_SET(metrics.total_badges, static_cast<f64>(total_badges));
}

}  // namespace vgbl::rewards
