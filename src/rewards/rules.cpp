#include "rewards/rules.hpp"

#include <algorithm>
#include <utility>

namespace vgbl::rewards {

const char* trigger_kind_name(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kScenarioEntered: return "scenario-entered";
    case TriggerKind::kScenariosExplored: return "scenarios-explored";
    case TriggerKind::kGameCompleted: return "game-completed";
    case TriggerKind::kObjectInteracted: return "object-interacted";
    case TriggerKind::kItemCollected: return "item-collected";
    case TriggerKind::kItemUsed: return "item-used";
    case TriggerKind::kDialogueDecision: return "dialogue-decision";
    case TriggerKind::kQuizPassed: return "quiz-passed";
    case TriggerKind::kScoreReached: return "score-reached";
    case TriggerKind::kInteractionStreak: return "interaction-streak";
  }
  return "unknown";
}

Result<RewardRuleSet> RewardRuleSet::create(std::vector<RewardRule> rules) {
  std::sort(rules.begin(), rules.end(),
            [](const RewardRule& a, const RewardRule& b) { return a.id < b.id; });
  for (size_t i = 0; i < rules.size(); ++i) {
    const RewardRule& rule = rules[i];
    const std::string where = "reward rule #" + std::to_string(rule.id);
    if (rule.id == 0) {
      return invalid_argument("reward rule ids must be nonzero");
    }
    if (i > 0 && rules[i - 1].id == rule.id) {
      return invalid_argument(where + ": duplicate id");
    }
    if (rule.badge.empty()) {
      return invalid_argument(where + ": badge name is empty");
    }
    if (rule.threshold < 1) {
      return invalid_argument(where + ": threshold must be >= 1");
    }
    if (rule.window < 0) {
      return invalid_argument(where + ": window must be >= 0");
    }
    if (rule.trigger == TriggerKind::kInteractionStreak) {
      if (rule.threshold < 2) {
        return invalid_argument(where + ": a streak needs threshold >= 2");
      }
      if (rule.window <= 0) {
        return invalid_argument(where + ": a streak needs a positive window");
      }
    }
  }
  RewardRuleSet set;
  set.rules_ = std::move(rules);
  for (size_t i = 0; i < set.rules_.size(); ++i) {
    set.by_kind_[static_cast<size_t>(set.rules_[i].trigger)].push_back(
        static_cast<u32>(i));
  }
  return set;
}

const RewardRule* RewardRuleSet::find(u32 rule_id) const {
  const auto it = std::lower_bound(
      rules_.begin(), rules_.end(), rule_id,
      [](const RewardRule& r, u32 id) { return r.id < id; });
  if (it == rules_.end() || it->id != rule_id) return nullptr;
  return &*it;
}

const RewardRuleSet& RewardRuleSet::standard() {
  static const RewardRuleSet set = [] {
    std::vector<RewardRule> rules;
    rules.push_back({.id = 1,
                     .badge = "first-steps",
                     .trigger = TriggerKind::kObjectInteracted,
                     .threshold = 1,
                     .bonus_points = 5,
                     .description = "interact with anything in the scene"});
    rules.push_back({.id = 2,
                     .badge = "busy-hands",
                     .trigger = TriggerKind::kObjectInteracted,
                     .threshold = 15,
                     .bonus_points = 10,
                     .description = "fifteen interactions in one session"});
    rules.push_back({.id = 3,
                     .badge = "explorer",
                     .trigger = TriggerKind::kScenariosExplored,
                     .threshold = 3,
                     .bonus_points = 10,
                     .description = "visit three distinct scenarios"});
    rules.push_back({.id = 4,
                     .badge = "collector",
                     .trigger = TriggerKind::kItemCollected,
                     .threshold = 2,
                     .bonus_points = 10,
                     .description = "pick up two items"});
    rules.push_back({.id = 5,
                     .badge = "handy",
                     .trigger = TriggerKind::kItemUsed,
                     .threshold = 1,
                     .bonus_points = 5,
                     .description = "use an inventory item on the scene"});
    rules.push_back({.id = 6,
                     .badge = "decisive",
                     .trigger = TriggerKind::kDialogueDecision,
                     .threshold = 3,
                     .bonus_points = 10,
                     .description = "make three dialogue decisions"});
    rules.push_back({.id = 7,
                     .badge = "quiz-whiz",
                     .trigger = TriggerKind::kQuizPassed,
                     .threshold = 1,
                     .bonus_points = 15,
                     .description = "pass any quiz"});
    rules.push_back({.id = 8,
                     .badge = "finisher",
                     .trigger = TriggerKind::kGameCompleted,
                     .threshold = 1,
                     .bonus_points = 25,
                     .description = "complete the game successfully"});
    rules.push_back({.id = 9,
                     .badge = "high-scorer",
                     .trigger = TriggerKind::kScoreReached,
                     .threshold = 100,
                     .bonus_points = 20,
                     .description = "reach a score of 100"});
    rules.push_back({.id = 10,
                     .badge = "on-a-roll",
                     .trigger = TriggerKind::kInteractionStreak,
                     .threshold = 5,
                     .window = seconds(30),
                     .bonus_points = 10,
                     .description = "five interactions, none more than "
                                    "thirty seconds apart"});
    return RewardRuleSet::create(std::move(rules)).value();
  }();
  return set;
}

}  // namespace vgbl::rewards
