// Reward rules: the designer-configured unlock conditions behind the
// paper's §3.3 Rewarding ("players get scores, badges and feedback as
// they solve problems"). A RewardRuleSet is an immutable, validated
// collection of rules indexed by trigger kind; the RewardEvaluator
// (evaluator.hpp) walks only the rules subscribed to each event kind and
// caches unlocked rules in a per-session bitset, so the hot path is O(1)
// once a rule has fired.
//
// Determinism: rules are pure data evaluated against sim-time events.
// Nothing here reads a clock or RNG — matching the same event stream
// always produces the same unlock stream (DESIGN.md §5g).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl::rewards {

/// What kind of session event a rule subscribes to.
enum class TriggerKind : u8 {
  kScenarioEntered = 0,   ///< entered a scenario; target = scenario name
  kScenariosExplored,     ///< visited `threshold` *distinct* scenarios
  kGameCompleted,         ///< finished the game successfully
  kObjectInteracted,      ///< target = object name or interaction kind
  kItemCollected,         ///< target = item name
  kItemUsed,              ///< used an inventory item; target = item name
  kDialogueDecision,      ///< target = chosen reply text
  kQuizPassed,            ///< target = quiz name
  kScoreReached,          ///< ledger total >= threshold
  kInteractionStreak,     ///< `threshold` interactions, gaps <= window
};

inline constexpr size_t kTriggerKindCount =
    static_cast<size_t>(TriggerKind::kInteractionStreak) + 1;

[[nodiscard]] const char* trigger_kind_name(TriggerKind kind);

/// One designer-configured unlock condition. `target` filters which events
/// count (empty = any); `threshold` is how many matching events (or, for
/// kScoreReached, how many points) are required. `window` only matters for
/// streak rules: the maximum sim-time gap between consecutive events.
struct RewardRule {
  u32 id = 0;                 ///< stable id, unique within a rule set
  std::string badge;          ///< badge identifier granted on unlock
  TriggerKind trigger = TriggerKind::kObjectInteracted;
  std::string target;         ///< event filter; empty matches any event
  i64 threshold = 1;          ///< matching events (or points) required
  MicroTime window = 0;       ///< streak rules: max gap between events
  i64 bonus_points = 0;       ///< score awarded through the ledger on unlock
  std::string description;    ///< shown in CLI / leaderboard output
};

/// Immutable, validated rule collection. Rules are stored sorted by id (a
/// canonical order, so evaluator state vectors and the unlock stream are
/// independent of authoring order) and indexed per trigger kind.
class RewardRuleSet {
 public:
  /// Validates and adopts `rules`. Fails on duplicate/zero ids, empty
  /// badges, non-positive thresholds, or streak rules without a window.
  [[nodiscard]] static Result<RewardRuleSet> create(
      std::vector<RewardRule> rules);

  /// The built-in rule set exercised by the demo bundles and the
  /// `vgbl classroom --rewards` CLI: one badge per §3.3 reward archetype.
  [[nodiscard]] static const RewardRuleSet& standard();

  [[nodiscard]] size_t size() const { return rules_.size(); }
  [[nodiscard]] const RewardRule& at(size_t index) const {
    return rules_[index];
  }
  [[nodiscard]] const std::vector<RewardRule>& rules() const {
    return rules_;
  }
  /// Indices (into rules()) of the rules subscribed to `kind`.
  [[nodiscard]] const std::vector<u32>& subscribed(TriggerKind kind) const {
    return by_kind_[static_cast<size_t>(kind)];
  }
  /// Rule with `rule_id`, or nullptr.
  [[nodiscard]] const RewardRule* find(u32 rule_id) const;

 private:
  std::vector<RewardRule> rules_;  // sorted by id
  std::array<std::vector<u32>, kTriggerKindCount> by_kind_;
};

}  // namespace vgbl::rewards
