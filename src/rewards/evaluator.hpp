// RewardEvaluator: per-session, inline evaluation of a RewardRuleSet
// against the session's event stream (modeled on the Octelys
// achievements-tracker: current-game state lives with the session, the
// durable store is elsewhere — see badge_store.hpp).
//
// Ownership / threading contract. An evaluator belongs to exactly one
// GameSession and is only touched from that session's thread — never
// shared, never locked. The rule set it points at is immutable and shared
// read-only across every session in a classroom.
//
// Determinism contract (DESIGN.md §5g). The unlock log is a pure function
// of the fed event stream: every event carries its sim-time, the evaluator
// never reads a clock or RNG, and per-rule state lives in vectors ordered
// by the rule set's canonical (id-sorted) order. encode_unlock_log()
// renders the log as canonical bytes — the byte-identity artifact the
// tier1 suite and bench_rewards compare across thread counts, metrics
// on/off, and save/resume splits.
//
// Hot path. feed() walks only the rules subscribed to the event's trigger
// kind; rules that already fired are skipped via a per-rule unlocked
// bitset, so a long-running session pays O(1) per event once its badges
// are exhausted.
#pragma once

#include <string>
#include <vector>

#include "rewards/rules.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl::rewards {

/// One semantic session event, as fed by GameSession. `name` is the
/// primary subject (object/item/scenario/quiz name); `detail` is the
/// secondary one (interaction kind, chosen reply text).
struct RewardEvent {
  enum class Kind : u8 {
    kScenarioEntered = 0,
    kGameCompleted,
    kInteraction,
    kItemCollected,
    kItemUsed,
    kDialogueDecision,
    kQuizOutcome,
  };
  Kind kind = Kind::kInteraction;
  std::string name;
  std::string detail;
  bool success = false;  ///< completion / quiz outcome
  MicroTime when = 0;    ///< sim-time of the event
};

/// One unlocked badge: an entry of the ordered per-student unlock stream.
struct Unlock {
  MicroTime sim_time = 0;
  u32 rule_id = 0;
  std::string badge;
  i64 points = 0;  ///< bonus points awarded with the badge

  friend bool operator==(const Unlock&, const Unlock&) = default;
};

/// Full mutable evaluator state as plain data, captured into SessionState
/// and serialised by the persist snapshot (suspend/resume keeps the
/// unlock stream byte-identical to the uninterrupted run). All containers
/// are ordered — the replay-state lint rule bans unordered maps/sets here
/// because their iteration order would leak into snapshot bytes.
struct EvaluatorState {
  // Consumed prefix of the session's LearningTracker records: the session
  // feeds records incrementally from these offsets (see session.cpp's
  // drain_rewards), so the counters must survive suspend/resume.
  u32 interactions_seen = 0;
  u32 items_seen = 0;
  u32 decisions_seen = 0;
  u32 visits_seen = 0;

  // Streak bookkeeping across interaction events.
  i64 streak_length = 0;
  MicroTime streak_last = 0;
  bool streak_active = false;
  bool completion_seen = false;

  std::vector<std::string> scenarios_explored;  ///< sorted, distinct
  std::vector<i64> progress;   ///< per rule, canonical rule-set order
  std::vector<u8> unlocked;    ///< per rule, 0/1 cached unlock set
  std::vector<Unlock> unlocks; ///< ordered unlock log (the contract)
};

class RewardEvaluator {
 public:
  /// An evaluator with no rule set is inert: every call is a cheap no-op,
  /// so sessions without rewards configured pay one null check.
  RewardEvaluator() = default;
  explicit RewardEvaluator(const RewardRuleSet* rules);

  [[nodiscard]] bool active() const { return rules_ != nullptr; }
  [[nodiscard]] const RewardRuleSet* rules() const { return rules_; }

  /// Evaluates one event against the subscribed rules; newly satisfied
  /// rules append to the unlock log and the pending queue.
  void feed(const RewardEvent& event);

  /// Re-evaluates score-threshold rules against the ledger total. Called
  /// after every score change, including badge bonus points themselves
  /// (a bonus may therefore chain into a score badge; each rule fires at
  /// most once, so the cascade always terminates).
  void observe_score(i64 total, MicroTime now);

  /// Records how far into the session's tracker record streams events have
  /// been fed. The counters live in evaluator state so a resumed session
  /// continues feeding exactly where the captured one stopped.
  void mark_consumed(u32 interactions, u32 items, u32 decisions, u32 visits);

  /// Unlocks recorded since the last call — what the session turns into
  /// ledger awards and log lines.
  [[nodiscard]] std::vector<Unlock> take_pending();

  [[nodiscard]] const std::vector<Unlock>& unlock_log() const {
    return state_.unlocks;
  }
  /// Whether the rule at `index` (rule-set order) has fired.
  [[nodiscard]] bool unlocked(size_t index) const {
    return index < state_.unlocked.size() && state_.unlocked[index] != 0;
  }
  /// Matching-event count (or last observed score) for the rule at `index`.
  [[nodiscard]] i64 progress(size_t index) const {
    return index < state_.progress.size() ? state_.progress[index] : 0;
  }
  [[nodiscard]] i64 total_bonus_points() const;

  [[nodiscard]] const EvaluatorState& state() const { return state_; }
  /// Restores captured state. Fails when the state's per-rule vectors do
  /// not match this evaluator's rule set (wrong rule set for the save).
  [[nodiscard]] Status restore_state(EvaluatorState state);

 private:
  void unlock(size_t index, MicroTime now);
  void bump(size_t index, i64 amount, MicroTime now);

  const RewardRuleSet* rules_ = nullptr;
  EvaluatorState state_;
  size_t pending_from_ = 0;  ///< unlocks already handed out via take_pending
};

/// Canonical byte encoding of an unlock stream: varint count, then per
/// unlock (sim_time i64, rule_id u32, badge string, points svarint). Two
/// runs are byte-identical here iff their unlock streams match exactly —
/// the comparison object for the determinism suite and bench_rewards.
[[nodiscard]] Bytes encode_unlock_log(const std::vector<Unlock>& unlocks);

/// Decodes encode_unlock_log bytes (store inspection, tests).
[[nodiscard]] Result<std::vector<Unlock>> decode_unlock_log(
    std::span<const u8> data);

}  // namespace vgbl::rewards
