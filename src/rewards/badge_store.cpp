#include "rewards/badge_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <functional>
#include <utility>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/crc32.hpp"
#include "util/fileio.hpp"

namespace vgbl::rewards {
namespace {

struct StoreMetrics {
  obs::Counter& commits;
  obs::Counter& grants;
  obs::Counter& duplicates;
  obs::Counter& checkpoints;
  obs::Histogram& commit_ms;

  static StoreMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StoreMetrics m{
        reg.counter("rewards_store_commits_total",
                    "unlock batches committed to badge stores"),
        reg.counter("rewards_store_grants_total",
                    "new badge grants applied to badge stores"),
        reg.counter("rewards_store_duplicates_total",
                    "already-granted unlocks skipped by badge stores"),
        reg.counter("rewards_store_checkpoints_total",
                    "badge store snapshot + journal compactions"),
        reg.histogram("rewards_store_commit_ms",
                      obs::exponential_buckets(0.01, 2.0, 14),
                      "wall time of one unlock batch commit (journal + "
                      "apply)")};
    return m;
  }
};

Error file_error(const std::string& what, const std::string& path) {
  return io_error(what + " '" + path + "': " + std::strerror(errno));
}

enum class RecordKind : u8 { kGrant = 1, kBarrier = 2 };

Bytes file_header(u32 magic) {
  ByteWriter w;
  w.put_u32(magic);
  w.put_u16(kBadgeFormatVersion);
  w.put_u16(0);  // reserved
  w.put_u32(crc32(w.bytes()));
  return std::move(w).take();
}

void write_grant_payload(ByteWriter& w, const std::string& student_id,
                         const BadgeGrant& grant) {
  w.put_string(student_id);
  w.put_u32(grant.rule_id);
  w.put_string(grant.badge);
  w.put_svarint(grant.points);
  w.put_i64(grant.sim_time);
}

struct JournalGrant {
  std::string student_id;
  BadgeGrant grant;
};

struct JournalRecord {
  RecordKind kind = RecordKind::kGrant;
  JournalGrant grant;       ///< when kind == kGrant
  u64 barrier_sequence = 0; ///< when kind == kBarrier
};

struct JournalContents {
  std::vector<JournalRecord> records;
  size_t valid_bytes = 0;
  bool torn_tail = false;
};

[[nodiscard]] Result<JournalGrant> read_grant_payload(std::span<const u8> payload) {
  ByteReader r(payload);
  auto student = r.string();
  auto rule = r.u32_();
  auto badge = r.string();
  auto points = r.svarint();
  auto sim_time = r.i64_();
  if (!student.ok()) return student.error();
  if (!rule.ok()) return rule.error();
  if (!badge.ok()) return badge.error();
  if (!points.ok()) return points.error();
  if (!sim_time.ok()) return sim_time.error();
  JournalGrant out;
  out.student_id = std::move(student).value();
  out.grant = {rule.value(), std::move(badge).value(), points.value(),
               sim_time.value()};
  return out;
}

/// Parses badge-journal bytes with the persist-layer failure semantics:
/// torn tails are trimmed, anything else that fails a check is corruption.
[[nodiscard]] Result<JournalContents> parse_badge_journal(std::span<const u8> data) {
  ByteReader r(data);
  auto magic = r.u32_();
  if (!magic.ok() || magic.value() != kBadgeJournalMagic) {
    return corrupt_data("not a VGBJ badge journal (bad magic)");
  }
  auto version = r.u16_();
  auto reserved = r.u16_();
  auto header_crc = r.u32_();
  if (!version.ok() || !reserved.ok() || !header_crc.ok()) {
    return corrupt_data("truncated badge journal header");
  }
  if (header_crc.value() != crc32(data.subspan(0, 8))) {
    return corrupt_data("badge journal header crc mismatch");
  }
  if (version.value() != kBadgeFormatVersion) {
    return unsupported("badge journal version " +
                       std::to_string(version.value()) +
                       " (reader supports " +
                       std::to_string(kBadgeFormatVersion) + ")");
  }
  JournalContents out;
  out.valid_bytes = r.position();
  while (!r.at_end()) {
    const size_t record_start = r.position();
    auto kind = r.u8_();
    auto size = r.u32_();
    if (!kind.ok() || !size.ok()) {
      out.torn_tail = true;
      break;
    }
    auto payload = r.view(size.value());
    auto stored_crc = r.u32_();
    if (!payload.ok() || !stored_crc.ok()) {
      out.torn_tail = true;
      break;
    }
    if (stored_crc.value() != crc32(payload.value())) {
      return corrupt_data("badge journal record at byte " +
                          std::to_string(record_start) + " crc mismatch");
    }
    JournalRecord record;
    if (kind.value() == static_cast<u8>(RecordKind::kGrant)) {
      auto grant = read_grant_payload(payload.value());
      if (!grant.ok()) {
        return corrupt_data("badge journal grant at byte " +
                            std::to_string(record_start) + ": " +
                            grant.error().message);
      }
      record.kind = RecordKind::kGrant;
      record.grant = std::move(grant).value();
    } else if (kind.value() == static_cast<u8>(RecordKind::kBarrier)) {
      ByteReader pr(payload.value());
      auto sequence = pr.varint();
      if (!sequence.ok()) {
        return corrupt_data("badge journal barrier at byte " +
                            std::to_string(record_start) + " is malformed");
      }
      record.kind = RecordKind::kBarrier;
      record.barrier_sequence = sequence.value();
    } else {
      return corrupt_data("badge journal record at byte " +
                          std::to_string(record_start) +
                          " has unknown kind " +
                          std::to_string(kind.value()));
    }
    out.records.push_back(std::move(record));
    out.valid_bytes = r.position();
  }
  return out;
}

/// One framed record appended to `file` and flushed (WAL discipline).
Status append_record(std::FILE* file, const std::string& path,
                     RecordKind kind, const Bytes& payload) {
  ByteWriter frame;
  frame.put_u8(static_cast<u8>(kind));
  frame.put_u32(static_cast<u32>(payload.size()));
  frame.put_raw(payload.data(), payload.size());
  frame.put_u32(crc32(payload));
  const Bytes bytes = std::move(frame).take();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size() ||
      std::fflush(file) != 0) {
    return file_error("cannot append to badge journal", path);
  }
  return {};
}

/// Creates (truncating) a fresh journal: header plus one barrier marking
/// everything up to snapshot `sequence` as folded in.
[[nodiscard]] Result<std::FILE*> create_journal(const std::string& path, u64 sequence) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return file_error("cannot create badge journal", path);
  const Bytes header = file_header(kBadgeJournalMagic);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return file_error("cannot write badge journal header", path);
  }
  ByteWriter payload;
  payload.put_varint(sequence);
  if (auto st = append_record(f, path, RecordKind::kBarrier, payload.bytes());
      !st.ok()) {
    std::fclose(f);
    return st.error();
  }
  // Reopen in append mode so a stale buffered offset can never punch a
  // hole in the log (same rationale as JournalWriter::create).
  std::fclose(f);
  f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return file_error("cannot open badge journal", path);
  return f;
}

Bytes encode_store_snapshot(u64 sequence,
                            const std::vector<StudentBadges>& students) {
  ByteWriter body;
  body.put_varint(sequence);
  body.put_varint(students.size());
  for (const StudentBadges& s : students) {
    body.put_string(s.student_id);
    body.put_svarint(s.total_points);
    body.put_varint(s.commits);
    body.put_varint(s.grants.size());
    for (const BadgeGrant& g : s.grants) {
      body.put_u32(g.rule_id);
      body.put_string(g.badge);
      body.put_svarint(g.points);
      body.put_i64(g.sim_time);
    }
  }
  ByteWriter out;
  const Bytes header = file_header(kBadgeSnapshotMagic);
  out.put_raw(header.data(), header.size());
  const Bytes payload = std::move(body).take();
  out.put_raw(payload.data(), payload.size());
  out.put_u32(crc32(payload));
  return std::move(out).take();
}

struct DecodedStoreSnapshot {
  u64 sequence = 0;
  std::vector<StudentBadges> students;
};

[[nodiscard]] Result<DecodedStoreSnapshot> decode_store_snapshot(std::span<const u8> data) {
  ByteReader r(data);
  auto magic = r.u32_();
  if (!magic.ok() || magic.value() != kBadgeSnapshotMagic) {
    return corrupt_data("not a VGBS badge snapshot (bad magic)");
  }
  auto version = r.u16_();
  auto reserved = r.u16_();
  auto header_crc = r.u32_();
  if (!version.ok() || !reserved.ok() || !header_crc.ok()) {
    return corrupt_data("truncated badge snapshot header");
  }
  if (header_crc.value() != crc32(data.subspan(0, 8))) {
    return corrupt_data("badge snapshot header crc mismatch");
  }
  if (version.value() != kBadgeFormatVersion) {
    return unsupported("badge snapshot version " +
                       std::to_string(version.value()) +
                       " (reader supports " +
                       std::to_string(kBadgeFormatVersion) + ")");
  }
  const size_t body_start = r.position();
  if (data.size() < body_start + 4) {
    return corrupt_data("truncated badge snapshot body");
  }
  auto body = data.subspan(body_start, data.size() - body_start - 4);
  ByteReader crc_reader(data);
  if (!crc_reader.seek(data.size() - 4).ok()) {
    return corrupt_data("truncated badge snapshot body");
  }
  auto stored_crc = crc_reader.u32_();
  if (!stored_crc.ok() || stored_crc.value() != crc32(body)) {
    return corrupt_data("badge snapshot body crc mismatch");
  }

  ByteReader br(body);
  auto sequence = br.varint();
  auto student_count = br.varint();
  if (!sequence.ok()) return sequence.error();
  if (!student_count.ok()) return student_count.error();
  if (student_count.value() > body.size()) {
    return corrupt_data("badge snapshot student count exceeds payload");
  }
  DecodedStoreSnapshot out;
  out.sequence = sequence.value();
  out.students.reserve(student_count.value());
  for (u64 i = 0; i < student_count.value(); ++i) {
    StudentBadges s;
    auto id = br.string();
    auto total = br.svarint();
    auto commits = br.varint();
    auto grant_count = br.varint();
    if (!id.ok()) return id.error();
    if (!total.ok()) return total.error();
    if (!commits.ok()) return commits.error();
    if (!grant_count.ok()) return grant_count.error();
    if (grant_count.value() > body.size()) {
      return corrupt_data("badge snapshot grant count exceeds payload");
    }
    s.student_id = std::move(id).value();
    s.total_points = total.value();
    s.commits = commits.value();
    s.grants.reserve(grant_count.value());
    for (u64 g = 0; g < grant_count.value(); ++g) {
      auto rule = br.u32_();
      auto badge = br.string();
      auto points = br.svarint();
      auto sim_time = br.i64_();
      if (!rule.ok()) return rule.error();
      if (!badge.ok()) return badge.error();
      if (!points.ok()) return points.error();
      if (!sim_time.ok()) return sim_time.error();
      s.grants.push_back({rule.value(), std::move(badge).value(),
                          points.value(), sim_time.value()});
    }
    out.students.push_back(std::move(s));
  }
  return out;
}

bool has_rule(const StudentBadges& record, u32 rule_id) {
  return std::any_of(
      record.grants.begin(), record.grants.end(),
      [rule_id](const BadgeGrant& g) { return g.rule_id == rule_id; });
}

}  // namespace

Result<std::unique_ptr<BadgeStore>> BadgeStore::open(
    BadgeStoreOptions options) {
  if (options.directory.empty()) {
    return invalid_argument("badge store needs a directory");
  }
  // no-naked-new allowlist: BadgeStore's constructor is private (open() is
  // the only way in), which make_unique cannot reach; the result is owned
  // by the unique_ptr on the same line.
  std::unique_ptr<BadgeStore> store(new BadgeStore(std::move(options)));
  if (auto st = store->load(); !st.ok()) return st.error();
  return store;
}

BadgeStore::~BadgeStore() {
  MutexLock lock(journal_mutex_);
  if (journal_file_ != nullptr) std::fclose(journal_file_);
}

std::string BadgeStore::snapshot_path() const {
  return (std::filesystem::path(options_.directory) / "badges.snap").string();
}

std::string BadgeStore::journal_path() const {
  return (std::filesystem::path(options_.directory) / "badges.journal")
      .string();
}

BadgeStore::Shard& BadgeStore::shard_for(const std::string& student_id) {
  return shards_[std::hash<std::string>{}(student_id) % kShards];
}

const BadgeStore::Shard& BadgeStore::shard_for(
    const std::string& student_id) const {
  return shards_[std::hash<std::string>{}(student_id) % kShards];
}

bool BadgeStore::apply_grant(const std::string& student_id,
                             const BadgeGrant& grant) {
  Shard& shard = shard_for(student_id);
  MutexLock lock(shard.mutex);
  StudentBadges& record = shard.students[student_id];
  if (record.student_id.empty()) record.student_id = student_id;
  if (has_rule(record, grant.rule_id)) return false;
  record.total_points += grant.points;
  record.grants.push_back(grant);
  return true;
}

Status BadgeStore::load() {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    return io_error("cannot create badge store directory '" +
                    options_.directory + "': " + ec.message());
  }

  MutexLock lock(journal_mutex_);
  sequence_ = 0;
  auto snap_data = read_binary_file(snapshot_path());
  if (snap_data.ok()) {
    auto snap = decode_store_snapshot(snap_data.value());
    if (!snap.ok()) return snap.error();
    sequence_ = snap.value().sequence;
    for (StudentBadges& s : snap.value().students) {
      Shard& shard = shard_for(s.student_id);
      MutexLock shard_lock(shard.mutex);
      std::string id = s.student_id;
      shard.students[std::move(id)] = std::move(s);
    }
  } else if (snap_data.error().code != ErrorCode::kNotFound) {
    return snap_data.error();
  }

  auto journal_data = read_binary_file(journal_path());
  if (journal_data.ok()) {
    auto journal = parse_badge_journal(journal_data.value());
    if (!journal.ok()) return journal.error();
    if (journal.value().torn_tail) {
      std::filesystem::resize_file(journal_path(),
                                   journal.value().valid_bytes, ec);
      if (ec) {
        return io_error("cannot trim torn badge journal tail '" +
                        journal_path() + "': " + ec.message());
      }
    }
    // Replay the grants after the last barrier matching the snapshot; with
    // no matching barrier the journal predates the snapshot compaction and
    // every grant is either folded in already or (for a fresh store)
    // simply everything — per-rule dedup in apply_grant makes both safe.
    std::ptrdiff_t barrier = -1;
    const auto& records = journal.value().records;
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].kind == RecordKind::kBarrier &&
          records[i].barrier_sequence == sequence_) {
        barrier = static_cast<std::ptrdiff_t>(i);
      }
    }
    for (size_t i = barrier >= 0 ? static_cast<size_t>(barrier) + 1 : 0;
         i < records.size(); ++i) {
      if (records[i].kind == RecordKind::kGrant) {
        (void)apply_grant(records[i].grant.student_id,
                          records[i].grant.grant);
      }
    }
    journal_file_ = std::fopen(journal_path().c_str(), "ab");
    if (journal_file_ == nullptr) {
      return file_error("cannot open badge journal", journal_path());
    }
  } else if (journal_data.error().code == ErrorCode::kNotFound) {
    auto created = create_journal(journal_path(), sequence_);
    if (!created.ok()) return created.error();
    journal_file_ = created.value();
  } else {
    return journal_data.error();
  }
  return {};
}

Result<u32> BadgeStore::commit(const std::string& student_id,
                               std::span<const Unlock> unlocks) {
  StoreMetrics& metrics = StoreMetrics::get();
  VGBL_SPAN("rewards.store_commit");
  VGBL_TIMER(metrics.commit_ms);

  MutexLock journal_lock(journal_mutex_);
  if (journal_file_ == nullptr) {
    return failed_precondition("badge store journal is not open");
  }
  u32 fresh = 0;
  u32 duplicates = 0;
  {
    Shard& shard = shard_for(student_id);
    MutexLock shard_lock(shard.mutex);
    StudentBadges& record = shard.students[student_id];
    if (record.student_id.empty()) record.student_id = student_id;
    for (const Unlock& unlock : unlocks) {
      if (has_rule(record, unlock.rule_id)) {
        ++duplicates;
        continue;
      }
      const BadgeGrant grant{unlock.rule_id, unlock.badge, unlock.points,
                             unlock.sim_time};
      // WAL: the grant reaches the journal before the in-memory record.
      ByteWriter payload;
      write_grant_payload(payload, student_id, grant);
      if (auto st = append_record(journal_file_, journal_path(),
                                  RecordKind::kGrant, payload.bytes());
          !st.ok()) {
        return st.error();
      }
      record.total_points += grant.points;
      record.grants.push_back(grant);
      ++fresh;
    }
    record.commits += 1;
  }
  commits_since_checkpoint_ += 1;
  VGBL_COUNT(metrics.commits);
  VGBL_COUNT(metrics.grants, fresh);
  VGBL_COUNT(metrics.duplicates, duplicates);

  if (options_.checkpoint_every_commits > 0 &&
      commits_since_checkpoint_ >= options_.checkpoint_every_commits) {
    if (auto st = checkpoint_locked(); !st.ok()) return st.error();
  }
  return fresh;
}

StudentBadges BadgeStore::student(const std::string& student_id) const {
  const Shard& shard = shard_for(student_id);
  MutexLock lock(shard.mutex);
  const auto it = shard.students.find(student_id);
  if (it == shard.students.end()) {
    StudentBadges empty;
    empty.student_id = student_id;
    return empty;
  }
  return it->second;
}

std::vector<StudentBadges> BadgeStore::all() const {
  std::vector<StudentBadges> out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [id, record] : shard.students) {
      out.push_back(record);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StudentBadges& a, const StudentBadges& b) {
              return a.student_id < b.student_id;
            });
  return out;
}

size_t BadgeStore::student_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    count += shard.students.size();
  }
  return count;
}

u64 BadgeStore::sequence() const {
  MutexLock lock(journal_mutex_);
  return sequence_;
}

Status BadgeStore::checkpoint() {
  MutexLock lock(journal_mutex_);
  return checkpoint_locked();
}

Status BadgeStore::checkpoint_locked() {
  // Holding the journal mutex excludes every writer (commit requires it),
  // so copying shard by shard still yields a consistent cut.
  const std::vector<StudentBadges> students = all();
  const u64 next_sequence = sequence_ + 1;
  const Bytes snapshot = encode_store_snapshot(next_sequence, students);
  if (auto st = write_binary_file_atomic(snapshot_path(), snapshot);
      !st.ok()) {
    return st;
  }
  sequence_ = next_sequence;
  // Compact: a fresh journal whose barrier marks everything as folded in.
  if (journal_file_ != nullptr) std::fclose(journal_file_);
  journal_file_ = nullptr;
  auto created = create_journal(journal_path(), sequence_);
  if (!created.ok()) return created.error();
  journal_file_ = created.value();
  commits_since_checkpoint_ = 0;
  VGBL_COUNT(StoreMetrics::get().checkpoints);
  return {};
}

}  // namespace vgbl::rewards
