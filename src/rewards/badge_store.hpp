// Cross-session badge & score store: the durable half of the rewards
// service (§3.3 Rewarding). Sessions evaluate unlocks inline
// (evaluator.hpp); their unlock streams are committed here so badges,
// bonus points and unlock sim-times accrue across sessions and classroom
// runs. On disk the store is one directory:
//
//   badges.snap     latest snapshot of every student record (atomic write)
//   badges.journal  write-ahead log of grants since that snapshot
//
// Protocol (mirrors the SessionStore WAL discipline). Every grant is
// journaled *before* it is applied in memory, so a crash loses at most
// the in-flight commit. A checkpoint writes the snapshot atomically, then
// compacts the journal to a single barrier carrying the snapshot's
// sequence. Recovery loads the snapshot and replays the grants after a
// matching barrier; grants are idempotent per (student, rule), so a crash
// between rename and compaction — where no matching barrier exists and
// every journaled grant is already folded in — replays as a no-op.
// A torn journal tail is trimmed (crash shape); a CRC failure anywhere
// else is kCorruptData.
//
// Concurrency. Safe to share across the classroom worker pool: in-memory
// student records live in lock-sharded maps (VGBL_GUARDED_BY, keyed by
// student-id hash) so readers — leaderboard builds, exporter scrapes —
// only contend with writers on the same shard. Writers additionally
// serialise on the journal mutex (append order = file order); lock order
// is journal -> shard everywhere, so commits and checkpoints never
// deadlock. Per-student commit streams stay deterministic regardless of
// cross-student interleaving: the unlock stream committed for a student
// is produced by that student's (deterministic) session.
#pragma once

#include <array>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rewards/evaluator.hpp"
#include "util/result.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace vgbl::rewards {

inline constexpr u32 kBadgeSnapshotMagic = 0x53424756;  // "VGBS" LE
inline constexpr u32 kBadgeJournalMagic = 0x4A424756;   // "VGBJ" LE
inline constexpr u16 kBadgeFormatVersion = 1;

/// One durable badge grant for a student.
struct BadgeGrant {
  u32 rule_id = 0;
  std::string badge;
  i64 points = 0;
  MicroTime sim_time = 0;  ///< sim-time of the unlock inside its session

  friend bool operator==(const BadgeGrant&, const BadgeGrant&) = default;
};

/// Everything the store knows about one student.
struct StudentBadges {
  std::string student_id;
  std::vector<BadgeGrant> grants;  ///< in grant (journal) order
  i64 total_points = 0;            ///< sum of grant points
  u64 commits = 0;                 ///< commit batches applied
};

struct BadgeStoreOptions {
  std::string directory;
  /// Automatic checkpoint every N commits (0: explicit checkpoint() only;
  /// the journal still protects every grant either way).
  u64 checkpoint_every_commits = 0;
};

class BadgeStore {
 public:
  /// Opens (creating the directory if needed) and recovers the store.
  /// Typed errors: kCorruptData for damaged files, kIoError on
  /// filesystem failure.
  [[nodiscard]] static Result<std::unique_ptr<BadgeStore>> open(
      BadgeStoreOptions options);

  BadgeStore(const BadgeStore&) = delete;
  BadgeStore& operator=(const BadgeStore&) = delete;
  ~BadgeStore();

  /// Commits a session's unlock stream for `student_id`. Unlocks whose
  /// rule already has a grant for this student are skipped (badges are
  /// earned once, ever), so committing a resumed session's full log is
  /// idempotent. Returns the number of *new* grants applied.
  [[nodiscard]] Result<u32> commit(const std::string& student_id,
                                   std::span<const Unlock> unlocks)
      VGBL_EXCLUDES(journal_mutex_);

  /// Copy of the student's record (empty record when unknown).
  [[nodiscard]] StudentBadges student(const std::string& student_id) const;

  /// Copies of every student record, sorted by student id.
  [[nodiscard]] std::vector<StudentBadges> all() const;

  [[nodiscard]] size_t student_count() const;

  /// Snapshots every record and compacts the journal.
  [[nodiscard]] Status checkpoint() VGBL_EXCLUDES(journal_mutex_);

  /// Sequence of the latest snapshot on disk (0: none yet).
  [[nodiscard]] u64 sequence() const VGBL_EXCLUDES(journal_mutex_);

  [[nodiscard]] const std::string& directory() const {
    return options_.directory;
  }
  [[nodiscard]] std::string snapshot_path() const;
  [[nodiscard]] std::string journal_path() const;

 private:
  /// Same shard count as SessionStore: comfortably above typical worker
  /// pools, so two students rarely share a lock.
  static constexpr size_t kShards = 32;

  struct Shard {
    mutable Mutex mutex;
    std::map<std::string, StudentBadges> students VGBL_GUARDED_BY(mutex);
  };

  explicit BadgeStore(BadgeStoreOptions options)
      : options_(std::move(options)) {}

  [[nodiscard]] Shard& shard_for(const std::string& student_id);
  [[nodiscard]] const Shard& shard_for(const std::string& student_id) const;

  /// Recovery: parse snapshot + journal into the shards. Runs before the
  /// store is shared, but takes the locks anyway to keep TSA exact.
  Status load() VGBL_EXCLUDES(journal_mutex_);
  Status checkpoint_locked() VGBL_REQUIRES(journal_mutex_);
  /// Applies one grant to the in-memory record; returns false when the
  /// rule was already granted (duplicate).
  bool apply_grant(const std::string& student_id, const BadgeGrant& grant);

  BadgeStoreOptions options_;
  mutable std::array<Shard, kShards> shards_;

  mutable Mutex journal_mutex_;
  std::FILE* journal_file_ VGBL_GUARDED_BY(journal_mutex_) = nullptr;
  u64 sequence_ VGBL_GUARDED_BY(journal_mutex_) = 0;
  u64 commits_since_checkpoint_ VGBL_GUARDED_BY(journal_mutex_) = 0;
};

}  // namespace vgbl::rewards
