#include "object/properties.hpp"

namespace vgbl {

bool PropertyBag::get_bool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  if (const bool* b = std::get_if<bool>(&*v)) return *b;
  if (const i64* i = std::get_if<i64>(&*v)) return *i != 0;
  return fallback;
}

i64 PropertyBag::get_int(const std::string& key, i64 fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  if (const i64* i = std::get_if<i64>(&*v)) return *i;
  if (const f64* d = std::get_if<f64>(&*v)) return static_cast<i64>(*d);
  if (const bool* b = std::get_if<bool>(&*v)) return *b ? 1 : 0;
  return fallback;
}

f64 PropertyBag::get_double(const std::string& key, f64 fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  if (const f64* d = std::get_if<f64>(&*v)) return *d;
  if (const i64* i = std::get_if<i64>(&*v)) return static_cast<f64>(*i);
  return fallback;
}

std::string PropertyBag::get_string(const std::string& key,
                                    std::string fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  if (const std::string* s = std::get_if<std::string>(&*v)) return *s;
  return fallback;
}

Json PropertyBag::to_json() const {
  Json out = Json::object();
  auto& obj = out.mutable_object();
  for (const auto& [key, value] : values_) {
    std::visit([&](const auto& v) { obj.set(key, Json(v)); }, value);
  }
  return out;
}

Result<PropertyBag> PropertyBag::from_json(const Json& json) {
  PropertyBag bag;
  if (json.is_null()) return bag;
  if (!json.is_object()) return corrupt_data("properties must be an object");
  for (const auto& [key, value] : json.as_object().members()) {
    switch (value.kind()) {
      case Json::Kind::kBool:
        bag.set(key, value.as_bool());
        break;
      case Json::Kind::kInt:
        bag.set(key, value.as_int());
        break;
      case Json::Kind::kDouble:
        bag.set(key, value.as_double());
        break;
      case Json::Kind::kString:
        bag.set(key, value.as_string());
        break;
      default:
        return corrupt_data("property '" + key + "' has unsupported type");
    }
  }
  return bag;
}

}  // namespace vgbl
