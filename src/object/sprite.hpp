// Sprites: small RGBA rasters mounted over video frames ("an image object
// with white background is mounted on the video frame", paper §4.3, Fig.2).
// Includes a procedural icon painter so examples and tests have recognisable
// object art (umbrella, key, computer part, ...) without binary assets.
#pragma once

#include <string>
#include <vector>

#include "util/result.hpp"
#include "video/frame.hpp"

namespace vgbl {

class Sprite {
 public:
  Sprite() = default;
  Sprite(i32 width, i32 height);

  [[nodiscard]] i32 width() const { return width_; }
  [[nodiscard]] i32 height() const { return height_; }
  [[nodiscard]] Size size() const { return {width_, height_}; }
  [[nodiscard]] bool empty() const { return rgba_.empty(); }

  [[nodiscard]] Color color_at(i32 x, i32 y) const;
  [[nodiscard]] u8 alpha_at(i32 x, i32 y) const;
  void set(i32 x, i32 y, Color c, u8 alpha = 255);

  /// Alpha-composites this sprite over `frame` with its top-left at `at`,
  /// optionally scaled to `target` size (nearest-neighbour).
  void draw(Frame& frame, Point at) const;
  void draw_scaled(Frame& frame, Rect target) const;

  /// Uniform translucency multiplier applied at draw time (0..255).
  void set_opacity(u8 opacity) { opacity_ = opacity; }
  [[nodiscard]] u8 opacity() const { return opacity_; }

  /// Fully opaque single-colour rectangle with a darker border.
  static Sprite solid(Size size, Color fill);
  /// Button face: fill, border, no glyph (text rendering is the UI
  /// overlay's job).
  static Sprite button(Size size, Color fill);
  /// Procedural icon by name; unknown names get a stable generic glyph.
  /// Known: umbrella, key, computer, part, coin, trophy, book, person,
  /// door, apple.
  static Sprite icon(const std::string& name, i32 size = 24);

  /// Builds a sprite from a textual spec — the serializable sprite
  /// representation used by the project format. Grammar:
  ///   "icon:<name>[:<size>]"
  ///   "solid:<w>x<h>:<r>,<g>,<b>"
  ///   "button:<w>x<h>:<r>,<g>,<b>"
  ///   "" (empty sprite)
  [[nodiscard]] static Result<Sprite> from_spec(const std::string& spec);

  bool operator==(const Sprite&) const = default;

  [[nodiscard]] const std::vector<u8>& rgba() const { return rgba_; }

 private:
  [[nodiscard]] size_t index(i32 x, i32 y) const {
    return (static_cast<size_t>(y) * static_cast<size_t>(width_) +
            static_cast<size_t>(x)) *
           4;
  }

  i32 width_ = 0;
  i32 height_ = 0;
  u8 opacity_ = 255;
  std::vector<u8> rgba_;
};

}  // namespace vgbl
