#include "object/interactive_object.hpp"

#include <algorithm>
#include <cmath>

namespace vgbl {

const char* object_kind_name(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kButton:
      return "button";
    case ObjectKind::kImage:
      return "image";
    case ObjectKind::kItem:
      return "item";
    case ObjectKind::kNpc:
      return "npc";
    case ObjectKind::kReward:
      return "reward";
  }
  return "?";
}

Result<ObjectKind> object_kind_from_name(std::string_view name) {
  if (name == "button") return ObjectKind::kButton;
  if (name == "image") return ObjectKind::kImage;
  if (name == "item") return ObjectKind::kItem;
  if (name == "npc") return ObjectKind::kNpc;
  if (name == "reward") return ObjectKind::kReward;
  return corrupt_data("unknown object kind '" + std::string(name) + "'");
}

namespace {

/// Shared topmost-selection rule: higher z wins; among equal z, the later
/// target (painted later) wins.
template <typename Candidates>
ObjectId select_topmost(const Candidates& hits) {
  ObjectId best;
  i32 best_z = 0;
  size_t best_order = 0;
  bool found = false;
  for (const auto& [order, target] : hits) {
    if (!found || target->z > best_z ||
        (target->z == best_z && order >= best_order)) {
      best = target->id;
      best_z = target->z;
      best_order = order;
      found = true;
    }
  }
  return best;
}

}  // namespace

ObjectId LinearHitTester::hit(Point p) const {
  std::vector<std::pair<size_t, const HitTarget*>> hits;
  for (size_t i = 0; i < targets_.size(); ++i) {
    const auto& t = targets_[i];
    if (t.active && t.rect.contains(p)) hits.emplace_back(i, &t);
  }
  return select_topmost(hits);
}

std::vector<ObjectId> LinearHitTester::hit_all(Point p) const {
  std::vector<std::pair<i64, ObjectId>> hits;  // (sort key, id)
  for (size_t i = 0; i < targets_.size(); ++i) {
    const auto& t = targets_[i];
    if (t.active && t.rect.contains(p)) {
      hits.emplace_back(static_cast<i64>(t.z) * 1'000'000 + static_cast<i64>(i),
                        t.id);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<ObjectId> out;
  out.reserve(hits.size());
  for (const auto& h : hits) out.push_back(h.second);
  return out;
}

void GridHitTester::rebuild(const std::vector<HitTarget>& targets) {
  targets_ = targets;
  // Aim for a handful of targets per cell: cell area ≈ frame area / n.
  const i64 area = std::max<i64>(1, Size{frame_size_}.area());
  const i64 per_cell = std::max<size_t>(1, targets.size());
  cell_size_ = std::clamp<i32>(
      static_cast<i32>(std::sqrt(static_cast<f64>(area) /
                                 static_cast<f64>(per_cell))),
      8, 256);
  cols_ = std::max<i32>(1, (frame_size_.width + cell_size_ - 1) / cell_size_);
  rows_ = std::max<i32>(1, (frame_size_.height + cell_size_ - 1) / cell_size_);
  cells_.assign(static_cast<size_t>(cols_) * static_cast<size_t>(rows_), {});

  for (u32 i = 0; i < targets_.size(); ++i) {
    const Rect r = targets_[i].rect.intersection(
        {0, 0, frame_size_.width, frame_size_.height});
    if (r.empty()) continue;
    const i32 cx0 = r.x / cell_size_;
    const i32 cy0 = r.y / cell_size_;
    const i32 cx1 = (r.right() - 1) / cell_size_;
    const i32 cy1 = (r.bottom() - 1) / cell_size_;
    for (i32 cy = cy0; cy <= cy1 && cy < rows_; ++cy) {
      for (i32 cx = cx0; cx <= cx1 && cx < cols_; ++cx) {
        cells_[static_cast<size_t>(cy) * static_cast<size_t>(cols_) +
               static_cast<size_t>(cx)]
            .push_back(i);
      }
    }
  }
}

const std::vector<u32>* GridHitTester::cell_at(Point p) const {
  if (p.x < 0 || p.y < 0 || p.x >= frame_size_.width ||
      p.y >= frame_size_.height || cells_.empty()) {
    return nullptr;
  }
  const i32 cx = p.x / cell_size_;
  const i32 cy = p.y / cell_size_;
  if (cx >= cols_ || cy >= rows_) return nullptr;
  return &cells_[static_cast<size_t>(cy) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(cx)];
}

ObjectId GridHitTester::hit(Point p) const {
  const std::vector<u32>* cell = cell_at(p);
  if (!cell) return {};
  std::vector<std::pair<size_t, const HitTarget*>> hits;
  for (u32 i : *cell) {
    const auto& t = targets_[i];
    if (t.active && t.rect.contains(p)) hits.emplace_back(i, &t);
  }
  return select_topmost(hits);
}

std::vector<ObjectId> GridHitTester::hit_all(Point p) const {
  const std::vector<u32>* cell = cell_at(p);
  std::vector<std::pair<i64, ObjectId>> hits;
  if (cell) {
    for (u32 i : *cell) {
      const auto& t = targets_[i];
      if (t.active && t.rect.contains(p)) {
        hits.emplace_back(
            static_cast<i64>(t.z) * 1'000'000 + static_cast<i64>(i), t.id);
      }
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<ObjectId> out;
  out.reserve(hits.size());
  for (const auto& h : hits) out.push_back(h.second);
  return out;
}

}  // namespace vgbl
