#include "object/sprite.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace vgbl {

Sprite::Sprite(i32 width, i32 height)
    : width_(std::max(0, width)),
      height_(std::max(0, height)),
      rgba_(static_cast<size_t>(width_) * static_cast<size_t>(height_) * 4, 0) {}

Color Sprite::color_at(i32 x, i32 y) const {
  const size_t i = index(x, y);
  return {rgba_[i], rgba_[i + 1], rgba_[i + 2]};
}

u8 Sprite::alpha_at(i32 x, i32 y) const { return rgba_[index(x, y) + 3]; }

void Sprite::set(i32 x, i32 y, Color c, u8 alpha) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  const size_t i = index(x, y);
  rgba_[i] = c.r;
  rgba_[i + 1] = c.g;
  rgba_[i + 2] = c.b;
  rgba_[i + 3] = alpha;
}

void Sprite::draw(Frame& frame, Point at) const {
  draw_scaled(frame, {at.x, at.y, width_, height_});
}

void Sprite::draw_scaled(Frame& frame, Rect target) const {
  if (empty() || target.empty()) return;
  const Rect clip = target.intersection(frame.bounds());
  for (i32 y = clip.y; y < clip.bottom(); ++y) {
    const i32 sy = static_cast<i32>(
        static_cast<i64>(y - target.y) * height_ / target.height);
    for (i32 x = clip.x; x < clip.right(); ++x) {
      const i32 sx = static_cast<i32>(
          static_cast<i64>(x - target.x) * width_ / target.width);
      const u8 a = alpha_at(sx, sy);
      if (a == 0) continue;
      const u8 effective =
          static_cast<u8>(static_cast<u32>(a) * opacity_ / 255);
      frame.blend_pixel(x, y, color_at(sx, sy), effective);
    }
  }
}

Sprite Sprite::solid(Size size, Color fill) {
  Sprite s(size.width, size.height);
  const Color border = fill.lerp(colors::kBlack, 0.5);
  for (i32 y = 0; y < s.height_; ++y) {
    for (i32 x = 0; x < s.width_; ++x) {
      const bool edge =
          x == 0 || y == 0 || x == s.width_ - 1 || y == s.height_ - 1;
      s.set(x, y, edge ? border : fill);
    }
  }
  return s;
}

Sprite Sprite::button(Size size, Color fill) {
  Sprite s(size.width, size.height);
  const Color hi = fill.lerp(colors::kWhite, 0.4);
  const Color lo = fill.lerp(colors::kBlack, 0.4);
  for (i32 y = 0; y < s.height_; ++y) {
    for (i32 x = 0; x < s.width_; ++x) {
      Color c = fill;
      if (y == 0 || x == 0) c = hi;                                // bevel top/left
      if (y == s.height_ - 1 || x == s.width_ - 1) c = lo;         // bevel bottom/right
      s.set(x, y, c);
    }
  }
  return s;
}

namespace {

/// 8×8 1-bit glyphs for the icon painter. Each row is a bitmask, MSB left.
struct Glyph {
  const char* name;
  Color color;
  u8 rows[8];
};

constexpr Glyph kGlyphs[] = {
    {"umbrella", {200, 40, 40}, {0x3C, 0x7E, 0xFF, 0x18, 0x18, 0x18, 0x1A, 0x0C}},
    {"key", {230, 210, 60}, {0x30, 0x48, 0x48, 0x30, 0x10, 0x10, 0x18, 0x10}},
    {"computer", {90, 90, 110}, {0x7E, 0x42, 0x42, 0x42, 0x7E, 0x18, 0x3C, 0x00}},
    {"part", {60, 160, 70}, {0x00, 0x3C, 0x24, 0x3C, 0x3C, 0x24, 0x3C, 0x00}},
    {"coin", {240, 200, 40}, {0x3C, 0x42, 0x99, 0xA1, 0xA1, 0x99, 0x42, 0x3C}},
    {"trophy", {240, 180, 40}, {0x7E, 0x7E, 0x3C, 0x3C, 0x18, 0x18, 0x3C, 0x7E}},
    {"book", {60, 90, 180}, {0x7E, 0x81, 0xBD, 0xBD, 0xBD, 0xBD, 0x81, 0x7E}},
    {"person", {200, 150, 120}, {0x18, 0x3C, 0x18, 0x7E, 0x18, 0x3C, 0x24, 0x66}},
    {"door", {140, 90, 40}, {0x7E, 0x42, 0x42, 0x4A, 0x42, 0x42, 0x42, 0x7E}},
    {"apple", {220, 50, 50}, {0x08, 0x10, 0x3C, 0x7E, 0x7E, 0x7E, 0x3C, 0x00}},
};

}  // namespace

Sprite Sprite::icon(const std::string& name, i32 size) {
  const Glyph* glyph = nullptr;
  for (const auto& g : kGlyphs) {
    if (name == g.name) {
      glyph = &g;
      break;
    }
  }
  // Unknown icon: derive a stable checker pattern + color from the name so
  // missing art is visible but not fatal.
  Color color = colors::kGray;
  u8 fallback_rows[8];
  if (!glyph) {
    u64 h = 14695981039346656037ULL;
    for (char c : name) h = (h ^ static_cast<u8>(c)) * 1099511628211ULL;
    color = {static_cast<u8>(64 + (h & 0x7F)), static_cast<u8>(64 + ((h >> 8) & 0x7F)),
             static_cast<u8>(64 + ((h >> 16) & 0x7F))};
    for (int i = 0; i < 8; ++i) fallback_rows[i] = static_cast<u8>(h >> (i * 7));
  }

  Sprite s(size, size);
  // White card background with a border (matches Fig.2's "image object with
  // white background"), glyph scaled over it.
  for (i32 y = 0; y < size; ++y) {
    for (i32 x = 0; x < size; ++x) {
      const bool edge = x == 0 || y == 0 || x == size - 1 || y == size - 1;
      s.set(x, y, edge ? colors::kGray : colors::kWhite);
    }
  }
  const i32 margin = std::max(1, size / 8);
  const i32 cell_area = size - 2 * margin;
  for (int gy = 0; gy < 8; ++gy) {
    for (int gx = 0; gx < 8; ++gx) {
      const u8 row = glyph ? glyph->rows[gy] : fallback_rows[gy];
      if (!(row & (0x80 >> gx))) continue;
      const i32 x0 = margin + gx * cell_area / 8;
      const i32 y0 = margin + gy * cell_area / 8;
      const i32 x1 = margin + (gx + 1) * cell_area / 8;
      const i32 y1 = margin + (gy + 1) * cell_area / 8;
      for (i32 y = y0; y < std::max(y1, y0 + 1); ++y) {
        for (i32 x = x0; x < std::max(x1, x0 + 1); ++x) {
          s.set(x, y, glyph ? glyph->color : color);
        }
      }
    }
  }
  return s;
}

}  // namespace vgbl

namespace vgbl {
namespace {

[[nodiscard]] Result<Size> parse_size(const std::string& token) {
  const size_t x = token.find('x');
  if (x == std::string::npos) return corrupt_data("sprite spec: bad size '" + token + "'");
  const int w = std::atoi(token.substr(0, x).c_str());
  const int h = std::atoi(token.substr(x + 1).c_str());
  if (w <= 0 || h <= 0 || w > 4096 || h > 4096) {
    return corrupt_data("sprite spec: implausible size '" + token + "'");
  }
  return Size{w, h};
}

[[nodiscard]] Result<Color> parse_color(const std::string& token) {
  int r = 0, g = 0, b = 0;
  if (std::sscanf(token.c_str(), "%d,%d,%d", &r, &g, &b) != 3 ||
      r < 0 || g < 0 || b < 0 || r > 255 || g > 255 || b > 255) {
    return corrupt_data("sprite spec: bad color '" + token + "'");
  }
  return Color{static_cast<u8>(r), static_cast<u8>(g), static_cast<u8>(b)};
}

std::vector<std::string> split_spec(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(':', start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

Result<Sprite> Sprite::from_spec(const std::string& spec) {
  if (spec.empty()) return Sprite{};
  const std::vector<std::string> parts = split_spec(spec);
  const std::string& kind = parts[0];
  if (kind == "icon") {
    if (parts.size() < 2 || parts[1].empty()) {
      return corrupt_data("sprite spec: icon needs a name");
    }
    int size = 24;
    if (parts.size() >= 3) size = std::atoi(parts[2].c_str());
    if (size <= 0 || size > 1024) {
      return corrupt_data("sprite spec: implausible icon size");
    }
    return icon(parts[1], size);
  }
  if (kind == "solid" || kind == "button") {
    if (parts.size() < 3) {
      return corrupt_data("sprite spec: '" + kind + "' needs size and color");
    }
    auto size = parse_size(parts[1]);
    if (!size.ok()) return size.error();
    auto color = parse_color(parts[2]);
    if (!color.ok()) return color.error();
    return kind == "solid" ? solid(size.value(), color.value())
                           : button(size.value(), color.value());
  }
  return corrupt_data("sprite spec: unknown kind '" + kind + "'");
}

}  // namespace vgbl
