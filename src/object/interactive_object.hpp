// Interactive objects: the clickable/draggable entities mounted on video
// scenarios (paper §2.1, §3.1, §4.2). An object belongs to one scenario,
// occupies a rectangle during a frame window, and carries the designer-set
// description, properties, and (for items) the inventory item it grants.
#pragma once

#include <string>
#include <vector>

#include "object/properties.hpp"
#include "object/sprite.hpp"
#include "util/geometry.hpp"
#include "util/types.hpp"

namespace vgbl {

enum class ObjectKind : u8 {
  kButton = 0,  // switches scenarios / opens resources (paper Fig.2 buttons)
  kImage,       // examinable decoration mounted on the frame
  kItem,        // collectable into the backpack
  kNpc,         // fixed-conversation character (paper §3.1)
  kReward,      // achievement object, granted on mission completion (§3.3)
};

const char* object_kind_name(ObjectKind kind);
[[nodiscard]] Result<ObjectKind> object_kind_from_name(std::string_view name);

/// Where/when an object sits on its scenario's video.
struct Placement {
  Rect rect;
  /// Frame window within the segment; count < 0 means "until segment end".
  int first_frame = 0;
  int frame_count = -1;
  i32 z = 0;  // higher z is hit-tested and drawn on top
  bool visible = true;

  [[nodiscard]] bool active_at(int frame) const {
    if (frame < first_frame) return false;
    return frame_count < 0 || frame < first_frame + frame_count;
  }
};

struct InteractiveObject {
  ObjectId id;
  std::string name;
  ObjectKind kind = ObjectKind::kImage;
  ScenarioId scenario;
  Placement placement;
  Sprite sprite;
  /// Textual recipe the sprite was built from (see Sprite::from_spec);
  /// what the project format persists instead of pixels.
  std::string sprite_spec;
  PropertyBag properties;
  /// Shown when the player examines the object ("users can get
  /// descriptions when they try to examine these items", §3.1).
  std::string description;
  /// kItem: inventory item granted on pickup.
  ItemId grants_item;
  /// kNpc: conversation started on interaction.
  DialogueId dialogue;
  /// Draggable into the inventory window (Fig.2's umbrella drag).
  bool draggable = false;

  [[nodiscard]] bool interactable() const {
    return placement.visible;
  }
};

/// A hit-test view of one object: what the testers index.
struct HitTarget {
  ObjectId id;
  Rect rect;
  i32 z = 0;
  bool active = true;
};

/// Hit-testing strategy interface. Implementations must agree exactly; the
/// grid index is the production path, the linear scan the oracle (property-
/// tested equivalence, ablated in E7).
class HitTester {
 public:
  virtual ~HitTester() = default;
  virtual void rebuild(const std::vector<HitTarget>& targets) = 0;
  /// Topmost active target containing `p` (ties broken by later insertion,
  /// matching paint order); invalid id when nothing is hit.
  [[nodiscard]] virtual ObjectId hit(Point p) const = 0;
  /// All active targets containing `p`, topmost first.
  [[nodiscard]] virtual std::vector<ObjectId> hit_all(Point p) const = 0;
};

/// O(n) reference implementation.
class LinearHitTester final : public HitTester {
 public:
  void rebuild(const std::vector<HitTarget>& targets) override {
    targets_ = targets;
  }
  [[nodiscard]] ObjectId hit(Point p) const override;
  [[nodiscard]] std::vector<ObjectId> hit_all(Point p) const override;

 private:
  std::vector<HitTarget> targets_;
};

/// Uniform spatial grid over the frame. Cell size adapts to target density.
class GridHitTester final : public HitTester {
 public:
  explicit GridHitTester(Size frame_size) : frame_size_(frame_size) {}

  void rebuild(const std::vector<HitTarget>& targets) override;
  [[nodiscard]] ObjectId hit(Point p) const override;
  [[nodiscard]] std::vector<ObjectId> hit_all(Point p) const override;

 private:
  [[nodiscard]] const std::vector<u32>* cell_at(Point p) const;

  Size frame_size_;
  i32 cell_size_ = 64;
  i32 cols_ = 0;
  i32 rows_ = 0;
  std::vector<HitTarget> targets_;
  std::vector<std::vector<u32>> cells_;  // indices into targets_
};

}  // namespace vgbl
