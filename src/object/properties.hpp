// Typed property bag for interactive objects. The object editor (paper
// §4.2) lets designers "set the properties and events of objects"; this is
// the property half. Values round-trip through the JSON project format.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <variant>

#include "util/json.hpp"
#include "util/types.hpp"

namespace vgbl {

using PropertyValue = std::variant<bool, i64, f64, std::string>;

class PropertyBag {
 public:
  void set(std::string key, PropertyValue value) {
    values_[std::move(key)] = std::move(value);
  }
  void set_bool(std::string key, bool v) { set(std::move(key), v); }
  void set_int(std::string key, i64 v) { set(std::move(key), v); }
  void set_double(std::string key, f64 v) { set(std::move(key), v); }
  void set_string(std::string key, std::string v) {
    set(std::move(key), std::move(v));
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) > 0;
  }
  bool remove(const std::string& key) { return values_.erase(key) > 0; }

  [[nodiscard]] std::optional<PropertyValue> get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;
  [[nodiscard]] i64 get_int(const std::string& key, i64 fallback = 0) const;
  [[nodiscard]] f64 get_double(const std::string& key, f64 fallback = 0) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback = "") const;

  [[nodiscard]] size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] const std::map<std::string, PropertyValue>& values() const {
    return values_;
  }

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<PropertyBag> from_json(const Json& json);

  bool operator==(const PropertyBag&) const = default;

 private:
  std::map<std::string, PropertyValue> values_;
};

}  // namespace vgbl
