// Session recording: captures a player's inputs as an InputScript that
// replays bit-identically against the same bundle (sessions are
// deterministic under SimClock). Lecturers can replay any student's run
// while reading the learning report; tests use it for record/replay
// equivalence checks.
#pragma once

#include "runtime/script.hpp"
#include "util/json.hpp"

namespace vgbl {

/// Decorates a GameSession: forwards every input and appends the
/// equivalent ScriptStep (with the wait steps needed to reproduce timing).
class SessionRecorder {
 public:
  SessionRecorder(GameSession* session, SimClock* clock)
      : session_(session), clock_(clock), last_event_(clock->now()) {}

  // Forwarded inputs (same signatures as GameSession, by object/item name
  // resolution like ScriptRunner so recordings survive id changes).
  Status click(Point canvas_point);
  Status examine(Point canvas_point);
  Status drag_to_inventory(const std::string& object_name);
  Status use_item_on(const std::string& item_name,
                     const std::string& object_name);
  Status combine(const std::string& item_a, const std::string& item_b);
  Status choose_dialogue(size_t index);
  Status advance_dialogue();
  Status answer_quiz(size_t option);
  /// Advances the clock (recorded as a wait step).
  void wait(MicroTime duration);

  [[nodiscard]] const InputScript& script() const { return script_; }

 private:
  /// Records elapsed wall time since the last recorded event as a wait.
  void record_gap();
  /// Name of the object at a canvas point (empty when none).
  [[nodiscard]] std::string object_name_at(Point canvas_point) const;

  GameSession* session_;
  SimClock* clock_;
  InputScript script_;
  MicroTime last_event_;
};

/// Script (de)serialization — recordings are stored/sent as JSON.
[[nodiscard]] Json script_to_json(const InputScript& script);
[[nodiscard]] Result<InputScript> script_from_json(const Json& json);

}  // namespace vgbl
