#include "runtime/ui.hpp"

namespace vgbl {

UiLayout UiLayout::standard(Size video) {
  UiLayout l;
  constexpr i32 kInventoryWidth = 96;
  constexpr i32 kMessageHeight = 40;
  constexpr i32 kStatusHeight = 16;
  l.video_area = {0, kStatusHeight, video.width, video.height};
  l.inventory_window = {video.width, kStatusHeight, kInventoryWidth,
                        video.height};
  l.message_area = {0, kStatusHeight + video.height,
                    video.width + kInventoryWidth, kMessageHeight};
  l.status_bar = {0, 0, video.width + kInventoryWidth, kStatusHeight};
  l.canvas = {video.width + kInventoryWidth,
              kStatusHeight + video.height + kMessageHeight};
  return l;
}

void UiState::update(MicroTime now) {
  if (message_ && message_->timeout > 0 &&
      now - message_->shown_at >= message_->timeout) {
    message_.reset();
  }
}

}  // namespace vgbl
