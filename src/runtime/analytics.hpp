// Learning analytics: the knowledge-delivery evidence the paper's §3.2
// motivates ("Students can obtain knowledge from the process of making
// decision and interaction"). The tracker records what the player did,
// where, and when; the report is what a lecturer would review to decide
// real-world rewards (§3.3: "the lecturers will decide how to reward
// students themselves").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

class LearningTracker {
 public:
  void on_scenario_entered(ScenarioId id, const std::string& name,
                           MicroTime now);
  void on_interaction(const std::string& kind, const std::string& target,
                      MicroTime now);
  void on_decision(const std::string& context, const std::string& choice,
                   MicroTime now);
  void on_item_collected(const std::string& item, MicroTime now);
  void on_score(i64 points, const std::string& reason, MicroTime now);
  void on_reward(const std::string& reward, MicroTime now);
  void on_resource_opened(const std::string& title, MicroTime now);
  void on_game_over(bool success, MicroTime now);

  struct ScenarioVisit {
    ScenarioId id;
    std::string name;
    MicroTime entered;
    MicroTime left = -1;  // -1: still inside at game end
  };
  struct InteractionRecord {
    std::string kind;    // "click", "examine", "drag", "use_item", ...
    std::string target;
    MicroTime when;
  };
  struct DecisionRecord {
    std::string context;
    std::string choice;
    MicroTime when;
  };

  [[nodiscard]] const std::vector<ScenarioVisit>& visits() const {
    return visits_;
  }
  [[nodiscard]] const std::vector<InteractionRecord>& interactions() const {
    return interactions_;
  }
  [[nodiscard]] const std::vector<DecisionRecord>& decisions() const {
    return decisions_;
  }
  [[nodiscard]] const std::vector<std::string>& items_collected() const {
    return items_;
  }
  [[nodiscard]] const std::vector<std::string>& rewards_earned() const {
    return rewards_;
  }
  [[nodiscard]] i64 total_score() const { return score_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] bool succeeded() const { return success_; }
  /// Sim-time of on_game_over, or -1 while the game is still running.
  [[nodiscard]] MicroTime finished_at() const { return finished_at_; }

  /// Full mutable state as plain data — what the session-persistence
  /// snapshot serialises ("analytics counters" survive suspend/resume).
  struct State {
    std::vector<ScenarioVisit> visits;
    std::vector<InteractionRecord> interactions;
    std::vector<DecisionRecord> decisions;
    std::vector<std::string> items;
    std::vector<std::string> rewards;
    std::vector<std::pair<std::string, MicroTime>> resources;
    i64 score = 0;
    bool finished = false;
    bool success = false;
    MicroTime finished_at = -1;
  };
  [[nodiscard]] State state() const;
  void restore(State state);

  /// Seconds spent per scenario name (aggregated over revisits).
  [[nodiscard]] std::map<std::string, f64> time_per_scenario(
      MicroTime now) const;

  /// Lecturer-facing plain-text report.
  [[nodiscard]] std::string report(MicroTime now) const;
  /// Machine-readable form (for gradebook export).
  [[nodiscard]] Json to_json(MicroTime now) const;

 private:
  std::vector<ScenarioVisit> visits_;
  std::vector<InteractionRecord> interactions_;
  std::vector<DecisionRecord> decisions_;
  std::vector<std::string> items_;
  std::vector<std::string> rewards_;
  std::vector<std::pair<std::string, MicroTime>> resources_;
  i64 score_ = 0;
  bool finished_ = false;
  bool success_ = false;
  MicroTime finished_at_ = -1;
};

}  // namespace vgbl
