#include "runtime/resource_catalog.hpp"

namespace vgbl {

std::optional<WebResource> ResourceCatalog::fetch(const std::string& url,
                                                  MicroTime now) {
  const WebResource* r = find(url);
  log_.push_back({url, now, r != nullptr});
  if (!r) return std::nullopt;
  return *r;
}

ResourceCatalog ResourceCatalog::with_default_pages() {
  ResourceCatalog c;
  c.add({"vgbl://wiki/power_supply", "Power supply unit",
         "Converts mains AC to low-voltage DC for the computer's components.",
         milliseconds(100)});
  c.add({"vgbl://wiki/motherboard", "Motherboard",
         "The main printed circuit board connecting all computer parts.",
         milliseconds(100)});
  c.add({"vgbl://wiki/umbrella", "Umbrella",
         "A canopy on a pole, used as protection against rain or sunlight.",
         milliseconds(80)});
  c.add({"vgbl://wiki/recycling", "Recycling",
         "Processing used materials into new products.", milliseconds(140)});
  c.add({"vgbl://shop/parts", "Parts market",
         "Electronic components and spare parts for sale.", milliseconds(200)});
  return c;
}

}  // namespace vgbl
