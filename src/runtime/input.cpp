#include "runtime/input.hpp"

#include <cstdlib>

namespace vgbl {

std::optional<Gesture> GestureRecognizer::feed(const MouseEvent& event) {
  switch (event.type) {
    case MouseEvent::Type::kDown:
      pressed_ = true;
      moved_beyond_slop_ = false;
      pressed_button_ = event.button;
      press_position_ = event.position;
      return std::nullopt;

    case MouseEvent::Type::kMove:
      if (pressed_ && !moved_beyond_slop_) {
        const Point d = event.position - press_position_;
        if (std::abs(d.x) > drag_slop_ || std::abs(d.y) > drag_slop_) {
          moved_beyond_slop_ = true;
        }
      }
      return std::nullopt;

    case MouseEvent::Type::kUp: {
      if (!pressed_) return std::nullopt;
      pressed_ = false;
      Gesture g;
      g.when = event.when;
      if (pressed_button_ == MouseButton::kRight) {
        g.type = Gesture::Type::kExamine;
        g.position = press_position_;
      } else if (moved_beyond_slop_) {
        g.type = Gesture::Type::kDrag;
        g.position = press_position_;
        g.drag_end = event.position;
      } else {
        g.type = Gesture::Type::kClick;
        g.position = press_position_;
      }
      return g;
    }
  }
  return std::nullopt;
}

}  // namespace vgbl
