// GameSession: the interactive VGBL runtime environment (paper §4.3) — an
// augmented video player. It owns all mutable play state (current scenario,
// backpack, flags, score, dialogue, UI), turns player gestures into trigger
// events, dispatches them through the rule book, and applies the resulting
// actions. Built-in default behaviours keep authoring light:
//   - clicking an item object picks it up (grants its item, hides it)
//   - examining any object shows its description
//   - clicking an NPC starts its dialogue
//   - dragging a draggable item into the inventory window collects it
// Designer rules run first and may add to or replace these defaults.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "author/bundle.hpp"
#include "dialogue/dialogue.hpp"
#include "event/rule.hpp"
#include "inventory/inventory.hpp"
#include "media/player.hpp"
#include "rewards/evaluator.hpp"
#include "rewards/rules.hpp"
#include "runtime/analytics.hpp"
#include "runtime/avatar.hpp"
#include "runtime/resource_catalog.hpp"
#include "runtime/session_state.hpp"
#include "runtime/ui.hpp"
#include "util/sim_clock.hpp"

namespace vgbl {

enum class HitTesterKind { kLinear, kGrid };

struct SessionOptions {
  GuardEngine guard_engine = GuardEngine::kCompiledVm;
  HitTesterKind hit_tester = HitTesterKind::kGrid;
  int inventory_capacity = 12;
  /// Decode pool size for the session's playback pipeline. 0 means no
  /// pool at all — frames decode synchronously on the caller's thread
  /// (DecodePipeline::Options::decode_threads); simulation engines use
  /// that so district-scale cohorts don't spawn a thread per session.
  unsigned decode_threads = 1;
  bool enable_default_behaviours = true;
  /// Avatar mode (paper §4.3): interactions require walking within reach;
  /// clicking empty ground walks the avatar there. Off by default so
  /// pointer-style games behave like Fig.2's direct manipulation.
  bool enable_avatar = false;
  Avatar::Options avatar;
  /// Reward rules evaluated inline against the session's event stream
  /// (src/rewards). Null disables rewards entirely — the evaluator is
  /// inert and the session behaves exactly as before. The rule set must
  /// outlive the session (typically RewardRuleSet::standard() or a set
  /// owned by the classroom/test driving it).
  const rewards::RewardRuleSet* reward_rules = nullptr;
};

/// One entry of the session's human-readable event log (tests and the
/// examples assert on these).
struct SessionEvent {
  MicroTime when;
  std::string text;
};

class GameSession {
 public:
  GameSession(std::shared_ptr<const GameBundle> bundle, const Clock* clock,
              SessionOptions options);
  GameSession(std::shared_ptr<const GameBundle> bundle, const Clock* clock)
      : GameSession(std::move(bundle), clock, SessionOptions{}) {}

  /// Enters the start scenario; must be called once before any input.
  Status start();

  // --- Player input (canvas coordinates; see UiLayout) ---------------------
  Status click(Point canvas_point);
  Status examine(Point canvas_point);
  Status drag(Point canvas_from, Point canvas_to);
  /// Applies a held item to the object at `canvas_point`.
  Status use_item_on(ItemId item, Point canvas_point);
  /// Combines two held items via the bundle's combine table.
  Status combine_items(ItemId a, ItemId b);
  /// Dismisses the active message/image popup (a click anywhere does too).
  void dismiss_popups();

  // --- Dialogue -------------------------------------------------------------
  [[nodiscard]] bool in_dialogue() const { return dialogue_.has_value(); }
  Status advance_dialogue();
  Status choose_dialogue(size_t index);

  // --- Quiz (knowledge check, §3.2 extension) --------------------------------
  [[nodiscard]] bool in_quiz() const { return quiz_.has_value(); }
  /// Answers the current quiz question. On the last question the quiz
  /// completes: points are awarded, the outcome message is shown and a
  /// quiz_passed:<name> / quiz_failed:<name> flag is set.
  Status answer_quiz(size_t option);

  // --- Time ----------------------------------------------------------------
  /// Processes timers, segment-end events and UI timeouts at the clock's
  /// current time. Call once per game-loop iteration.
  void tick();

  // --- State ---------------------------------------------------------------
  [[nodiscard]] ScenarioId current_scenario() const { return current_; }
  [[nodiscard]] const Scenario* current_scenario_info() const;
  [[nodiscard]] bool game_over() const { return game_over_; }
  [[nodiscard]] bool succeeded() const { return success_; }
  [[nodiscard]] i64 score() const { return ledger_.total(); }
  [[nodiscard]] const Inventory& inventory() const { return inventory_; }
  [[nodiscard]] const ScoreLedger& ledger() const { return ledger_; }
  [[nodiscard]] bool flag(const std::string& name) const {
    return flags_.count(name) > 0;
  }
  [[nodiscard]] const std::unordered_set<std::string>& flags() const {
    return flags_;
  }
  [[nodiscard]] bool visited(ScenarioId id) const {
    return visited_.count(id.value) > 0;
  }
  [[nodiscard]] const UiState& ui() const { return ui_; }
  [[nodiscard]] const SessionOptions& options() const { return options_; }
  /// Avatar state (meaningful only when options().enable_avatar).
  [[nodiscard]] const Avatar& avatar() const { return avatar_; }
  /// True while the avatar is walking toward a deferred interaction.
  [[nodiscard]] bool interaction_pending() const {
    return pending_interaction_.has_value();
  }
  [[nodiscard]] const LearningTracker& tracker() const { return tracker_; }
  [[nodiscard]] LearningTracker& tracker_mutable() { return tracker_; }
  /// Reward evaluator (inert unless options().reward_rules was set). The
  /// unlock log it holds is the session's canonical badge stream.
  [[nodiscard]] const rewards::RewardEvaluator& rewards() const {
    return rewards_;
  }
  [[nodiscard]] const std::vector<SessionEvent>& event_log() const {
    return log_;
  }
  [[nodiscard]] const GameBundle& bundle() const { return *bundle_; }
  [[nodiscard]] ResourceCatalog& resources() { return resources_; }

  /// Objects of the current scenario visible at the current video frame,
  /// in paint order (ascending z) — what the compositor draws.
  [[nodiscard]] std::vector<const InteractiveObject*> visible_objects() const;

  /// The object a canvas point lands on (through the configured hit
  /// tester); invalid id when none or when the point is outside the video.
  [[nodiscard]] ObjectId object_at(Point canvas_point) const;

  /// Current video frame (decoded through the segment player).
  std::optional<Frame> current_video_frame();

  /// The video player's frame index within the current segment.
  [[nodiscard]] int current_frame_index() const;

  // --- Save games ------------------------------------------------------------
  /// Serialises mutable play state (not the bundle).
  [[nodiscard]] Json save_state() const;
  /// Restores a save produced by `save_state` against the same bundle.
  Status load_state(const Json& snapshot);

  // --- Session persistence (src/persist) -------------------------------------
  /// Captures the complete mutable state — scenario position, backpack,
  /// score ledger, flags, armed timers, avatar pose, mid-dialogue/quiz
  /// position, UI popups, analytics and the event log — as plain data.
  /// A session restored from this state and driven with the same inputs
  /// produces a bit-identical SessionEvent log.
  [[nodiscard]] SessionState capture_state() const;
  /// Re-applies a captured state against the same bundle. The session's
  /// clock must already read `state.now` (advance it first) so timers and
  /// video playback resume in phase. Fails with a typed error on bundle
  /// mismatch or inconsistent state; the session is then unspecified and
  /// should be discarded (restore into a fresh session).
  Status restore_state(const SessionState& state);

 private:
  class StateView;

  /// Dispatches a trigger event: designer rules first, then (if nothing
  /// fired and defaults are enabled) the built-in behaviour.
  void dispatch(const TriggerEvent& event);
  /// Applies one action; returns true if the action ended the scenario
  /// (switch/replay/end) so callers stop applying the remainder.
  bool apply_action(const Action& action, const EventRule* source);
  /// Feeds tracker records accumulated since the last drain into the
  /// reward evaluator, then turns any fresh unlocks into score awards and
  /// log lines. Called at the end of every state-mutating entry point.
  void drain_rewards();
  /// One sync pass: feed unconsumed tracker records to the evaluator.
  void sync_rewards_from_tracker();
  void enter_scenario(ScenarioId id);
  void arm_timers();
  void drain_dialogue_tags();
  void refresh_dialogue_view();
  void rebuild_hit_index() const;
  void log(std::string text);
  [[nodiscard]] bool object_effectively_visible(
      const InteractiveObject& o) const;
  [[nodiscard]] Point to_video(Point canvas) const;

  std::shared_ptr<const GameBundle> bundle_;
  const Clock* clock_;
  SessionOptions options_;

  RuleBook rule_book_;
  SegmentPlayer player_;
  UiState ui_;
  ResourceCatalog resources_ = ResourceCatalog::with_default_pages();

  ScenarioId current_;
  bool started_ = false;
  bool game_over_ = false;
  bool success_ = false;

  Inventory inventory_;
  ScoreLedger ledger_;
  std::unordered_set<std::string> flags_;
  std::unordered_set<u32> visited_;
  std::unordered_set<u32> disarmed_;  // fired once-rules
  /// Designer actions can reveal/hide objects at runtime; overrides the
  /// authored placement visibility.
  std::unordered_map<u32, bool> visibility_override_;

  struct ArmedTimer {
    RuleId rule;
    MicroTime fire_at;
  };
  std::vector<ArmedTimer> timers_;
  MicroTime scenario_entered_at_ = 0;
  bool segment_end_fired_ = false;

  /// Interaction deferred until the avatar reaches its target.
  struct PendingInteraction {
    TriggerType type = TriggerType::kClick;
    ObjectId object;
    ItemId item;
  };
  void perform_object_interaction(TriggerType type, ObjectId object,
                                  ItemId item);
  /// Returns true when the interaction was deferred (avatar must walk).
  bool defer_if_out_of_reach(TriggerType type, ObjectId object, ItemId item);

  Avatar avatar_;
  std::optional<PendingInteraction> pending_interaction_;

  struct ActiveDialogue {
    DialogueId id;
    DialogueRunner runner;
    size_t consumed_tags = 0;
    /// Inputs applied so far (kDialogueAdvance or choice index) — lets a
    /// snapshot restore the runner mid-conversation by replaying them.
    std::vector<u32> path;
  };
  std::optional<ActiveDialogue> dialogue_;

  struct ActiveQuiz {
    QuizId id;
    QuizRunner runner;
    /// Options answered so far (snapshot restore replays these).
    std::vector<u32> answers;
  };
  void refresh_quiz_view();
  std::optional<ActiveQuiz> quiz_;

  LearningTracker tracker_;
  rewards::RewardEvaluator rewards_;
  std::vector<SessionEvent> log_;

  // Hit testing (rebuilt lazily when the frame index or object set moved).
  mutable std::unique_ptr<HitTester> hit_tester_;
  mutable int hit_index_frame_ = -1;
  mutable u64 hit_index_epoch_ = 0;  // bumped on visibility changes
  mutable u64 hit_index_built_epoch_ = ~0ULL;
};

}  // namespace vgbl
