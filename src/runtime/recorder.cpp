#include "runtime/recorder.hpp"

namespace vgbl {

std::string SessionRecorder::object_name_at(Point canvas_point) const {
  const ObjectId id = session_->object_at(canvas_point);
  if (!id.valid()) return {};
  const InteractiveObject* obj = session_->bundle().find_object(id);
  return obj ? obj->name : std::string{};
}

void SessionRecorder::record_gap() {
  const MicroTime now = clock_->now();
  if (now > last_event_) {
    script_.push_back(ScriptStep::wait(now - last_event_));
  }
  last_event_ = now;
}

Status SessionRecorder::click(Point canvas_point) {
  record_gap();
  const std::string name = object_name_at(canvas_point);
  auto st = session_->click(canvas_point);
  if (st.ok()) {
    script_.push_back(name.empty() ? ScriptStep::click_at(canvas_point)
                                   : ScriptStep::click(name));
  }
  return st;
}

Status SessionRecorder::examine(Point canvas_point) {
  record_gap();
  const std::string name = object_name_at(canvas_point);
  auto st = session_->examine(canvas_point);
  if (st.ok() && !name.empty()) {
    script_.push_back(ScriptStep::examine(name));
  }
  return st;
}

Status SessionRecorder::drag_to_inventory(const std::string& object_name) {
  record_gap();
  Point from{};
  bool found = false;
  for (const auto* o : session_->visible_objects()) {
    if (o->name == object_name) {
      const Point c = o->placement.rect.center();
      const Point origin = session_->ui().layout().video_area.origin();
      from = {c.x + origin.x, c.y + origin.y};
      found = true;
    }
  }
  if (!found) return not_found("no visible object '" + object_name + "'");
  auto st = session_->drag(from,
                           session_->ui().layout().inventory_window.center());
  if (st.ok()) script_.push_back(ScriptStep::drag_to_inventory(object_name));
  return st;
}

Status SessionRecorder::use_item_on(const std::string& item_name,
                                    const std::string& object_name) {
  record_gap();
  const ItemDef* item = session_->bundle().items.find_by_name(item_name);
  if (!item) return not_found("no item '" + item_name + "'");
  Point at{};
  bool found = false;
  for (const auto* o : session_->visible_objects()) {
    if (o->name == object_name) {
      const Point c = o->placement.rect.center();
      const Point origin = session_->ui().layout().video_area.origin();
      at = {c.x + origin.x, c.y + origin.y};
      found = true;
    }
  }
  if (!found) return not_found("no visible object '" + object_name + "'");
  auto st = session_->use_item_on(item->id, at);
  if (st.ok()) script_.push_back(ScriptStep::use_item(item_name, object_name));
  return st;
}

Status SessionRecorder::combine(const std::string& item_a,
                                const std::string& item_b) {
  record_gap();
  const ItemDef* a = session_->bundle().items.find_by_name(item_a);
  const ItemDef* b = session_->bundle().items.find_by_name(item_b);
  if (!a || !b) return not_found("unknown item in combine");
  auto st = session_->combine_items(a->id, b->id);
  if (st.ok()) script_.push_back(ScriptStep::combine(item_a, item_b));
  return st;
}

Status SessionRecorder::choose_dialogue(size_t index) {
  record_gap();
  auto st = session_->choose_dialogue(index);
  if (st.ok()) script_.push_back(ScriptStep::choose(index));
  return st;
}

Status SessionRecorder::advance_dialogue() {
  record_gap();
  auto st = session_->advance_dialogue();
  if (st.ok()) script_.push_back(ScriptStep::advance());
  return st;
}

Status SessionRecorder::answer_quiz(size_t option) {
  record_gap();
  auto st = session_->answer_quiz(option);
  if (st.ok()) script_.push_back(ScriptStep::answer_quiz(option));
  return st;
}

void SessionRecorder::wait(MicroTime duration) {
  clock_->advance(duration);
  session_->tick();
  // Folded into the next record_gap(); nothing to do now.
}

namespace {

const char* op_name(ScriptStep::Op op) {
  switch (op) {
    case ScriptStep::Op::kClickObject:
      return "click";
    case ScriptStep::Op::kExamineObject:
      return "examine";
    case ScriptStep::Op::kDragObjectToInventory:
      return "drag_to_inventory";
    case ScriptStep::Op::kUseItemOn:
      return "use_item";
    case ScriptStep::Op::kCombineItems:
      return "combine";
    case ScriptStep::Op::kChooseDialogue:
      return "choose";
    case ScriptStep::Op::kAdvanceDialogue:
      return "advance";
    case ScriptStep::Op::kAnswerQuiz:
      return "answer_quiz";
    case ScriptStep::Op::kWait:
      return "wait";
    case ScriptStep::Op::kClickPoint:
      return "click_at";
  }
  return "?";
}

[[nodiscard]] Result<ScriptStep::Op> op_from_name(const std::string& name) {
  for (u8 i = 0; i <= static_cast<u8>(ScriptStep::Op::kClickPoint); ++i) {
    const auto op = static_cast<ScriptStep::Op>(i);
    if (name == op_name(op)) return op;
  }
  return corrupt_data("unknown script op '" + name + "'");
}

}  // namespace

Json script_to_json(const InputScript& script) {
  JsonArray steps;
  for (const auto& s : script) {
    Json sj = Json::object();
    auto& o = sj.mutable_object();
    o.set("op", Json(op_name(s.op)));
    if (!s.object_name.empty()) o.set("object", Json(s.object_name));
    if (!s.item_name.empty()) o.set("item", Json(s.item_name));
    if (!s.second_item_name.empty()) {
      o.set("second_item", Json(s.second_item_name));
    }
    if (s.op == ScriptStep::Op::kChooseDialogue ||
        s.op == ScriptStep::Op::kAnswerQuiz) {
      o.set("choice", Json(static_cast<i64>(s.choice)));
    }
    if (s.wait_time != 0) o.set("wait_us", Json(s.wait_time));
    if (s.op == ScriptStep::Op::kClickPoint) {
      o.set("x", Json(s.point.x));
      o.set("y", Json(s.point.y));
    }
    steps.push_back(std::move(sj));
  }
  Json out = Json::object();
  out.mutable_object().set("steps", Json(std::move(steps)));
  return out;
}

Result<InputScript> script_from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("script must be an object");
  InputScript script;
  for (const auto& sj : json["steps"].as_array()) {
    auto op = op_from_name(sj["op"].as_string());
    if (!op.ok()) return op.error();
    ScriptStep step;
    step.op = op.value();
    step.object_name = sj["object"].as_string();
    step.item_name = sj["item"].as_string();
    step.second_item_name = sj["second_item"].as_string();
    step.choice = static_cast<size_t>(sj["choice"].as_int());
    step.wait_time = sj["wait_us"].as_int();
    step.point = {static_cast<i32>(sj["x"].as_int()),
                  static_cast<i32>(sj["y"].as_int())};
    script.push_back(std::move(step));
  }
  return script;
}

}  // namespace vgbl
