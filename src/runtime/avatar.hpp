// The player avatar (paper §4.3: "The users can manipulate the avatar in
// a game scenario and make interactions with the interactive objects").
// The avatar walks toward clicked points at a fixed speed; when avatar
// mode is enabled, object interactions require proximity — clicking a far
// object first walks the avatar there, then performs the interaction
// (classic point-and-click adventure behaviour).
#pragma once

#include <optional>

#include "util/geometry.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

class Avatar {
 public:
  struct Options {
    f64 speed_px_per_s = 120.0;
    /// Interaction reach: the avatar can touch objects whose rect is
    /// within this distance of its position.
    i32 reach_px = 40;
    /// Rendered size (feet at `position`).
    Size size{16, 28};
  };

  Avatar() : Avatar(Options{}) {}
  explicit Avatar(Options options) : options_(options) {}

  [[nodiscard]] const Options& options() const { return options_; }

  /// Current position (video coordinates; the avatar's feet).
  [[nodiscard]] Point position() const { return position_; }
  void set_position(Point p) {
    position_ = p;
    target_.reset();
  }

  /// Starts walking toward `p` (clamped to `bounds` by the caller).
  void walk_to(Point p, MicroTime now);
  [[nodiscard]] bool walking() const { return target_.has_value(); }
  [[nodiscard]] std::optional<Point> target() const { return target_; }

  /// Advances motion to `now`. Returns true when a walk completed on this
  /// update (arrival edge, used to trigger deferred interactions).
  bool update(MicroTime now);

  /// True when the avatar can reach an object occupying `rect`.
  [[nodiscard]] bool can_reach(const Rect& rect) const;

  /// Where the avatar should stand to interact with `rect` (the nearest
  /// point at reach distance below/beside the object).
  [[nodiscard]] Point stand_point_for(const Rect& rect) const;

  /// Footprint rectangle for rendering.
  [[nodiscard]] Rect bounds() const {
    return {position_.x - options_.size.width / 2,
            position_.y - options_.size.height, options_.size.width,
            options_.size.height};
  }

 private:
  Options options_;
  Point position_{40, 200};
  std::optional<Point> target_;
  MicroTime last_update_ = 0;
};

}  // namespace vgbl
