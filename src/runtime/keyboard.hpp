// Keyboard / remote-control input (paper §2: "Remote control, PDA, tablet,
// keyboard and mouse are used for delivering the control made by users").
// Maps discrete key presses onto session interactions: Tab/arrows cycle
// focus through the visible objects, Enter activates, E examines, digits
// answer dialogues and quizzes — the ten-key interaction model a TV remote
// affords.
#pragma once

#include "runtime/session.hpp"

namespace vgbl {

enum class Key : u8 {
  kTab = 0,     // focus next object
  kShiftTab,    // focus previous object
  kUp,          // focus previous (remote-control arrows)
  kDown,        // focus next
  kEnter,       // activate focused object (click)
  kExamine,     // 'E' / remote INFO button
  kDigit1,      // choices / quiz answers
  kDigit2,
  kDigit3,
  kDigit4,
  kDigit5,
  kDigit6,
  kDigit7,
  kDigit8,
  kDigit9,
  kEscape,      // dismiss popups
};

/// Stateful focus-based controller over one session. Focus order is the
/// visible objects sorted by position (top-to-bottom, left-to-right), so
/// Tab order matches reading order; it survives object-set changes by
/// re-anchoring to the nearest still-visible object.
class KeyboardController {
 public:
  explicit KeyboardController(GameSession* session) : session_(session) {}

  /// Handles one key press. Unknown/ignored keys return ok.
  Status press(Key key);

  /// The currently focused object (invalid when none focusable).
  [[nodiscard]] ObjectId focused() const;

  /// Canvas-space centre of the focused object (for focus-ring drawing and
  /// for routing the activation click).
  [[nodiscard]] std::optional<Point> focused_point() const;

 private:
  /// Visible objects in reading order.
  [[nodiscard]] std::vector<const InteractiveObject*> focus_order() const;
  void move_focus(int delta);

  GameSession* session_;
  ObjectId focus_;
};

}  // namespace vgbl
