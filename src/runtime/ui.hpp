// Runtime UI model: the inventory window, message popups, image popups and
// score display that surround the video area (paper Fig.2). Pure state —
// the compositor rasterises it, the ASCII renderer prints it, and the
// session mutates it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/geometry.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

/// Screen layout: video area plus the chrome around it. All rects are in
/// output-canvas coordinates; the video area origin is (0,0) so object
/// placements (authored in video coordinates) map directly.
struct UiLayout {
  Size canvas;            // full window
  Rect video_area;        // where the video frame is drawn
  Rect inventory_window;  // right-hand backpack panel (drag target)
  Rect message_area;      // bottom text bar
  Rect status_bar;        // top: title + score

  /// Default layout for a given video size: video top-left, inventory
  /// column on the right, message bar under the video.
  static UiLayout standard(Size video);
};

struct MessageBox {
  std::string text;
  MicroTime shown_at = 0;
  /// Auto-dismiss after this long; 0 keeps it until replaced/dismissed.
  MicroTime timeout = 0;
};

struct ImagePopup {
  std::string icon;  // Sprite::icon name
  MicroTime shown_at = 0;
};

/// One line of the dialogue overlay.
struct DialogueView {
  std::string speaker;
  std::string line;
  std::vector<std::string> choices;  // empty = "click to continue"
};

/// The quiz overlay: one question at a time.
struct QuizView {
  std::string quiz_name;
  std::string prompt;
  std::vector<std::string> options;
  size_t question_number = 1;
  size_t total_questions = 1;
};

class UiState {
 public:
  explicit UiState(UiLayout layout) : layout_(layout) {}
  UiState() : UiState(UiLayout::standard({320, 240})) {}

  [[nodiscard]] const UiLayout& layout() const { return layout_; }

  void show_message(std::string text, MicroTime now, MicroTime timeout = 0) {
    message_ = MessageBox{std::move(text), now, timeout};
  }
  void dismiss_message() { message_.reset(); }
  /// Expires timed-out popups; called from the session tick.
  void update(MicroTime now);

  [[nodiscard]] const std::optional<MessageBox>& message() const {
    return message_;
  }

  void show_image(std::string icon, MicroTime now) {
    image_ = ImagePopup{std::move(icon), now};
  }
  void dismiss_image() { image_.reset(); }
  [[nodiscard]] const std::optional<ImagePopup>& image() const { return image_; }

  void set_dialogue(std::optional<DialogueView> view) {
    dialogue_ = std::move(view);
  }
  [[nodiscard]] const std::optional<DialogueView>& dialogue() const {
    return dialogue_;
  }

  void set_quiz(std::optional<QuizView> view) { quiz_ = std::move(view); }
  [[nodiscard]] const std::optional<QuizView>& quiz() const { return quiz_; }

  /// True when `p` lands in the inventory window (the drag-to-backpack
  /// target test).
  [[nodiscard]] bool in_inventory_window(Point p) const {
    return layout_.inventory_window.contains(p);
  }

 private:
  UiLayout layout_;
  std::optional<MessageBox> message_;
  std::optional<ImagePopup> image_;
  std::optional<DialogueView> dialogue_;
  std::optional<QuizView> quiz_;
};

}  // namespace vgbl
