#include "runtime/keyboard.hpp"

#include <algorithm>

namespace vgbl {

std::vector<const InteractiveObject*> KeyboardController::focus_order() const {
  std::vector<const InteractiveObject*> objects = session_->visible_objects();
  std::sort(objects.begin(), objects.end(),
            [](const InteractiveObject* a, const InteractiveObject* b) {
              const Point pa = a->placement.rect.origin();
              const Point pb = b->placement.rect.origin();
              return pa.y != pb.y ? pa.y < pb.y : pa.x < pb.x;
            });
  return objects;
}

ObjectId KeyboardController::focused() const {
  // Validate against the current visible set (objects hide/reveal).
  for (const auto* o : focus_order()) {
    if (o->id == focus_) return focus_;
  }
  return {};
}

std::optional<Point> KeyboardController::focused_point() const {
  for (const auto* o : focus_order()) {
    if (o->id == focus_) {
      const Point c = o->placement.rect.center();
      const Point origin = session_->ui().layout().video_area.origin();
      return Point{c.x + origin.x, c.y + origin.y};
    }
  }
  return std::nullopt;
}

void KeyboardController::move_focus(int delta) {
  const auto order = focus_order();
  if (order.empty()) {
    focus_ = {};
    return;
  }
  // Find the current anchor; fall back to the first/last element.
  int index = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i]->id == focus_) {
      index = static_cast<int>(i);
      break;
    }
  }
  if (index < 0) {
    focus_ = delta >= 0 ? order.front()->id : order.back()->id;
    return;
  }
  const int n = static_cast<int>(order.size());
  focus_ = order[static_cast<size_t>(((index + delta) % n + n) % n)]->id;
}

Status KeyboardController::press(Key key) {
  // Digits answer modal UI first (dialogue choices, quiz options).
  if (key >= Key::kDigit1 && key <= Key::kDigit9) {
    const size_t choice =
        static_cast<size_t>(key) - static_cast<size_t>(Key::kDigit1);
    if (session_->in_quiz()) return session_->answer_quiz(choice);
    if (session_->in_dialogue()) return session_->choose_dialogue(choice);
    return {};  // no modal: digits are inert
  }

  switch (key) {
    case Key::kTab:
    case Key::kDown:
      move_focus(1);
      return {};
    case Key::kShiftTab:
    case Key::kUp:
      move_focus(-1);
      return {};
    case Key::kEnter: {
      if (session_->in_dialogue()) return session_->advance_dialogue();
      auto p = focused_point();
      if (!p) return {};
      return session_->click(*p);
    }
    case Key::kExamine: {
      auto p = focused_point();
      if (!p) return {};
      return session_->examine(*p);
    }
    case Key::kEscape:
      session_->dismiss_popups();
      return {};
    default:
      return {};
  }
}

}  // namespace vgbl
