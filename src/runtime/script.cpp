#include "runtime/script.hpp"

#include <algorithm>

namespace vgbl {

Result<Point> ScriptRunner::locate(const std::string& object_name) const {
  for (const InteractiveObject* o : session_->visible_objects()) {
    if (o->name == object_name) {
      const Point video_center = o->placement.rect.center();
      const Point origin = session_->ui().layout().video_area.origin();
      return Point{video_center.x + origin.x, video_center.y + origin.y};
    }
  }
  return not_found("no visible object named '" + object_name +
                   "' in the current scenario");
}

Result<ItemId> ScriptRunner::item_by_name(const std::string& name) const {
  const ItemDef* def = session_->bundle().items.find_by_name(name);
  if (!def) return not_found("no item named '" + name + "'");
  return def->id;
}

Status ScriptRunner::run_step(const ScriptStep& step) {
  switch (step.op) {
    case ScriptStep::Op::kClickObject: {
      auto p = locate(step.object_name);
      if (!p.ok()) return p.error();
      return session_->click(p.value());
    }
    case ScriptStep::Op::kExamineObject: {
      auto p = locate(step.object_name);
      if (!p.ok()) return p.error();
      return session_->examine(p.value());
    }
    case ScriptStep::Op::kDragObjectToInventory: {
      auto p = locate(step.object_name);
      if (!p.ok()) return p.error();
      const Rect inv = session_->ui().layout().inventory_window;
      return session_->drag(p.value(), inv.center());
    }
    case ScriptStep::Op::kUseItemOn: {
      auto item = item_by_name(step.item_name);
      if (!item.ok()) return item.error();
      auto p = locate(step.object_name);
      if (!p.ok()) return p.error();
      return session_->use_item_on(item.value(), p.value());
    }
    case ScriptStep::Op::kCombineItems: {
      auto a = item_by_name(step.item_name);
      if (!a.ok()) return a.error();
      auto b = item_by_name(step.second_item_name);
      if (!b.ok()) return b.error();
      return session_->combine_items(a.value(), b.value());
    }
    case ScriptStep::Op::kChooseDialogue:
      return session_->choose_dialogue(step.choice);
    case ScriptStep::Op::kAdvanceDialogue:
      return session_->advance_dialogue();
    case ScriptStep::Op::kAnswerQuiz:
      return session_->answer_quiz(step.choice);
    case ScriptStep::Op::kWait: {
      // Tick in frame-sized increments so timers fire at accurate times.
      MicroTime remaining = step.wait_time;
      const MicroTime quantum = milliseconds(50);
      while (remaining > 0) {
        const MicroTime d = std::min(remaining, quantum);
        clock_->advance(d);
        remaining -= d;
        session_->tick();
      }
      return {};
    }
    case ScriptStep::Op::kClickPoint:
      return session_->click(step.point);
  }
  return internal_error("unknown script op");
}

Status ScriptRunner::run(const InputScript& script) {
  for (const auto& step : script) {
    if (options_.stop_on_game_over && session_->game_over()) return {};
    if (auto st = run_step(step); !st.ok()) return st;
    clock_->advance(options_.step_pause);
    session_->tick();
  }
  return {};
}

namespace {

/// Signature of the mutable state a retry decision depends on: if it
/// changed, previously fruitless interactions may now fire (a guard's
/// has_item/flag may pass), so the explorer retries them. Deliberately
/// excludes the current scenario — otherwise every navigation hop would
/// re-arm all interactions and the bot would ping-pong between scenes.
u64 state_signature(const GameSession& s) {
  u64 h = 1469598103934665603ULL;
  const auto mix = [&h](u64 v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  for (const auto& slot : s.inventory().slots()) {
    mix(slot.item.value);
    mix(static_cast<u64>(slot.count));
  }
  mix(static_cast<u64>(s.score()));
  // Flags, order-independently (XOR of name hashes).
  u64 flag_mix = 0;
  for (const auto& f : s.flags()) {
    flag_mix ^= std::hash<std::string>{}(f);
  }
  mix(flag_mix);
  return h;
}

class ExplorerBot {
 public:
  ExplorerBot(GameSession& session, SimClock& clock, Rng rng, bool examine)
      : session_(session), clock_(clock), rng_(rng), examine_(examine) {}

  /// One action; returns false when the bot is out of ideas this round
  /// (caller then waits to let timers / segment-end advance the world).
  bool step() {
    if (session_.in_quiz()) {
      const auto& q = session_.ui().quiz();
      // The explorer "studied": it answers deterministically by prompt
      // hash, which is stable but not always right — like a real student.
      const size_t n = q ? q->options.size() : 1;
      (void)session_.answer_quiz(std::hash<std::string>{}(q ? q->prompt : "") % n);
      return true;
    }
    if (session_.in_dialogue()) {
      const auto& d = session_.ui().dialogue();
      if (d && !d->choices.empty()) {
        // Systematic: take the first untried choice of this line; once all
        // were tried across conversations, fall back to random.
        size_t pick = rng_.below(d->choices.size());
        for (size_t i = 0; i < d->choices.size(); ++i) {
          if (!dialogue_tried_.count(d->line + "|" + d->choices[i])) {
            pick = i;
            break;
          }
        }
        dialogue_tried_.insert(d->line + "|" + d->choices[pick]);
        (void)session_.choose_dialogue(pick);
      } else {
        (void)session_.advance_dialogue();
      }
      return true;
    }

    const u64 sig = state_signature(session_) ^
                    (dialogue_tried_.size() * 0x9E3779B97F4A7C15ULL);
    const Point origin = session_.ui().layout().video_area.origin();
    auto canvas_center = [&](const InteractiveObject* o) {
      const Point c = o->placement.rect.center();
      return Point{c.x + origin.x, c.y + origin.y};
    };

    const auto objects = session_.visible_objects();

    // 1. Untried examines (knowledge first — this is a learning game).
    //    State-dependent so guarded examines (e.g. "reveals a hidden
    //    object once you heard the hint") are retried after state changes.
    if (examine_) {
      for (const auto* o : objects) {
        if (mark("ex:" + key(o), sig)) {
          (void)session_.examine(canvas_center(o));
          return true;
        }
      }
    }
    // 2. Collect collectables.
    for (const auto* o : objects) {
      if ((o->kind == ObjectKind::kItem || o->draggable) &&
          mark("take:" + key(o), sig)) {
        if (o->draggable) {
          (void)session_.drag(canvas_center(o),
                              session_.ui().layout().inventory_window.center());
        } else {
          (void)session_.click(canvas_center(o));
        }
        return true;
      }
    }
    // 3. Talk / click non-navigation objects (state-dependent retry).
    for (const auto* o : objects) {
      if (o->kind == ObjectKind::kButton) continue;
      if (mark("click:" + key(o), sig)) {
        (void)session_.click(canvas_center(o));
        return true;
      }
    }
    // 4. Use each held item on each object.
    for (const auto& slot : session_.inventory().slots()) {
      for (const auto* o : objects) {
        if (mark("use:" + std::to_string(slot.item.value) + ":" + key(o),
                 sig)) {
          (void)session_.use_item_on(slot.item, canvas_center(o));
          return true;
        }
      }
    }
    // 5. Combine held item pairs.
    const auto& slots = session_.inventory().slots();
    for (size_t i = 0; i < slots.size(); ++i) {
      for (size_t j = i; j < slots.size(); ++j) {
        if (i == j && slots[i].count < 2) continue;
        const std::string k = "mix:" + std::to_string(slots[i].item.value) +
                              ":" + std::to_string(slots[j].item.value);
        if (mark(k, sig)) {
          (void)session_.combine_items(slots[i].item, slots[j].item);
          return true;
        }
      }
    }
    // 6. Navigate: click the least-used button so exploration round-robins
    //    across all reachable scenarios instead of ping-ponging.
    const InteractiveObject* best_button = nullptr;
    int best_count = 0;
    for (const auto* o : objects) {
      if (o->kind != ObjectKind::kButton) continue;
      const int count = button_clicks_[o->id.value];
      if (!best_button || count < best_count) {
        best_button = o;
        best_count = count;
      }
    }
    if (best_button) {
      ++button_clicks_[best_button->id.value];
      (void)session_.click(canvas_center(best_button));
      return true;
    }
    return false;
  }

 private:
  static std::string key(const InteractiveObject* o) {
    return std::to_string(o->id.value);
  }

  /// Returns true (and records the attempt) when `action` has not been
  /// tried under state signature `sig` yet.
  bool mark(const std::string& action, u64 sig) {
    const std::string k = action + "@" + std::to_string(sig);
    return tried_.insert(k).second;
  }

  GameSession& session_;
  SimClock& clock_;
  Rng rng_;
  bool examine_;
  std::unordered_set<std::string> tried_;
  std::unordered_set<std::string> dialogue_tried_;
  std::unordered_map<u32, int> button_clicks_;
};

class RandomBot {
 public:
  RandomBot(GameSession& session, Rng rng) : session_(session), rng_(rng) {}

  bool step() {
    if (session_.in_quiz()) {
      const auto& q = session_.ui().quiz();
      (void)session_.answer_quiz(rng_.below(q ? q->options.size() : 1));
      return true;
    }
    if (session_.in_dialogue()) {
      const auto& d = session_.ui().dialogue();
      if (d && !d->choices.empty()) {
        (void)session_.choose_dialogue(rng_.below(d->choices.size()));
      } else {
        (void)session_.advance_dialogue();
      }
      return true;
    }
    const auto objects = session_.visible_objects();
    const Point origin = session_.ui().layout().video_area.origin();
    const u64 dice = rng_.below(10);
    if (!objects.empty() && dice < 7) {
      const auto* o = objects[rng_.below(objects.size())];
      const Point c = o->placement.rect.center();
      const Point p{c.x + origin.x, c.y + origin.y};
      switch (rng_.below(3)) {
        case 0:
          (void)session_.click(p);
          break;
        case 1:
          (void)session_.examine(p);
          break;
        default:
          (void)session_.drag(
              p, session_.ui().layout().inventory_window.center());
      }
      return true;
    }
    const auto& slots = session_.inventory().slots();
    if (!slots.empty() && !objects.empty()) {
      const auto* o = objects[rng_.below(objects.size())];
      const Point c = o->placement.rect.center();
      (void)session_.use_item_on(slots[rng_.below(slots.size())].item,
                                 {c.x + origin.x, c.y + origin.y});
      return true;
    }
    return false;
  }

 private:
  GameSession& session_;
  Rng rng_;
};

}  // namespace

struct BotDriver::Impl {
  GameSession& session;
  SimClock& clock;
  BotPolicy policy;
  int max_steps;
  Rng rng;
  ExplorerBot explorer;
  RandomBot random;
  BotResult partial;

  Impl(GameSession& session_in, SimClock& clock_in, BotPolicy policy_in,
       int max_steps_in, u64 seed)
      : session(session_in),
        clock(clock_in),
        policy(policy_in),
        max_steps(max_steps_in),
        rng(seed),
        // Fork order matches the historical run_bot body: explorer first,
        // then random — both bots exist regardless of policy so the RNG
        // stream consumed per seed is policy-independent.
        explorer(session_in, clock_in, rng.fork(),
                 policy_in == BotPolicy::kExplorer),
        random(session_in, rng.fork()) {}
};

BotDriver::BotDriver(GameSession& session, SimClock& clock, BotPolicy policy,
                     int max_steps, u64 seed)
    : impl_(std::make_unique<Impl>(session, clock, policy, max_steps, seed)) {}

BotDriver::~BotDriver() = default;

bool BotDriver::done() const {
  return impl_->partial.steps >= impl_->max_steps ||
         impl_->session.game_over();
}

bool BotDriver::run_iteration() {
  if (done()) return false;
  Impl& im = *impl_;
  const bool acted = im.policy == BotPolicy::kRandom ? im.random.step()
                                                     : im.explorer.step();
  ++im.partial.steps;
  im.clock.advance(milliseconds(300));
  im.session.tick();
  if (!acted) {
    // Out of ideas: let the video run (segment-end / timer rules may
    // change the world) before the next sweep.
    for (int t = 0; t < 10 && !im.session.game_over(); ++t) {
      im.clock.advance(milliseconds(200));
      im.session.tick();
    }
  }
  return true;
}

BotResult BotDriver::result() const {
  BotResult result = impl_->partial;
  result.completed = impl_->session.game_over();
  result.succeeded = impl_->session.succeeded();
  return result;
}

BotResult run_bot(GameSession& session, SimClock& clock, BotPolicy policy,
                  int max_steps, u64 seed) {
  BotDriver driver(session, clock, policy, max_steps, seed);
  while (driver.run_iteration()) {
  }
  return driver.result();
}

}  // namespace vgbl
