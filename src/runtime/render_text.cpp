#include "runtime/render_text.hpp"

#include <algorithm>
#include <cstdio>

#include "runtime/compositor.hpp"
#include "util/text.hpp"

namespace vgbl {

std::string ascii_render(const Frame& frame, int columns) {
  if (frame.empty() || columns <= 0) return "";
  // Density ramp from dark to light.
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kRampSize = sizeof(kRamp) - 2;

  const int cols = std::min<int>(columns, frame.width());
  const f64 cell_w = static_cast<f64>(frame.width()) / cols;
  const f64 cell_h = cell_w * 2.0;  // terminal cell aspect correction
  const int rows =
      std::max(1, static_cast<int>(frame.height() / cell_h + 0.5));

  std::string out;
  out.reserve(static_cast<size_t>(rows) * (static_cast<size_t>(cols) + 1));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const i32 x0 = static_cast<i32>(c * cell_w);
      const i32 y0 = static_cast<i32>(r * cell_h);
      const i32 x1 = std::min<i32>(frame.width(), static_cast<i32>((c + 1) * cell_w) + 1);
      const i32 y1 = std::min<i32>(frame.height(), static_cast<i32>((r + 1) * cell_h) + 1);
      i64 sum = 0;
      i64 n = 0;
      for (i32 y = y0; y < y1; ++y) {
        for (i32 x = x0; x < x1; ++x) {
          sum += frame.pixel(x, y).luma();
          ++n;
        }
      }
      const int luma = n ? static_cast<int>(sum / n) : 0;
      out += kRamp[luma * kRampSize / 255];
    }
    out += '\n';
  }
  return out;
}

std::string to_ppm(const Frame& frame) {
  std::string out = "P6\n" + std::to_string(frame.width()) + " " +
                    std::to_string(frame.height()) + "\n255\n";
  out.reserve(out.size() +
              static_cast<size_t>(frame.width()) * frame.height() * 3);
  for (i32 y = 0; y < frame.height(); ++y) {
    for (i32 x = 0; x < frame.width(); ++x) {
      const Color c = frame.pixel(x, y);
      out += static_cast<char>(c.r);
      out += static_cast<char>(c.g);
      out += static_cast<char>(c.b);
    }
  }
  return out;
}

bool write_ppm(const Frame& frame, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::string data = to_ppm(frame);
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

namespace {

std::string horizontal_rule(int width) {
  return "+" + std::string(static_cast<size_t>(width) - 2, '-') + "+\n";
}

std::string boxed_line(const std::string& text, int width) {
  return "| " + pad_right(text, static_cast<size_t>(width) - 4) + " |\n";
}

}  // namespace

std::string render_authoring_view(const Project& project,
                                  ScenarioId selected) {
  constexpr int kWidth = 96;
  std::string out;
  out += horizontal_rule(kWidth);
  out += boxed_line("VGBL AUTHORING TOOL - " + project.meta.title, kWidth);
  out += horizontal_rule(kWidth);

  // Timeline: segments laid out proportionally over one text row.
  int total_frames = 0;
  for (const auto& s : project.segments) total_frames += s.frame_count;
  std::string timeline = "video timeline  ";
  if (total_frames > 0) {
    const int bar_width = kWidth - 24;
    for (size_t i = 0; i < project.segments.size(); ++i) {
      const int w = std::max(
          1, project.segments[i].frame_count * bar_width / total_frames);
      timeline += "[" + std::string(static_cast<size_t>(std::max(0, w - 2)),
                                    i % 2 ? '=' : '#') +
                  "]";
    }
  } else {
    timeline += "(no video imported)";
  }
  out += boxed_line(timeline, kWidth);
  std::string legend = "segments        ";
  for (size_t i = 0; i < project.segments.size(); ++i) {
    legend += std::to_string(i) + ":" + project.segments[i].suggested_name +
              "(" + std::to_string(project.segments[i].frame_count) + "f) ";
  }
  out += boxed_line(legend, kWidth);
  out += horizontal_rule(kWidth);

  // Scenario list with transitions (the graph panel).
  out += boxed_line("SCENARIOS", kWidth);
  for (const auto& s : project.graph.scenarios()) {
    std::string line = "  ";
    line += s.id == project.graph.start() ? "> " : "  ";
    line += s.id == selected ? "*" : " ";
    line += s.name;
    if (s.terminal) line += " [terminal]";
    const auto edges = project.graph.out_edges(s.id);
    if (!edges.empty()) {
      line += "  ->";
      for (const auto* t : edges) {
        const Scenario* to = project.graph.find(t->to);
        line += " " + (to ? to->name : "?") + "('" + t->label + "')";
      }
    }
    out += boxed_line(line, kWidth);
  }
  out += horizontal_rule(kWidth);

  // Object palette for the selected (or first) scenario.
  ScenarioId palette = selected;
  if (!palette.valid() && !project.graph.scenarios().empty()) {
    palette = project.graph.scenarios().front().id;
  }
  const Scenario* ps = project.graph.find(palette);
  out += boxed_line(
      "OBJECTS" + (ps ? " in '" + ps->name + "'" : std::string()), kWidth);
  for (const auto* o : project.objects_in(palette)) {
    std::string line = "  [" + std::string(object_kind_name(o->kind)) + "] " +
                       o->name + " @" + to_string(o->placement.rect);
    if (o->draggable) line += " draggable";
    if (o->grants_item.valid()) {
      const ItemDef* def = project.items.find(o->grants_item);
      line += " grants:" + (def ? def->name : "?");
    }
    out += boxed_line(line, kWidth);
  }
  out += horizontal_rule(kWidth);

  // Rules & lint summary.
  out += boxed_line("RULES: " + std::to_string(project.rules.size()) +
                        "   ITEMS: " + std::to_string(project.items.size()) +
                        "   DIALOGUES: " +
                        std::to_string(project.dialogues.size()),
                    kWidth);
  const auto issues = project.lint();
  int errors = 0;
  int warnings = 0;
  for (const auto& i : issues) {
    (i.level == LintLevel::kError ? errors : warnings) += 1;
  }
  out += boxed_line("LINT: " + std::to_string(errors) + " error(s), " +
                        std::to_string(warnings) + " warning(s)",
                    kWidth);
  for (const auto& i : issues) {
    out += boxed_line(
        std::string(i.level == LintLevel::kError ? "  E " : "  W ") + i.message,
        kWidth);
  }
  out += horizontal_rule(kWidth);
  return out;
}

std::string render_runtime_view(GameSession& session, int columns) {
  Compositor compositor;
  const Frame screen = compositor.render(session);
  std::string out = ascii_render(screen, columns);

  out += "\n";
  const Scenario* s = session.current_scenario_info();
  out += "scenario: " + (s ? s->name : std::string("-")) +
         "   score: " + std::to_string(session.score()) + "   backpack:";
  for (const auto& slot : session.inventory().slots()) {
    const ItemDef* def = session.bundle().items.find(slot.item);
    out += " " + (def ? def->name : "?");
    if (slot.count > 1) out += "x" + std::to_string(slot.count);
  }
  out += "\n";
  if (session.ui().message()) {
    out += "message: " + session.ui().message()->text + "\n";
  }
  if (session.ui().dialogue()) {
    const auto& d = *session.ui().dialogue();
    out += d.speaker + ": \"" + d.line + "\"\n";
    for (size_t i = 0; i < d.choices.size(); ++i) {
      out += "  " + std::to_string(i + 1) + ") " + d.choices[i] + "\n";
    }
  }
  if (session.game_over()) {
    out += session.succeeded() ? "*** MISSION COMPLETE ***\n"
                               : "*** MISSION FAILED ***\n";
  }
  return out;
}

}  // namespace vgbl
