// Simulated external-resource access. The paper's runtime lets buttons
// "get information from websites" (§4.3, Fig.2); with no network in this
// environment, OpenUrl actions resolve against this in-process catalogue,
// which models page titles and fetch latency (see DESIGN.md §2).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

struct WebResource {
  std::string url;
  std::string title;
  std::string summary;     // shown in the message bar when opened
  MicroTime fetch_latency = milliseconds(120);
};

class ResourceCatalog {
 public:
  void add(WebResource resource) {
    resources_[resource.url] = std::move(resource);
  }

  [[nodiscard]] const WebResource* find(const std::string& url) const {
    auto it = resources_.find(url);
    return it == resources_.end() ? nullptr : &it->second;
  }

  /// "Fetches" a resource: records the access and returns the resource or
  /// nullopt for unknown urls (a 404, in effect).
  std::optional<WebResource> fetch(const std::string& url, MicroTime now);

  struct Access {
    std::string url;
    MicroTime when;
    bool found;
  };
  [[nodiscard]] const std::vector<Access>& access_log() const { return log_; }

  /// Built-in encyclopedia used by the examples (computer hardware pages
  /// for the classroom-repair game, etc.).
  static ResourceCatalog with_default_pages();

 private:
  std::map<std::string, WebResource> resources_;
  std::vector<Access> log_;
};

}  // namespace vgbl
