// Terminal-facing output: ASCII art rendering of frames (the headless
// stand-in for a window), PPM export for pixel-exact inspection, and the
// two paper-figure views — the authoring-tool interface (Figure 1) and the
// runtime interface (Figure 2) — drawn as structured text panels.
#pragma once

#include <string>

#include "author/project.hpp"
#include "runtime/session.hpp"
#include "video/frame.hpp"

namespace vgbl {

/// Downsamples a frame to `columns` characters wide and maps cell luma to
/// a density ramp. Terminal cells are ~2x taller than wide; the row step
/// compensates.
[[nodiscard]] std::string ascii_render(const Frame& frame, int columns = 96);

/// Binary PPM (P6) serialisation of an RGB frame.
[[nodiscard]] std::string to_ppm(const Frame& frame);

/// Writes a frame to a PPM file; returns false on IO failure.
bool write_ppm(const Frame& frame, const std::string& path);

/// Figure 1 — "The interface of interactive VGBL authoring tool": segment
/// timeline, scenario list with transitions, object palette for the
/// selected scenario, and the lint panel.
[[nodiscard]] std::string render_authoring_view(const Project& project,
                                                ScenarioId selected = {});

/// Figure 2 — "The interface of interactive VGBL runtime environment":
/// the composited screen as ASCII plus the inventory/message readout.
[[nodiscard]] std::string render_runtime_view(GameSession& session,
                                              int columns = 96);

}  // namespace vgbl
