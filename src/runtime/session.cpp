#include "runtime/session.hpp"

#include <algorithm>

namespace vgbl {

/// Adapter exposing session state to the condition evaluators.
class GameSession::StateView final : public GameStateView {
 public:
  explicit StateView(const GameSession* s) : s_(s) {}
  [[nodiscard]] int item_count(ItemId id) const override {
    return s_->inventory_.count_of(id);
  }
  [[nodiscard]] bool flag(const std::string& name) const override {
    return s_->flags_.count(name) > 0;
  }
  [[nodiscard]] i64 score() const override { return s_->ledger_.total(); }
  [[nodiscard]] bool visited(ScenarioId id) const override {
    return s_->visited_.count(id.value) > 0;
  }

 private:
  const GameSession* s_;
};

GameSession::GameSession(std::shared_ptr<const GameBundle> bundle,
                         const Clock* clock, SessionOptions options)
    : bundle_(std::move(bundle)),
      clock_(clock),
      options_(options),
      rule_book_(bundle_->rules, options.guard_engine),
      player_(bundle_->video,
              SegmentPlayer::Options{
                  {options.decode_threads, 32}, true}),
      ui_(UiLayout::standard(
          {bundle_->video->width(), bundle_->video->height()})),
      inventory_(&bundle_->items, options.inventory_capacity),
      avatar_(options.avatar),
      rewards_(options.reward_rules) {}

Status GameSession::start() {
  if (started_) return failed_precondition("session already started");
  const ScenarioId start = bundle_->graph.start();
  if (!start.valid()) {
    return failed_precondition("bundle has no start scenario");
  }
  started_ = true;
  enter_scenario(start);
  drain_rewards();
  return {};
}

const Scenario* GameSession::current_scenario_info() const {
  return bundle_->graph.find(current_);
}

Point GameSession::to_video(Point canvas) const {
  const Point origin = ui_.layout().video_area.origin();
  return {canvas.x - origin.x, canvas.y - origin.y};
}

bool GameSession::object_effectively_visible(
    const InteractiveObject& o) const {
  auto it = visibility_override_.find(o.id.value);
  const bool authored = it != visibility_override_.end()
                            ? it->second
                            : o.placement.visible;
  return authored && o.placement.active_at(current_frame_index());
}

int GameSession::current_frame_index() const {
  return player_.playing() ? player_.frame_index_at(clock_->now()) : 0;
}

std::vector<const InteractiveObject*> GameSession::visible_objects() const {
  std::vector<const InteractiveObject*> out;
  for (const auto& o : bundle_->objects) {
    if (o.scenario == current_ && object_effectively_visible(o)) {
      out.push_back(&o);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const InteractiveObject* a, const InteractiveObject* b) {
                     return a->placement.z < b->placement.z;
                   });
  return out;
}

void GameSession::rebuild_hit_index() const {
  const int frame = current_frame_index();
  if (hit_tester_ && frame == hit_index_frame_ &&
      hit_index_built_epoch_ == hit_index_epoch_) {
    return;
  }
  if (!hit_tester_) {
    if (options_.hit_tester == HitTesterKind::kGrid) {
      hit_tester_ = std::make_unique<GridHitTester>(
          Size{bundle_->video->width(), bundle_->video->height()});
    } else {
      hit_tester_ = std::make_unique<LinearHitTester>();
    }
  }
  std::vector<HitTarget> targets;
  for (const auto& o : bundle_->objects) {
    if (o.scenario != current_ || !object_effectively_visible(o)) continue;
    targets.push_back({o.id, o.placement.rect, o.placement.z, true});
  }
  hit_tester_->rebuild(targets);
  hit_index_frame_ = frame;
  hit_index_built_epoch_ = hit_index_epoch_;
}

ObjectId GameSession::object_at(Point canvas_point) const {
  if (!ui_.layout().video_area.contains(canvas_point)) return {};
  rebuild_hit_index();
  return hit_tester_->hit(to_video(canvas_point));
}

std::optional<Frame> GameSession::current_video_frame() {
  if (!player_.playing()) return std::nullopt;
  return player_.current_frame(clock_->now());
}

void GameSession::log(std::string text) {
  log_.push_back({clock_->now(), std::move(text)});
}

// --- Rewards -----------------------------------------------------------------------

void GameSession::sync_rewards_from_tracker() {
  using rewards::RewardEvent;
  // Snapshot the consumed offsets first: feed() mutates evaluator state,
  // and mark_consumed below records the new high-water marks.
  const u32 visits_from = rewards_.state().visits_seen;
  const u32 interactions_from = rewards_.state().interactions_seen;
  const u32 items_from = rewards_.state().items_seen;
  const u32 decisions_from = rewards_.state().decisions_seen;

  const auto& visits = tracker_.visits();
  for (size_t i = visits_from; i < visits.size(); ++i) {
    RewardEvent ev;
    ev.kind = RewardEvent::Kind::kScenarioEntered;
    ev.name = visits[i].name;
    ev.when = visits[i].entered;
    rewards_.feed(ev);
  }

  const auto& interactions = tracker_.interactions();
  for (size_t i = interactions_from; i < interactions.size(); ++i) {
    const auto& rec = interactions[i];
    RewardEvent ev;
    ev.kind = RewardEvent::Kind::kInteraction;
    ev.name = rec.target;
    ev.detail = rec.kind;
    ev.when = rec.when;
    rewards_.feed(ev);
    if (rec.kind == "use_item") {
      // The same record doubles as an item-used event for rules keyed on
      // TriggerKind::kItemUsed.
      RewardEvent used;
      used.kind = RewardEvent::Kind::kItemUsed;
      used.name = rec.target;
      used.when = rec.when;
      rewards_.feed(used);
    }
  }

  // Item records carry no timestamp; they are drained within the entry
  // point that collected them, so the clock still reads that moment.
  const auto& items = tracker_.items_collected();
  for (size_t i = items_from; i < items.size(); ++i) {
    RewardEvent ev;
    ev.kind = RewardEvent::Kind::kItemCollected;
    ev.name = items[i];
    ev.when = clock_->now();
    rewards_.feed(ev);
  }

  const auto& decisions = tracker_.decisions();
  for (size_t i = decisions_from; i < decisions.size(); ++i) {
    RewardEvent ev;
    ev.kind = RewardEvent::Kind::kDialogueDecision;
    ev.name = decisions[i].context;
    ev.detail = decisions[i].choice;
    ev.when = decisions[i].when;
    rewards_.feed(ev);
  }

  if (tracker_.finished() && !rewards_.state().completion_seen) {
    RewardEvent ev;
    ev.kind = RewardEvent::Kind::kGameCompleted;
    ev.success = tracker_.succeeded();
    ev.when = tracker_.finished_at() >= 0 ? tracker_.finished_at()
                                          : clock_->now();
    rewards_.feed(ev);
  }

  rewards_.mark_consumed(static_cast<u32>(interactions.size()),
                         static_cast<u32>(items.size()),
                         static_cast<u32>(decisions.size()),
                         static_cast<u32>(visits.size()));
}

void GameSession::drain_rewards() {
  if (!rewards_.active()) return;
  // Badge bonus points feed the ledger, and the new total can itself
  // unlock a score badge — so loop until a pass produces nothing. Each
  // rule fires at most once, so the cascade terminates.
  for (;;) {
    sync_rewards_from_tracker();
    rewards_.observe_score(ledger_.total(), clock_->now());
    const std::vector<rewards::Unlock> fresh = rewards_.take_pending();
    if (fresh.empty()) break;
    for (const rewards::Unlock& u : fresh) {
      if (u.points != 0) {
        ledger_.award(u.points, "badge '" + u.badge + "'", clock_->now());
        tracker_.on_score(u.points, "badge '" + u.badge + "'", clock_->now());
      }
      tracker_.on_reward("badge:" + u.badge, clock_->now());
      ui_.show_message("Badge unlocked: " + u.badge + "!", clock_->now(),
                       seconds(4));
      log("badge '" + u.badge + "' unlocked");
    }
  }
}

void GameSession::enter_scenario(ScenarioId id) {
  const Scenario* s = bundle_->graph.find(id);
  if (!s) {
    log("ERROR: switch to missing scenario " + std::to_string(id.value));
    return;
  }
  current_ = id;
  visited_.insert(id.value);
  scenario_entered_at_ = clock_->now();
  segment_end_fired_ = false;
  hit_index_frame_ = -1;  // force hit index rebuild
  pending_interaction_.reset();
  if (options_.enable_avatar) {
    // The avatar enters each scene at its doorway (bottom-left corner).
    avatar_.set_position({40, bundle_->video->height() - 20});
  }
  if (auto st = player_.play_segment(s->segment, clock_->now()); !st.ok()) {
    log("ERROR: cannot play segment for '" + s->name + "': " +
        st.error().to_string());
  }
  tracker_.on_scenario_entered(id, s->name, clock_->now());
  log("entered scenario '" + s->name + "'");
  arm_timers();

  TriggerEvent ev;
  ev.type = TriggerType::kEnterScenario;
  ev.scenario = id;
  ev.when = clock_->now();
  dispatch(ev);

  // Terminal scenarios end the game on entry (unless a rule already did).
  if (s->terminal && !game_over_) {
    game_over_ = true;
    success_ = true;
    tracker_.on_game_over(true, clock_->now());
    log("game over: reached terminal scenario '" + s->name + "'");
  }
}

void GameSession::arm_timers() {
  timers_.clear();
  for (const EventRule* r : rule_book_.timers_for(current_)) {
    if (r->once && disarmed_.count(r->id.value)) continue;
    timers_.push_back({r->id, scenario_entered_at_ + r->trigger.delay});
  }
}

void GameSession::dispatch(const TriggerEvent& event) {
  if (game_over_) return;
  StateView view(this);
  const auto fired = rule_book_.match(event, view, disarmed_);
  bool scenario_ended = false;
  for (const EventRule* rule : fired) {
    if (scenario_ended) break;
    log("rule '" + rule->name + "' fired");
    if (rule->once) disarmed_.insert(rule->id.value);
    for (const Action& action : rule->actions) {
      if (apply_action(action, rule)) {
        scenario_ended = true;
        break;
      }
    }
  }
  if (!fired.empty() || scenario_ended || !options_.enable_default_behaviours) {
    return;
  }

  // Built-in defaults when no designer rule claimed the event.
  const InteractiveObject* obj =
      event.object.valid() ? bundle_->find_object(event.object) : nullptr;
  switch (event.type) {
    case TriggerType::kExamine:
      if (obj) {
        const std::string text = obj->description.empty()
                                     ? "You see " + obj->name + "."
                                     : obj->description;
        ui_.show_message(text, clock_->now(), seconds(4));
        tracker_.on_interaction("examine", obj->name, clock_->now());
        log("examined '" + obj->name + "'");
      }
      break;
    case TriggerType::kClick:
      if (obj && obj->kind == ObjectKind::kNpc && obj->dialogue.valid()) {
        (void)apply_action(Action::start_dialogue(obj->dialogue), nullptr);
      } else if (obj && obj->kind == ObjectKind::kItem &&
                 obj->grants_item.valid()) {
        (void)apply_action(Action::give_item(obj->grants_item), nullptr);
        (void)apply_action(Action::hide_object(obj->id), nullptr);
      } else if (obj) {
        tracker_.on_interaction("click", obj->name, clock_->now());
        log("clicked '" + obj->name + "' (no effect)");
      }
      break;
    case TriggerType::kDragToInventory:
      if (obj && obj->draggable && obj->grants_item.valid()) {
        (void)apply_action(Action::give_item(obj->grants_item), nullptr);
        (void)apply_action(Action::hide_object(obj->id), nullptr);
      }
      break;
    default:
      break;
  }
}

bool GameSession::apply_action(const Action& action, const EventRule* source) {
  const MicroTime now = clock_->now();
  switch (action.type) {
    case ActionType::kSwitchScenario:
      enter_scenario(action.scenario);
      return true;
    case ActionType::kShowMessage:
      ui_.show_message(action.text, now, seconds(6));
      log("message: " + action.text);
      break;
    case ActionType::kShowImage:
      ui_.show_image(action.text, now);
      log("image popup: " + action.text);
      break;
    case ActionType::kOpenUrl: {
      auto page = resources_.fetch(action.text, now);
      if (page) {
        ui_.show_message("[" + page->title + "] " + page->summary, now,
                         seconds(8));
        tracker_.on_resource_opened(page->title, now);
        log("opened resource '" + page->title + "'");
      } else {
        ui_.show_message("Page not found: " + action.text, now, seconds(4));
        log("resource not found: " + action.text);
      }
      break;
    }
    case ActionType::kGiveItem: {
      const int count = action.amount > 0 ? static_cast<int>(action.amount) : 1;
      const ItemDef* def = bundle_->items.find(action.item);
      if (auto st = inventory_.add(action.item, count); !st.ok()) {
        ui_.show_message("Your backpack is full.", now, seconds(4));
        log("give_item failed: " + st.error().to_string());
        break;
      }
      const std::string name = def ? def->name : "item";
      tracker_.on_item_collected(name, now);
      if (def && def->bonus_points != 0) {
        ledger_.award(def->bonus_points, "collected " + name, now);
        tracker_.on_score(def->bonus_points, "collected " + name, now);
      }
      ui_.show_message("Got " + name + ".", now, seconds(3));
      log("item '" + name + "' added to backpack");
      break;
    }
    case ActionType::kRemoveItem: {
      const int count = action.amount > 0 ? static_cast<int>(action.amount) : 1;
      if (auto st = inventory_.remove(action.item, count); !st.ok()) {
        log("remove_item failed: " + st.error().to_string());
      }
      break;
    }
    case ActionType::kSetFlag:
      flags_.insert(action.text);
      log("flag '" + action.text + "' set");
      break;
    case ActionType::kClearFlag:
      flags_.erase(action.text);
      log("flag '" + action.text + "' cleared");
      break;
    case ActionType::kAddScore: {
      const std::string reason =
          !action.text.empty() ? action.text
          : source             ? "rule '" + source->name + "'"
                               : "bonus";
      ledger_.award(action.amount, reason, now);
      tracker_.on_score(action.amount, reason, now);
      log("score " + std::to_string(action.amount) + " (" + reason + ")");
      break;
    }
    case ActionType::kStartDialogue: {
      const DialogueTree* tree = bundle_->find_dialogue(action.dialogue);
      if (!tree) {
        log("ERROR: missing dialogue " + std::to_string(action.dialogue.value));
        break;
      }
      dialogue_ = ActiveDialogue{action.dialogue, DialogueRunner(tree), 0};
      log("dialogue '" + tree->name() + "' started");
      drain_dialogue_tags();
      refresh_dialogue_view();
      break;
    }
    case ActionType::kGrantReward: {
      const ItemDef* def = bundle_->items.find(action.item);
      if (auto st = inventory_.add(action.item); !st.ok()) {
        log("grant_reward failed: " + st.error().to_string());
        break;
      }
      const std::string name = def ? def->name : "reward";
      tracker_.on_reward(name, now);
      if (def && def->bonus_points != 0) {
        ledger_.award(def->bonus_points, "reward: " + name, now);
        tracker_.on_score(def->bonus_points, "reward: " + name, now);
      }
      ui_.show_message("Achievement unlocked: " + name + "!", now, seconds(5));
      log("reward '" + name + "' granted");
      break;
    }
    case ActionType::kRevealObject:
      visibility_override_[action.object.value] = true;
      ++hit_index_epoch_;
      log("object " + std::to_string(action.object.value) + " revealed");
      break;
    case ActionType::kHideObject:
      visibility_override_[action.object.value] = false;
      ++hit_index_epoch_;
      log("object " + std::to_string(action.object.value) + " hidden");
      break;
    case ActionType::kReplaySegment:
      (void)player_.replay(now);
      segment_end_fired_ = false;
      log("segment replayed");
      return true;
    case ActionType::kStartQuiz: {
      const Quiz* quiz = bundle_->find_quiz(action.quiz);
      if (!quiz) {
        log("ERROR: missing quiz " + std::to_string(action.quiz.value));
        break;
      }
      quiz_ = ActiveQuiz{action.quiz, QuizRunner(quiz)};
      log("quiz '" + quiz->name() + "' started");
      refresh_quiz_view();
      break;
    }
    case ActionType::kEndGame:
      game_over_ = true;
      success_ = action.success_outcome;
      tracker_.on_game_over(success_, now);
      log(success_ ? "game over: success" : "game over: failure");
      return true;
  }
  return false;
}

// --- Input -------------------------------------------------------------------

Status GameSession::click(Point canvas_point) {
  if (!started_) return failed_precondition("session not started");
  if (game_over_) return failed_precondition("game is over");
  if (in_quiz()) {
    return failed_precondition("a quiz is active; call answer_quiz()");
  }
  if (in_dialogue()) {
    // A click during an auto-advance node advances the conversation.
    return advance_dialogue();
  }
  ui_.dismiss_image();

  const ObjectId id = object_at(canvas_point);
  if (!id.valid()) {
    if (options_.enable_avatar &&
        ui_.layout().video_area.contains(canvas_point)) {
      // Clicking the ground walks the avatar there (§4.3).
      const Rect va{0, 0, bundle_->video->width(), bundle_->video->height()};
      Point target = to_video(canvas_point);
      target.x = std::clamp(target.x, 0, va.width - 1);
      target.y = std::clamp(target.y, 0, va.height - 1);
      avatar_.walk_to(target, clock_->now());
      pending_interaction_.reset();
      log("avatar walking to " + to_string(target));
      return {};
    }
    log("clicked empty space at " + to_string(to_video(canvas_point)));
    return {};
  }
  if (defer_if_out_of_reach(TriggerType::kClick, id, ItemId{})) return {};
  perform_object_interaction(TriggerType::kClick, id, ItemId{});
  return {};
}

bool GameSession::defer_if_out_of_reach(TriggerType type, ObjectId object,
                                        ItemId item) {
  if (!options_.enable_avatar) return false;
  const InteractiveObject* obj = bundle_->find_object(object);
  if (!obj || avatar_.can_reach(obj->placement.rect)) return false;
  // Walk to the object first; the interaction fires on arrival (tick()).
  const Rect va{0, 0, bundle_->video->width(), bundle_->video->height()};
  Point stand = avatar_.stand_point_for(obj->placement.rect);
  stand.x = std::clamp(stand.x, 0, va.width - 1);
  stand.y = std::clamp(stand.y, 0, va.height - 1);
  avatar_.walk_to(stand, clock_->now());
  pending_interaction_ = PendingInteraction{type, object, item};
  log("avatar walking to '" + obj->name + "'");
  return true;
}

void GameSession::perform_object_interaction(TriggerType type, ObjectId id,
                                             ItemId item) {
  const InteractiveObject* obj = bundle_->find_object(id);
  const char* verb = type == TriggerType::kClick      ? "click"
                     : type == TriggerType::kExamine  ? "examine"
                     : type == TriggerType::kUseItemOn ? "use_item"
                                                       : "interact";
  if (type != TriggerType::kExamine) {
    // Examine default behaviour records itself; avoid double counting.
    tracker_.on_interaction(verb, obj ? obj->name : "?", clock_->now());
  }
  TriggerEvent ev;
  ev.type = type;
  ev.object = id;
  ev.item = item;
  ev.scenario = current_;
  ev.when = clock_->now();
  dispatch(ev);
  drain_rewards();
}

Status GameSession::examine(Point canvas_point) {
  if (!started_) return failed_precondition("session not started");
  if (game_over_) return failed_precondition("game is over");
  const ObjectId id = object_at(canvas_point);
  if (!id.valid()) return {};
  if (defer_if_out_of_reach(TriggerType::kExamine, id, ItemId{})) return {};
  perform_object_interaction(TriggerType::kExamine, id, ItemId{});
  return {};
}

Status GameSession::drag(Point canvas_from, Point canvas_to) {
  if (!started_) return failed_precondition("session not started");
  if (game_over_) return failed_precondition("game is over");
  const ObjectId id = object_at(canvas_from);
  if (!id.valid()) return {};
  const InteractiveObject* obj = bundle_->find_object(id);
  if (!ui_.in_inventory_window(canvas_to)) {
    log("dragged '" + (obj ? obj->name : "?") + "' nowhere useful");
    return {};
  }
  tracker_.on_interaction("drag_to_inventory", obj ? obj->name : "?",
                          clock_->now());
  TriggerEvent ev;
  ev.type = TriggerType::kDragToInventory;
  ev.object = id;
  ev.scenario = current_;
  ev.when = clock_->now();
  dispatch(ev);
  drain_rewards();
  return {};
}

Status GameSession::use_item_on(ItemId item, Point canvas_point) {
  if (!started_) return failed_precondition("session not started");
  if (game_over_) return failed_precondition("game is over");
  if (!inventory_.has(item)) {
    return failed_precondition("player does not hold item " +
                               std::to_string(item.value));
  }
  const ObjectId id = object_at(canvas_point);
  if (!id.valid()) return {};
  if (defer_if_out_of_reach(TriggerType::kUseItemOn, id, item)) return {};
  const InteractiveObject* obj = bundle_->find_object(id);
  const ItemDef* def = bundle_->items.find(item);
  tracker_.on_interaction(
      "use_item",
      (def ? def->name : "?") + std::string(" on ") + (obj ? obj->name : "?"),
      clock_->now());
  TriggerEvent ev;
  ev.type = TriggerType::kUseItemOn;
  ev.object = id;
  ev.item = item;
  ev.scenario = current_;
  ev.when = clock_->now();
  dispatch(ev);
  drain_rewards();
  return {};
}

Status GameSession::combine_items(ItemId a, ItemId b) {
  if (!started_) return failed_precondition("session not started");
  if (game_over_) return failed_precondition("game is over");

  // Designer rules may intercept the combination first.
  TriggerEvent ev;
  ev.type = TriggerType::kCombineItems;
  ev.item = a;
  ev.second_item = b;
  ev.scenario = current_;
  ev.when = clock_->now();
  StateView view(this);
  const auto fired = rule_book_.match(ev, view, disarmed_);
  if (!fired.empty()) {
    dispatch(ev);
    drain_rewards();
    return {};
  }

  // Otherwise use the combine table.
  auto result = bundle_->combines.combine(inventory_, a, b);
  if (!result.ok()) return result.error();
  const ItemDef* def = bundle_->items.find(result.value());
  const std::string name = def ? def->name : "item";
  tracker_.on_interaction("combine", name, clock_->now());
  ui_.show_message("Created " + name + ".", clock_->now(), seconds(3));
  log("combined items into '" + name + "'");
  drain_rewards();
  return {};
}

void GameSession::dismiss_popups() {
  ui_.dismiss_message();
  ui_.dismiss_image();
}

// --- Dialogue ------------------------------------------------------------------

void GameSession::drain_dialogue_tags() {
  if (!dialogue_) return;
  // Tags may fire rules which start another dialogue; iterate carefully.
  while (dialogue_ &&
         dialogue_->consumed_tags < dialogue_->runner.fired_tags().size()) {
    const std::string tag =
        dialogue_->runner.fired_tags()[dialogue_->consumed_tags++];
    TriggerEvent ev;
    ev.type = TriggerType::kDialogueTag;
    ev.scenario = current_;
    ev.tag = tag;
    ev.when = clock_->now();
    dispatch(ev);
  }
}

void GameSession::refresh_dialogue_view() {
  if (!dialogue_ || !dialogue_->runner.active()) {
    ui_.set_dialogue(std::nullopt);
    if (dialogue_ && !dialogue_->runner.active()) dialogue_.reset();
    return;
  }
  const DialogueNode* node = dialogue_->runner.current();
  DialogueView view;
  view.speaker = node->speaker;
  view.line = node->line;
  for (const auto& c : node->choices) view.choices.push_back(c.text);
  ui_.set_dialogue(std::move(view));
}

Status GameSession::advance_dialogue() {
  if (!dialogue_) return failed_precondition("no active dialogue");
  auto st = dialogue_->runner.advance();
  if (!st.ok()) return st;
  dialogue_->path.push_back(kDialogueAdvance);
  drain_dialogue_tags();
  refresh_dialogue_view();
  drain_rewards();
  return {};
}

Status GameSession::choose_dialogue(size_t index) {
  if (!dialogue_) return failed_precondition("no active dialogue");
  const DialogueNode* node = dialogue_->runner.current();
  const std::string context = node ? node->line : "";
  auto st = dialogue_->runner.choose(index);
  if (!st.ok()) return st;
  dialogue_->path.push_back(static_cast<u32>(index));
  // Record the decision for the learning report (§3.2: knowledge from the
  // process of making decisions).
  const auto& transcript = dialogue_->runner.transcript();
  const std::string chosen =
      transcript.empty() ? "" : transcript.back().chosen;
  tracker_.on_decision(context, chosen, clock_->now());
  drain_dialogue_tags();
  refresh_dialogue_view();
  drain_rewards();
  return {};
}

void GameSession::refresh_quiz_view() {
  if (!quiz_ || quiz_->runner.finished()) {
    ui_.set_quiz(std::nullopt);
    return;
  }
  const Quiz* quiz = bundle_->find_quiz(quiz_->id);
  const QuizQuestion* q = quiz_->runner.current();
  QuizView view;
  view.quiz_name = quiz->name();
  view.prompt = q->prompt;
  view.options = q->options;
  view.question_number = quiz_->runner.question_number();
  view.total_questions = quiz->size();
  ui_.set_quiz(std::move(view));
}

Status GameSession::answer_quiz(size_t option) {
  if (!quiz_) return failed_precondition("no active quiz");
  const Quiz* quiz = bundle_->find_quiz(quiz_->id);
  const QuizQuestion* q = quiz_->runner.current();
  const std::string prompt = q ? q->prompt : "";
  auto correct = quiz_->runner.answer(option);
  if (!correct.ok()) return correct.error();
  quiz_->answers.push_back(static_cast<u32>(option));

  const std::string chosen =
      q && option < q->options.size() ? q->options[option] : "?";
  tracker_.on_decision("[quiz] " + prompt, chosen, clock_->now());
  if (q && !q->explanation.empty()) {
    ui_.show_message((correct.value() ? "Correct! " : "Not quite. ") +
                         q->explanation,
                     clock_->now(), seconds(5));
  }
  log(std::string("quiz answer ") + (correct.value() ? "correct" : "wrong") +
      ": " + chosen);

  if (quiz_->runner.finished()) {
    const QuizOutcome outcome = quiz_->runner.outcome();
    if (outcome.points_earned != 0) {
      ledger_.award(outcome.points_earned, "quiz '" + quiz->name() + "'",
                    clock_->now());
      tracker_.on_score(outcome.points_earned, "quiz '" + quiz->name() + "'",
                        clock_->now());
    }
    flags_.insert((outcome.passed ? "quiz_passed:" : "quiz_failed:") +
                  quiz->name());
    ui_.show_message("Quiz '" + quiz->name() + "': " +
                         std::to_string(outcome.correct_count) + "/" +
                         std::to_string(outcome.total) +
                         (outcome.passed ? " - passed!" : " - try again."),
                     clock_->now(), seconds(6));
    tracker_.on_interaction("quiz_result",
                            quiz->name() + " " +
                                std::to_string(outcome.correct_count) + "/" +
                                std::to_string(outcome.total),
                            clock_->now());
    log("quiz '" + quiz->name() + "' finished: " +
        std::to_string(outcome.correct_count) + "/" +
        std::to_string(outcome.total));
    quiz_.reset();
    // Quiz outcomes never surface as tracker records with a pass bit, so
    // the reward evaluator hears about them directly.
    rewards::RewardEvent reward_ev;
    reward_ev.kind = rewards::RewardEvent::Kind::kQuizOutcome;
    reward_ev.name = quiz->name();
    reward_ev.success = outcome.passed;
    reward_ev.when = clock_->now();
    rewards_.feed(reward_ev);
    // Completing a quiz may unlock rules gated on the pass flag; give
    // dialogue-tag-style rules a chance to react.
    TriggerEvent ev;
    ev.type = TriggerType::kDialogueTag;
    ev.scenario = current_;
    ev.tag = "quiz_done";
    ev.when = clock_->now();
    dispatch(ev);
  }
  refresh_quiz_view();
  drain_rewards();
  return {};
}

// --- Tick ------------------------------------------------------------------------

void GameSession::tick() {
  if (!started_ || game_over_) return;
  const MicroTime now = clock_->now();
  ui_.update(now);

  if (options_.enable_avatar) {
    const bool arrived = avatar_.update(now);
    if (arrived && pending_interaction_) {
      const PendingInteraction pending = *pending_interaction_;
      pending_interaction_.reset();
      const InteractiveObject* obj = bundle_->find_object(pending.object);
      // The world may have moved on mid-walk (object hidden, scenario
      // switched by a timer); only interact if it is still valid & near.
      if (obj && obj->scenario == current_ && object_effectively_visible(*obj) &&
          avatar_.can_reach(obj->placement.rect)) {
        perform_object_interaction(pending.type, pending.object, pending.item);
      } else {
        log("pending interaction dropped (target gone)");
      }
      if (game_over_) {
        drain_rewards();
        return;
      }
    }
  }

  // Timers.
  std::vector<ArmedTimer> due;
  std::erase_if(timers_, [&](const ArmedTimer& t) {
    if (t.fire_at <= now) {
      due.push_back(t);
      return true;
    }
    return false;
  });
  for (const auto& t : due) {
    TriggerEvent ev;
    ev.type = TriggerType::kTimer;
    ev.scenario = current_;
    ev.when = now;
    // Route through the specific rule: match() would fire all due timer
    // rules at once, which is fine, but we keep per-timer granularity.
    const EventRule* rule = rule_book_.find(t.rule);
    if (!rule) continue;
    if (rule->once && disarmed_.count(rule->id.value)) continue;
    StateView view(this);
    if (!trigger_matches(rule->trigger, ev)) continue;
    if (!(rule_book_.engine() == GuardEngine::kCompiledVm
              ? CompiledCondition(rule->condition).evaluate(view)
              : evaluate(rule->condition, view))) {
      continue;
    }
    log("timer rule '" + rule->name + "' fired");
    if (rule->once) disarmed_.insert(rule->id.value);
    for (const Action& action : rule->actions) {
      if (apply_action(action, rule)) break;
    }
    if (game_over_) {
      drain_rewards();
      return;
    }
  }

  // Segment end (fires once per scenario entry).
  if (!segment_end_fired_ && player_.playing() && player_.finished(now)) {
    segment_end_fired_ = true;
    TriggerEvent ev;
    ev.type = TriggerType::kSegmentEnd;
    ev.scenario = current_;
    ev.when = now;
    dispatch(ev);
  }
  drain_rewards();
}

// --- Save games --------------------------------------------------------------------

Json GameSession::save_state() const {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("current_scenario", Json(current_.value));
  o.set("score", Json(ledger_.total()));
  o.set("game_over", Json(game_over_));
  o.set("success", Json(success_));
  JsonArray inv;
  for (const auto& slot : inventory_.slots()) {
    Json sj = Json::object();
    auto& so = sj.mutable_object();
    so.set("item", Json(slot.item.value));
    so.set("count", Json(slot.count));
    inv.push_back(std::move(sj));
  }
  o.set("inventory", Json(std::move(inv)));
  JsonArray flags;
  std::vector<std::string> sorted_flags(flags_.begin(), flags_.end());
  std::sort(sorted_flags.begin(), sorted_flags.end());
  for (const auto& f : sorted_flags) flags.push_back(Json(f));
  o.set("flags", Json(std::move(flags)));
  JsonArray visited;
  std::vector<u32> sorted_visited(visited_.begin(), visited_.end());
  std::sort(sorted_visited.begin(), sorted_visited.end());
  for (u32 v : sorted_visited) visited.push_back(Json(v));
  o.set("visited", Json(std::move(visited)));
  JsonArray disarmed;
  std::vector<u32> sorted_disarmed(disarmed_.begin(), disarmed_.end());
  std::sort(sorted_disarmed.begin(), sorted_disarmed.end());
  for (u32 d : sorted_disarmed) disarmed.push_back(Json(d));
  o.set("disarmed", Json(std::move(disarmed)));
  JsonArray overrides;
  std::vector<std::pair<u32, bool>> sorted_overrides(
      visibility_override_.begin(), visibility_override_.end());
  std::sort(sorted_overrides.begin(), sorted_overrides.end());
  for (const auto& [id, vis] : sorted_overrides) {
    Json oj = Json::object();
    auto& oo = oj.mutable_object();
    oo.set("object", Json(id));
    oo.set("visible", Json(vis));
    overrides.push_back(std::move(oj));
  }
  o.set("visibility", Json(std::move(overrides)));
  return out;
}

Status GameSession::load_state(const Json& snapshot) {
  if (!snapshot.is_object()) return corrupt_data("save state must be an object");
  const ScenarioId scenario{
      static_cast<u32>(snapshot["current_scenario"].as_int())};
  if (!bundle_->graph.find(scenario)) {
    return corrupt_data("save references missing scenario " +
                        std::to_string(scenario.value));
  }

  // Rebuild mutable state from the snapshot.
  inventory_ = Inventory(&bundle_->items, options_.inventory_capacity);
  for (const auto& sj : snapshot["inventory"].as_array()) {
    const ItemId item{static_cast<u32>(sj["item"].as_int())};
    const int count = static_cast<int>(sj["count"].as_int());
    if (auto st = inventory_.add(item, count); !st.ok()) return st;
  }
  flags_.clear();
  for (const auto& f : snapshot["flags"].as_array()) {
    flags_.insert(f.as_string());
  }
  visited_.clear();
  for (const auto& v : snapshot["visited"].as_array()) {
    visited_.insert(static_cast<u32>(v.as_int()));
  }
  disarmed_.clear();
  for (const auto& d : snapshot["disarmed"].as_array()) {
    disarmed_.insert(static_cast<u32>(d.as_int()));
  }
  visibility_override_.clear();
  for (const auto& oj : snapshot["visibility"].as_array()) {
    visibility_override_[static_cast<u32>(oj["object"].as_int())] =
        oj["visible"].as_bool();
  }
  ++hit_index_epoch_;

  ledger_ = ScoreLedger{};
  const i64 score = snapshot["score"].as_int();
  if (score != 0) ledger_.award(score, "restored save", clock_->now());

  game_over_ = snapshot["game_over"].as_bool(false);
  success_ = snapshot["success"].as_bool(false);
  started_ = true;
  dialogue_.reset();
  ui_.set_dialogue(std::nullopt);

  // Re-enter the saved scenario without re-firing enter events (the save
  // was taken mid-scenario; re-firing would duplicate one-shot effects —
  // but disarmed_ already guards the once-rules, and non-once enter rules
  // are expected to be idempotent scene dressing; we restart the video).
  const Scenario* s = bundle_->graph.find(scenario);
  current_ = scenario;
  scenario_entered_at_ = clock_->now();
  segment_end_fired_ = false;
  hit_index_frame_ = -1;
  if (auto st = player_.play_segment(s->segment, clock_->now()); !st.ok()) {
    return st;
  }
  arm_timers();
  log("save state restored");
  return {};
}

// --- Session persistence -----------------------------------------------------------

SessionState GameSession::capture_state() const {
  SessionState s;
  s.now = clock_->now();
  s.scenario = current_;
  s.started = started_;
  s.game_over = game_over_;
  s.success = success_;
  s.scenario_entered_at = scenario_entered_at_;
  s.segment_end_fired = segment_end_fired_;
  s.player_active = player_.playing();
  s.player_start = player_.start_time();

  for (const auto& slot : inventory_.slots()) {
    s.inventory.push_back({slot.item.value, slot.count});
  }
  for (const auto& e : ledger_.entries()) {
    s.ledger.push_back({e.points, e.reason, e.when});
  }

  // Sets are sorted so snapshots of equal states are byte-identical.
  s.flags.assign(flags_.begin(), flags_.end());
  std::sort(s.flags.begin(), s.flags.end());
  s.visited.assign(visited_.begin(), visited_.end());
  std::sort(s.visited.begin(), s.visited.end());
  s.disarmed.assign(disarmed_.begin(), disarmed_.end());
  std::sort(s.disarmed.begin(), s.disarmed.end());
  for (const auto& [id, visible] : visibility_override_) {
    s.visibility.push_back({id, visible});
  }
  std::sort(s.visibility.begin(), s.visibility.end(),
            [](const auto& a, const auto& b) { return a.object < b.object; });
  for (const auto& t : timers_) {
    s.timers.push_back({t.rule.value, t.fire_at});
  }

  s.avatar_position = avatar_.position();
  s.avatar_walking = avatar_.walking();
  if (s.avatar_walking) s.avatar_target = *avatar_.target();
  if (pending_interaction_) {
    s.has_pending_interaction = true;
    s.pending_trigger = static_cast<u8>(pending_interaction_->type);
    s.pending_object = pending_interaction_->object.value;
    s.pending_item = pending_interaction_->item.value;
  }

  if (dialogue_) {
    s.in_dialogue = true;
    s.dialogue_id = dialogue_->id.value;
    s.dialogue_path = dialogue_->path;
    s.dialogue_consumed_tags = static_cast<u32>(dialogue_->consumed_tags);
  }
  if (quiz_) {
    s.in_quiz = true;
    s.quiz_id = quiz_->id.value;
    s.quiz_answers = quiz_->answers;
  }

  if (ui_.message()) {
    s.has_message = true;
    s.message_text = ui_.message()->text;
    s.message_shown_at = ui_.message()->shown_at;
    s.message_timeout = ui_.message()->timeout;
  }
  if (ui_.image()) {
    s.has_image = true;
    s.image_icon = ui_.image()->icon;
    s.image_shown_at = ui_.image()->shown_at;
  }

  s.tracker = tracker_.state();
  s.rewards = rewards_.state();
  for (const auto& e : log_) s.log.push_back({e.when, e.text});
  return s;
}

Status GameSession::restore_state(const SessionState& state) {
  if (clock_->now() != state.now) {
    return failed_precondition(
        "clock must read the snapshot time before restore (expected " +
        std::to_string(state.now) + ", is " +
        std::to_string(clock_->now()) + ")");
  }
  const Scenario* scenario = bundle_->graph.find(state.scenario);
  if (!scenario) {
    return corrupt_data("snapshot references missing scenario " +
                        std::to_string(state.scenario.value));
  }

  // Rebuild all fallible pieces into locals first so a corrupt snapshot
  // rejects without half-mutating the session.
  Inventory inventory(&bundle_->items, options_.inventory_capacity);
  for (const auto& slot : state.inventory) {
    if (auto st = inventory.add(ItemId{slot.item}, slot.count); !st.ok()) {
      return corrupt_data("snapshot inventory invalid: " +
                          st.error().to_string());
    }
  }

  std::optional<ActiveDialogue> dialogue;
  if (state.in_dialogue) {
    const DialogueTree* tree =
        bundle_->find_dialogue(DialogueId{state.dialogue_id});
    if (!tree) {
      return corrupt_data("snapshot references missing dialogue " +
                          std::to_string(state.dialogue_id));
    }
    dialogue = ActiveDialogue{DialogueId{state.dialogue_id},
                              DialogueRunner(tree), 0, {}};
    for (u32 input : state.dialogue_path) {
      auto st = input == kDialogueAdvance
                    ? dialogue->runner.advance()
                    : dialogue->runner.choose(input);
      if (!st.ok()) {
        return corrupt_data("snapshot dialogue path does not replay: " +
                            st.error().to_string());
      }
    }
    if (!dialogue->runner.active()) {
      return corrupt_data("snapshot dialogue path ends the conversation");
    }
    if (state.dialogue_consumed_tags > dialogue->runner.fired_tags().size()) {
      return corrupt_data("snapshot dialogue consumed-tag count too large");
    }
    dialogue->consumed_tags = state.dialogue_consumed_tags;
    dialogue->path = state.dialogue_path;
  }

  std::optional<ActiveQuiz> quiz;
  if (state.in_quiz) {
    const Quiz* q = bundle_->find_quiz(QuizId{state.quiz_id});
    if (!q) {
      return corrupt_data("snapshot references missing quiz " +
                          std::to_string(state.quiz_id));
    }
    quiz = ActiveQuiz{QuizId{state.quiz_id}, QuizRunner(q), {}};
    for (u32 option : state.quiz_answers) {
      auto answered = quiz->runner.answer(option);
      if (!answered.ok()) {
        return corrupt_data("snapshot quiz answers do not replay: " +
                            answered.error().to_string());
      }
    }
    if (quiz->runner.finished()) {
      return corrupt_data("snapshot quiz answers finish the quiz");
    }
    quiz->answers = state.quiz_answers;
  }

  // An empty per-rule vector means the snapshot carries no rewards state
  // (captured by an older build, or with rewards disabled); a populated
  // one must match this session's rule set exactly.
  rewards::RewardEvaluator restored_rewards(options_.reward_rules);
  const bool rewards_state_present =
      !state.rewards.progress.empty() || !state.rewards.unlocks.empty();
  if (restored_rewards.active() && rewards_state_present) {
    if (auto st = restored_rewards.restore_state(state.rewards); !st.ok()) {
      return st;
    }
  }

  // Commit.
  inventory_ = std::move(inventory);
  ledger_ = ScoreLedger{};
  for (const auto& e : state.ledger) ledger_.award(e.points, e.reason, e.when);
  flags_.clear();
  flags_.insert(state.flags.begin(), state.flags.end());
  visited_.clear();
  visited_.insert(state.visited.begin(), state.visited.end());
  disarmed_.clear();
  disarmed_.insert(state.disarmed.begin(), state.disarmed.end());
  visibility_override_.clear();
  for (const auto& v : state.visibility) {
    visibility_override_[v.object] = v.visible;
  }
  timers_.clear();
  for (const auto& t : state.timers) {
    timers_.push_back({RuleId{t.rule}, t.fire_at});
  }

  current_ = state.scenario;
  started_ = state.started;
  game_over_ = state.game_over;
  success_ = state.success;
  scenario_entered_at_ = state.scenario_entered_at;
  segment_end_fired_ = state.segment_end_fired;

  avatar_.set_position(state.avatar_position);
  if (state.avatar_walking) {
    avatar_.walk_to(state.avatar_target, clock_->now());
  }
  pending_interaction_.reset();
  if (state.has_pending_interaction) {
    pending_interaction_ =
        PendingInteraction{static_cast<TriggerType>(state.pending_trigger),
                           ObjectId{state.pending_object},
                           ItemId{state.pending_item}};
  }

  dialogue_ = std::move(dialogue);
  quiz_ = std::move(quiz);

  if (state.has_message) {
    ui_.show_message(state.message_text, state.message_shown_at,
                     state.message_timeout);
  } else {
    ui_.dismiss_message();
  }
  if (state.has_image) {
    ui_.show_image(state.image_icon, state.image_shown_at);
  } else {
    ui_.dismiss_image();
  }
  refresh_dialogue_view();
  refresh_quiz_view();

  tracker_.restore(state.tracker);
  rewards_ = std::move(restored_rewards);
  if (rewards_.active() && !rewards_state_present) {
    // No rewards state to resume: skip the replayed tracker history so the
    // restored session does not retroactively unlock badges for it.
    rewards_.mark_consumed(static_cast<u32>(tracker_.interactions().size()),
                           static_cast<u32>(tracker_.items_collected().size()),
                           static_cast<u32>(tracker_.decisions().size()),
                           static_cast<u32>(tracker_.visits().size()));
  }
  log_.clear();
  for (const auto& e : state.log) log_.push_back({e.when, e.text});

  if (state.player_active) {
    if (auto st = player_.play_segment(scenario->segment, state.player_start);
        !st.ok()) {
      return st;
    }
  } else {
    player_.stop();
  }

  hit_index_frame_ = -1;
  ++hit_index_epoch_;
  return {};
}

}  // namespace vgbl
