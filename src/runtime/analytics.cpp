#include "runtime/analytics.hpp"

#include "util/text.hpp"

namespace vgbl {

void LearningTracker::on_scenario_entered(ScenarioId id,
                                          const std::string& name,
                                          MicroTime now) {
  if (!visits_.empty() && visits_.back().left < 0) {
    visits_.back().left = now;
  }
  visits_.push_back({id, name, now, -1});
}

void LearningTracker::on_interaction(const std::string& kind,
                                     const std::string& target,
                                     MicroTime now) {
  interactions_.push_back({kind, target, now});
}

void LearningTracker::on_decision(const std::string& context,
                                  const std::string& choice, MicroTime now) {
  decisions_.push_back({context, choice, now});
}

void LearningTracker::on_item_collected(const std::string& item,
                                        MicroTime now) {
  items_.push_back(item);
  on_interaction("collect", item, now);
}

void LearningTracker::on_score(i64 points, const std::string& reason,
                               MicroTime now) {
  score_ += points;
  on_interaction("score", reason + " (" + std::to_string(points) + ")", now);
}

void LearningTracker::on_reward(const std::string& reward, MicroTime now) {
  rewards_.push_back(reward);
  on_interaction("reward", reward, now);
}

void LearningTracker::on_resource_opened(const std::string& title,
                                         MicroTime now) {
  resources_.emplace_back(title, now);
  on_interaction("open_resource", title, now);
}

void LearningTracker::on_game_over(bool success, MicroTime now) {
  finished_ = true;
  success_ = success;
  finished_at_ = now;
  if (!visits_.empty() && visits_.back().left < 0) {
    visits_.back().left = now;
  }
}

std::map<std::string, f64> LearningTracker::time_per_scenario(
    MicroTime now) const {
  std::map<std::string, f64> out;
  for (const auto& v : visits_) {
    const MicroTime left = v.left >= 0 ? v.left : now;
    out[v.name] += to_seconds(left - v.entered);
  }
  return out;
}

std::string LearningTracker::report(MicroTime now) const {
  std::string r;
  r += "=== Learning report ===\n";
  r += "outcome: ";
  r += finished_ ? (success_ ? "mission complete\n" : "mission failed\n")
                 : "in progress\n";
  r += "score: " + std::to_string(score_) + "\n";
  r += "scenarios visited: " + std::to_string(visits_.size()) + "\n";
  for (const auto& [name, secs] : time_per_scenario(now)) {
    r += "  " + pad_right(name, 20) + format_double(secs, 1) + " s\n";
  }
  r += "interactions: " + std::to_string(interactions_.size()) + "\n";
  r += "decisions: " + std::to_string(decisions_.size()) + "\n";
  for (const auto& d : decisions_) {
    r += "  [" + d.context + "] -> " + d.choice + "\n";
  }
  r += "items collected: " + std::to_string(items_.size());
  if (!items_.empty()) {
    r += " (";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i) r += ", ";
      r += items_[i];
    }
    r += ")";
  }
  r += "\n";
  r += "rewards earned: " + std::to_string(rewards_.size());
  if (!rewards_.empty()) {
    r += " (";
    for (size_t i = 0; i < rewards_.size(); ++i) {
      if (i) r += ", ";
      r += rewards_[i];
    }
    r += ")";
  }
  r += "\n";
  if (!resources_.empty()) {
    r += "resources consulted:\n";
    for (const auto& [title, when] : resources_) {
      r += "  " + title + " @" + format_double(to_seconds(when), 1) + "s\n";
    }
  }
  return r;
}

Json LearningTracker::to_json(MicroTime now) const {
  Json out = Json::object();
  auto& o = out.mutable_object();
  o.set("finished", Json(finished_));
  o.set("success", Json(success_));
  o.set("score", Json(score_));
  JsonArray visits;
  for (const auto& v : visits_) {
    Json vj = Json::object();
    auto& vo = vj.mutable_object();
    vo.set("scenario", Json(v.name));
    vo.set("entered_s", Json(to_seconds(v.entered)));
    vo.set("left_s", Json(to_seconds(v.left >= 0 ? v.left : now)));
    visits.push_back(std::move(vj));
  }
  o.set("visits", Json(std::move(visits)));
  JsonArray decisions;
  for (const auto& d : decisions_) {
    Json dj = Json::object();
    auto& dd = dj.mutable_object();
    dd.set("context", Json(d.context));
    dd.set("choice", Json(d.choice));
    decisions.push_back(std::move(dj));
  }
  o.set("decisions", Json(std::move(decisions)));
  o.set("interaction_count", Json(static_cast<i64>(interactions_.size())));
  JsonArray items;
  for (const auto& i : items_) items.push_back(Json(i));
  o.set("items", Json(std::move(items)));
  JsonArray rewards;
  for (const auto& r : rewards_) rewards.push_back(Json(r));
  o.set("rewards", Json(std::move(rewards)));
  return out;
}

LearningTracker::State LearningTracker::state() const {
  State s;
  s.visits = visits_;
  s.interactions = interactions_;
  s.decisions = decisions_;
  s.items = items_;
  s.rewards = rewards_;
  s.resources = resources_;
  s.score = score_;
  s.finished = finished_;
  s.success = success_;
  s.finished_at = finished_at_;
  return s;
}

void LearningTracker::restore(State state) {
  visits_ = std::move(state.visits);
  interactions_ = std::move(state.interactions);
  decisions_ = std::move(state.decisions);
  items_ = std::move(state.items);
  rewards_ = std::move(state.rewards);
  resources_ = std::move(state.resources);
  score_ = state.score;
  finished_ = state.finished;
  success_ = state.success;
  finished_at_ = state.finished_at;
}

}  // namespace vgbl
