// SessionState: the full mutable play state of a GameSession as plain
// data, captured by `GameSession::capture_state()` and re-applied by
// `restore_state()`. The persist layer serialises this struct into the
// versioned snapshot format (src/persist/snapshot.hpp); keeping the struct
// here keeps the dependency arrow pointing persist -> runtime.
//
// Everything a resumed session needs to behave bit-identically to the
// uninterrupted run is included: scenario position, backpack, score
// ledger, flags, armed timers, video playback origin, avatar pose,
// mid-conversation dialogue/quiz positions (as replayable input paths),
// UI popups, learning analytics and the human-readable event log. The
// only mutable state deliberately excluded is diagnostic-only (the
// resource catalog's access log and the video player's frame statistics).
#pragma once

#include <string>
#include <vector>

#include "rewards/evaluator.hpp"
#include "runtime/analytics.hpp"
#include "util/geometry.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

/// One entry of the session's human-readable event log (mirrors
/// SessionEvent; duplicated here so this header stays session-free).
struct SessionLogEntry {
  MicroTime when = 0;
  std::string text;
};

/// Sentinel in a dialogue input path meaning "advance()" (all other values
/// are choose() indices).
inline constexpr u32 kDialogueAdvance = 0xFFFFFFFFu;

struct SessionState {
  /// Clock reading at capture time. restore_state() requires the target
  /// session's clock to sit exactly here so armed timers and video
  /// position resume in phase with the uninterrupted timeline.
  MicroTime now = 0;

  // --- Scenario position -----------------------------------------------------
  ScenarioId scenario;
  bool started = false;
  bool game_over = false;
  bool success = false;
  MicroTime scenario_entered_at = 0;
  bool segment_end_fired = false;
  /// Presentation time of the current segment's frame 0 (differs from
  /// scenario_entered_at after a replay-segment action).
  MicroTime player_start = 0;
  bool player_active = false;

  // --- Backpack and score ----------------------------------------------------
  struct InventoryEntry {
    u32 item = 0;
    i32 count = 0;
  };
  std::vector<InventoryEntry> inventory;

  struct LedgerEntry {
    i64 points = 0;
    std::string reason;
    MicroTime when = 0;
  };
  std::vector<LedgerEntry> ledger;

  // --- Rule-engine state (sorted for canonical encodings) --------------------
  std::vector<std::string> flags;
  std::vector<u32> visited;
  std::vector<u32> disarmed;
  struct VisibilityOverride {
    u32 object = 0;
    bool visible = false;
  };
  std::vector<VisibilityOverride> visibility;
  struct ArmedTimer {
    u32 rule = 0;
    MicroTime fire_at = 0;
  };
  std::vector<ArmedTimer> timers;

  // --- Avatar and deferred interaction ---------------------------------------
  Point avatar_position;
  bool avatar_walking = false;
  Point avatar_target;
  bool has_pending_interaction = false;
  u8 pending_trigger = 0;  // TriggerType of the deferred interaction
  u32 pending_object = 0;
  u32 pending_item = 0;

  // --- Mid-conversation dialogue / quiz --------------------------------------
  // Runners are restored by replaying the recorded input path against the
  // bundle's (immutable) tree, which reproduces transcript and fired tags
  // exactly; consumed_tags guards against re-dispatching tag events.
  bool in_dialogue = false;
  u32 dialogue_id = 0;
  std::vector<u32> dialogue_path;  // kDialogueAdvance or choice index
  u32 dialogue_consumed_tags = 0;
  bool in_quiz = false;
  u32 quiz_id = 0;
  std::vector<u32> quiz_answers;

  // --- UI popups -------------------------------------------------------------
  bool has_message = false;
  std::string message_text;
  MicroTime message_shown_at = 0;
  MicroTime message_timeout = 0;
  bool has_image = false;
  std::string image_icon;
  MicroTime image_shown_at = 0;

  // --- Analytics and event log -----------------------------------------------
  LearningTracker::State tracker;
  std::vector<SessionLogEntry> log;

  // --- Rewards ---------------------------------------------------------------
  /// Reward-evaluator state (empty when the session has no rule set, or
  /// the snapshot predates rewards — restore then skips replayed history).
  rewards::EvaluatorState rewards;
};

}  // namespace vgbl
