#include "runtime/compositor.hpp"

#include <algorithm>

namespace vgbl {
namespace {

/// 5x7 font for the printable ASCII glyphs the chrome needs. Each glyph is
/// 5 columns; each byte holds one column's 7 row bits (LSB = top row).
struct FontGlyph {
  char ch;
  u8 cols[5];
};

// Compact font covering digits, upper-case letters and common punctuation;
// lower-case maps to upper-case at draw time.
constexpr FontGlyph kFont[] = {
    {' ', {0x00, 0x00, 0x00, 0x00, 0x00}},
    {'!', {0x00, 0x00, 0x5F, 0x00, 0x00}},
    {'\'', {0x00, 0x00, 0x03, 0x00, 0x00}},
    {'(', {0x00, 0x1C, 0x22, 0x41, 0x00}},
    {')', {0x00, 0x41, 0x22, 0x1C, 0x00}},
    {'+', {0x08, 0x08, 0x3E, 0x08, 0x08}},
    {',', {0x00, 0x50, 0x30, 0x00, 0x00}},
    {'-', {0x08, 0x08, 0x08, 0x08, 0x08}},
    {'.', {0x00, 0x60, 0x60, 0x00, 0x00}},
    {'/', {0x20, 0x10, 0x08, 0x04, 0x02}},
    {'0', {0x3E, 0x51, 0x49, 0x45, 0x3E}},
    {'1', {0x00, 0x42, 0x7F, 0x40, 0x00}},
    {'2', {0x42, 0x61, 0x51, 0x49, 0x46}},
    {'3', {0x21, 0x41, 0x45, 0x4B, 0x31}},
    {'4', {0x18, 0x14, 0x12, 0x7F, 0x10}},
    {'5', {0x27, 0x45, 0x45, 0x45, 0x39}},
    {'6', {0x3C, 0x4A, 0x49, 0x49, 0x30}},
    {'7', {0x01, 0x71, 0x09, 0x05, 0x03}},
    {'8', {0x36, 0x49, 0x49, 0x49, 0x36}},
    {'9', {0x06, 0x49, 0x49, 0x29, 0x1E}},
    {':', {0x00, 0x36, 0x36, 0x00, 0x00}},
    {'?', {0x02, 0x01, 0x51, 0x09, 0x06}},
    {'A', {0x7E, 0x11, 0x11, 0x11, 0x7E}},
    {'B', {0x7F, 0x49, 0x49, 0x49, 0x36}},
    {'C', {0x3E, 0x41, 0x41, 0x41, 0x22}},
    {'D', {0x7F, 0x41, 0x41, 0x22, 0x1C}},
    {'E', {0x7F, 0x49, 0x49, 0x49, 0x41}},
    {'F', {0x7F, 0x09, 0x09, 0x09, 0x01}},
    {'G', {0x3E, 0x41, 0x49, 0x49, 0x7A}},
    {'H', {0x7F, 0x08, 0x08, 0x08, 0x7F}},
    {'I', {0x00, 0x41, 0x7F, 0x41, 0x00}},
    {'J', {0x20, 0x40, 0x41, 0x3F, 0x01}},
    {'K', {0x7F, 0x08, 0x14, 0x22, 0x41}},
    {'L', {0x7F, 0x40, 0x40, 0x40, 0x40}},
    {'M', {0x7F, 0x02, 0x0C, 0x02, 0x7F}},
    {'N', {0x7F, 0x04, 0x08, 0x10, 0x7F}},
    {'O', {0x3E, 0x41, 0x41, 0x41, 0x3E}},
    {'P', {0x7F, 0x09, 0x09, 0x09, 0x06}},
    {'Q', {0x3E, 0x41, 0x51, 0x21, 0x5E}},
    {'R', {0x7F, 0x09, 0x19, 0x29, 0x46}},
    {'S', {0x46, 0x49, 0x49, 0x49, 0x31}},
    {'T', {0x01, 0x01, 0x7F, 0x01, 0x01}},
    {'U', {0x3F, 0x40, 0x40, 0x40, 0x3F}},
    {'V', {0x1F, 0x20, 0x40, 0x20, 0x1F}},
    {'W', {0x3F, 0x40, 0x38, 0x40, 0x3F}},
    {'X', {0x63, 0x14, 0x08, 0x14, 0x63}},
    {'Y', {0x07, 0x08, 0x70, 0x08, 0x07}},
    {'Z', {0x61, 0x51, 0x49, 0x45, 0x43}},
    {'[', {0x00, 0x7F, 0x41, 0x41, 0x00}},
    {']', {0x00, 0x41, 0x41, 0x7F, 0x00}},
    {'_', {0x40, 0x40, 0x40, 0x40, 0x40}},
};

const FontGlyph* find_glyph(char c) {
  if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  for (const auto& g : kFont) {
    if (g.ch == c) return &g;
  }
  return nullptr;
}

}  // namespace

i32 Compositor::draw_text(Frame& frame, Point at, const std::string& text,
                          Color color, int scale) {
  i32 x = at.x;
  for (char c : text) {
    const FontGlyph* glyph = find_glyph(c);
    if (glyph) {
      for (int col = 0; col < 5; ++col) {
        for (int row = 0; row < 7; ++row) {
          if (!(glyph->cols[col] & (1 << row))) continue;
          for (int sy = 0; sy < scale; ++sy) {
            for (int sx = 0; sx < scale; ++sx) {
              const i32 px = x + col * scale + sx;
              const i32 py = at.y + row * scale + sy;
              if (frame.bounds().contains({px, py})) {
                frame.set_pixel(px, py, color);
              }
            }
          }
        }
      }
    }
    x += 6 * scale;  // 5 columns + 1 gap
  }
  return x;
}

Frame Compositor::render(GameSession& session) {
  const UiLayout& layout = session.ui().layout();
  Frame canvas = Frame::rgb(layout.canvas.width, layout.canvas.height,
                            options_.chrome_background);

  // Video area.
  auto video = session.current_video_frame();
  const Rect va = layout.video_area;
  if (video) {
    canvas.blit(*video, va.origin());
  } else {
    canvas.fill_rect(va, colors::kBlack);
  }

  // Mounted objects, in paint order, offset into the video area.
  for (const InteractiveObject* obj : session.visible_objects()) {
    const Rect target = obj->placement.rect.translated(va.origin());
    if (!obj->sprite.empty()) {
      obj->sprite.draw_scaled(canvas, target);
    } else if (obj->kind == ObjectKind::kButton) {
      // Buttons without art get an auto face + label (Fig.2 style).
      Sprite::button(target.size(), {70, 90, 150}).draw(canvas, target.origin());
      draw_text(canvas, {target.x + 4, target.y + (target.height - 7) / 2},
                obj->name, colors::kWhite);
    }
    if (options_.draw_object_outlines) {
      canvas.draw_rect(target, {0, 255, 255});
    }
  }

  // Avatar (paper §4.3), drawn above objects, below the chrome.
  if (session.options().enable_avatar) {
    const Rect a = session.avatar().bounds().translated(va.origin());
    // Simple figure: body capsule + head disc.
    canvas.fill_rect({a.x + a.width / 4, a.y + a.height / 3,
                      a.width / 2, 2 * a.height / 3},
                     {60, 90, 160});
    canvas.fill_circle({a.x + a.width / 2, a.y + a.height / 4},
                       a.width / 3, {235, 200, 170});
    if (session.avatar().walking()) {
      canvas.draw_rect(a, {250, 250, 120});  // walk highlight
    }
  }

  draw_chrome(canvas, session);
  draw_inventory(canvas, session);
  draw_message(canvas, session);
  draw_dialogue(canvas, session);
  draw_quiz(canvas, session);

  // Image popup: centred over the video.
  if (session.ui().image()) {
    const Sprite big = Sprite::icon(session.ui().image()->icon, 64);
    big.draw(canvas, {va.x + (va.width - 64) / 2, va.y + (va.height - 64) / 2});
  }
  return canvas;
}

void Compositor::draw_chrome(Frame& canvas, GameSession& session) {
  const UiLayout& layout = session.ui().layout();
  canvas.fill_rect(layout.status_bar, {25, 27, 32});
  const Scenario* s = session.current_scenario_info();
  std::string title = session.bundle().meta.title;
  if (s) title += "  [" + s->name + "]";
  draw_text(canvas, {4, layout.status_bar.y + 4}, title,
            options_.chrome_text);
  const std::string score = "SCORE " + std::to_string(session.score());
  draw_text(canvas,
            {layout.status_bar.right() - static_cast<i32>(score.size()) * 6 - 4,
             layout.status_bar.y + 4},
            score, {250, 210, 80});
}

void Compositor::draw_inventory(Frame& canvas, GameSession& session) {
  const Rect w = session.ui().layout().inventory_window;
  canvas.fill_rect(w, {55, 58, 66});
  canvas.draw_rect(w, {90, 94, 104});
  draw_text(canvas, {w.x + 4, w.y + 4}, "BACKPACK", options_.chrome_text);

  // Item grid: 2 columns of 28px cells.
  const i32 cell = 38;
  const i32 x0 = w.x + 6;
  const i32 y0 = w.y + 16;
  int slot_index = 0;
  const auto& slots = session.inventory().slots();
  for (const auto& slot : slots) {
    const ItemDef* def = session.bundle().items.find(slot.item);
    const i32 cx = x0 + (slot_index % 2) * (cell + 6);
    const i32 cy = y0 + (slot_index / 2) * (cell + 6);
    if (cy + cell > w.bottom()) break;
    const Rect cell_rect{cx, cy, cell, cell};
    canvas.fill_rect(cell_rect, def && def->is_reward
                                    ? Color{80, 70, 30}
                                    : Color{45, 48, 55});
    canvas.draw_rect(cell_rect, {120, 124, 134});
    if (def) {
      Sprite::icon(def->icon.empty() ? def->name : def->icon, cell - 10)
          .draw(canvas, {cx + 5, cy + 5});
    }
    if (slot.count > 1) {
      draw_text(canvas, {cx + 3, cy + cell - 9},
                "X" + std::to_string(slot.count), colors::kWhite);
    }
    ++slot_index;
  }
  // Empty-slot placeholders up to capacity.
  for (; slot_index < session.inventory().capacity(); ++slot_index) {
    const i32 cx = x0 + (slot_index % 2) * (cell + 6);
    const i32 cy = y0 + (slot_index / 2) * (cell + 6);
    if (cy + cell > w.bottom()) break;
    canvas.draw_rect({cx, cy, cell, cell}, {75, 78, 86});
  }
}

void Compositor::draw_message(Frame& canvas, GameSession& session) {
  const Rect m = session.ui().layout().message_area;
  canvas.fill_rect(m, {30, 32, 38});
  canvas.draw_rect(m, {90, 94, 104});
  if (session.ui().message()) {
    draw_text(canvas, {m.x + 6, m.y + 6}, session.ui().message()->text,
              options_.chrome_text);
  }
  if (session.game_over()) {
    draw_text(canvas, {m.x + 6, m.y + 20},
              session.succeeded() ? "MISSION COMPLETE" : "MISSION FAILED",
              session.succeeded() ? Color{120, 230, 120} : Color{230, 120, 120});
  }
}

void Compositor::draw_quiz(Frame& canvas, GameSession& session) {
  if (!session.ui().quiz()) return;
  const QuizView& q = *session.ui().quiz();
  const Rect va = session.ui().layout().video_area;
  const i32 lines = 2 + static_cast<i32>(q.options.size());
  const Rect box{va.x + 8, va.y + 16, va.width - 16, 10 + lines * 10};
  canvas.fill_rect(box, {24, 28, 20});
  canvas.draw_rect(box, {180, 200, 140});
  i32 y = box.y + 4;
  draw_text(canvas, {box.x + 4, y},
            "QUIZ " + std::to_string(q.question_number) + "/" +
                std::to_string(q.total_questions) + ": " + q.quiz_name,
            {200, 230, 150});
  y += 10;
  draw_text(canvas, {box.x + 4, y}, q.prompt, colors::kWhite);
  y += 10;
  for (size_t i = 0; i < q.options.size(); ++i) {
    draw_text(canvas, {box.x + 10, y},
              std::to_string(i + 1) + ". " + q.options[i], {250, 220, 120});
    y += 10;
  }
}

void Compositor::draw_dialogue(Frame& canvas, GameSession& session) {
  if (!session.ui().dialogue()) return;
  const DialogueView& d = *session.ui().dialogue();
  const Rect va = session.ui().layout().video_area;
  const i32 lines = 2 + static_cast<i32>(d.choices.size());
  const Rect box{va.x + 8, va.bottom() - 14 - lines * 10, va.width - 16,
                 6 + lines * 10};
  canvas.fill_rect(box, {20, 20, 26});
  canvas.draw_rect(box, {160, 160, 180});
  i32 y = box.y + 4;
  draw_text(canvas, {box.x + 4, y}, d.speaker + ":", {150, 200, 250});
  y += 10;
  draw_text(canvas, {box.x + 4, y}, d.line, colors::kWhite);
  y += 10;
  for (size_t i = 0; i < d.choices.size(); ++i) {
    draw_text(canvas, {box.x + 10, y},
              std::to_string(i + 1) + ". " + d.choices[i], {250, 220, 120});
    y += 10;
  }
}

}  // namespace vgbl
