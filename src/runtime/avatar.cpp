#include "runtime/avatar.hpp"

#include <cmath>

namespace vgbl {

void Avatar::walk_to(Point p, MicroTime now) {
  target_ = p;
  last_update_ = now;
}

bool Avatar::update(MicroTime now) {
  if (!target_) {
    last_update_ = now;
    return false;
  }
  const f64 dt = to_seconds(now - last_update_);
  last_update_ = now;
  if (dt <= 0) return false;

  const f64 dx = static_cast<f64>(target_->x - position_.x);
  const f64 dy = static_cast<f64>(target_->y - position_.y);
  const f64 dist = std::sqrt(dx * dx + dy * dy);
  const f64 step = options_.speed_px_per_s * dt;
  if (dist <= step || dist < 0.5) {
    position_ = *target_;
    target_.reset();
    return true;  // arrived
  }
  position_.x += static_cast<i32>(std::lround(dx / dist * step));
  position_.y += static_cast<i32>(std::lround(dy / dist * step));
  return false;
}

bool Avatar::can_reach(const Rect& rect) const {
  // Distance from the avatar's feet to the nearest point of the rect.
  const i32 cx = std::clamp(position_.x, rect.x, rect.right() - 1);
  const i32 cy = std::clamp(position_.y, rect.y, rect.bottom() - 1);
  const i64 dx = position_.x - cx;
  const i64 dy = position_.y - cy;
  const i64 reach = options_.reach_px;
  return dx * dx + dy * dy <= reach * reach;
}

Point Avatar::stand_point_for(const Rect& rect) const {
  // Stand just below the object's centre when possible (adventure-game
  // convention: the character walks "in front of" the prop), otherwise at
  // the nearest edge at half reach.
  const Point c = rect.center();
  const i32 offset = options_.reach_px / 2;
  return {c.x, rect.bottom() - 1 + offset};
}

}  // namespace vgbl
