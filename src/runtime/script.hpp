// Scripted players and autonomous bots — the headless stand-ins for human
// mouse/keyboard input (DESIGN.md §2). Scripts drive deterministic
// walkthroughs (tests, figure rendering); bots generate emergent play for
// the classroom simulation and robustness tests.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "runtime/session.hpp"
#include "util/rng.hpp"

namespace vgbl {

/// One scripted player step. Objects and items are addressed by name so
/// scripts survive id re-allocation across authoring edits.
struct ScriptStep {
  enum class Op : u8 {
    kClickObject,
    kExamineObject,
    kDragObjectToInventory,
    kUseItemOn,        // item_name on object_name
    kCombineItems,     // item_name + second_item_name
    kChooseDialogue,   // choice (0-based)
    kAdvanceDialogue,
    kAnswerQuiz,       // quiz option (0-based)
    kWait,             // advance the sim clock by wait_time, ticking
    kClickPoint,       // raw canvas click (for miss/edge tests)
  };

  Op op = Op::kWait;
  std::string object_name;
  std::string item_name;
  std::string second_item_name;
  size_t choice = 0;
  MicroTime wait_time = 0;
  Point point;

  static ScriptStep click(std::string object) {
    ScriptStep s;
    s.op = Op::kClickObject;
    s.object_name = std::move(object);
    return s;
  }
  static ScriptStep examine(std::string object) {
    ScriptStep s;
    s.op = Op::kExamineObject;
    s.object_name = std::move(object);
    return s;
  }
  static ScriptStep drag_to_inventory(std::string object) {
    ScriptStep s;
    s.op = Op::kDragObjectToInventory;
    s.object_name = std::move(object);
    return s;
  }
  static ScriptStep use_item(std::string item, std::string object) {
    ScriptStep s;
    s.op = Op::kUseItemOn;
    s.item_name = std::move(item);
    s.object_name = std::move(object);
    return s;
  }
  static ScriptStep combine(std::string a, std::string b) {
    ScriptStep s;
    s.op = Op::kCombineItems;
    s.item_name = std::move(a);
    s.second_item_name = std::move(b);
    return s;
  }
  static ScriptStep choose(size_t index) {
    ScriptStep s;
    s.op = Op::kChooseDialogue;
    s.choice = index;
    return s;
  }
  static ScriptStep advance() {
    ScriptStep s;
    s.op = Op::kAdvanceDialogue;
    return s;
  }
  static ScriptStep answer_quiz(size_t option) {
    ScriptStep s;
    s.op = Op::kAnswerQuiz;
    s.choice = option;
    return s;
  }
  static ScriptStep wait(MicroTime t) {
    ScriptStep s;
    s.op = Op::kWait;
    s.wait_time = t;
    return s;
  }
  static ScriptStep click_at(Point p) {
    ScriptStep s;
    s.op = Op::kClickPoint;
    s.point = p;
    return s;
  }
};

using InputScript = std::vector<ScriptStep>;

/// Executes a script against a session driven by a SimClock. Each step
/// advances the clock a little (human-scale pacing) and ticks the session.
/// Fails fast on the first step that cannot be performed (missing object,
/// invalid dialogue choice, ...).
class ScriptRunner {
 public:
  struct Options {
    MicroTime step_pause = milliseconds(400);  // thinking time between steps
    bool stop_on_game_over = true;
  };

  ScriptRunner(GameSession* session, SimClock* clock)
      : ScriptRunner(session, clock, Options{}) {}
  ScriptRunner(GameSession* session, SimClock* clock, Options options)
      : session_(session), clock_(clock), options_(options) {}

  Status run(const InputScript& script);
  Status run_step(const ScriptStep& step);

 private:
  /// Canvas-space centre of a named visible object in the current scenario.
  [[nodiscard]] Result<Point> locate(const std::string& object_name) const;
  [[nodiscard]] Result<ItemId> item_by_name(const std::string& name) const;

  GameSession* session_;
  SimClock* clock_;
  Options options_;
};

/// Behavioural policies for autonomous players.
enum class BotPolicy {
  kExplorer,  // systematic: examine everything, pick up items, talk, retry
  kRandom,    // uniformly random legal actions
  kSpeedrun,  // like explorer but skips examining (fastest completion)
};

/// Drives a session with an autonomous player until the game ends or the
/// step budget is exhausted. Returns the number of steps taken.
struct BotResult {
  int steps = 0;
  bool completed = false;
  bool succeeded = false;
};

BotResult run_bot(GameSession& session, SimClock& clock, BotPolicy policy,
                  int max_steps, u64 seed = 1);

/// Incremental form of `run_bot`: the same loop, surfaced one iteration at
/// a time so a discrete-event scheduler (src/sim) can interleave thousands
/// of students on a single timeline. `run_bot` itself is implemented on
/// this driver, which keeps the blocking path and the event-stream path
/// step-for-step identical by construction — the differential-testing
/// contract behind the DES classroom engine (DESIGN.md §5i).
class BotDriver {
 public:
  BotDriver(GameSession& session, SimClock& clock, BotPolicy policy,
            int max_steps, u64 seed);
  ~BotDriver();
  BotDriver(const BotDriver&) = delete;
  BotDriver& operator=(const BotDriver&) = delete;

  /// True once the step budget is exhausted or the game ended.
  [[nodiscard]] bool done() const;

  /// Executes exactly one loop iteration: one bot action, the 300 ms
  /// advance + tick, and the idle-tick recovery when the bot was out of
  /// ideas. The session clock ends at the sim time of the next iteration.
  /// Returns false (doing nothing) when already done().
  bool run_iteration();

  /// Steps taken and completion flags so far; final once done().
  [[nodiscard]] BotResult result() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vgbl
