// Compositor: rasterises one runtime screen — video frame + mounted
// interactive objects + UI chrome (status bar, inventory window, message
// bar, dialogue overlay) — into an RGB frame. This is the pixel-exact
// headless equivalent of the paper's Figure 2 window.
#pragma once

#include "runtime/session.hpp"
#include "video/frame.hpp"

namespace vgbl {

struct CompositorOptions {
  bool draw_object_outlines = false;  // authoring-style cyan outlines
  Color chrome_background{40, 42, 48};
  Color chrome_text{220, 220, 220};
};

class Compositor {
 public:
  Compositor() : Compositor(CompositorOptions{}) {}
  explicit Compositor(CompositorOptions options) : options_(options) {}

  /// Renders the session's current screen. Never fails: if the video frame
  /// is unavailable (decode in flight) the video area is filled black.
  Frame render(GameSession& session);

  /// Draws a 5×7 bitmap-font string (ASCII subset) onto a frame — used for
  /// labels in the chrome. Returns the x position after the last glyph.
  static i32 draw_text(Frame& frame, Point at, const std::string& text,
                       Color color, int scale = 1);

 private:
  void draw_chrome(Frame& canvas, GameSession& session);
  void draw_inventory(Frame& canvas, GameSession& session);
  void draw_message(Frame& canvas, GameSession& session);
  void draw_dialogue(Frame& canvas, GameSession& session);
  void draw_quiz(Frame& canvas, GameSession& session);

  CompositorOptions options_;
};

}  // namespace vgbl
