// Player input model. Mouse and keyboard "are responsible for delivering
// users' interactions to the interactive VGBL runtime environment" (§3.1).
// The session consumes semantic gestures (click / examine / drag / use);
// GestureRecognizer turns raw mouse events into those gestures for callers
// that simulate a real pointer device.
#pragma once

#include <optional>

#include "util/geometry.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

enum class MouseButton : u8 { kLeft = 0, kRight };

struct MouseEvent {
  enum class Type : u8 { kMove, kDown, kUp } type = Type::kMove;
  Point position;
  MouseButton button = MouseButton::kLeft;
  MicroTime when = 0;
};

/// Semantic gesture produced by the recognizer.
struct Gesture {
  enum class Type : u8 {
    kClick,     // left press+release within slop
    kExamine,   // right click ("examine" verb, §3.1)
    kDrag,      // press, move beyond slop, release
  } type = Type::kClick;
  Point position;   // click/examine point, or drag start
  Point drag_end;   // drag release point
  MicroTime when = 0;
};

/// Turns raw mouse streams into click/examine/drag gestures. Movement
/// beyond `drag_slop` pixels between press and release makes a drag.
class GestureRecognizer {
 public:
  explicit GestureRecognizer(i32 drag_slop = 4) : drag_slop_(drag_slop) {}

  /// Feeds one event; returns a completed gesture, if any.
  std::optional<Gesture> feed(const MouseEvent& event);

  [[nodiscard]] bool dragging() const {
    return pressed_ && moved_beyond_slop_;
  }

 private:
  i32 drag_slop_;
  bool pressed_ = false;
  bool moved_beyond_slop_ = false;
  MouseButton pressed_button_ = MouseButton::kLeft;
  Point press_position_;
};

}  // namespace vgbl
