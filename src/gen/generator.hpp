// Procedural course generator (DESIGN.md §5h): emits structurally diverse,
// guaranteed-completable projects from a (seed, params) pair. The generator
// is the correctness amplifier behind the property-fuzz corpus — every
// course carries its own completability witness (a solver InputScript built
// alongside the structure), so downstream harnesses can assert round-trip,
// completability, split-resume and parallel-fingerprint invariants over
// hundreds of shapes instead of the three hand-authored demos.
//
// Determinism contract: everything is derived from vgbl::Rng streams forked
// off the course seed. No wall clock, no ambient randomness — the
// `gen-generator-determinism` lint rule holds src/gen to the same bar as
// the replay layers, and `generate_corpus` is a pure function of
// (seed, count) regardless of how many worker threads build it.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "author/project.hpp"
#include "rewards/rules.hpp"
#include "runtime/script.hpp"
#include "util/json.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace vgbl::gen {

/// Structural knobs for one generated course. All counts are hard shape
/// parameters (not hints): `validate()` rejects combinations that cannot
/// produce a completable course (e.g. more puzzle gates than path edges).
struct GenParams {
  /// Total scenarios (solver path + side branches). >= 2.
  int scenario_count = 6;
  /// Side-branch scenarios hanging off the solver path (each gets a
  /// visit/return transition pair so the graph has no dead ends).
  int branch_count = 2;
  /// Item-gated transitions along the solver path ("collect the key in
  /// scene A before the door in scene C opens"). Gates may resolve to a
  /// direct item, a combined item (two parts + combine rule), a
  /// skill-gated dialogue flag, or a passed-quiz flag.
  int puzzle_chain = 2;
  /// NPC dialogue trees with a skill-gated reply (the "good" choice fires
  /// an action tag that sets a flag and awards score).
  int dialogue_count = 1;
  /// Quiz boards; the solver answers every question correctly.
  int quiz_count = 1;
  /// Reward rules drawn across all 10 trigger kinds (cycled, then random).
  int reward_rule_count = 10;
  /// Inert clickable/examinable objects per scenario (hit-test noise and
  /// PropertyBag round-trip fodder).
  int decoy_objects = 2;
  /// Synthetic video sizing — stresses the codec and bundle container.
  int frames_per_scene = 8;
  int frame_width = 160;
  int frame_height = 120;

  /// Shape sanity: every valid parameter set generates successfully.
  [[nodiscard]] Status validate() const;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] static Result<GenParams> from_json(const Json& json);

  bool operator==(const GenParams&) const = default;
};

/// One generated course plus its completability witness and reward rules.
/// `solver` drives the session from start to a successful game-over; the
/// reward rule set references generated entities by name so unlock-stream
/// properties run against realistic rules, not the demo standard() set.
struct GeneratedCourse {
  GenParams params;
  u64 seed = 0;
  std::string title;
  Project project;
  InputScript solver;
  rewards::RewardRuleSet reward_rules;
};

/// Builds one course. Pure in (params, seed); fails only on invalid params
/// or an internal construction bug (the generated project is lint-checked
/// before returning, so callers can always bundle it).
[[nodiscard]] Result<GeneratedCourse> generate_course(const GenParams& params,
                                                      u64 seed);

/// Draws a heterogeneous-but-valid parameter set from `rng` — the corpus
/// distribution used by `generate_corpus`, fuzz harnesses and benches.
[[nodiscard]] GenParams random_params(Rng& rng);

/// Seed + params for corpus entry `index` of corpus `seed` — exposed so
/// harnesses can regenerate any single corpus member without building the
/// rest. generate_corpus(seed, n)[i] == generate_course over these values.
[[nodiscard]] u64 corpus_course_seed(u64 corpus_seed, int index);
[[nodiscard]] GenParams corpus_course_params(u64 corpus_seed, int index);

/// Generates `count` heterogeneous courses. Each course is a pure function
/// of (seed, index): the result is bit-identical across reruns and across
/// `worker_threads` values (0 = sequential, N = thread pool fan-out into
/// pre-allocated slots).
[[nodiscard]] Result<std::vector<GeneratedCourse>> generate_corpus(
    u64 seed, int count, int worker_threads = 0);

/// Shrinking: given a failing (params, seed) and a predicate that re-runs
/// the failing property, bisects every structural knob toward its minimum
/// while the failure reproduces. Returns the smallest still-failing params.
/// `still_fails` must be deterministic (it gets candidate params + the
/// original seed).
[[nodiscard]] GenParams shrink_params(
    const GenParams& failing, u64 seed,
    const std::function<bool(const GenParams&, u64)>& still_fails);

/// Writes a one-command-reproducible failure dump (params + seed + failing
/// property + serialized project text) to `dir/<property>_<seed>.json`.
/// Returns the path written. Repro: `vgbl gen --repro <path>`.
[[nodiscard]] Result<std::string> write_failure_dump(
    const std::string& dir, const GeneratedCourse& course,
    const std::string& property);

/// Parsed failure dump, for `vgbl gen --repro` and harness round-trips.
struct FailureDump {
  GenParams params;
  u64 seed = 0;
  std::string property;
  std::string project_text;
};
[[nodiscard]] Result<FailureDump> read_failure_dump(const std::string& path);

}  // namespace vgbl::gen
