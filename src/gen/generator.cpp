#include "gen/generator.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "author/editor.hpp"
#include "author/serialize.hpp"
#include "concurrency/thread_pool.hpp"
#include "util/fileio.hpp"
#include "video/synthetic.hpp"

namespace vgbl::gen {
namespace {

constexpr std::array<const char*, 8> kPlaces = {
    "classroom", "market", "street", "lab",
    "cave",      "beach",  "library", "office"};

constexpr std::array<const char*, 6> kIconNames = {"orb",  "book", "coin",
                                                   "part", "gem",  "plant"};

/// Non-overlapping placement slots: a demand-sized grid over the video
/// frame, handed out in a seed-shuffled order so layouts differ per
/// scenario but clicks through ScriptRunner::locate never hit the wrong
/// object. The grid grows (up to 8x8) to fit however many objects the
/// planner put into one scenario, so `take()` cannot run dry for any
/// parameter set that passes GenParams::validate().
class CellAllocator {
 public:
  CellAllocator(int frame_w, int frame_h, int min_cells, Rng& rng) {
    int cols = 4;
    int rows = 4;
    while (cols * rows < min_cells && (cols < 8 || rows < 8)) {
      if (cols <= rows && cols < 8) {
        ++cols;
      } else {
        ++rows;
      }
    }
    cell_w_ = frame_w / cols;
    cell_h_ = frame_h / rows;
    order_.resize(static_cast<size_t>(cols * rows));
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = static_cast<int>(i);
    for (size_t i = order_.size(); i > 1; --i) {  // Fisher–Yates on the Rng
      std::swap(order_[i - 1], order_[rng.below(i)]);
    }
    cols_ = cols;
  }

  [[nodiscard]] Result<Rect> take() {
    if (next_ >= order_.size()) {
      return internal_error("generator: scenario object grid exhausted");
    }
    const int cell = order_[next_++];
    const int col = cell % cols_;
    const int row = cell / cols_;
    return Rect{col * cell_w_ + 1, row * cell_h_ + 1, cell_w_ - 2,
                cell_h_ - 2};
  }

 private:
  int cols_ = 4;
  int cell_w_ = 0;
  int cell_h_ = 0;
  std::vector<int> order_;
  size_t next_ = 0;
};

enum class GateKind { kItem, kCombinedItem, kDialogueFlag, kQuizFlag };

struct GateSpec {
  int edge = 0;          // gates the transition path[edge] -> path[edge + 1]
  GateKind kind = GateKind::kItem;
  int source_node = 0;   // path node where the prerequisite lives
  int branch = -1;       // >= 0: prerequisite placed in this branch instead
  bool door = false;     // item gate crossed by use-item-on-door
};

/// One planned pickup object: scene placement decided before any object is
/// created so grids can be demand-sized.
struct PickupPlan {
  int scene = 0;                  // scenario list index (path or branch)
  std::string object_name;
  std::string item_name;
  ItemId item;
};

struct NpcPlan {
  std::string object_name;
  size_t good_choice = 0;
  int advances = 0;
};

struct QuizAtNode {
  std::string board_name;
  std::vector<size_t> answers;
};

struct BranchPlan {
  int attach = 0;                 // path node hosting the visit button
  std::string name;
  ScenarioId id;
  std::vector<std::string> pickup_objects;
  std::string visit_button;
  std::string return_button;
  std::string examine_decoy;
};

/// Per-path-node solver agenda, emitted in order after construction.
struct NodePlan {
  ScenarioId id;
  std::string name;
  std::vector<std::string> pickup_objects;
  std::vector<std::pair<std::string, std::string>> combines_after;
  std::vector<int> branches;      // branch indices attached here
  std::vector<NpcPlan> npcs;
  std::vector<QuizAtNode> quizzes;
  std::string examine_decoy;
  std::string go_button;          // empty: terminal or door edge
  std::string door_object;
  std::string door_item;
};

std::string hex_seed(u64 seed) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += digits[(seed >> shift) & 0xF];
  }
  return out;
}

/// Decorates `obj` with a mixed-type property bag — the round-trip fodder
/// that caught the whole-valued-double JSON typing bug (author_test
/// PropertyBagRoundTripPreservesTypes).
void decorate_properties(InteractiveObject& obj, Rng& rng) {
  if (rng.chance(0.5)) obj.properties.set_int("weight", rng.range(1, 40));
  if (rng.chance(0.5)) {
    // Whole-valued doubles on purpose: the bag must stay double-typed
    // across save/load even when the value prints without a fraction.
    const f64 shine = rng.chance(0.5) ? static_cast<f64>(rng.range(1, 5))
                                      : rng.uniform() * 4.0;
    obj.properties.set_double("shine", shine);
  }
  if (rng.chance(0.4)) obj.properties.set_bool("fragile", rng.chance(0.5));
  if (rng.chance(0.4)) {
    obj.properties.set_string("note", "prop-" + std::to_string(rng.below(100)));
  }
}

}  // namespace

Status GenParams::validate() const {
  const auto bad = [](const std::string& what) {
    return invalid_argument("gen params: " + what);
  };
  if (scenario_count < 2 || scenario_count > 40) {
    return bad("scenario_count must be in [2, 40]");
  }
  if (branch_count < 0 || branch_count > 8 ||
      branch_count > scenario_count - 2) {
    return bad("branch_count must be in [0, 8] and leave a 2-scenario path");
  }
  const int path_len = scenario_count - branch_count;
  if (puzzle_chain < 0 || puzzle_chain > 4 ||
      puzzle_chain > std::max(0, path_len - 2)) {
    return bad("puzzle_chain must be in [0, 4] and fit the path edges");
  }
  if (dialogue_count < 0 || dialogue_count > 4) {
    return bad("dialogue_count must be in [0, 4]");
  }
  if (quiz_count < 0 || quiz_count > 3) {
    return bad("quiz_count must be in [0, 3]");
  }
  if (reward_rule_count < 1 || reward_rule_count > 24) {
    return bad("reward_rule_count must be in [1, 24]");
  }
  if (decoy_objects < 0 || decoy_objects > 4) {
    return bad("decoy_objects must be in [0, 4]");
  }
  if (frames_per_scene < 2 || frames_per_scene > 48) {
    return bad("frames_per_scene must be in [2, 48]");
  }
  if (frame_width < 96 || frame_width > 640 || frame_height < 72 ||
      frame_height > 480) {
    return bad("frame size must be in [96x72, 640x480]");
  }
  return {};
}

Json GenParams::to_json() const {
  Json j = Json::object();
  JsonObject& obj = j.mutable_object();
  obj.set("scenario_count", Json(static_cast<i64>(scenario_count)));
  obj.set("branch_count", Json(static_cast<i64>(branch_count)));
  obj.set("puzzle_chain", Json(static_cast<i64>(puzzle_chain)));
  obj.set("dialogue_count", Json(static_cast<i64>(dialogue_count)));
  obj.set("quiz_count", Json(static_cast<i64>(quiz_count)));
  obj.set("reward_rule_count", Json(static_cast<i64>(reward_rule_count)));
  obj.set("decoy_objects", Json(static_cast<i64>(decoy_objects)));
  obj.set("frames_per_scene", Json(static_cast<i64>(frames_per_scene)));
  obj.set("frame_width", Json(static_cast<i64>(frame_width)));
  obj.set("frame_height", Json(static_cast<i64>(frame_height)));
  return j;
}

Result<GenParams> GenParams::from_json(const Json& json) {
  if (!json.is_object()) return corrupt_data("gen params: expected object");
  GenParams p;
  const auto get = [&](const char* key, int fallback) {
    return static_cast<int>(json[key].as_int(fallback));
  };
  p.scenario_count = get("scenario_count", p.scenario_count);
  p.branch_count = get("branch_count", p.branch_count);
  p.puzzle_chain = get("puzzle_chain", p.puzzle_chain);
  p.dialogue_count = get("dialogue_count", p.dialogue_count);
  p.quiz_count = get("quiz_count", p.quiz_count);
  p.reward_rule_count = get("reward_rule_count", p.reward_rule_count);
  p.decoy_objects = get("decoy_objects", p.decoy_objects);
  p.frames_per_scene = get("frames_per_scene", p.frames_per_scene);
  p.frame_width = get("frame_width", p.frame_width);
  p.frame_height = get("frame_height", p.frame_height);
  if (auto st = p.validate(); !st.ok()) return st.error();
  return p;
}

GenParams random_params(Rng& rng) {
  GenParams p;
  p.scenario_count = static_cast<int>(rng.range(3, 12));
  p.branch_count = static_cast<int>(
      rng.below(static_cast<u64>(std::min(3, p.scenario_count - 2)) + 1));
  const int path_len = p.scenario_count - p.branch_count;
  p.puzzle_chain = static_cast<int>(
      rng.below(static_cast<u64>(std::clamp(path_len - 2, 0, 4)) + 1));
  p.dialogue_count = static_cast<int>(rng.below(3));
  p.quiz_count = static_cast<int>(rng.below(3));
  p.reward_rule_count = static_cast<int>(rng.range(6, 14));
  p.decoy_objects = static_cast<int>(rng.below(5));
  p.frames_per_scene = static_cast<int>(rng.range(4, 16));
  constexpr std::array<std::pair<int, int>, 4> kSizes = {
      {{96, 72}, {120, 90}, {160, 120}, {192, 144}}};
  const auto& size = kSizes[rng.below(kSizes.size())];
  p.frame_width = size.first;
  p.frame_height = size.second;
  return p;
}

Result<GeneratedCourse> generate_course(const GenParams& params, u64 seed) {
  if (auto st = params.validate(); !st.ok()) return st.error();
  Rng rng(seed);

  GeneratedCourse course;
  course.params = params;
  course.seed = seed;
  course.title = "gen-" + hex_seed(seed);

  Project& project = course.project;
  project.meta.title = course.title;
  project.meta.author = "vgbl-gen";
  project.meta.description = "procedurally generated course";
  Editor edit(&project);

  const int path_len = params.scenario_count - params.branch_count;
  const int terminal = path_len - 1;

  // --- scenes and scenarios (direct segment construction) -----------------
  std::vector<std::string> names;
  std::vector<std::string> bases;
  for (int i = 0; i < params.scenario_count; ++i) {
    bases.emplace_back(kPlaces[rng.below(kPlaces.size())]);
    names.push_back(bases.back() + "-" + std::to_string(i));
  }

  ClipSpec clip;
  clip.width = params.frame_width;
  clip.height = params.frame_height;
  clip.fps = 12;
  clip.seed = rng.next();
  for (int i = 0; i < params.scenario_count; ++i) {
    const int frames =
        params.frames_per_scene + static_cast<int>(rng.below(4));
    clip.scenes.push_back({names[static_cast<size_t>(i)],
                           scene_style(bases[static_cast<size_t>(i)]),
                           frames});
  }
  project.clip_spec = clip;

  std::vector<ScenarioId> sids;
  int frame = 0;
  for (int i = 0; i < params.scenario_count; ++i) {
    VideoSegment seg;
    seg.first_frame = frame;
    seg.frame_count = clip.scenes[static_cast<size_t>(i)].duration_frames;
    seg.suggested_name = names[static_cast<size_t>(i)];
    frame += seg.frame_count;
    project.segments.push_back(seg);
    project.segment_ids.push_back(project.segment_id_alloc.next());
    auto sid = edit.add_scenario(names[static_cast<size_t>(i)],
                                 project.segment_ids.back());
    if (!sid.ok()) return sid.error();
    sids.push_back(sid.value());
  }
  // Path = scenarios [0, path_len); branches = the rest.
  if (auto st = edit.set_start_scenario(sids.front()); !st.ok()) {
    return st.error();
  }
  if (auto st = edit.set_terminal(sids[static_cast<size_t>(terminal)], true);
      !st.ok()) {
    return st.error();
  }

  // --- structural planning (no objects created yet) ------------------------
  std::vector<NodePlan> nodes(static_cast<size_t>(path_len));
  for (int f = 0; f < path_len; ++f) {
    nodes[static_cast<size_t>(f)].id = sids[static_cast<size_t>(f)];
    nodes[static_cast<size_t>(f)].name = names[static_cast<size_t>(f)];
  }
  std::vector<BranchPlan> branches(static_cast<size_t>(params.branch_count));
  for (int b = 0; b < params.branch_count; ++b) {
    auto& plan = branches[static_cast<size_t>(b)];
    plan.attach = static_cast<int>(rng.below(static_cast<u64>(path_len - 1)));
    plan.name = names[static_cast<size_t>(path_len + b)];
    plan.id = sids[static_cast<size_t>(path_len + b)];
    nodes[static_cast<size_t>(plan.attach)].branches.push_back(b);
  }

  // Gate edges: distinct f in [1, path_len - 2]; the transition f -> f+1
  // only becomes crossable once the prerequisite is satisfied. The puzzle
  // dependency graph is acyclic by construction: every prerequisite lives
  // at a path node (or a branch attached to one) with index <= f, so the
  // solver path s0 -> s1 -> ... always exists.
  std::vector<int> gate_edges;
  {
    std::vector<int> candidates;
    for (int f = 1; f <= path_len - 2; ++f) candidates.push_back(f);
    for (size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[rng.below(i)]);
    }
    for (int g = 0; g < params.puzzle_chain; ++g) {
      gate_edges.push_back(candidates[static_cast<size_t>(g)]);
    }
    std::sort(gate_edges.begin(), gate_edges.end());
  }

  int dialogues_left = params.dialogue_count;
  int quizzes_left = params.quiz_count;
  bool combine_used = false;
  std::vector<GateSpec> gates;
  for (int edge : gate_edges) {
    GateSpec gate;
    gate.edge = edge;
    std::vector<GateKind> kinds = {GateKind::kItem};
    if (!combine_used) kinds.push_back(GateKind::kCombinedItem);
    if (dialogues_left > 0) kinds.push_back(GateKind::kDialogueFlag);
    if (quizzes_left > 0) kinds.push_back(GateKind::kQuizFlag);
    gate.kind = kinds[rng.below(kinds.size())];
    gate.source_node = static_cast<int>(rng.below(static_cast<u64>(edge) + 1));
    if (gate.kind == GateKind::kCombinedItem) combine_used = true;
    if (gate.kind == GateKind::kDialogueFlag) --dialogues_left;
    if (gate.kind == GateKind::kQuizFlag) --quizzes_left;
    if (gate.kind == GateKind::kItem) {
      // Sometimes the key sits in a side branch reachable before the gate,
      // and sometimes the gate is crossed by using the key on a door.
      std::vector<int> eligible;
      for (int b = 0; b < params.branch_count; ++b) {
        if (branches[static_cast<size_t>(b)].attach <= edge) {
          eligible.push_back(b);
        }
      }
      if (!eligible.empty() && rng.chance(0.4)) {
        gate.branch = eligible[rng.below(eligible.size())];
        gate.source_node = branches[static_cast<size_t>(gate.branch)].attach;
      }
      gate.door = rng.chance(0.35);
    }
    gates.push_back(gate);
  }

  // --- items ---------------------------------------------------------------
  struct GateItem {
    ItemId id;
    std::string name;
  };
  std::vector<GateItem> gate_items(gates.size());
  std::vector<PickupPlan> pickups;
  const auto make_item = [&](const std::string& name,
                             bool reward) -> Result<ItemId> {
    ItemDef def;
    def.name = name;
    def.description = "generated item " + name;
    def.icon = std::string(kIconNames[rng.below(kIconNames.size())]);
    def.stackable = rng.chance(0.25);
    // Non-default max_stack on both stackable and non-stackable items on
    // purpose — field combinations hand-authored bundles never used
    // (author_test ItemMaxStackRoundTripsForEveryStackableCombination).
    def.max_stack = def.stackable ? static_cast<int>(rng.range(2, 5))
                    : rng.chance(0.3) ? static_cast<int>(rng.range(2, 4))
                                      : 1;
    def.is_reward = reward;
    if (reward) def.bonus_points = rng.range(5, 20);
    return edit.add_item(def);
  };

  for (size_t g = 0; g < gates.size(); ++g) {
    const GateSpec& gate = gates[g];
    if (gate.kind != GateKind::kItem && gate.kind != GateKind::kCombinedItem) {
      continue;
    }
    gate_items[g].name = "key-" + std::to_string(gate.edge);
    auto key = make_item(gate_items[g].name, false);
    if (!key.ok()) return key.error();
    gate_items[g].id = key.value();
    if (gate.kind == GateKind::kItem) {
      PickupPlan pickup;
      pickup.scene = gate.branch >= 0 ? path_len + gate.branch
                                      : gate.source_node;
      pickup.object_name = "pickup-" + gate_items[g].name;
      pickup.item_name = gate_items[g].name;
      pickup.item = gate_items[g].id;
      pickups.push_back(pickup);
      if (gate.branch >= 0) {
        branches[static_cast<size_t>(gate.branch)].pickup_objects.push_back(
            pickup.object_name);
      } else {
        nodes[static_cast<size_t>(gate.source_node)].pickup_objects.push_back(
            pickup.object_name);
      }
    } else {
      // Combined key: two parts on path nodes; the solver combines them as
      // soon as the second one is in the inventory.
      const std::string part_a = "part-a-" + std::to_string(gate.edge);
      const std::string part_b = "part-b-" + std::to_string(gate.edge);
      auto a = make_item(part_a, false);
      if (!a.ok()) return a.error();
      auto b = make_item(part_b, false);
      if (!b.ok()) return b.error();
      CombineRule combine;
      combine.a = a.value();
      combine.b = b.value();
      combine.result = gate_items[g].id;
      combine.description = "assemble " + gate_items[g].name;
      if (auto st = edit.add_combine_rule(combine); !st.ok()) return st.error();

      const int node_a =
          static_cast<int>(rng.below(static_cast<u64>(gate.source_node) + 1));
      PickupPlan plan_a{node_a, "pickup-" + part_a, part_a, a.value()};
      PickupPlan plan_b{gate.source_node, "pickup-" + part_b, part_b,
                        b.value()};
      pickups.push_back(plan_a);
      pickups.push_back(plan_b);
      nodes[static_cast<size_t>(node_a)].pickup_objects.push_back(
          plan_a.object_name);
      auto& source = nodes[static_cast<size_t>(gate.source_node)];
      source.pickup_objects.push_back(plan_b.object_name);
      source.combines_after.emplace_back(part_a, part_b);
    }
  }
  ItemId trophy;
  const std::string trophy_name = "trophy-" + hex_seed(seed).substr(12);
  {
    auto id = make_item(trophy_name, true);
    if (!id.ok()) return id.error();
    trophy = id.value();
  }

  // --- dialogues -----------------------------------------------------------
  struct DialoguePlan {
    DialogueId id;
    int node = 0;
    size_t good_choice = 0;
    int advances = 0;
    std::string tag;
    std::string flag;
    std::string good_text;
  };
  std::vector<DialoguePlan> dialogues;
  std::vector<int> dialogue_gate_edges;
  for (const GateSpec& gate : gates) {
    if (gate.kind == GateKind::kDialogueFlag) {
      dialogue_gate_edges.push_back(gate.edge);
    }
  }
  for (int d = 0; d < params.dialogue_count; ++d) {
    DialoguePlan plan;
    plan.tag = "dlg-good-" + std::to_string(d);
    plan.flag = "skill-" + std::to_string(d);
    plan.good_text = "I studied this (reply " + std::to_string(d) + ")";
    const bool gating = d < static_cast<int>(dialogue_gate_edges.size());
    const int limit = gating ? dialogue_gate_edges[static_cast<size_t>(d)]
                             : std::max(0, path_len - 2);
    plan.node = static_cast<int>(rng.below(static_cast<u64>(limit) + 1));
    plan.good_choice = rng.below(2);
    plan.advances = static_cast<int>(rng.range(1, 2));

    DialogueTree tree(DialogueId{}, "talk-" + std::to_string(d));
    DialogueNode root;
    root.id = 0;
    root.speaker = "npc-" + std::to_string(d);
    root.line = "What do you know about " +
                names[static_cast<size_t>(plan.node)] + "?";
    DialogueChoice good;
    good.text = plan.good_text;
    good.next_node = 1;
    good.action_tag = plan.tag;
    DialogueChoice brush_off;
    brush_off.text = "No idea.";
    brush_off.next_node = kEndDialogue;
    if (plan.good_choice == 0) {
      root.choices = {good, brush_off};
    } else {
      root.choices = {brush_off, good};
    }
    if (auto st = tree.add_node(root); !st.ok()) return st.error();
    for (int n = 1; n <= plan.advances; ++n) {
      DialogueNode line;
      line.id = n;
      line.speaker = root.speaker;
      line.line = "Lesson part " + std::to_string(n);
      line.next_node = n < plan.advances ? n + 1 : kEndDialogue;
      if (auto st = tree.add_node(line); !st.ok()) return st.error();
    }
    auto id = edit.add_dialogue(tree);
    if (!id.ok()) return id.error();
    plan.id = id.value();
    dialogues.push_back(plan);
    nodes[static_cast<size_t>(plan.node)].npcs.push_back(
        {"npc-" + std::to_string(d), plan.good_choice, plan.advances});
  }

  // --- quizzes -------------------------------------------------------------
  struct QuizPlan {
    QuizId id;
    int node = 0;
    std::string name;
    std::vector<size_t> answers;
  };
  std::vector<QuizPlan> quizzes;
  std::vector<int> quiz_gate_edges;
  for (const GateSpec& gate : gates) {
    if (gate.kind == GateKind::kQuizFlag) quiz_gate_edges.push_back(gate.edge);
  }
  for (int q = 0; q < params.quiz_count; ++q) {
    QuizPlan plan;
    plan.name = "quiz-" + std::to_string(q);
    const bool gating = q < static_cast<int>(quiz_gate_edges.size());
    const int limit = gating ? quiz_gate_edges[static_cast<size_t>(q)]
                             : std::max(0, path_len - 2);
    plan.node = static_cast<int>(rng.below(static_cast<u64>(limit) + 1));

    Quiz quiz(QuizId{}, plan.name);
    if (rng.chance(0.3)) quiz.set_pass_fraction(0.5);
    const int questions = static_cast<int>(rng.range(1, 3));
    for (int n = 0; n < questions; ++n) {
      QuizQuestion question;
      question.prompt =
          "Question " + std::to_string(n) + " of " + plan.name + "?";
      const int options = static_cast<int>(rng.range(2, 4));
      const size_t correct = rng.below(static_cast<u64>(options));
      for (int o = 0; o < options; ++o) {
        question.options.push_back(o == static_cast<int>(correct)
                                       ? "correct answer"
                                       : "wrong answer " + std::to_string(o));
      }
      question.correct_option = correct;
      question.explanation = "explanation " + std::to_string(n);
      if (rng.chance(0.3)) question.points = rng.range(5, 20);
      quiz.add_question(question);
      plan.answers.push_back(correct);
    }
    auto id = edit.add_quiz(quiz);
    if (!id.ok()) return id.error();
    plan.id = id.value();
    quizzes.push_back(plan);
    nodes[static_cast<size_t>(plan.node)].quizzes.push_back(
        {"board-" + plan.name, plan.answers});
  }

  // --- demand-sized placement grids ---------------------------------------
  std::vector<int> demand(static_cast<size_t>(params.scenario_count),
                          params.decoy_objects);
  for (int f = 0; f < path_len; ++f) {
    const NodePlan& node = nodes[static_cast<size_t>(f)];
    auto& d = demand[static_cast<size_t>(f)];
    if (f < path_len - 1) ++d;  // GO button or door
    d += static_cast<int>(node.branches.size());  // VISIT buttons
    d += static_cast<int>(node.pickup_objects.size());
    d += static_cast<int>(node.npcs.size());
    d += static_cast<int>(node.quizzes.size());
  }
  for (size_t b = 0; b < branches.size(); ++b) {
    auto& d = demand[static_cast<size_t>(path_len) + b];
    ++d;  // RETURN button
    d += static_cast<int>(branches[b].pickup_objects.size());
  }
  std::vector<CellAllocator> cells;
  cells.reserve(static_cast<size_t>(params.scenario_count));
  for (int i = 0; i < params.scenario_count; ++i) {
    cells.emplace_back(params.frame_width, params.frame_height,
                       demand[static_cast<size_t>(i)], rng);
  }
  const auto place = [&](int scene_index,
                         InteractiveObject proto) -> Result<ObjectId> {
    auto rect = cells[static_cast<size_t>(scene_index)].take();
    if (!rect.ok()) return rect.error();
    proto.scenario = sids[static_cast<size_t>(scene_index)];
    proto.placement.rect = rect.value();
    return edit.place_object(std::move(proto));
  };
  const auto make_button = [&](int scene_index,
                               const std::string& label) -> Result<ObjectId> {
    InteractiveObject button;
    button.name = label;
    button.kind = ObjectKind::kButton;
    button.sprite_spec = "button:40x16:51,102,153";
    return place(scene_index, button);
  };

  // --- objects -------------------------------------------------------------
  for (const PickupPlan& pickup : pickups) {
    InteractiveObject obj;
    obj.name = pickup.object_name;
    obj.kind = ObjectKind::kItem;
    obj.grants_item = pickup.item;
    obj.sprite_spec =
        "icon:" + std::string(kIconNames[rng.below(kIconNames.size())]) +
        ":20";
    obj.description = "A " + pickup.item_name + " you can pick up.";
    decorate_properties(obj, rng);
    if (auto id = place(pickup.scene, obj); !id.ok()) return id.error();
  }
  for (const DialoguePlan& plan : dialogues) {
    InteractiveObject npc;
    npc.name = "npc-" + std::to_string(&plan - dialogues.data());
    npc.kind = ObjectKind::kNpc;
    npc.dialogue = plan.id;
    npc.sprite_spec = "icon:person:32";
    npc.description = "Someone who knows the area.";
    if (auto id = place(plan.node, npc); !id.ok()) return id.error();
  }
  std::vector<ObjectId> quiz_boards(quizzes.size());
  for (size_t q = 0; q < quizzes.size(); ++q) {
    InteractiveObject board;
    board.name = "board-" + quizzes[q].name;
    board.kind = ObjectKind::kButton;
    board.sprite_spec = "button:44x16:136,85,34";
    board.description = "Take the " + quizzes[q].name + ".";
    auto id = place(quizzes[q].node, board);
    if (!id.ok()) return id.error();
    quiz_boards[q] = id.value();
  }

  // Navigation buttons / doors along the path, then branch visit/return.
  std::vector<ObjectId> go_buttons(static_cast<size_t>(path_len));
  std::vector<ObjectId> doors(static_cast<size_t>(path_len));
  for (int f = 0; f < path_len - 1; ++f) {
    const GateSpec* gate = nullptr;
    for (const GateSpec& g : gates) {
      if (g.edge == f) gate = &g;
    }
    auto& node = nodes[static_cast<size_t>(f)];
    if (gate != nullptr && gate->door) {
      InteractiveObject door;
      door.name = "door-" + std::to_string(f);
      door.kind = ObjectKind::kImage;
      door.sprite_spec = "solid:28x40:85,51,17";
      door.description = "A locked door.";
      auto id = place(f, door);
      if (!id.ok()) return id.error();
      doors[static_cast<size_t>(f)] = id.value();
      node.door_object = door.name;
      node.door_item =
          gate_items[static_cast<size_t>(gate - gates.data())].name;
    } else {
      const std::string label = "GO " + names[static_cast<size_t>(f + 1)];
      auto id = make_button(f, label);
      if (!id.ok()) return id.error();
      go_buttons[static_cast<size_t>(f)] = id.value();
      node.go_button = label;
    }
  }
  std::vector<ObjectId> visit_buttons(branches.size());
  std::vector<ObjectId> return_buttons(branches.size());
  for (size_t b = 0; b < branches.size(); ++b) {
    BranchPlan& plan = branches[b];
    plan.visit_button = "VISIT " + plan.name;
    auto visit = make_button(plan.attach, plan.visit_button);
    if (!visit.ok()) return visit.error();
    visit_buttons[b] = visit.value();
    plan.return_button = "RETURN " + names[static_cast<size_t>(plan.attach)];
    auto ret = make_button(path_len + static_cast<int>(b), plan.return_button);
    if (!ret.ok()) return ret.error();
    return_buttons[b] = ret.value();
  }

  // Decoys.
  for (int i = 0; i < params.scenario_count; ++i) {
    for (int d = 0; d < params.decoy_objects; ++d) {
      InteractiveObject decoy;
      decoy.name = "decoy-" + std::to_string(i) + "-" + std::to_string(d);
      decoy.kind = ObjectKind::kImage;
      decoy.sprite_spec =
          rng.chance(0.5)
              ? "icon:" +
                    std::string(kIconNames[rng.below(kIconNames.size())]) +
                    ":18"
              : "solid:18x14:68,119,85";
      if (rng.chance(0.6)) {
        decoy.description = "Scenery item " + decoy.name + ".";
      }
      decorate_properties(decoy, rng);
      if (auto id = place(i, decoy); !id.ok()) return id.error();
      if (d == 0 && rng.chance(0.5)) {
        if (i < path_len && i != terminal) {
          nodes[static_cast<size_t>(i)].examine_decoy = decoy.name;
        } else if (i >= path_len) {
          branches[static_cast<size_t>(i - path_len)].examine_decoy =
              decoy.name;
        }
      }
    }
  }

  // --- transitions and rules ----------------------------------------------
  const auto add_nav_rule = [&](const std::string& name, ObjectId button,
                                ScenarioId from, ScenarioId to,
                                Condition condition,
                                const std::string& hint) -> Status {
    ScenarioTransition transition{from, to, name, hint, 1.0};
    if (rng.chance(0.3)) {
      transition.weight = 0.5 + 0.25 * static_cast<double>(rng.below(4));
    }
    if (auto st = edit.add_transition(transition); !st.ok()) return st;
    EventRule rule;
    rule.name = name;
    rule.trigger.type = TriggerType::kClick;
    rule.trigger.object = button;
    rule.condition = std::move(condition);
    rule.actions.push_back(Action::switch_scenario(to));
    auto id = edit.add_rule(rule);
    if (!id.ok()) return id.error();
    return {};
  };

  for (int f = 0; f < path_len - 1; ++f) {
    const GateSpec* gate = nullptr;
    for (const GateSpec& g : gates) {
      if (g.edge == f) gate = &g;
    }
    const ScenarioId from = sids[static_cast<size_t>(f)];
    const ScenarioId to = sids[static_cast<size_t>(f + 1)];
    if (gate != nullptr && gate->door) {
      // Door gate: the transition fires on use-item, not on a button.
      const size_t gate_index = static_cast<size_t>(gate - gates.data());
      ScenarioTransition transition{
          from, to, "unlock " + names[static_cast<size_t>(f + 1)],
          "needs " + gate_items[gate_index].name, 1.0};
      if (auto st = edit.add_transition(transition); !st.ok()) {
        return st.error();
      }
      EventRule rule;
      rule.name = "door-" + std::to_string(f);
      rule.trigger.type = TriggerType::kUseItemOn;
      rule.trigger.object = doors[static_cast<size_t>(f)];
      rule.trigger.item = gate_items[gate_index].id;
      if (rng.chance(0.5)) {
        rule.actions.push_back(Action::remove_item(gate_items[gate_index].id));
      }
      rule.actions.push_back(Action::switch_scenario(to));
      if (auto id = edit.add_rule(rule); !id.ok()) return id.error();
      continue;
    }
    Condition condition = Condition::always();
    std::string hint;
    if (gate != nullptr) {
      const size_t gate_index = static_cast<size_t>(gate - gates.data());
      switch (gate->kind) {
        case GateKind::kItem:
        case GateKind::kCombinedItem:
          condition = Condition::has_item(gate_items[gate_index].id);
          hint = "needs " + gate_items[gate_index].name;
          break;
        case GateKind::kDialogueFlag:
          // Any dialogue whose NPC sits at or before the gate works: the
          // solver takes every skill-gated reply on the way through.
          for (const DialoguePlan& plan : dialogues) {
            if (plan.node <= gate->edge) {
              condition = Condition::flag_set(plan.flag);
              hint = "needs flag " + plan.flag;
            }
          }
          break;
        case GateKind::kQuizFlag:
          for (const QuizPlan& plan : quizzes) {
            if (plan.node <= gate->edge) {
              condition = Condition::flag_set("quiz_passed:" + plan.name);
              hint = "needs " + plan.name;
            }
          }
          break;
      }
      if (rng.chance(0.3)) {
        // Wrap in a trivially-true conjunction to vary serialized shapes.
        std::vector<Condition> parts;
        parts.push_back(std::move(condition));
        parts.push_back(Condition::visited(from));
        condition = Condition::all_of(std::move(parts));
      }
    }
    if (auto st = add_nav_rule("go-" + std::to_string(f),
                               go_buttons[static_cast<size_t>(f)], from, to,
                               std::move(condition), hint);
        !st.ok()) {
      return st.error();
    }
  }
  for (size_t b = 0; b < branches.size(); ++b) {
    const BranchPlan& plan = branches[b];
    const ScenarioId attach_id = sids[static_cast<size_t>(plan.attach)];
    if (auto st = add_nav_rule("visit-" + plan.name, visit_buttons[b],
                               attach_id, plan.id, Condition::always(), "");
        !st.ok()) {
      return st.error();
    }
    if (auto st = add_nav_rule("return-" + plan.name, return_buttons[b],
                               plan.id, attach_id, Condition::always(), "");
        !st.ok()) {
      return st.error();
    }
  }

  // Dialogue skill tags -> flags + score.
  for (size_t d = 0; d < dialogues.size(); ++d) {
    EventRule rule;
    rule.name = "skill-reply-" + std::to_string(d);
    rule.trigger.type = TriggerType::kDialogueTag;
    rule.trigger.tag = dialogues[d].tag;
    rule.once = true;
    rule.actions.push_back(Action::set_flag(dialogues[d].flag));
    rule.actions.push_back(Action::add_score(rng.range(5, 15), "skilled reply"));
    if (auto id = edit.add_rule(rule); !id.ok()) return id.error();
  }
  // Quiz boards start their quiz.
  for (size_t q = 0; q < quizzes.size(); ++q) {
    EventRule rule;
    rule.name = "start-" + quizzes[q].name;
    rule.trigger.type = TriggerType::kClick;
    rule.trigger.object = quiz_boards[q];
    rule.actions.push_back(Action::start_quiz(quizzes[q].id));
    if (auto id = edit.add_rule(rule); !id.ok()) return id.error();
  }
  // Flavor: a welcome message on entering the second path scenario.
  if (path_len > 2) {
    EventRule rule;
    rule.name = "flavor-enter";
    rule.trigger.type = TriggerType::kEnterScenario;
    rule.trigger.scenario = sids[1];
    rule.once = true;
    rule.actions.push_back(Action::show_message("You reached " + names[1]));
    if (auto id = edit.add_rule(rule); !id.ok()) return id.error();
  }
  // Completion: entering the terminal scenario awards the trophy and ends
  // the game successfully.
  {
    EventRule rule;
    rule.name = "finish";
    rule.trigger.type = TriggerType::kEnterScenario;
    rule.trigger.scenario = sids[static_cast<size_t>(terminal)];
    rule.once = true;
    rule.actions.push_back(Action::add_score(50, "course complete"));
    rule.actions.push_back(Action::grant_reward(trophy));
    rule.actions.push_back(Action::end_game(true));
    if (auto id = edit.add_rule(rule); !id.ok()) return id.error();
  }

  // --- reward rules across all 10 trigger kinds ----------------------------
  {
    using rewards::RewardRule;
    using rewards::TriggerKind;
    std::vector<RewardRule> reward_rules;
    for (int i = 0; i < params.reward_rule_count; ++i) {
      const auto kind = static_cast<TriggerKind>(
          i < static_cast<int>(rewards::kTriggerKindCount)
              ? i
              : static_cast<int>(rng.below(rewards::kTriggerKindCount)));
      RewardRule rule;
      rule.id = static_cast<u32>(i + 1);
      rule.trigger = kind;
      rule.badge = std::string("badge-") + rewards::trigger_kind_name(kind) +
                   "-" + std::to_string(i);
      rule.bonus_points = rng.range(0, 15);
      rule.description = "generated rule " + std::to_string(i);
      switch (kind) {
        case TriggerKind::kScenarioEntered:
          rule.target = names[rng.below(static_cast<u64>(path_len))];
          break;
        case TriggerKind::kScenariosExplored:
          rule.threshold = rng.range(2, params.scenario_count);
          break;
        case TriggerKind::kGameCompleted:
          break;
        case TriggerKind::kObjectInteracted:
          rule.threshold = rng.range(3, 8);
          break;
        case TriggerKind::kItemCollected: {
          const GateItem* first = nullptr;
          for (const GateItem& item : gate_items) {
            if (item.id.valid() && first == nullptr) first = &item;
          }
          if (first != nullptr && rng.chance(0.5)) rule.target = first->name;
          break;
        }
        case TriggerKind::kItemUsed:
          break;
        case TriggerKind::kDialogueDecision:
          if (!dialogues.empty()) rule.target = dialogues[0].good_text;
          break;
        case TriggerKind::kQuizPassed:
          if (!quizzes.empty()) rule.target = quizzes[0].name;
          break;
        case TriggerKind::kScoreReached:
          rule.threshold = rng.range(10, 60);
          break;
        case TriggerKind::kInteractionStreak:
          rule.threshold = rng.range(3, 6);
          rule.window = seconds(rng.range(2, 5));
          break;
      }
      reward_rules.push_back(std::move(rule));
    }
    auto set = rewards::RewardRuleSet::create(std::move(reward_rules));
    if (!set.ok()) return set.error();
    course.reward_rules = std::move(set.value());
  }

  // --- internal gate: the generated project must always be bundleable -----
  for (const LintIssue& issue : project.lint()) {
    if (issue.level == LintLevel::kError) {
      return internal_error("generated project fails lint: " + issue.message);
    }
  }

  // --- solver script (the completability witness) --------------------------
  InputScript& solver = course.solver;
  for (int f = 0; f < terminal; ++f) {
    const NodePlan& node = nodes[static_cast<size_t>(f)];
    for (const std::string& pickup : node.pickup_objects) {
      solver.push_back(ScriptStep::click(pickup));
    }
    for (const auto& [a, b] : node.combines_after) {
      solver.push_back(ScriptStep::combine(a, b));
    }
    for (int b : node.branches) {
      const BranchPlan& branch = branches[static_cast<size_t>(b)];
      solver.push_back(ScriptStep::click(branch.visit_button));
      for (const std::string& pickup : branch.pickup_objects) {
        solver.push_back(ScriptStep::click(pickup));
      }
      if (!branch.examine_decoy.empty()) {
        solver.push_back(ScriptStep::examine(branch.examine_decoy));
      }
      solver.push_back(ScriptStep::click(branch.return_button));
    }
    for (const NpcPlan& npc : node.npcs) {
      solver.push_back(ScriptStep::click(npc.object_name));
      solver.push_back(ScriptStep::choose(npc.good_choice));
      for (int a = 0; a < npc.advances; ++a) {
        solver.push_back(ScriptStep::advance());
      }
    }
    for (const QuizAtNode& quiz : node.quizzes) {
      solver.push_back(ScriptStep::click(quiz.board_name));
      for (size_t answer : quiz.answers) {
        solver.push_back(ScriptStep::answer_quiz(answer));
      }
    }
    if (!node.examine_decoy.empty()) {
      solver.push_back(ScriptStep::examine(node.examine_decoy));
    }
    if (rng.chance(0.25)) {
      solver.push_back(ScriptStep::wait(milliseconds(300)));
    }
    if (!node.door_object.empty()) {
      solver.push_back(ScriptStep::use_item(node.door_item, node.door_object));
    } else {
      solver.push_back(ScriptStep::click(node.go_button));
    }
  }

  return course;
}

u64 corpus_course_seed(u64 corpus_seed, int index) {
  u64 state =
      corpus_seed + 0x9e3779b97f4a7c15ULL * (static_cast<u64>(index) + 1);
  return splitmix64(state);
}

GenParams corpus_course_params(u64 corpus_seed, int index) {
  Rng rng(corpus_course_seed(corpus_seed, index) ^ 0xa5a5a5a55a5a5a5aULL);
  return random_params(rng);
}

[[nodiscard]] Result<std::vector<GeneratedCourse>> generate_corpus(u64 seed, int count,
                                                     int worker_threads) {
  if (count < 0) return invalid_argument("corpus count must be >= 0");
  std::vector<GeneratedCourse> corpus(static_cast<size_t>(count));
  std::vector<Status> statuses(static_cast<size_t>(count));
  const auto build_one = [&](int i) {
    auto course = generate_course(corpus_course_params(seed, i),
                                  corpus_course_seed(seed, i));
    if (!course.ok()) {
      statuses[static_cast<size_t>(i)] = course.error();
      return;
    }
    corpus[static_cast<size_t>(i)] = std::move(course.value());
  };
  if (worker_threads > 0 && count > 1) {
    ThreadPool pool(static_cast<unsigned>(worker_threads));
    pool.parallel_for(0, count, build_one, /*grain=*/1);
  } else {
    for (int i = 0; i < count; ++i) build_one(i);
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st.error();
  }
  return corpus;
}

GenParams shrink_params(
    const GenParams& failing, u64 seed,
    const std::function<bool(const GenParams&, u64)>& still_fails) {
  struct Field {
    int GenParams::*member;
    int min;
  };
  constexpr std::array<Field, 10> kFields = {{
      {&GenParams::branch_count, 0},
      {&GenParams::puzzle_chain, 0},
      {&GenParams::dialogue_count, 0},
      {&GenParams::quiz_count, 0},
      {&GenParams::decoy_objects, 0},
      {&GenParams::scenario_count, 2},
      {&GenParams::reward_rule_count, 1},
      {&GenParams::frames_per_scene, 2},
      {&GenParams::frame_width, 96},
      {&GenParams::frame_height, 72},
  }};

  GenParams best = failing;
  bool changed = true;
  int passes = 0;
  while (changed && passes++ < 6) {
    changed = false;
    for (const Field& field : kFields) {
      int lo = field.min;
      int hi = best.*(field.member);
      // Binary search for the smallest value of this field that still
      // reproduces the failure (holding every other field fixed).
      while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        GenParams candidate = best;
        candidate.*(field.member) = mid;
        if (candidate.validate().ok() && still_fails(candidate, seed)) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      GenParams candidate = best;
      candidate.*(field.member) = hi;
      if (hi < best.*(field.member) && candidate.validate().ok() &&
          still_fails(candidate, seed)) {
        best = candidate;
        changed = true;
      }
    }
  }
  return best;
}

Result<std::string> write_failure_dump(const std::string& dir,
                                       const GeneratedCourse& course,
                                       const std::string& property) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return io_error("cannot create " + dir + ": " + ec.message());

  Json dump = Json::object();
  JsonObject& fields = dump.mutable_object();
  fields.set("property", Json(property));
  fields.set("seed", Json(std::to_string(course.seed)));
  fields.set("params", course.params.to_json());
  fields.set("project_text", Json(save_project_text(course.project)));
  const std::string text = dump.dump(2) + "\n";
  const std::string path =
      dir + "/" + property + "-" + std::to_string(course.seed) + ".json";
  const auto* bytes = reinterpret_cast<const u8*>(text.data());
  if (auto st =
          write_binary_file_atomic(path, std::span<const u8>(bytes, text.size()));
      !st.ok()) {
    return st.error();
  }
  return path;
}

Result<FailureDump> read_failure_dump(const std::string& path) {
  auto bytes = read_binary_file(path);
  if (!bytes.ok()) return bytes.error();
  const std::string text(bytes.value().begin(), bytes.value().end());
  auto json = Json::parse(text);
  if (!json.ok()) return json.error();
  FailureDump dump;
  dump.property = json.value()["property"].as_string();
  auto params = GenParams::from_json(json.value()["params"]);
  if (!params.ok()) return params.error();
  dump.params = params.value();
  dump.seed = std::strtoull(json.value()["seed"].as_string().c_str(), nullptr, 10);
  dump.project_text = json.value()["project_text"].as_string();
  return dump;
}

}  // namespace vgbl::gen
