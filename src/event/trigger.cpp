#include "event/trigger.hpp"

namespace vgbl {

const char* trigger_type_name(TriggerType type) {
  switch (type) {
    case TriggerType::kClick:
      return "click";
    case TriggerType::kExamine:
      return "examine";
    case TriggerType::kDragToInventory:
      return "drag_to_inventory";
    case TriggerType::kUseItemOn:
      return "use_item_on";
    case TriggerType::kCombineItems:
      return "combine_items";
    case TriggerType::kEnterScenario:
      return "enter_scenario";
    case TriggerType::kSegmentEnd:
      return "segment_end";
    case TriggerType::kTimer:
      return "timer";
    case TriggerType::kDialogueTag:
      return "dialogue_tag";
  }
  return "?";
}

Result<TriggerType> trigger_type_from_name(std::string_view name) {
  for (u8 i = 0; i <= static_cast<u8>(TriggerType::kDialogueTag); ++i) {
    const auto t = static_cast<TriggerType>(i);
    if (name == trigger_type_name(t)) return t;
  }
  return corrupt_data("unknown trigger type '" + std::string(name) + "'");
}

bool trigger_matches(const Trigger& pattern, const TriggerEvent& event) {
  if (pattern.type != event.type) return false;
  if (pattern.scenario.valid() && pattern.scenario != event.scenario) {
    return false;
  }
  switch (pattern.type) {
    case TriggerType::kClick:
    case TriggerType::kExamine:
    case TriggerType::kDragToInventory:
      return !pattern.object.valid() || pattern.object == event.object;
    case TriggerType::kUseItemOn:
      if (pattern.object.valid() && pattern.object != event.object) return false;
      return !pattern.item.valid() || pattern.item == event.item;
    case TriggerType::kCombineItems: {
      if (!pattern.item.valid() && !pattern.second_item.valid()) return true;
      const bool direct = (!pattern.item.valid() || pattern.item == event.item) &&
                          (!pattern.second_item.valid() ||
                           pattern.second_item == event.second_item);
      const bool swapped =
          (!pattern.item.valid() || pattern.item == event.second_item) &&
          (!pattern.second_item.valid() || pattern.second_item == event.item);
      return direct || swapped;
    }
    case TriggerType::kEnterScenario:
    case TriggerType::kSegmentEnd:
    case TriggerType::kTimer:
      return true;  // scenario scope already checked
    case TriggerType::kDialogueTag:
      return pattern.tag.empty() || pattern.tag == event.tag;
  }
  return false;
}

}  // namespace vgbl
