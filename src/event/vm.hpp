// Compiled condition evaluation: a stack-based bytecode VM. Conditions are
// compiled once at bundle load; per-event evaluation then runs a flat
// instruction array with no recursion, no string compares (flags are
// interned) and short-circuit jumps. E6 ablates this against the AST
// interpreter; a property test pins exact equivalence.
#pragma once

#include <string>
#include <vector>

#include "event/condition.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

enum class OpCode : u8 {
  kPushTrue = 0,
  kPushFalse,
  kHasItem,         // operand a = item id
  kItemCountGe,     // a = item id, b = threshold
  kFlag,            // a = interned flag index
  kScoreGe,         // b = threshold
  kVisited,         // a = scenario id
  kNot,
  kAnd,             // pops two, pushes conjunction
  kOr,
  kJumpIfFalse,     // a = target pc; peeks (does not pop) — short-circuit &&
  kJumpIfTrue,      // a = target pc; peeks — short-circuit ||
  kPop,
};

struct Instruction {
  OpCode op = OpCode::kPushTrue;
  u32 a = 0;
  i64 b = 0;

  bool operator==(const Instruction&) const = default;
};

/// A compiled condition. Flag names are interned into `flag_names`; the
/// VM resolves them to the state view once per program run.
struct Program {
  std::vector<Instruction> code;
  std::vector<std::string> flag_names;

  [[nodiscard]] size_t size() const { return code.size(); }
};

/// Compiles an AST into a short-circuiting program. Never fails for trees
/// produced by the Condition builders; malformed trees (kNot without a
/// child) compile to a constant, matching the interpreter's behaviour.
[[nodiscard]] Program compile_condition(const Condition& condition);

/// Runs a program against a state view. Corrupt programs (stack underflow,
/// bad jump target) return an error rather than UB.
[[nodiscard]] Result<bool> run_program(const Program& program, const GameStateView& state);

/// Convenience wrapper owning a compiled program.
class CompiledCondition {
 public:
  CompiledCondition() : program_(compile_condition(Condition::always())) {}
  explicit CompiledCondition(const Condition& condition)
      : program_(compile_condition(condition)) {}

  /// Evaluates; corrupt-program errors surface as `false` plus a sticky
  /// error flag (cannot happen for compiler-produced programs).
  [[nodiscard]] bool evaluate(const GameStateView& state) const {
    auto r = run_program(program_, state);
    return r.ok() && r.value();
  }

  [[nodiscard]] const Program& program() const { return program_; }

 private:
  Program program_;
};

}  // namespace vgbl
