#include "event/condition.hpp"

namespace vgbl {

const char* condition_op_name(ConditionOp op) {
  switch (op) {
    case ConditionOp::kTrue:
      return "true";
    case ConditionOp::kHasItem:
      return "has_item";
    case ConditionOp::kItemCountAtLeast:
      return "item_count_at_least";
    case ConditionOp::kFlag:
      return "flag";
    case ConditionOp::kScoreAtLeast:
      return "score_at_least";
    case ConditionOp::kVisited:
      return "visited";
    case ConditionOp::kNot:
      return "not";
    case ConditionOp::kAnd:
      return "and";
    case ConditionOp::kOr:
      return "or";
  }
  return "?";
}

Result<ConditionOp> condition_op_from_name(std::string_view name) {
  for (u8 i = 0; i <= static_cast<u8>(ConditionOp::kOr); ++i) {
    const auto op = static_cast<ConditionOp>(i);
    if (name == condition_op_name(op)) return op;
  }
  return corrupt_data("unknown condition op '" + std::string(name) + "'");
}

size_t Condition::node_count() const {
  size_t n = 1;
  for (const auto& c : children) n += c.node_count();
  return n;
}

bool evaluate(const Condition& condition, const GameStateView& state) {
  switch (condition.op) {
    case ConditionOp::kTrue:
      return true;
    case ConditionOp::kHasItem:
      return state.item_count(condition.item) >= 1;
    case ConditionOp::kItemCountAtLeast:
      return state.item_count(condition.item) >= condition.value;
    case ConditionOp::kFlag:
      return state.flag(condition.flag);
    case ConditionOp::kScoreAtLeast:
      return state.score() >= condition.value;
    case ConditionOp::kVisited:
      return state.visited(condition.scenario);
    case ConditionOp::kNot:
      return condition.children.empty() ? false
                                        : !evaluate(condition.children[0], state);
    case ConditionOp::kAnd:
      for (const auto& c : condition.children) {
        if (!evaluate(c, state)) return false;
      }
      return true;
    case ConditionOp::kOr:
      for (const auto& c : condition.children) {
        if (evaluate(c, state)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace vgbl
