#include "event/rule.hpp"

#include <algorithm>

#include "event/action.hpp"

namespace vgbl {

const char* action_type_name(ActionType type) {
  switch (type) {
    case ActionType::kSwitchScenario:
      return "switch_scenario";
    case ActionType::kShowMessage:
      return "show_message";
    case ActionType::kShowImage:
      return "show_image";
    case ActionType::kOpenUrl:
      return "open_url";
    case ActionType::kGiveItem:
      return "give_item";
    case ActionType::kRemoveItem:
      return "remove_item";
    case ActionType::kSetFlag:
      return "set_flag";
    case ActionType::kClearFlag:
      return "clear_flag";
    case ActionType::kAddScore:
      return "add_score";
    case ActionType::kStartDialogue:
      return "start_dialogue";
    case ActionType::kGrantReward:
      return "grant_reward";
    case ActionType::kRevealObject:
      return "reveal_object";
    case ActionType::kHideObject:
      return "hide_object";
    case ActionType::kReplaySegment:
      return "replay_segment";
    case ActionType::kEndGame:
      return "end_game";
    case ActionType::kStartQuiz:
      return "start_quiz";
  }
  return "?";
}

Result<ActionType> action_type_from_name(std::string_view name) {
  for (u8 i = 0; i <= static_cast<u8>(ActionType::kStartQuiz); ++i) {
    const auto t = static_cast<ActionType>(i);
    if (name == action_type_name(t)) return t;
  }
  return corrupt_data("unknown action type '" + std::string(name) + "'");
}

namespace {

/// The entity whose id keys the dispatch index for each trigger type.
u32 primary_entity(const Trigger& t) {
  switch (t.type) {
    case TriggerType::kClick:
    case TriggerType::kExamine:
    case TriggerType::kDragToInventory:
    case TriggerType::kUseItemOn:
      return t.object.value;
    case TriggerType::kCombineItems:
      return t.item.value;
    case TriggerType::kEnterScenario:
    case TriggerType::kSegmentEnd:
    case TriggerType::kTimer:
      return t.scenario.value;
    case TriggerType::kDialogueTag:
      return 0;  // tags are strings; matched in trigger_matches
  }
  return 0;
}

u32 primary_entity(const TriggerEvent& e) {
  switch (e.type) {
    case TriggerType::kClick:
    case TriggerType::kExamine:
    case TriggerType::kDragToInventory:
    case TriggerType::kUseItemOn:
      return e.object.value;
    case TriggerType::kCombineItems:
      return e.item.value;
    case TriggerType::kEnterScenario:
    case TriggerType::kSegmentEnd:
    case TriggerType::kTimer:
      return e.scenario.value;
    case TriggerType::kDialogueTag:
      return 0;
  }
  return 0;
}

}  // namespace

RuleBook::RuleBook(std::vector<EventRule> rules, GuardEngine engine)
    : rules_(std::move(rules)), engine_(engine) {
  compiled_.reserve(rules_.size());
  for (u32 i = 0; i < rules_.size(); ++i) {
    const EventRule& r = rules_[i];
    compiled_.emplace_back(r.condition);
    const u32 entity = primary_entity(r.trigger);
    if (entity == 0) {
      type_wildcards_[static_cast<size_t>(r.trigger.type)].push_back(i);
    } else {
      index_[key(r.trigger.type, entity)].push_back(i);
    }
  }
}

bool RuleBook::guard_passes(size_t rule_index,
                            const GameStateView& state) const {
  if (engine_ == GuardEngine::kCompiledVm) {
    return compiled_[rule_index].evaluate(state);
  }
  return evaluate(rules_[rule_index].condition, state);
}

std::vector<const EventRule*> RuleBook::match(
    const TriggerEvent& event, const GameStateView& state,
    const std::unordered_set<u32>& disarmed) const {
  // Gather candidates from the exact bucket and the type-wildcard bucket,
  // then restore declaration order (designers rely on it for layering
  // "specific rule shadows generic rule" behaviour).
  std::vector<u32> candidates;
  const u32 entity = primary_entity(event);
  if (entity != 0) {
    auto it = index_.find(key(event.type, entity));
    if (it != index_.end()) {
      candidates.insert(candidates.end(), it->second.begin(), it->second.end());
    }
  }
  // For combine events the second item's bucket also applies.
  if (event.type == TriggerType::kCombineItems && event.second_item.valid() &&
      event.second_item.value != entity) {
    auto it = index_.find(key(event.type, event.second_item.value));
    if (it != index_.end()) {
      candidates.insert(candidates.end(), it->second.begin(), it->second.end());
    }
  }
  const auto& wild = type_wildcards_[static_cast<size_t>(event.type)];
  candidates.insert(candidates.end(), wild.begin(), wild.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<const EventRule*> out;
  for (u32 i : candidates) {
    const EventRule& r = rules_[i];
    if (r.once && disarmed.count(r.id.value)) continue;
    if (!trigger_matches(r.trigger, event)) continue;
    if (!guard_passes(i, state)) continue;
    out.push_back(&r);
  }
  return out;
}

std::vector<const EventRule*> RuleBook::timers_for(ScenarioId scenario) const {
  std::vector<const EventRule*> out;
  for (const auto& r : rules_) {
    if (r.trigger.type != TriggerType::kTimer) continue;
    if (r.trigger.scenario.valid() && r.trigger.scenario != scenario) continue;
    out.push_back(&r);
  }
  return out;
}

const EventRule* RuleBook::find(RuleId id) const {
  for (const auto& r : rules_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

}  // namespace vgbl
