// Guard conditions on event rules: a small boolean expression language over
// game state (inventory, flags, score, visited scenarios). Designers build
// these in the object editor ("players get different feedback after they
// install components ... by the content providers' authoring", §3.2).
//
// Two evaluators exist: this AST interpreter (authoring-time, simple) and
// the compiled bytecode VM in vm.hpp (runtime hot path). Their equivalence
// is property-tested; the performance gap is ablation E6.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

enum class ConditionOp : u8 {
  kTrue = 0,          // always satisfied
  kHasItem,           // item_id held (count >= 1)
  kItemCountAtLeast,  // count_of(item_id) >= value
  kFlag,              // named boolean flag set
  kScoreAtLeast,      // score >= value
  kVisited,           // scenario_id has been entered at least once
  kNot,               // !child[0]
  kAnd,               // conjunction of children (empty = true)
  kOr,                // disjunction of children (empty = false)
};

const char* condition_op_name(ConditionOp op);
[[nodiscard]] Result<ConditionOp> condition_op_from_name(std::string_view name);

/// Expression tree with value semantics.
struct Condition {
  ConditionOp op = ConditionOp::kTrue;
  ItemId item;
  ScenarioId scenario;
  std::string flag;
  i64 value = 0;
  std::vector<Condition> children;

  bool operator==(const Condition&) const = default;

  // Builders (compose freely):
  static Condition always() { return {}; }
  static Condition has_item(ItemId id) {
    Condition c;
    c.op = ConditionOp::kHasItem;
    c.item = id;
    return c;
  }
  static Condition item_count_at_least(ItemId id, i64 n) {
    Condition c;
    c.op = ConditionOp::kItemCountAtLeast;
    c.item = id;
    c.value = n;
    return c;
  }
  static Condition flag_set(std::string name) {
    Condition c;
    c.op = ConditionOp::kFlag;
    c.flag = std::move(name);
    return c;
  }
  static Condition score_at_least(i64 n) {
    Condition c;
    c.op = ConditionOp::kScoreAtLeast;
    c.value = n;
    return c;
  }
  static Condition visited(ScenarioId id) {
    Condition c;
    c.op = ConditionOp::kVisited;
    c.scenario = id;
    return c;
  }
  static Condition negate(Condition inner) {
    Condition c;
    c.op = ConditionOp::kNot;
    c.children.push_back(std::move(inner));
    return c;
  }
  static Condition all_of(std::vector<Condition> children) {
    Condition c;
    c.op = ConditionOp::kAnd;
    c.children = std::move(children);
    return c;
  }
  static Condition any_of(std::vector<Condition> children) {
    Condition c;
    c.op = ConditionOp::kOr;
    c.children = std::move(children);
    return c;
  }

  /// Node count (for complexity limits in the authoring lint).
  [[nodiscard]] size_t node_count() const;
};

/// Read-only view of the game state a condition is evaluated against.
/// The runtime owns the real containers; tests can stub them directly.
class GameStateView {
 public:
  virtual ~GameStateView() = default;
  [[nodiscard]] virtual int item_count(ItemId id) const = 0;
  [[nodiscard]] virtual bool flag(const std::string& name) const = 0;
  [[nodiscard]] virtual i64 score() const = 0;
  [[nodiscard]] virtual bool visited(ScenarioId id) const = 0;
};

/// Simple concrete view backed by plain containers (tests, benches, VM
/// equivalence checks).
class SimpleStateView final : public GameStateView {
 public:
  std::unordered_map<u32, int> items;          // item id -> count
  std::unordered_set<std::string> flags;
  i64 score_value = 0;
  std::unordered_set<u32> visited_scenarios;

  [[nodiscard]] int item_count(ItemId id) const override {
    auto it = items.find(id.value);
    return it == items.end() ? 0 : it->second;
  }
  [[nodiscard]] bool flag(const std::string& name) const override {
    return flags.count(name) > 0;
  }
  [[nodiscard]] i64 score() const override { return score_value; }
  [[nodiscard]] bool visited(ScenarioId id) const override {
    return visited_scenarios.count(id.value) > 0;
  }
};

/// AST interpreter.
[[nodiscard]] bool evaluate(const Condition& condition,
                            const GameStateView& state);

}  // namespace vgbl
