// Trigger model: the player gestures and world happenings that can fire
// designer-authored rules (paper §3.1: examine/move objects, use items;
// §4.2: "set the properties and events of objects ... produce adequate
// feedback when users trigger them").
#pragma once

#include <string>

#include "util/result.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

enum class TriggerType : u8 {
  kClick = 0,         // object clicked
  kExamine,           // object examined (get its description)
  kDragToInventory,   // object dragged into the inventory window (Fig.2)
  kUseItemOn,         // backpack item applied to an object
  kCombineItems,      // two backpack items combined
  kEnterScenario,     // scenario became current
  kSegmentEnd,        // scenario's video segment finished playing
  kTimer,             // fixed delay after scenario entry
  kDialogueTag,       // a dialogue node/choice fired an action tag
};

const char* trigger_type_name(TriggerType type);
[[nodiscard]] Result<TriggerType> trigger_type_from_name(std::string_view name);

/// Rule-side pattern. Unset fields (invalid ids / empty strings) are
/// wildcards; e.g. a kClick trigger with an invalid object id fires on any
/// object click in the rule's scenario scope.
struct Trigger {
  TriggerType type = TriggerType::kClick;
  ObjectId object;
  ItemId item;           // kUseItemOn: the item applied; kCombineItems: one input
  ItemId second_item;    // kCombineItems: the other input
  ScenarioId scenario;   // scenario scope; invalid = any scenario
  MicroTime delay = 0;   // kTimer: microseconds after scenario entry
  std::string tag;       // kDialogueTag: tag to match
};

/// Runtime-side occurrence, produced by the game session.
struct TriggerEvent {
  TriggerType type = TriggerType::kClick;
  ObjectId object;
  ItemId item;
  ItemId second_item;
  ScenarioId scenario;   // scenario current when the event occurred
  MicroTime when = 0;
  std::string tag;
};

/// True when `event` satisfies `pattern` (wildcard semantics above).
[[nodiscard]] bool trigger_matches(const Trigger& pattern,
                                   const TriggerEvent& event);

}  // namespace vgbl
