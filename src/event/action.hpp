// Actions: the feedback side of event rules — everything a rule can do to
// the game world when it fires (paper §2.1: "change the play sequence of a
// video. Other resources like text messages, images and webpage are also
// popped up by the users' interaction").
#pragma once

#include <string>
#include <vector>

#include "dialogue/quiz.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

enum class ActionType : u8 {
  kSwitchScenario = 0,  // jump playback to another scenario
  kShowMessage,         // text popup
  kShowImage,           // image popup (sprite by icon name)
  kOpenUrl,             // open an external resource (simulated web catalogue)
  kGiveItem,            // put an item into the backpack
  kRemoveItem,          // take an item from the backpack
  kSetFlag,
  kClearFlag,
  kAddScore,            // award points (may be negative)
  kStartDialogue,       // begin an NPC conversation
  kGrantReward,         // give a reward object + its bonus points (§3.3)
  kRevealObject,        // make a hidden object visible
  kHideObject,
  kReplaySegment,       // restart the current scenario's video
  kEndGame,             // terminal: the mission is complete (or failed)
  kStartQuiz,           // begin a knowledge-check quiz (§3.2 extension)
};

const char* action_type_name(ActionType type);
[[nodiscard]] Result<ActionType> action_type_from_name(std::string_view name);

struct Action {
  ActionType type = ActionType::kShowMessage;
  ScenarioId scenario;   // kSwitchScenario target
  ObjectId object;       // kRevealObject / kHideObject target
  ItemId item;           // kGiveItem / kRemoveItem / kGrantReward
  DialogueId dialogue;   // kStartDialogue
  QuizId quiz;           // kStartQuiz
  std::string text;      // message text / image icon name / url
  i64 amount = 0;        // kAddScore points; kGiveItem count (0 -> 1)
  bool success_outcome = true;  // kEndGame: completed vs failed

  // Builders keep rule definitions readable in authoring code.
  static Action switch_scenario(ScenarioId target) {
    Action a;
    a.type = ActionType::kSwitchScenario;
    a.scenario = target;
    return a;
  }
  static Action show_message(std::string text) {
    Action a;
    a.type = ActionType::kShowMessage;
    a.text = std::move(text);
    return a;
  }
  static Action show_image(std::string icon) {
    Action a;
    a.type = ActionType::kShowImage;
    a.text = std::move(icon);
    return a;
  }
  static Action open_url(std::string url) {
    Action a;
    a.type = ActionType::kOpenUrl;
    a.text = std::move(url);
    return a;
  }
  static Action give_item(ItemId item, i64 count = 1) {
    Action a;
    a.type = ActionType::kGiveItem;
    a.item = item;
    a.amount = count;
    return a;
  }
  static Action remove_item(ItemId item, i64 count = 1) {
    Action a;
    a.type = ActionType::kRemoveItem;
    a.item = item;
    a.amount = count;
    return a;
  }
  static Action set_flag(std::string name) {
    Action a;
    a.type = ActionType::kSetFlag;
    a.text = std::move(name);
    return a;
  }
  static Action clear_flag(std::string name) {
    Action a;
    a.type = ActionType::kClearFlag;
    a.text = std::move(name);
    return a;
  }
  static Action add_score(i64 points, std::string reason = "") {
    Action a;
    a.type = ActionType::kAddScore;
    a.amount = points;
    a.text = std::move(reason);
    return a;
  }
  static Action start_dialogue(DialogueId dialogue) {
    Action a;
    a.type = ActionType::kStartDialogue;
    a.dialogue = dialogue;
    return a;
  }
  static Action grant_reward(ItemId reward_item) {
    Action a;
    a.type = ActionType::kGrantReward;
    a.item = reward_item;
    return a;
  }
  static Action reveal_object(ObjectId object) {
    Action a;
    a.type = ActionType::kRevealObject;
    a.object = object;
    return a;
  }
  static Action hide_object(ObjectId object) {
    Action a;
    a.type = ActionType::kHideObject;
    a.object = object;
    return a;
  }
  static Action replay_segment() {
    Action a;
    a.type = ActionType::kReplaySegment;
    return a;
  }
  static Action end_game(bool success) {
    Action a;
    a.type = ActionType::kEndGame;
    a.success_outcome = success;
    return a;
  }
  static Action start_quiz(QuizId quiz) {
    Action a;
    a.type = ActionType::kStartQuiz;
    a.quiz = quiz;
    return a;
  }
};

}  // namespace vgbl
