#include "event/vm.hpp"

#include <unordered_map>

namespace vgbl {
namespace {

class Compiler {
 public:
  Program take() && { return std::move(program_); }

  void emit(const Condition& c) {
    switch (c.op) {
      case ConditionOp::kTrue:
        push(OpCode::kPushTrue);
        break;
      case ConditionOp::kHasItem:
        push(OpCode::kHasItem, c.item.value);
        break;
      case ConditionOp::kItemCountAtLeast:
        push(OpCode::kItemCountGe, c.item.value, c.value);
        break;
      case ConditionOp::kFlag:
        push(OpCode::kFlag, intern(c.flag));
        break;
      case ConditionOp::kScoreAtLeast:
        push(OpCode::kScoreGe, 0, c.value);
        break;
      case ConditionOp::kVisited:
        push(OpCode::kVisited, c.scenario.value);
        break;
      case ConditionOp::kNot:
        if (c.children.empty()) {
          // Interpreter returns false for a childless NOT; mirror that.
          push(OpCode::kPushFalse);
        } else {
          emit(c.children[0]);
          push(OpCode::kNot);
        }
        break;
      case ConditionOp::kAnd: {
        if (c.children.empty()) {
          push(OpCode::kPushTrue);
          break;
        }
        // child0 [JumpIfFalse end] Pop child1 [JumpIfFalse end] Pop childN
        std::vector<size_t> jumps;
        for (size_t i = 0; i < c.children.size(); ++i) {
          if (i > 0) {
            jumps.push_back(push(OpCode::kJumpIfFalse));
            push(OpCode::kPop);
          }
          emit(c.children[i]);
        }
        for (size_t j : jumps) {
          program_.code[j].a = static_cast<u32>(program_.code.size());
        }
        break;
      }
      case ConditionOp::kOr: {
        if (c.children.empty()) {
          push(OpCode::kPushFalse);
          break;
        }
        std::vector<size_t> jumps;
        for (size_t i = 0; i < c.children.size(); ++i) {
          if (i > 0) {
            jumps.push_back(push(OpCode::kJumpIfTrue));
            push(OpCode::kPop);
          }
          emit(c.children[i]);
        }
        for (size_t j : jumps) {
          program_.code[j].a = static_cast<u32>(program_.code.size());
        }
        break;
      }
    }
  }

 private:
  size_t push(OpCode op, u32 a = 0, i64 b = 0) {
    program_.code.push_back({op, a, b});
    return program_.code.size() - 1;
  }

  u32 intern(const std::string& name) {
    auto it = interned_.find(name);
    if (it != interned_.end()) return it->second;
    const u32 idx = static_cast<u32>(program_.flag_names.size());
    program_.flag_names.push_back(name);
    interned_[name] = idx;
    return idx;
  }

  Program program_;
  std::unordered_map<std::string, u32> interned_;
};

}  // namespace

Program compile_condition(const Condition& condition) {
  Compiler compiler;
  compiler.emit(condition);
  return std::move(compiler).take();
}

Result<bool> run_program(const Program& program, const GameStateView& state) {
  // Conditions are small; a fixed-capacity stack avoids allocation.
  constexpr size_t kStackMax = 256;
  bool stack[kStackMax];
  size_t sp = 0;

  const auto& code = program.code;
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const Instruction& in = code[pc];
    switch (in.op) {
      case OpCode::kPushTrue:
      case OpCode::kPushFalse:
      case OpCode::kHasItem:
      case OpCode::kItemCountGe:
      case OpCode::kFlag:
      case OpCode::kScoreGe:
      case OpCode::kVisited: {
        if (sp >= kStackMax) return corrupt_data("vm: stack overflow");
        bool v = false;
        switch (in.op) {
          case OpCode::kPushTrue:
            v = true;
            break;
          case OpCode::kPushFalse:
            v = false;
            break;
          case OpCode::kHasItem:
            v = state.item_count(ItemId{in.a}) >= 1;
            break;
          case OpCode::kItemCountGe:
            v = state.item_count(ItemId{in.a}) >= in.b;
            break;
          case OpCode::kFlag:
            if (in.a >= program.flag_names.size()) {
              return corrupt_data("vm: flag index out of range");
            }
            v = state.flag(program.flag_names[in.a]);
            break;
          case OpCode::kScoreGe:
            v = state.score() >= in.b;
            break;
          case OpCode::kVisited:
            v = state.visited(ScenarioId{in.a});
            break;
          default:
            break;
        }
        stack[sp++] = v;
        break;
      }
      case OpCode::kNot:
        if (sp < 1) return corrupt_data("vm: stack underflow");
        stack[sp - 1] = !stack[sp - 1];
        break;
      case OpCode::kAnd:
        if (sp < 2) return corrupt_data("vm: stack underflow");
        stack[sp - 2] = stack[sp - 2] && stack[sp - 1];
        --sp;
        break;
      case OpCode::kOr:
        if (sp < 2) return corrupt_data("vm: stack underflow");
        stack[sp - 2] = stack[sp - 2] || stack[sp - 1];
        --sp;
        break;
      case OpCode::kJumpIfFalse:
      case OpCode::kJumpIfTrue: {
        if (sp < 1) return corrupt_data("vm: stack underflow");
        const bool take = in.op == OpCode::kJumpIfFalse ? !stack[sp - 1]
                                                        : stack[sp - 1];
        if (take) {
          if (in.a > code.size()) return corrupt_data("vm: bad jump target");
          pc = static_cast<size_t>(in.a) - 1;  // -1: loop increments
        }
        break;
      }
      case OpCode::kPop:
        if (sp < 1) return corrupt_data("vm: stack underflow");
        --sp;
        break;
    }
  }
  if (sp != 1) return corrupt_data("vm: program left stack size != 1");
  return stack[0];
}

}  // namespace vgbl
