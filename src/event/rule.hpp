// Event rules bind a trigger pattern + guard condition to an action list,
// and the RuleBook indexes them for dispatch. This is the runtime half of
// the paper's object editor output: "Users can set the properties and
// events of objects in video and produce adequate feedback when users
// trigger them" (§4.2).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "event/action.hpp"
#include "event/condition.hpp"
#include "event/trigger.hpp"
#include "event/vm.hpp"

namespace vgbl {

struct EventRule {
  RuleId id;
  std::string name;
  Trigger trigger;
  Condition condition;  // guard; Condition::always() when absent
  std::vector<Action> actions;
  /// One-shot rules disarm after firing (typical for pickups and missions).
  bool once = false;
};

/// Evaluation strategy for rule guards (E6 ablation).
enum class GuardEngine { kInterpreter, kCompiledVm };

/// Immutable, indexed rule collection. Build once per loaded game; the
/// index buckets rules by (trigger type, primary key) so dispatch touches
/// only plausible candidates instead of scanning every rule.
class RuleBook {
 public:
  RuleBook() = default;
  explicit RuleBook(std::vector<EventRule> rules,
                    GuardEngine engine = GuardEngine::kCompiledVm);

  [[nodiscard]] const std::vector<EventRule>& rules() const { return rules_; }
  [[nodiscard]] size_t size() const { return rules_.size(); }
  [[nodiscard]] GuardEngine engine() const { return engine_; }

  /// Rules whose trigger pattern matches `event` AND whose guard passes
  /// against `state`, in declaration order. `disarmed` carries the fired
  /// one-shot rule ids (owned by the caller/session so RuleBook stays
  /// immutable and shareable).
  [[nodiscard]] std::vector<const EventRule*> match(
      const TriggerEvent& event, const GameStateView& state,
      const std::unordered_set<u32>& disarmed) const;

  /// All timer triggers scoped to `scenario` (the session arms these on
  /// scenario entry).
  [[nodiscard]] std::vector<const EventRule*> timers_for(
      ScenarioId scenario) const;

  [[nodiscard]] const EventRule* find(RuleId id) const;

 private:
  [[nodiscard]] bool guard_passes(size_t rule_index,
                                  const GameStateView& state) const;

  /// Index key: trigger type ⊕ primary entity. Wildcard rules land in a
  /// type-only bucket checked in addition to the exact bucket.
  static u64 key(TriggerType type, u32 entity) {
    return (static_cast<u64>(type) << 32) | entity;
  }

  std::vector<EventRule> rules_;
  std::vector<CompiledCondition> compiled_;
  GuardEngine engine_ = GuardEngine::kCompiledVm;
  std::unordered_map<u64, std::vector<u32>> index_;   // key -> rule indices
  std::vector<u32> type_wildcards_[16];               // per trigger type
};

}  // namespace vgbl
