// Decode pipeline. Inter-frame prediction forces sequential decode *within*
// a GOP, but GOPs are independent (each starts at a keyframe), so the
// pipeline parallelises at GOP granularity: a dispatcher splits the
// requested range into GOPs, pool workers decode them concurrently, and a
// reorder stage emits frames in presentation order. This is the unit
// benchmarked in E5 (FPS vs worker count).
#pragma once

#include <memory>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "concurrency/thread_pool.hpp"
#include "util/result.hpp"
#include "video/container.hpp"

namespace vgbl {

/// [first, first+count) frame range that starts at a keyframe.
struct GopRange {
  int first = 0;
  int count = 0;
};

/// Splits `[first, first+count)` of the container into keyframe-aligned
/// ranges. The first range may begin before `first` (at its keyframe) —
/// `lead_in` frames must be decoded then discarded.
struct GopPlan {
  std::vector<GopRange> gops;
  int lead_in = 0;  // frames of gops[0] preceding the requested start
};

[[nodiscard]] GopPlan plan_gops(const VideoContainer& container, int first,
                                int count);

/// Decodes a frame range GOP-parallel. Frames return in presentation order.
[[nodiscard]] Result<std::vector<Frame>> decode_range_parallel(const VideoContainer& container,
                                                 int first, int count,
                                                 ThreadPool& pool);

/// Streaming variant: a producer-side thread pool decodes GOPs ahead of the
/// consumer, which pops frames in order. Bounded queues provide
/// backpressure so memory stays proportional to the lookahead window.
class DecodePipeline {
 public:
  struct Options {
    /// Decode workers. 0 runs with no pool at all: GOPs decode
    /// synchronously on the consumer thread, on demand. That mode exists
    /// for massive simulated cohorts (district-scale DES runs keep 100k+
    /// sessions alive at once) where even one OS thread per session would
    /// exhaust the process thread limit.
    unsigned decode_threads = 2;
    /// Decoded frames buffered ahead of the consumer (pooled mode only;
    /// synchronous mode buffers exactly the consumer's GOP).
    size_t lookahead_frames = 32;
  };

  DecodePipeline(std::shared_ptr<const VideoContainer> container,
                 Options options);
  ~DecodePipeline();

  DecodePipeline(const DecodePipeline&) = delete;
  DecodePipeline& operator=(const DecodePipeline&) = delete;

  /// Begins decoding `[first, first+count)`. Any active run is cancelled.
  void start(int first, int count);

  /// Next frame in presentation order; nullopt at end-of-range or after
  /// `stop()`. Blocks while the decoder catches up.
  std::optional<Frame> next_frame();

  /// Cancels the active run and drains workers.
  void stop();

  struct Stats {
    u64 frames_emitted = 0;
    u64 gops_decoded = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Run;

  /// Decodes one GOP into `run`'s reorder buffers, publishing frame by
  /// frame (worker body in pooled mode, where the consumer can present the
  /// first frame while the rest still decodes).
  void decode_gop(const std::shared_ptr<Run>& run, size_t g);

  /// Batch variant for synchronous mode: decodes the whole GOP through
  /// Decoder::decode_batch and publishes it under one lock acquisition.
  void decode_gop_batch(const std::shared_ptr<Run>& run, size_t g);

  std::shared_ptr<const VideoContainer> container_;
  Options options_;
  std::unique_ptr<ThreadPool> pool_;  ///< null in synchronous mode
  std::shared_ptr<Run> run_;
  Stats stats_;
};

}  // namespace vgbl
