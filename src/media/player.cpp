#include "media/player.hpp"

#include <algorithm>

namespace vgbl {

SegmentPlayer::SegmentPlayer(std::shared_ptr<const VideoContainer> container,
                             Options options)
    : container_(std::move(container)),
      options_(options),
      pipeline_(container_, options.pipeline) {}

Status SegmentPlayer::play_segment(SegmentId segment, MicroTime now) {
  const ContainerSegment* seg = container_->segment_by_id(segment);
  if (!seg) {
    return not_found("segment id " + std::to_string(segment.value));
  }
  pipeline_.start(seg->first_frame, seg->frame_count);
  active_ = true;
  paused_ = false;
  segment_ = segment;
  segment_first_ = seg->first_frame;
  segment_count_ = seg->frame_count;
  start_time_ = now;
  emitted_ = 0;
  last_frame_.reset();
  last_index_ = -1;
  ++stats_.segment_switches;
  return {};
}

Status SegmentPlayer::replay(MicroTime now) {
  if (!active_) return failed_precondition("no segment playing");
  return play_segment(segment_, now);
}

void SegmentPlayer::pause(MicroTime now) {
  if (!active_ || paused_) return;
  paused_ = true;
  pause_time_ = now;
}

void SegmentPlayer::resume(MicroTime now) {
  if (!active_ || !paused_) return;
  paused_ = false;
  start_time_ += now - pause_time_;  // shift timeline by the pause duration
}

int SegmentPlayer::frame_index_at(MicroTime now) const {
  if (!active_ || segment_count_ <= 0) return 0;
  const MicroTime t = paused_ ? pause_time_ : now;
  const MicroTime elapsed = std::max<MicroTime>(0, t - start_time_);
  const i64 idx = elapsed * container_->fps() / 1'000'000;
  return static_cast<int>(std::min<i64>(idx, segment_count_ - 1));
}

bool SegmentPlayer::finished(MicroTime now) const {
  if (!active_ || paused_) return false;
  const MicroTime elapsed = std::max<MicroTime>(0, now - start_time_);
  return elapsed * container_->fps() / 1'000'000 >= segment_count_;
}

std::optional<Frame> SegmentPlayer::current_frame(MicroTime now) {
  if (!active_) return std::nullopt;
  const int target = frame_index_at(now);
  if (target == last_index_ && last_frame_) {
    return last_frame_;  // same frame period: no new decode
  }

  // Pull from the pipeline up to the target index, dropping late frames
  // when configured (the pipeline still decodes them — a GOP decode cannot
  // skip — but they are not presented).
  while (emitted_ <= target) {
    auto f = pipeline_.next_frame();
    if (!f) break;  // end of segment or decode error: hold last frame
    const bool present = !options_.drop_late_frames || emitted_ == target;
    if (present) {
      last_frame_ = std::move(f);
    } else {
      ++stats_.frames_dropped;
    }
    ++emitted_;
  }
  if (last_frame_ && last_index_ != target) {
    ++stats_.frames_presented;
    last_index_ = target;
  }
  return last_frame_;
}

std::vector<i16> SegmentPlayer::audio_window(MicroTime now,
                                             MicroTime duration) const {
  std::vector<i16> out;
  if (!active_ || paused_ || !container_->has_audio() || duration <= 0) {
    return out;
  }
  const AudioBuffer& track = container_->audio();
  const MicroTime t = std::max<MicroTime>(0, now - start_time_);
  // Clamp to the segment's span on the global timeline.
  const i64 start_sample =
      static_cast<i64>(container_->audio_sample_for_frame(segment_first_)) +
      t * track.sample_rate / 1'000'000;
  const i64 end_of_segment = static_cast<i64>(
      container_->audio_sample_for_frame(segment_first_ + segment_count_));
  const i64 want = duration * track.sample_rate / 1'000'000;
  const i64 stop_at =
      std::min<i64>({start_sample + want, end_of_segment,
                     static_cast<i64>(track.samples.size())});
  for (i64 i = start_sample; i < stop_at; ++i) {
    out.push_back(track.samples[static_cast<size_t>(i)]);
  }
  return out;
}

void SegmentPlayer::stop() {
  pipeline_.stop();
  active_ = false;
  last_frame_.reset();
}

}  // namespace vgbl
