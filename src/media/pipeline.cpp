#include "media/pipeline.hpp"

#include <atomic>
#include <condition_variable>
#include <map>
#include <set>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"

namespace vgbl {

namespace {

struct MediaMetrics {
  obs::Counter& gops_decoded;
  obs::Counter& frames_decoded;
  obs::Histogram& gop_decode_ms;

  static MediaMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static MediaMetrics m{
        reg.counter("media_gops_decoded_total",
                    "GOPs decoded (batch and pipeline paths)"),
        reg.counter("media_frames_decoded_total", "frames decoded"),
        reg.histogram("media_gop_decode_ms",
                      obs::exponential_buckets(0.05, 2.0, 14),
                      "wall time to decode one GOP")};
    return m;
  }
};

}  // namespace

GopPlan plan_gops(const VideoContainer& container, int first, int count) {
  GopPlan plan;
  if (count <= 0 || first < 0 || first >= container.frame_count()) return plan;
  count = std::min(count, container.frame_count() - first);

  const int start_key = container.previous_keyframe(first);
  plan.lead_in = first - start_key;

  int pos = start_key;
  const int end = first + count;
  while (pos < end) {
    int next = pos + 1;
    while (next < end && !container.is_keyframe(next)) ++next;
    plan.gops.push_back({pos, next - pos});
    pos = next;
  }
  return plan;
}

[[nodiscard]] Result<std::vector<Frame>> decode_gop(const VideoContainer& container,
                                      GopRange gop) {
  MediaMetrics& metrics = MediaMetrics::get();
  VGBL_SPAN("media.decode_gop");
  VGBL_TIMER(metrics.gop_decode_ms);
  // Whole-GOP batch decode: the prediction chain stays inside the output
  // vector, so the per-frame reference copy of the frame-at-a-time API is
  // paid once per GOP instead.
  std::vector<std::span<const u8>> datas;
  datas.reserve(static_cast<size_t>(gop.count));
  for (int i = gop.first; i < gop.first + gop.count; ++i) {
    auto data = container.frame_data(i);
    if (!data.ok()) return data.error();
    datas.push_back(data.value());
  }
  Decoder decoder;
  std::vector<Frame> frames;
  if (auto st = decoder.decode_batch(datas, frames); !st.ok()) {
    return st.error();
  }
  VGBL_COUNT(metrics.gops_decoded);
  VGBL_COUNT(metrics.frames_decoded, frames.size());
  return frames;
}

Result<std::vector<Frame>> decode_range_parallel(const VideoContainer& container,
                                                 int first, int count,
                                                 ThreadPool& pool) {
  const GopPlan plan = plan_gops(container, first, count);
  if (plan.gops.empty()) return std::vector<Frame>{};

  std::vector<Result<std::vector<Frame>>> results(
      plan.gops.size(), Result<std::vector<Frame>>(std::vector<Frame>{}));
  std::atomic<bool> failed{false};

  pool.parallel_for(0, static_cast<i64>(plan.gops.size()), [&](i64 g) {
    if (failed.load(std::memory_order_relaxed)) return;
    auto r = decode_gop(container, plan.gops[static_cast<size_t>(g)]);
    if (!r.ok()) failed.store(true, std::memory_order_relaxed);
    results[static_cast<size_t>(g)] = std::move(r);
  });

  std::vector<Frame> out;
  out.reserve(static_cast<size_t>(count));
  int skip = plan.lead_in;
  for (auto& r : results) {
    if (!r.ok()) return r.error();
    for (auto& f : r.value()) {
      if (skip > 0) {
        --skip;
        continue;
      }
      if (static_cast<int>(out.size()) < count) out.push_back(std::move(f));
    }
  }
  return out;
}

struct DecodePipeline::Run {
  Mutex mutex;
  std::condition_variable_any cv;
  GopPlan plan;  // immutable once start() publishes the run
  // Workers publish frames one at a time so the consumer can present the
  // first frame of a GOP while the rest is still decoding — this bounds
  // scenario-switch latency by one frame decode instead of one GOP.
  std::map<size_t, std::vector<Frame>> partial
      VGBL_GUARDED_BY(mutex);                      // gop -> frames so far
  std::set<size_t> done VGBL_GUARDED_BY(mutex);    // fully decoded gops
  std::set<size_t> failed VGBL_GUARDED_BY(mutex);  // decode error in gop
  size_t next_submit VGBL_GUARDED_BY(mutex) = 0;
  size_t in_flight VGBL_GUARDED_BY(mutex) = 0;
  std::atomic<bool> cancelled{false};

  // Consumer cursor.
  size_t current_gop VGBL_GUARDED_BY(mutex) = 0;
  size_t offset_in_gop VGBL_GUARDED_BY(mutex) = 0;
  int remaining VGBL_GUARDED_BY(mutex) = 0;  // frames owed to the consumer
};

DecodePipeline::DecodePipeline(std::shared_ptr<const VideoContainer> container,
                               Options options)
    : container_(std::move(container)),
      options_(options),
      pool_(options.decode_threads > 0
                ? std::make_unique<ThreadPool>(options.decode_threads)
                : nullptr) {}

DecodePipeline::~DecodePipeline() { stop(); }

void DecodePipeline::start(int first, int count) {
  stop();
  auto run = std::make_shared<Run>();
  run->plan = plan_gops(*container_, first, count);
  {
    // No worker can see the run before run_ is set, but the annotations
    // (correctly) have no way to know that — take the lock.
    MutexLock lock(run->mutex);
    run->remaining =
        std::min(count, std::max(0, container_->frame_count() - first));
    if (first < 0 || first >= container_->frame_count()) run->remaining = 0;
    run->offset_in_gop = static_cast<size_t>(run->plan.lead_in);
  }
  run_ = std::move(run);
}

void DecodePipeline::stop() {
  if (!run_) return;
  auto run = run_;
  run->cancelled.store(true);
  // Wait for in-flight decodes so their container reference stays valid.
  {
    UniqueLock lock(run->mutex);
    while (run->in_flight != 0) {
      run->cv.wait(lock);
    }
  }
  run_.reset();
}

std::optional<Frame> DecodePipeline::next_frame() {
  if (!run_) return std::nullopt;
  auto run = run_;
  UniqueLock lock(run->mutex);
  if (run->remaining <= 0 || run->current_gop >= run->plan.gops.size()) {
    return std::nullopt;
  }

  if (pool_ != nullptr) {
    // Keep the decode window full: submit GOPs up to a lookahead window
    // *relative to the consumer cursor*. (Gating on in_flight/done counts
    // is racy: the consumer can consume a GOP's last frame and erase its
    // bookkeeping before the worker's final done-mark runs, leaving a
    // stale entry that would block submission forever.)
    const size_t window =
        options_.decode_threads +
        std::max<size_t>(1,
                         options_.lookahead_frames /
                             std::max(1, container_->codec_config().gop_size));
    while (run->next_submit < run->plan.gops.size() &&
           run->next_submit < run->current_gop + window) {
      const size_t g = run->next_submit++;
      ++run->in_flight;
      // stop() waits for in_flight to drain before the run (or the
      // pipeline itself) goes away, so `this` stays valid in the worker.
      pool_->submit([this, run, g] {
        decode_gop(run, g);
        MutexLock inner(run->mutex);
        --run->in_flight;
        run->cv.notify_all();
      });
    }
  } else if (run->done.count(run->current_gop) == 0 &&
             run->failed.count(run->current_gop) == 0) {
    // Synchronous mode: decode the consumer's GOP on demand, right here.
    // No lookahead — memory stays bounded by one GOP per session no matter
    // how many sessions a simulation keeps alive. There is no concurrent
    // consumer to feed frame-by-frame, so the whole GOP goes through the
    // batch decode path and is published under one lock acquisition.
    const size_t g = run->current_gop;
    lock.unlock();
    decode_gop_batch(run, g);
    lock.lock();
  }

  // Wait for the next frame of the current GOP (not the whole GOP). An
  // explicit predicate loop instead of the lambda overload: the thread
  // safety analysis cannot see through the wait(lock, pred) indirection,
  // while a plain loop keeps every guarded access lexically under the lock.
  const size_t cur = run->current_gop;
  while (true) {
    if (run->cancelled.load() || run->failed.count(cur) > 0) break;
    auto probe = run->partial.find(cur);
    const size_t have =
        probe == run->partial.end() ? 0 : probe->second.size();
    if (have > run->offset_in_gop || run->done.count(cur) > 0) break;
    run->cv.wait(lock);
  }
  if (run->cancelled.load() || run->failed.count(cur)) return std::nullopt;
  auto it = run->partial.find(cur);
  const size_t have = it == run->partial.end() ? 0 : it->second.size();
  if (have <= run->offset_in_gop) {
    return std::nullopt;  // gop finished short (cancel/error race)
  }

  Frame frame = std::move(it->second[run->offset_in_gop]);
  ++run->offset_in_gop;
  --run->remaining;
  ++stats_.frames_emitted;

  if (run->offset_in_gop >=
      static_cast<size_t>(run->plan.gops[cur].count)) {
    run->partial.erase(cur);
    run->done.erase(cur);
    run->failed.erase(cur);
    ++run->current_gop;
    run->offset_in_gop = 0;
    ++stats_.gops_decoded;
  }
  return frame;
}

void DecodePipeline::decode_gop(const std::shared_ptr<Run>& run, size_t g) {
  MediaMetrics& metrics = MediaMetrics::get();
  VGBL_SPAN("media.decode_gop");
  VGBL_TIMER(metrics.gop_decode_ms);
  Decoder decoder;
  const GopRange gop = run->plan.gops[g];
  u64 decoded = 0;
  for (int i = gop.first; i < gop.first + gop.count; ++i) {
    if (run->cancelled.load(std::memory_order_relaxed)) break;
    auto data = container_->frame_data(i);
    Result<Frame> frame = data.ok() ? decoder.decode(data.value())
                                    : Result<Frame>(data.error());
    MutexLock inner(run->mutex);
    if (!frame.ok()) {
      run->failed.insert(g);
      run->cv.notify_all();
      break;
    }
    run->partial[g].push_back(std::move(frame.value()));
    ++decoded;
    run->cv.notify_all();
  }
  VGBL_COUNT(metrics.gops_decoded);
  VGBL_COUNT(metrics.frames_decoded, decoded);
  MutexLock inner(run->mutex);
  run->done.insert(g);
  run->cv.notify_all();
}

void DecodePipeline::decode_gop_batch(const std::shared_ptr<Run>& run,
                                      size_t g) {
  MediaMetrics& metrics = MediaMetrics::get();
  VGBL_SPAN("media.decode_gop");
  VGBL_TIMER(metrics.gop_decode_ms);
  const GopRange gop = run->plan.gops[g];
  Status st;
  std::vector<Frame> frames;
  if (!run->cancelled.load(std::memory_order_relaxed)) {
    std::vector<std::span<const u8>> datas;
    datas.reserve(static_cast<size_t>(gop.count));
    for (int i = gop.first; i < gop.first + gop.count; ++i) {
      auto data = container_->frame_data(i);
      if (!data.ok()) {
        st = data.error();
        break;
      }
      datas.push_back(data.value());
    }
    if (st.ok()) {
      Decoder decoder;
      st = decoder.decode_batch(datas, frames);
    }
  }
  VGBL_COUNT(metrics.gops_decoded);
  VGBL_COUNT(metrics.frames_decoded, frames.size());
  MutexLock inner(run->mutex);
  if (!st.ok()) run->failed.insert(g);
  if (!frames.empty()) run->partial[g] = std::move(frames);
  run->done.insert(g);
  run->cv.notify_all();
}

DecodePipeline::Stats DecodePipeline::stats() const { return stats_; }

}  // namespace vgbl
