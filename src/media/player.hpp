// Segment player: schedules decoded frames against a presentation clock.
// This is the "augmented video player" core of the paper's runtime (§4.3):
// the game loop asks `current_frame(now)` each tick, and scenario switches
// re-target the player at another segment's frame range.
#pragma once

#include <memory>
#include <optional>

#include "media/pipeline.hpp"
#include "util/sim_clock.hpp"

namespace vgbl {

/// Playback state machine over one container.
class SegmentPlayer {
 public:
  struct Options {
    DecodePipeline::Options pipeline;
    /// When true the player skips late frames to stay on the clock;
    /// when false it presents every frame (slideshow under load).
    bool drop_late_frames = true;
  };

  explicit SegmentPlayer(std::shared_ptr<const VideoContainer> container)
      : SegmentPlayer(std::move(container), Options{}) {}
  SegmentPlayer(std::shared_ptr<const VideoContainer> container,
                Options options);

  /// Starts playing `segment` from its first frame at time `now`.
  /// Unknown segment ids fail with kNotFound.
  Status play_segment(SegmentId segment, MicroTime now);

  /// Restarts the current segment (used by "replay scene" buttons).
  Status replay(MicroTime now);

  void pause(MicroTime now);
  void resume(MicroTime now);
  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] bool playing() const { return active_; }
  [[nodiscard]] SegmentId current_segment() const { return segment_; }
  /// Presentation time of the current segment's frame 0 (what
  /// `play_segment`/`replay` was last called with). Session snapshots
  /// save this so a restored session resumes at the same frame.
  [[nodiscard]] MicroTime start_time() const { return start_time_; }

  /// Frame index within the segment that should be on screen at `now`
  /// (clamped to the last frame once the segment ends).
  [[nodiscard]] int frame_index_at(MicroTime now) const;

  /// True when the segment has played through at `now`.
  [[nodiscard]] bool finished(MicroTime now) const;

  /// Returns the frame to present at `now`, advancing the pipeline as
  /// needed. Returns nullopt before `play_segment` or after `stop`.
  /// Consecutive calls within one frame period return the cached frame.
  std::optional<Frame> current_frame(MicroTime now);

  /// Audio samples for [now, now+duration) of the current segment — what
  /// a sound device callback would consume. Empty when the container is
  /// silent, playback is stopped/paused, or the segment has ended.
  [[nodiscard]] std::vector<i16> audio_window(MicroTime now,
                                              MicroTime duration) const;

  void stop();

  struct Stats {
    u64 frames_presented = 0;
    u64 frames_dropped = 0;
    u64 segment_switches = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::shared_ptr<const VideoContainer> container_;
  Options options_;
  DecodePipeline pipeline_;

  bool active_ = false;
  bool paused_ = false;
  SegmentId segment_;
  int segment_first_ = 0;
  int segment_count_ = 0;
  MicroTime start_time_ = 0;   // presentation time of segment frame 0
  MicroTime pause_time_ = 0;
  int emitted_ = 0;            // frames pulled from the pipeline so far
  std::optional<Frame> last_frame_;
  int last_index_ = -1;
  Stats stats_;
};

}  // namespace vgbl
