#include "core/demo_games.hpp"

#include "author/editor.hpp"
#include "author/importer.hpp"

namespace vgbl {
namespace {

/// Fails loudly when a scenario the builder depends on was not produced by
/// auto-segmentation (would indicate a detector regression).
[[nodiscard]] Result<ScenarioId> scenario_by_name(const Project& p, const std::string& name) {
  const Scenario* s = p.graph.find_by_name(name);
  if (!s) return internal_error("expected scenario '" + name + "' after import");
  return s->id;
}

}  // namespace

Result<Project> build_classroom_repair_project(u64 seed) {
  Project project;
  project.meta.title = "Fix the Classroom Computer";
  project.meta.author = "VGBL demo";
  project.meta.description =
      "The paper's Section 3.2 worked example: find the broken component, "
      "buy a replacement at the market, and repair the computer.";

  // Two filming locations, one scene each.
  ClipSpec clip;
  clip.width = 320;
  clip.height = 240;
  clip.fps = 24;
  clip.seed = seed;
  clip.scenes.push_back({"classroom", scene_style("classroom"), 72});
  clip.scenes.push_back({"market", scene_style("market"), 72});

  if (auto r = import_clip(project, std::move(clip)); !r.ok()) {
    return r.error();
  }
  auto classroom = scenario_by_name(project, "classroom");
  auto market = scenario_by_name(project, "market");
  if (!classroom.ok()) return classroom.error();
  if (!market.ok()) return market.error();

  Editor edit(&project);

  // Items.
  ItemDef part;
  part.name = "psu_part";
  part.description = "A replacement power supply unit.";
  part.icon = "part";
  auto psu_part = edit.add_item(part);
  if (!psu_part.ok()) return psu_part.error();

  ItemDef badge;
  badge.name = "repair_badge";
  badge.description = "Awarded for repairing the classroom computer.";
  badge.icon = "trophy";
  badge.is_reward = true;
  badge.bonus_points = 100;
  auto repair_badge = edit.add_item(badge);
  if (!repair_badge.ok()) return repair_badge.error();

  // Teacher dialogue (fixed conversation, §3.1).
  DialogueTree teacher_talk(DialogueId{}, "teacher_briefing");
  DialogueNode n1;
  n1.id = 1;
  n1.speaker = "Teacher";
  n1.line = "Our computer stopped working. Can you fix it?";
  n1.choices = {{"I will fix it.", 2, "accept_mission"},
                {"Maybe later.", kEndDialogue, ""}};
  DialogueNode n2;
  n2.id = 2;
  n2.speaker = "Teacher";
  n2.line = "Great! Examine the computer first to find the faulty part.";
  n2.next_node = kEndDialogue;
  (void)teacher_talk.add_node(n1);
  (void)teacher_talk.add_node(n2);
  auto dialogue = edit.add_dialogue(teacher_talk);
  if (!dialogue.ok()) return dialogue.error();

  // Objects — classroom.
  InteractiveObject teacher;
  teacher.name = "teacher";
  teacher.kind = ObjectKind::kNpc;
  teacher.scenario = classroom.value();
  teacher.placement.rect = {24, 130, 48, 80};
  teacher.placement.z = 2;
  teacher.sprite_spec = "icon:person:48";
  teacher.description = "Your teacher looks worried about the computer.";
  teacher.dialogue = dialogue.value();
  auto teacher_id = edit.place_object(teacher);
  if (!teacher_id.ok()) return teacher_id.error();

  InteractiveObject computer;
  computer.name = "computer";
  computer.kind = ObjectKind::kImage;
  computer.scenario = classroom.value();
  computer.placement.rect = {200, 150, 72, 56};
  computer.placement.z = 2;
  computer.sprite_spec = "icon:computer:56";
  computer.description = "An old classroom computer. It does not power on.";
  auto computer_id = edit.place_object(computer);
  if (!computer_id.ok()) return computer_id.error();

  InteractiveObject go_market;
  go_market.name = "GO MARKET";
  go_market.kind = ObjectKind::kButton;
  go_market.scenario = classroom.value();
  go_market.placement.rect = {226, 8, 86, 22};
  go_market.placement.z = 5;
  auto go_market_id = edit.place_object(go_market);
  if (!go_market_id.ok()) return go_market_id.error();

  InteractiveObject wiki;
  wiki.name = "PSU INFO";
  wiki.kind = ObjectKind::kButton;
  wiki.scenario = classroom.value();
  wiki.placement.rect = {226, 34, 86, 22};
  wiki.placement.z = 5;
  auto wiki_id = edit.place_object(wiki);
  if (!wiki_id.ok()) return wiki_id.error();

  // Objects — market.
  InteractiveObject psu_box;
  psu_box.name = "psu_box";
  psu_box.kind = ObjectKind::kItem;
  psu_box.scenario = market.value();
  psu_box.placement.rect = {140, 160, 44, 44};
  psu_box.placement.z = 2;
  psu_box.sprite_spec = "icon:part:44";
  psu_box.description = "A boxed power supply unit on the market stall.";
  psu_box.grants_item = psu_part.value();
  auto psu_box_id = edit.place_object(psu_box);
  if (!psu_box_id.ok()) return psu_box_id.error();

  InteractiveObject back_class;
  back_class.name = "BACK TO CLASS";
  back_class.kind = ObjectKind::kButton;
  back_class.scenario = market.value();
  back_class.placement.rect = {8, 8, 110, 22};
  back_class.placement.z = 5;
  auto back_class_id = edit.place_object(back_class);
  if (!back_class_id.ok()) return back_class_id.error();

  // Graph transitions (for validation, the authoring view and prefetch).
  if (auto st = edit.add_transition({classroom.value(), market.value(),
                                     "go to market", "", 1.0});
      !st.ok()) {
    return st.error();
  }
  if (auto st = edit.add_transition({market.value(), classroom.value(),
                                     "return to class", "", 1.0});
      !st.ok()) {
    return st.error();
  }

  // Rules.
  auto add_rule = [&](EventRule r) -> Status {
    auto id = edit.add_rule(std::move(r));
    return id.ok() ? Status{} : Status(id.error());
  };

  {
    EventRule r;
    r.name = "go to market";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = go_market_id.value();
    r.actions = {Action::switch_scenario(market.value())};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "back to class";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = back_class_id.value();
    r.actions = {Action::switch_scenario(classroom.value())};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "mission accepted";
    r.trigger.type = TriggerType::kDialogueTag;
    r.trigger.tag = "accept_mission";
    r.once = true;
    r.actions = {Action::set_flag("mission_accepted"),
                 Action::add_score(5, "accepted the mission"),
                 Action::show_message("Mission: repair the computer.")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "diagnose computer";
    r.trigger.type = TriggerType::kExamine;
    r.trigger.object = computer_id.value();
    r.condition = Condition::all_of(
        {Condition::flag_set("mission_accepted"),
         Condition::negate(Condition::flag_set("found_problem"))});
    r.once = true;
    r.actions = {
        Action::set_flag("found_problem"),
        Action::add_score(10, "diagnosed the fault"),
        Action::show_message("The power supply is dead! Buy a new one.")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "buy part";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = psu_box_id.value();
    r.condition = Condition::flag_set("found_problem");
    r.once = true;
    r.actions = {Action::give_item(psu_part.value()),
                 Action::hide_object(psu_box_id.value()),
                 Action::add_score(10, "bought the right part"),
                 Action::show_message("You bought the power supply.")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "browse market too early";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = psu_box_id.value();
    r.condition = Condition::negate(Condition::flag_set("found_problem"));
    r.actions = {Action::show_message(
        "You are not sure what to buy. Inspect the computer first.")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "install part";
    r.trigger.type = TriggerType::kUseItemOn;
    r.trigger.object = computer_id.value();
    r.trigger.item = psu_part.value();
    r.once = true;
    r.actions = {Action::remove_item(psu_part.value()),
                 Action::set_flag("computer_fixed"),
                 Action::show_message("The computer hums back to life!"),
                 Action::grant_reward(repair_badge.value()),
                 Action::add_score(50, "repaired the computer"),
                 Action::end_game(true)};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "open psu wiki";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = wiki_id.value();
    r.actions = {Action::open_url("vgbl://wiki/power_supply")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }

  return project;
}

Result<Project> build_treasure_hunt_project(u64 seed) {
  Project project;
  project.meta.title = "Treasure Hunt";
  project.meta.author = "VGBL demo";
  project.meta.description =
      "Find the torn map and the lantern, read the map, fetch the key from "
      "the library, and open the vault.";

  ClipSpec clip;
  clip.width = 320;
  clip.height = 240;
  clip.fps = 24;
  clip.seed = seed;
  clip.scenes.push_back({"beach", scene_style("beach"), 60});
  clip.scenes.push_back({"cave", scene_style("cave"), 60});
  clip.scenes.push_back({"library", scene_style("library"), 60});
  clip.scenes.push_back({"vault", scene_style("office"), 48});

  if (auto r = import_clip(project, std::move(clip)); !r.ok()) {
    return r.error();
  }
  auto beach = scenario_by_name(project, "beach");
  auto cave = scenario_by_name(project, "cave");
  auto library = scenario_by_name(project, "library");
  auto vault = scenario_by_name(project, "vault");
  if (!beach.ok()) return beach.error();
  if (!cave.ok()) return cave.error();
  if (!library.ok()) return library.error();
  if (!vault.ok()) return vault.error();

  Editor edit(&project);
  if (auto st = edit.set_terminal(vault.value(), true); !st.ok()) {
    return st.error();
  }

  // Items.
  auto make_item = [&](const char* name, const char* icon, const char* desc,
                       bool reward = false, i64 bonus = 0) -> Result<ItemId> {
    ItemDef def;
    def.name = name;
    def.icon = icon;
    def.description = desc;
    def.is_reward = reward;
    def.bonus_points = bonus;
    return edit.add_item(def);
  };
  auto torn_map = make_item("torn_map", "book", "A faded, torn treasure map.");
  auto lantern = make_item("lantern", "key", "An oil lantern, still working.");
  auto old_key = make_item("old_key", "key", "A heavy iron key.");
  auto readable_map =
      make_item("readable_map", "book", "The map, legible by lantern light.");
  auto trophy = make_item("gold_trophy", "trophy",
                          "The legendary golden trophy.", true, 200);
  for (const auto* r : {&torn_map, &lantern, &old_key, &readable_map, &trophy}) {
    if (!r->ok()) return r->error();
  }

  // Librarian dialogue.
  DialogueTree librarian(DialogueId{}, "librarian_hint");
  DialogueNode l1;
  l1.id = 1;
  l1.speaker = "Librarian";
  l1.line = "Looking for something?";
  l1.choices = {{"Where is the vault key?", 2, "asked_key"},
                {"Just browsing.", kEndDialogue, ""}};
  DialogueNode l2;
  l2.id = 2;
  l2.speaker = "Librarian";
  l2.line = "Check the tall bookshelf. Old things hide behind old books.";
  l2.next_node = kEndDialogue;
  l2.action_tag = "hint_given";
  (void)librarian.add_node(l1);
  (void)librarian.add_node(l2);
  auto librarian_dialogue = edit.add_dialogue(librarian);
  if (!librarian_dialogue.ok()) return librarian_dialogue.error();

  // Combine: torn map + lantern = readable map.
  CombineRule combine;
  combine.a = torn_map.value();
  combine.b = lantern.value();
  combine.result = readable_map.value();
  combine.description = "read the map by lantern light";
  if (auto st = edit.add_combine_rule(combine); !st.ok()) return st.error();

  // Objects.
  auto place = [&](const char* name, ObjectKind kind, ScenarioId scenario,
                   Rect rect, const char* sprite, const char* desc,
                   ItemId grants = {}, bool draggable = false,
                   DialogueId dlg = {}, bool visible = true)
      -> Result<ObjectId> {
    InteractiveObject o;
    o.name = name;
    o.kind = kind;
    o.scenario = scenario;
    o.placement.rect = rect;
    o.placement.z = kind == ObjectKind::kButton ? 5 : 2;
    o.placement.visible = visible;
    o.sprite_spec = sprite;
    o.description = desc;
    o.grants_item = grants;
    o.draggable = draggable;
    o.dialogue = dlg;
    return edit.place_object(o);
  };

  auto map_obj = place("torn map", ObjectKind::kItem, beach.value(),
                       {60, 180, 36, 36}, "icon:book:36",
                       "A scrap of parchment half-buried in the sand.",
                       torn_map.value(), true);
  auto to_cave = place("TO CAVE", ObjectKind::kButton, beach.value(),
                       {226, 8, 86, 22}, "", "");
  auto to_library = place("TO LIBRARY", ObjectKind::kButton, beach.value(),
                          {226, 34, 86, 22}, "", "");
  auto lantern_obj = place("lantern", ObjectKind::kItem, cave.value(),
                           {90, 170, 36, 36}, "icon:key:36",
                           "Someone left a lantern here.", lantern.value());
  auto vault_door = place("vault door", ObjectKind::kImage, cave.value(),
                          {210, 120, 70, 90}, "icon:door:70",
                          "A massive door with an old lock.");
  auto cave_back = place("TO BEACH", ObjectKind::kButton, cave.value(),
                         {8, 8, 86, 22}, "", "");
  auto bookshelf = place("bookshelf", ObjectKind::kImage, library.value(),
                         {40, 90, 80, 120}, "icon:book:80",
                         "A tall bookshelf stuffed with dusty volumes.");
  auto key_obj = place("old key", ObjectKind::kItem, library.value(),
                       {70, 150, 28, 28}, "icon:key:28",
                       "An iron key on a hook behind the books.",
                       old_key.value(), false, DialogueId{}, false);
  auto librarian_obj = place("librarian", ObjectKind::kNpc, library.value(),
                             {200, 120, 48, 90}, "icon:person:48",
                             "The librarian watches you over her glasses.",
                             ItemId{}, false, librarian_dialogue.value());
  auto lib_back = place("TO BEACH", ObjectKind::kButton, library.value(),
                        {8, 8, 86, 22}, "", "");
  auto chest = place("treasure chest", ObjectKind::kReward, vault.value(),
                     {130, 140, 60, 50}, "icon:trophy:56",
                     "The treasure of the old captain.");
  for (const auto* r :
       {&map_obj, &to_cave, &to_library, &lantern_obj, &vault_door, &cave_back,
        &bookshelf, &key_obj, &librarian_obj, &lib_back, &chest}) {
    if (!r->ok()) return r->error();
  }

  // Transitions with prefetch weights: most players go to the cave first.
  struct Edge {
    ScenarioId from, to;
    const char* label;
    f64 weight;
  };
  const Edge edges[] = {
      {beach.value(), cave.value(), "to cave", 2.0},
      {beach.value(), library.value(), "to library", 1.0},
      {cave.value(), beach.value(), "back to beach", 1.0},
      {library.value(), beach.value(), "back to beach", 1.0},
      {cave.value(), vault.value(), "open the vault", 0.5},
  };
  for (const auto& e : edges) {
    if (auto st = edit.add_transition({e.from, e.to, e.label, "", e.weight});
        !st.ok()) {
      return st.error();
    }
  }

  // Rules.
  auto add_rule = [&](EventRule r) -> Status {
    auto id = edit.add_rule(std::move(r));
    return id.ok() ? Status{} : Status(id.error());
  };
  auto nav_rule = [&](const char* name, ObjectId button, ScenarioId target) {
    EventRule r;
    r.name = name;
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = button;
    r.actions = {Action::switch_scenario(target)};
    return add_rule(r);
  };
  if (auto st = nav_rule("nav beach->cave", to_cave.value(), cave.value());
      !st.ok()) {
    return st.error();
  }
  if (auto st =
          nav_rule("nav beach->library", to_library.value(), library.value());
      !st.ok()) {
    return st.error();
  }
  if (auto st = nav_rule("nav cave->beach", cave_back.value(), beach.value());
      !st.ok()) {
    return st.error();
  }
  if (auto st = nav_rule("nav library->beach", lib_back.value(), beach.value());
      !st.ok()) {
    return st.error();
  }
  {
    EventRule r;
    r.name = "reveal key behind books";
    r.trigger.type = TriggerType::kExamine;
    r.trigger.object = bookshelf.value();
    r.condition = Condition::flag_set("heard_hint");
    r.once = true;
    r.actions = {Action::reveal_object(key_obj.value()),
                 Action::add_score(15, "found the hidden key"),
                 Action::show_message("Behind the books hangs an iron key!")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "hint noted";
    r.trigger.type = TriggerType::kDialogueTag;
    r.trigger.tag = "hint_given";
    r.once = true;
    r.actions = {Action::set_flag("heard_hint"),
                 Action::add_score(5, "asked the librarian")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "open vault";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = vault_door.value();
    r.condition = Condition::all_of({Condition::has_item(readable_map.value()),
                                     Condition::has_item(old_key.value())});
    r.actions = {Action::show_message("The key turns. The map was right!"),
                 Action::switch_scenario(vault.value())};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "vault locked";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = vault_door.value();
    r.condition = Condition::negate(
        Condition::all_of({Condition::has_item(readable_map.value()),
                           Condition::has_item(old_key.value())}));
    r.actions = {Action::show_message(
        "The vault door will not budge. You need the right key and a plan.")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }
  {
    EventRule r;
    r.name = "claim treasure";
    r.trigger.type = TriggerType::kEnterScenario;
    r.trigger.scenario = vault.value();
    r.once = true;
    r.actions = {Action::grant_reward(trophy.value()),
                 Action::add_score(100, "reached the vault")};
    if (auto st = add_rule(r); !st.ok()) return st.error();
  }

  return project;
}

Result<Project> build_quickstart_project(u64 seed) {
  Project project;
  project.meta.title = "Quickstart";
  project.meta.author = "VGBL demo";

  ClipSpec clip;
  clip.width = 320;
  clip.height = 240;
  clip.fps = 24;
  clip.seed = seed;
  clip.scenes.push_back({"classroom", scene_style("classroom"), 48});
  clip.scenes.push_back({"beach", scene_style("beach"), 48});

  if (auto r = import_clip(project, std::move(clip)); !r.ok()) {
    return r.error();
  }
  auto classroom = scenario_by_name(project, "classroom");
  auto beach = scenario_by_name(project, "beach");
  if (!classroom.ok()) return classroom.error();
  if (!beach.ok()) return beach.error();

  Editor edit(&project);
  if (auto st = edit.set_terminal(beach.value(), true); !st.ok()) {
    return st.error();
  }

  ItemDef coin;
  coin.name = "coin";
  coin.icon = "coin";
  coin.description = "A shiny coin.";
  coin.bonus_points = 10;
  auto coin_id = edit.add_item(coin);
  if (!coin_id.ok()) return coin_id.error();

  InteractiveObject coin_obj;
  coin_obj.name = "coin";
  coin_obj.kind = ObjectKind::kItem;
  coin_obj.scenario = classroom.value();
  coin_obj.placement.rect = {150, 170, 28, 28};
  coin_obj.sprite_spec = "icon:coin:28";
  coin_obj.description = "Someone dropped a coin under the desk.";
  coin_obj.grants_item = coin_id.value();
  auto coin_obj_id = edit.place_object(coin_obj);
  if (!coin_obj_id.ok()) return coin_obj_id.error();

  InteractiveObject finish;
  finish.name = "FINISH";
  finish.kind = ObjectKind::kButton;
  finish.scenario = classroom.value();
  finish.placement.rect = {226, 8, 86, 22};
  finish.placement.z = 5;
  auto finish_id = edit.place_object(finish);
  if (!finish_id.ok()) return finish_id.error();

  if (auto st = edit.add_transition(
          {classroom.value(), beach.value(), "finish", "", 1.0});
      !st.ok()) {
    return st.error();
  }

  EventRule go;
  go.name = "finish game";
  go.trigger.type = TriggerType::kClick;
  go.trigger.object = finish_id.value();
  go.actions = {Action::switch_scenario(beach.value())};
  if (auto r = edit.add_rule(go); !r.ok()) return r.error();

  return project;
}

Result<Project> build_science_quiz_project(u64 seed) {
  Project project;
  project.meta.title = "Science Check";
  project.meta.author = "VGBL demo";
  project.meta.description =
      "Pass the teacher's three-question hardware quiz to earn the badge.";

  ClipSpec clip;
  clip.width = 320;
  clip.height = 240;
  clip.fps = 24;
  clip.seed = seed;
  clip.scenes.push_back({"lab", scene_style("lab"), 72});

  if (auto r = import_clip(project, std::move(clip)); !r.ok()) {
    return r.error();
  }
  auto lab = scenario_by_name(project, "lab");
  if (!lab.ok()) return lab.error();

  Editor edit(&project);

  ItemDef badge;
  badge.name = "scholar_badge";
  badge.icon = "trophy";
  badge.is_reward = true;
  badge.bonus_points = 50;
  auto badge_id = edit.add_item(badge);
  if (!badge_id.ok()) return badge_id.error();

  Quiz quiz(QuizId{}, "hardware_basics");
  quiz.set_pass_fraction(0.66);
  quiz.add_question({"What does the power supply unit do?",
                     {"Stores your documents",
                      "Converts mains power for the components",
                      "Cools the processor"},
                     1,
                     "The PSU converts wall AC into low-voltage DC.",
                     10});
  quiz.add_question({"Which part connects all the others?",
                     {"The motherboard", "The monitor", "The mouse"},
                     0,
                     "Every component plugs into the motherboard.",
                     10});
  quiz.add_question({"A computer that does not power on most likely has a...",
                     {"full hard disk", "broken screen saver", "dead PSU"},
                     2,
                     "No power at all usually points at the supply.",
                     10});
  auto quiz_id = edit.add_quiz(quiz);
  if (!quiz_id.ok()) return quiz_id.error();

  InteractiveObject teacher;
  teacher.name = "teacher";
  teacher.kind = ObjectKind::kImage;  // no dialogue; the button starts it
  teacher.scenario = lab.value();
  teacher.placement.rect = {40, 120, 48, 90};
  teacher.sprite_spec = "icon:person:48";
  teacher.description = "The science teacher, quiz cards in hand.";
  auto teacher_id = edit.place_object(teacher);
  if (!teacher_id.ok()) return teacher_id.error();

  InteractiveObject take_quiz;
  take_quiz.name = "TAKE QUIZ";
  take_quiz.kind = ObjectKind::kButton;
  take_quiz.scenario = lab.value();
  take_quiz.placement.rect = {220, 10, 92, 22};
  take_quiz.placement.z = 5;
  auto take_quiz_id = edit.place_object(take_quiz);
  if (!take_quiz_id.ok()) return take_quiz_id.error();

  {
    EventRule r;
    r.name = "start the quiz";
    r.trigger.type = TriggerType::kClick;
    r.trigger.object = take_quiz_id.value();
    r.actions = {Action::start_quiz(quiz_id.value())};
    if (auto rid = edit.add_rule(r); !rid.ok()) return rid.error();
  }
  {
    EventRule r;
    r.name = "quiz passed";
    r.trigger.type = TriggerType::kDialogueTag;
    r.trigger.tag = "quiz_done";
    r.condition = Condition::flag_set("quiz_passed:hardware_basics");
    r.once = true;
    r.actions = {Action::grant_reward(badge_id.value()),
                 Action::end_game(true)};
    if (auto rid = edit.add_rule(r); !rid.ok()) return rid.error();
  }
  {
    EventRule r;
    r.name = "quiz failed";
    r.trigger.type = TriggerType::kDialogueTag;
    r.trigger.tag = "quiz_done";
    r.condition = Condition::negate(
        Condition::flag_set("quiz_passed:hardware_basics"));
    r.actions = {Action::show_message(
        "Not enough correct answers - study and try again!")};
    if (auto rid = edit.add_rule(r); !rid.ok()) return rid.error();
  }
  return project;
}

Result<Project> build_scaled_project(int scenario_count,
                                     int objects_per_scenario,
                                     int rules_per_object, u64 seed) {
  Project project;
  project.meta.title = "Scaled project (" + std::to_string(scenario_count) +
                       " scenarios)";
  project.meta.author = "bench";

  // The scaled workload needs an exact scenario count, so segments come
  // straight from the clip recipe (ground truth) instead of the detector —
  // detector accuracy is evaluated separately in E4.
  ClipSpec clip = make_demo_spec(scenario_count, 24, 320, 240, seed);
  project.clip_spec = clip;
  Editor edit(&project);
  std::vector<ScenarioId> ids;
  int frame = 0;
  for (int i = 0; i < scenario_count; ++i) {
    VideoSegment seg;
    seg.first_frame = frame;
    seg.frame_count = clip.scenes[static_cast<size_t>(i)].duration_frames;
    seg.suggested_name = clip.scenes[static_cast<size_t>(i)].name;
    frame += seg.frame_count;
    project.segments.push_back(seg);
    project.segment_ids.push_back(project.segment_id_alloc.next());
    auto sid = edit.add_scenario(seg.suggested_name, project.segment_ids.back());
    if (!sid.ok()) return sid.error();
    ids.push_back(sid.value());
  }
  if (auto st = edit.set_start_scenario(ids.front()); !st.ok()) {
    return st.error();
  }

  Rng rng(seed);
  for (int i = 0; i < scenario_count; ++i) {
    for (int j = 0; j < objects_per_scenario; ++j) {
      InteractiveObject o;
      o.name = "obj_" + std::to_string(i) + "_" + std::to_string(j);
      o.kind = ObjectKind::kButton;
      o.scenario = ids[static_cast<size_t>(i)];
      const i32 x = static_cast<i32>(rng.range(0, 280));
      const i32 y = static_cast<i32>(rng.range(0, 200));
      o.placement.rect = {x, y, 36, 20};
      o.placement.z = static_cast<i32>(j);
      auto oid = edit.place_object(o);
      if (!oid.ok()) return oid.error();
      for (int k = 0; k < rules_per_object; ++k) {
        EventRule r;
        r.name = "rule_" + o.name + "_" + std::to_string(k);
        r.trigger.type = TriggerType::kClick;
        r.trigger.object = oid.value();
        r.condition = Condition::score_at_least(static_cast<i64>(k));
        r.actions = {Action::add_score(1, "clicked " + o.name)};
        if (auto rid = edit.add_rule(r); !rid.ok()) return rid.error();
      }
    }
    if (i + 1 < scenario_count) {
      if (auto st = edit.add_transition({ids[static_cast<size_t>(i)],
                                         ids[static_cast<size_t>(i + 1)],
                                         "next", "", 1.0});
          !st.ok()) {
        return st.error();
      }
    }
  }
  if (auto st = edit.set_terminal(ids.back(), true); !st.ok()) {
    return st.error();
  }
  return project;
}

}  // namespace vgbl
