#include "core/classroom.hpp"

#include <algorithm>
#include <optional>

#include "concurrency/thread_pool.hpp"
#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/wall_clock.hpp"
#include "util/text.hpp"

namespace vgbl {

namespace {

/// Classroom-subsystem metrics, including the LearningTracker aggregates
/// (interactions, decisions, rewards) so the lecturer-facing §3.3 reward
/// view and the ops view share one export path. All increments happen in
/// the deterministic post-barrier aggregation loop — never on worker
/// threads mid-run — so instrumentation cannot perturb scheduling.
struct ClassroomMetrics {
  obs::Counter& students;
  obs::Counter& steps;
  obs::Counter& completions;
  obs::Counter& successes;
  obs::Counter& resumed;
  obs::Counter& interactions;
  obs::Counter& decisions;
  obs::Counter& rewards;
  obs::Counter& items_collected;
  obs::Histogram& student_wall_ms;
  obs::Histogram& rewards_per_student;
  obs::Gauge& steps_per_sec;

  static ClassroomMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ClassroomMetrics m{
        reg.counter("classroom_students_total", "students simulated"),
        reg.counter("classroom_steps_total", "bot steps executed"),
        reg.counter("classroom_completions_total",
                    "students who finished their game"),
        reg.counter("classroom_successes_total",
                    "students who finished successfully"),
        reg.counter("classroom_resumed_total",
                    "students whose run resumed from a session store"),
        reg.counter("classroom_interactions_total",
                    "LearningTracker interactions across students"),
        reg.counter("classroom_decisions_total",
                    "LearningTracker decisions across students"),
        reg.counter("classroom_rewards_total",
                    "LearningTracker rewards earned across students"),
        reg.counter("classroom_items_collected_total",
                    "LearningTracker items collected across students"),
        reg.histogram("classroom_student_wall_ms",
                      obs::exponential_buckets(0.25, 2.0, 14),
                      "wall time to simulate one student"),
        reg.histogram("classroom_rewards_per_student",
                      obs::linear_buckets(0, 1, 16),
                      "rewards earned by one student"),
        reg.gauge("classroom_steps_per_sec",
                  "bot-step throughput of the latest classroom run")};
    return m;
  }
};

}  // namespace

u64 classroom_student_seed(u64 classroom_seed, int student_id) {
  // Pure (seed, id) mixing: one splitmix step decorrelates adjacent
  // classroom seeds, a golden-ratio stride separates adjacent students,
  // and a second splitmix step whitens the result. No shared generator is
  // consulted, so the seed — and therefore the whole student run — is
  // independent of execution order.
  u64 state = classroom_seed;
  (void)splitmix64(state);
  state += static_cast<u64>(static_cast<u32>(student_id)) *
           0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

namespace {

void fill_from_session(StudentResult& r, const GameSession& session,
                       const SimClock& clock, const BotResult& bot) {
  r.completed = bot.completed;
  r.succeeded = bot.succeeded;
  r.steps = bot.steps;
  r.score = session.score();
  r.play_seconds = to_seconds(clock.now());
  r.decisions = static_cast<int>(session.tracker().decisions().size());
  r.items_collected =
      static_cast<int>(session.tracker().items_collected().size());
  r.rewards = static_cast<int>(session.tracker().rewards_earned().size());
  r.interactions = static_cast<int>(session.tracker().interactions().size());
  r.unlocks = session.rewards().unlock_log();
  r.badge_points = session.rewards().total_bonus_points();
}

/// Commits a finished student's unlock log to the shared badge store from
/// the worker thread that ran it (the concurrency the store's sharded
/// locks exist for). Durable-store failures do not fail the simulation —
/// the in-memory summary is already complete.
void commit_to_badge_store(const ClassroomOptions& options,
                           const std::string& student,
                           const StudentResult& r) {
  if (options.badge_store == nullptr || r.unlocks.empty()) return;
  auto committed = options.badge_store->commit(student, r.unlocks);
  (void)committed;
}

/// Simulates one student, start to finish. Reads only immutable shared
/// state (the bundle, the options) plus the student's own store files, so
/// any number of these can run concurrently. Returns nullopt when a
/// session cannot be opened/started (that student is skipped, as before).
std::optional<StudentResult> run_student(
    const std::shared_ptr<const GameBundle>& bundle,
    const ClassroomOptions& options, int index) {
  const i64 t0_us = obs::wall_now_us();
  const BotPolicy policy =
      options.policies.empty()
          ? BotPolicy::kExplorer
          : options.policies[static_cast<size_t>(index) %
                             options.policies.size()];
  const u64 bot_seed = classroom_student_seed(options.seed, index + 1);

  StudentResult r;
  r.student_id = index + 1;
  r.policy = policy;
  auto finish = [&](StudentResult result) {
    result.wall_ms = static_cast<f64>(obs::wall_now_us() - t0_us) / 1000.0;
    return result;
  };

  if (options.store == nullptr) {
    SimClock clock;
    // The span stamps the student's own sim clock — observe-only, so the
    // determinism contract is untouched (DESIGN.md §5d).
    VGBL_SPAN("classroom.student", &clock);
    SessionOptions session_options;
    session_options.reward_rules = options.reward_rules;
    GameSession session(bundle, &clock, session_options);
    if (!session.start().ok()) return std::nullopt;

    const BotResult bot = run_bot(session, clock, policy,
                                  options.max_steps_per_student, bot_seed);
    fill_from_session(r, session, clock, bot);
    commit_to_badge_store(options, "student-" + std::to_string(index + 1), r);
    return finish(r);
  }

  // Persisted run: play half the budget, suspend to disk (checkpoint +
  // session teardown), then resume from the store and finish. The resumed
  // session continues from the snapshot exactly where the first half left
  // off — bots mutate sessions directly, so suspension rides the
  // snapshot path rather than the input journal.
  VGBL_SPAN("classroom.student");
  const std::string student = "student-" + std::to_string(index + 1);
  (void)options.store->remove_session(student);
  const int first_half = options.max_steps_per_student / 2;

  auto opened = options.store->open_session(bundle, student);
  if (!opened.ok()) return std::nullopt;
  BotResult bot = run_bot(opened.value()->session(), opened.value()->clock(),
                          policy, first_half, bot_seed);
  if (!opened.value()->checkpoint().ok()) return std::nullopt;
  opened.value().reset();  // suspend: the live session is gone

  auto resumed = options.store->open_session(bundle, student);
  if (!resumed.ok()) return std::nullopt;
  PersistedSession& ps = *resumed.value();
  if (!bot.completed) {
    const BotResult rest =
        run_bot(ps.session(), ps.clock(), policy,
                options.max_steps_per_student - first_half, bot_seed + 1);
    bot.steps += rest.steps;
    bot.completed = rest.completed;
    bot.succeeded = rest.succeeded;
  }
  (void)ps.checkpoint();

  r.resumed = ps.resumed();
  fill_from_session(r, ps.session(), ps.clock(), bot);
  commit_to_badge_store(options, student, r);
  return finish(r);
}

}  // namespace

ClassroomSummary simulate_classroom(std::shared_ptr<const GameBundle> bundle,
                                    const ClassroomOptions& options) {
  // Every student writes only its own pre-allocated slot; aggregation
  // happens after the parallel_for barrier, in index order. That plus the
  // pure per-student seeding makes the parallel path bit-identical to the
  // sequential one.
  const i64 run_started_us = obs::wall_now_us();
  std::vector<std::optional<StudentResult>> results(
      static_cast<size_t>(std::max(0, options.student_count)));
  auto run_one = [&](i64 i) {
    results[static_cast<size_t>(i)] =
        run_student(bundle, options, static_cast<int>(i));
  };

  if (options.worker_threads > 0 && options.student_count > 1) {
    ThreadPool pool(static_cast<unsigned>(options.worker_threads));
    // Grain 1: students are coarse, heterogeneous tasks — let the pool
    // load-balance them individually.
    pool.parallel_for(0, options.student_count, run_one, /*grain=*/1);
  } else {
    for (int i = 0; i < options.student_count; ++i) run_one(i);
  }

  ClassroomSummary summary;
  f64 interactions = 0;
  ClassroomMetrics& metrics = ClassroomMetrics::get();
  for (auto& slot : results) {
    if (!slot.has_value()) continue;
    interactions += static_cast<f64>(slot->interactions);
    VGBL_COUNT(metrics.students);
    VGBL_COUNT(metrics.steps, static_cast<u64>(std::max(0, slot->steps)));
    if (slot->completed) VGBL_COUNT(metrics.completions);
    if (slot->succeeded) VGBL_COUNT(metrics.successes);
    if (slot->resumed) VGBL_COUNT(metrics.resumed);
    VGBL_COUNT(metrics.interactions, static_cast<u64>(slot->interactions));
    VGBL_COUNT(metrics.decisions, static_cast<u64>(slot->decisions));
    VGBL_COUNT(metrics.rewards, static_cast<u64>(slot->rewards));
    VGBL_COUNT(metrics.items_collected,
               static_cast<u64>(slot->items_collected));
    VGBL_OBSERVE(metrics.student_wall_ms, slot->wall_ms);
    VGBL_OBSERVE(metrics.rewards_per_student, static_cast<f64>(slot->rewards));
    summary.students.push_back(std::move(*slot));
  }
  if (obs::enabled()) {
    const f64 elapsed =
        static_cast<f64>(obs::wall_now_us() - run_started_us) / 1e6;
    u64 total_steps = 0;
    for (const auto& s : summary.students) {
      total_steps += static_cast<u64>(std::max(0, s.steps));
    }
    VGBL_GAUGE_SET(metrics.steps_per_sec,
                   elapsed > 0 ? static_cast<f64>(total_steps) / elapsed : 0);
  }

  const f64 n = static_cast<f64>(
      std::max<size_t>(1, summary.students.size()));
  for (const auto& s : summary.students) {
    summary.completion_rate += s.completed ? 1.0 : 0.0;
    summary.mean_score += static_cast<f64>(s.score);
    summary.mean_play_seconds += s.play_seconds;
  }
  summary.completion_rate /= n;
  summary.mean_score /= n;
  summary.mean_play_seconds /= n;
  summary.mean_interactions = interactions / n;

  if (options.reward_rules != nullptr) {
    std::vector<rewards::LeaderboardRow> rows;
    for (const auto& s : summary.students) {
      rewards::LeaderboardRow row;
      row.student_id = "student-" + std::to_string(s.student_id);
      row.badges = static_cast<int>(s.unlocks.size());
      row.badge_points = s.badge_points;
      // Ledger totals already include badge bonuses; the row keeps the
      // gameplay score separate so total_points() counts bonuses once.
      row.score = s.score - s.badge_points;
      for (const auto& u : s.unlocks) row.badge_names.push_back(u.badge);
      rows.push_back(std::move(row));
    }
    summary.leaderboard = rewards::build_leaderboard(std::move(rows));
    rewards::export_leaderboard_metrics(summary.leaderboard);
  }
  return summary;
}

namespace {

const char* policy_name(BotPolicy p) {
  switch (p) {
    case BotPolicy::kExplorer:
      return "explorer";
    case BotPolicy::kRandom:
      return "random";
    case BotPolicy::kSpeedrun:
      return "speedrun";
  }
  return "?";
}

}  // namespace

StreamingConfig StreamReplayOptions::classroom_link_defaults() {
  StreamingConfig config;
  config.network.bandwidth_bps = 40'000'000;  // 40 Mbit school downlink
  config.network.base_latency = milliseconds(15);
  config.network.jitter = milliseconds(5);
  config.network.loss_rate = 0.002;
  config.prefetch_enabled = true;
  return config;
}

StreamReplaySummary replay_classroom_stream(
    const GameBundle& bundle, const StreamReplayOptions& options) {
  StreamingConfig config = options.streaming;
  config.faults = FaultSchedule::profile(options.fault_profile);
  if (options.fault_profile == "iid2") {
    config.network.loss_rate = std::max(config.network.loss_rate, 0.02);
  }
  StreamServer server(bundle.video.get(), config, options.seed);
  for (int i = 0; i < options.client_count; ++i) {
    // Path derivation reuses the gameplay engine's per-student seed scheme
    // so the delivery cohort walks the same kind of scenario paths.
    Rng rng(classroom_student_seed(options.seed, i + 1));
    server.add_client(random_student_path(bundle.graph, options.max_hops, rng));
  }
  StreamReplaySummary out;
  out.end_time = server.run(options.deadline);
  out.aggregate = server.aggregate();
  out.arq = server.arq_stats();
  out.packets_sent = server.network().stats().packets_sent;
  out.packets_lost = server.network().stats().packets_lost;
  return out;
}

std::string StreamReplaySummary::report() const {
  std::string out;
  out += "startup " + format_double(aggregate.mean_startup_ms, 1) + " ms (p95 " +
         format_double(aggregate.p95_startup_ms, 1) + "), rebuffer ratio " +
         format_double(aggregate.mean_rebuffer_ratio, 3) + ", " +
         std::to_string(aggregate.total_rebuffer_events) + " stall(s), " +
         std::to_string(aggregate.prefetch_hits) + " prefetch hit(s)\n";
  out += "delivery: " + std::to_string(packets_sent) + " packet(s) sent, " +
         std::to_string(packets_lost) + " lost, " +
         std::to_string(aggregate.retransmits) + " retransmit(s), " +
         std::to_string(aggregate.nacks_sent) + " nack(s), " +
         std::to_string(arq.abandoned) + " abandoned, " +
         std::to_string(aggregate.frames_skipped) + " frame(s) skipped, " +
         std::to_string(aggregate.unfinished_clients) +
         " unfinished client(s)\n";
  return out;
}

std::string ClassroomSummary::report() const {
  std::string out;
  out += "=== Classroom summary (" + std::to_string(students.size()) +
         " students) ===\n";
  out += "completion rate: " + format_double(completion_rate * 100, 1) + "%\n";
  out += "mean score:      " + format_double(mean_score, 1) + "\n";
  out += "mean play time:  " + format_double(mean_play_seconds, 1) + " s\n";
  out += "mean actions:    " + format_double(mean_interactions, 1) + "\n";
  out += pad_right("student", 9) + pad_right("policy", 10) +
         pad_right("done", 6) + pad_right("score", 7) + pad_right("steps", 7) +
         pad_right("items", 7) + pad_right("rewards", 8) + "decisions\n";
  for (const auto& s : students) {
    out += pad_right("#" + std::to_string(s.student_id), 9) +
           pad_right(policy_name(s.policy), 10) +
           pad_right(s.completed ? (s.succeeded ? "yes" : "fail") : "no", 6) +
           pad_right(std::to_string(s.score), 7) +
           pad_right(std::to_string(s.steps), 7) +
           pad_right(std::to_string(s.items_collected), 7) +
           pad_right(std::to_string(s.rewards), 8) +
           std::to_string(s.decisions) + "\n";
  }
  if (!leaderboard.rows.empty()) {
    out += "=== Leaderboard ===\n";
    out += leaderboard.report();
  }
  return out;
}

}  // namespace vgbl
