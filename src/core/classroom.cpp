#include "core/classroom.hpp"

#include <algorithm>
#include <optional>

#include "concurrency/thread_pool.hpp"
#include "core/classroom_engine.hpp"
#include "obs/macros.hpp"
#include "obs/trace.hpp"
#include "obs/wall_clock.hpp"
#include "sim/classroom_des.hpp"
#include "util/text.hpp"

namespace vgbl {

namespace {

/// Simulates one student, start to finish, on the legacy thread-per-student
/// engine. Reads only immutable shared state (the bundle, the options) plus
/// the student's own store files, so any number of these can run
/// concurrently. Returns nullopt when a session cannot be opened/started
/// (that student is skipped, as before). Kept as the differential-testing
/// oracle for the DES engine (tests/classroom_differential_test.cpp).
std::optional<StudentResult> run_student(
    const std::shared_ptr<const GameBundle>& bundle,
    const ClassroomOptions& options, int index) {
  const i64 t0_us = obs::wall_now_us();
  const BotPolicy policy = classroom_engine::student_policy(options, index);
  const u64 bot_seed = classroom_student_seed(options.seed, index + 1);

  StudentResult r;
  r.student_id = index + 1;
  r.policy = policy;
  auto finish = [&](StudentResult result) {
    result.wall_ms = static_cast<f64>(obs::wall_now_us() - t0_us) / 1000.0;
    return result;
  };

  if (options.store == nullptr) {
    SimClock clock;
    // The span stamps the student's own sim clock — observe-only, so the
    // determinism contract is untouched (DESIGN.md §5d).
    VGBL_SPAN("classroom.student", &clock);
    SessionOptions session_options;
    session_options.reward_rules = options.reward_rules;
    // Synchronous decode, matching the DES engine's sessions: simulated
    // students gain nothing from decode-ahead threads, and the oracle
    // should construct its sessions exactly like the engine under test.
    session_options.decode_threads = 0;
    GameSession session(bundle, &clock, session_options);
    if (!session.start().ok()) return std::nullopt;

    const BotResult bot = run_bot(session, clock, policy,
                                  options.max_steps_per_student, bot_seed);
    classroom_engine::fill_student_result(r, session, clock, bot);
    classroom_engine::commit_unlocks(
        options.badge_store, "student-" + std::to_string(index + 1), r);
    return finish(r);
  }

  // Persisted run: play half the budget, suspend to disk (checkpoint +
  // session teardown), then resume from the store and finish. The resumed
  // session continues from the snapshot exactly where the first half left
  // off — bots mutate sessions directly, so suspension rides the
  // snapshot path rather than the input journal.
  VGBL_SPAN("classroom.student");
  const std::string student = "student-" + std::to_string(index + 1);
  (void)options.store->remove_session(student);
  const int first_half = options.max_steps_per_student / 2;

  auto opened = options.store->open_session(bundle, student);
  if (!opened.ok()) return std::nullopt;
  BotResult bot = run_bot(opened.value()->session(), opened.value()->clock(),
                          policy, first_half, bot_seed);
  if (!opened.value()->checkpoint().ok()) return std::nullopt;
  opened.value().reset();  // suspend: the live session is gone

  auto resumed = options.store->open_session(bundle, student);
  if (!resumed.ok()) return std::nullopt;
  PersistedSession& ps = *resumed.value();
  if (!bot.completed) {
    const BotResult rest =
        run_bot(ps.session(), ps.clock(), policy,
                options.max_steps_per_student - first_half, bot_seed + 1);
    bot.steps += rest.steps;
    bot.completed = rest.completed;
    bot.succeeded = rest.succeeded;
  }
  (void)ps.checkpoint();

  r.resumed = ps.resumed();
  classroom_engine::fill_student_result(r, ps.session(), ps.clock(), bot);
  classroom_engine::commit_unlocks(options.badge_store, student, r);
  return finish(r);
}

}  // namespace

ClassroomSummary simulate_classroom(std::shared_ptr<const GameBundle> bundle,
                                    const ClassroomOptions& options) {
  // Every student writes only its own pre-allocated slot; aggregation
  // happens after the run barrier, in index order. That plus the pure
  // per-student seeding makes every engine/thread/shard combination
  // bit-identical to the sequential legacy run.
  const i64 run_started_us = obs::wall_now_us();
  std::vector<std::optional<StudentResult>> results(
      static_cast<size_t>(std::max(0, options.student_count)));

  if (options.engine == ClassroomEngine::kDes) {
    sim::run_classroom_des(bundle, options, results);
  } else {
    auto run_one = [&](i64 i) {
      results[static_cast<size_t>(i)] =
          run_student(bundle, options, static_cast<int>(i));
    };
    if (options.worker_threads > 0 && options.student_count > 1) {
      ThreadPool pool(static_cast<unsigned>(options.worker_threads));
      // Grain 1: students are coarse, heterogeneous tasks — let the pool
      // load-balance them individually.
      pool.parallel_for(0, options.student_count, run_one, /*grain=*/1);
    } else {
      for (int i = 0; i < options.student_count; ++i) run_one(i);
    }
  }

  return classroom_engine::aggregate_classroom_results(std::move(results),
                                                       options,
                                                       run_started_us);
}

namespace {

const char* policy_name(BotPolicy p) {
  switch (p) {
    case BotPolicy::kExplorer:
      return "explorer";
    case BotPolicy::kRandom:
      return "random";
    case BotPolicy::kSpeedrun:
      return "speedrun";
  }
  return "?";
}

}  // namespace

StreamReplaySummary replay_classroom_stream(
    const GameBundle& bundle, const StreamReplayOptions& options) {
  StreamingConfig config = options.streaming;
  config.faults = FaultSchedule::profile(options.fault_profile);
  if (options.fault_profile == "iid2") {
    config.network.loss_rate = std::max(config.network.loss_rate, 0.02);
  }
  StreamServer server(bundle.video.get(), config, options.seed);
  for (int i = 0; i < options.client_count; ++i) {
    // Path derivation reuses the gameplay engine's per-student seed scheme
    // so the delivery cohort walks the same kind of scenario paths.
    Rng rng(classroom_student_seed(options.seed, i + 1));
    server.add_client(random_student_path(bundle.graph, options.max_hops, rng));
  }
  StreamReplaySummary out;
  out.end_time = server.run(options.deadline);
  out.aggregate = server.aggregate();
  out.arq = server.arq_stats();
  out.packets_sent = server.network().stats().packets_sent;
  out.packets_lost = server.network().stats().packets_lost;
  return out;
}

std::string ClassroomSummary::report() const {
  std::string out;
  out += "=== Classroom summary (" + std::to_string(students.size()) +
         " students) ===\n";
  out += "completion rate: " + format_double(completion_rate * 100, 1) + "%\n";
  out += "mean score:      " + format_double(mean_score, 1) + "\n";
  out += "mean play time:  " + format_double(mean_play_seconds, 1) + " s\n";
  out += "mean actions:    " + format_double(mean_interactions, 1) + "\n";
  out += pad_right("student", 9) + pad_right("policy", 10) +
         pad_right("done", 6) + pad_right("score", 7) + pad_right("steps", 7) +
         pad_right("items", 7) + pad_right("rewards", 8) + "decisions\n";
  for (const auto& s : students) {
    out += pad_right("#" + std::to_string(s.student_id), 9) +
           pad_right(policy_name(s.policy), 10) +
           pad_right(s.completed ? (s.succeeded ? "yes" : "fail") : "no", 6) +
           pad_right(std::to_string(s.score), 7) +
           pad_right(std::to_string(s.steps), 7) +
           pad_right(std::to_string(s.items_collected), 7) +
           pad_right(std::to_string(s.rewards), 8) +
           std::to_string(s.decisions) + "\n";
  }
  if (!leaderboard.rows.empty()) {
    out += "=== Leaderboard ===\n";
    out += leaderboard.report();
  }
  return out;
}

}  // namespace vgbl
