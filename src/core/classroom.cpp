#include "core/classroom.hpp"

#include "util/text.hpp"

namespace vgbl {

ClassroomSummary simulate_classroom(std::shared_ptr<const GameBundle> bundle,
                                    const ClassroomOptions& options) {
  ClassroomSummary summary;
  Rng rng(options.seed);
  f64 interactions = 0;

  for (int i = 0; i < options.student_count; ++i) {
    const BotPolicy policy =
        options.policies.empty()
            ? BotPolicy::kExplorer
            : options.policies[static_cast<size_t>(i) %
                               options.policies.size()];
    const u64 bot_seed = rng.next();

    StudentResult r;
    r.student_id = i + 1;
    r.policy = policy;

    if (options.store == nullptr) {
      SimClock clock;
      GameSession session(bundle, &clock);
      if (!session.start().ok()) continue;

      const BotResult bot = run_bot(session, clock, policy,
                                    options.max_steps_per_student, bot_seed);
      r.completed = bot.completed;
      r.succeeded = bot.succeeded;
      r.steps = bot.steps;
      r.score = session.score();
      r.play_seconds = to_seconds(clock.now());
      r.decisions = static_cast<int>(session.tracker().decisions().size());
      r.items_collected =
          static_cast<int>(session.tracker().items_collected().size());
      r.rewards = static_cast<int>(session.tracker().rewards_earned().size());
      summary.students.push_back(r);
      interactions +=
          static_cast<f64>(session.tracker().interactions().size());
      continue;
    }

    // Persisted run: play half the budget, suspend to disk (checkpoint +
    // session teardown), then resume from the store and finish. The resumed
    // session continues from the snapshot exactly where the first half left
    // off — bots mutate sessions directly, so suspension rides the
    // snapshot path rather than the input journal.
    const std::string student = "student-" + std::to_string(i + 1);
    (void)options.store->remove_session(student);
    const int first_half = options.max_steps_per_student / 2;

    auto opened = options.store->open_session(bundle, student);
    if (!opened.ok()) continue;
    BotResult bot = run_bot(opened.value()->session(), opened.value()->clock(),
                            policy, first_half, bot_seed);
    if (!opened.value()->checkpoint().ok()) continue;
    opened.value().reset();  // suspend: the live session is gone

    auto resumed = options.store->open_session(bundle, student);
    if (!resumed.ok()) continue;
    PersistedSession& ps = *resumed.value();
    if (!bot.completed) {
      const BotResult rest =
          run_bot(ps.session(), ps.clock(), policy,
                  options.max_steps_per_student - first_half, bot_seed + 1);
      bot.steps += rest.steps;
      bot.completed = rest.completed;
      bot.succeeded = rest.succeeded;
    }
    (void)ps.checkpoint();

    r.resumed = ps.resumed();
    r.completed = bot.completed;
    r.succeeded = bot.succeeded;
    r.steps = bot.steps;
    r.score = ps.session().score();
    r.play_seconds = to_seconds(ps.clock().now());
    r.decisions = static_cast<int>(ps.session().tracker().decisions().size());
    r.items_collected =
        static_cast<int>(ps.session().tracker().items_collected().size());
    r.rewards =
        static_cast<int>(ps.session().tracker().rewards_earned().size());
    summary.students.push_back(r);
    interactions +=
        static_cast<f64>(ps.session().tracker().interactions().size());
  }

  const f64 n = static_cast<f64>(
      std::max<size_t>(1, summary.students.size()));
  for (const auto& s : summary.students) {
    summary.completion_rate += s.completed ? 1.0 : 0.0;
    summary.mean_score += static_cast<f64>(s.score);
    summary.mean_play_seconds += s.play_seconds;
  }
  summary.completion_rate /= n;
  summary.mean_score /= n;
  summary.mean_play_seconds /= n;
  summary.mean_interactions = interactions / n;
  return summary;
}

namespace {

const char* policy_name(BotPolicy p) {
  switch (p) {
    case BotPolicy::kExplorer:
      return "explorer";
    case BotPolicy::kRandom:
      return "random";
    case BotPolicy::kSpeedrun:
      return "speedrun";
  }
  return "?";
}

}  // namespace

std::string ClassroomSummary::report() const {
  std::string out;
  out += "=== Classroom summary (" + std::to_string(students.size()) +
         " students) ===\n";
  out += "completion rate: " + format_double(completion_rate * 100, 1) + "%\n";
  out += "mean score:      " + format_double(mean_score, 1) + "\n";
  out += "mean play time:  " + format_double(mean_play_seconds, 1) + " s\n";
  out += "mean actions:    " + format_double(mean_interactions, 1) + "\n";
  out += pad_right("student", 9) + pad_right("policy", 10) +
         pad_right("done", 6) + pad_right("score", 7) + pad_right("steps", 7) +
         pad_right("items", 7) + pad_right("rewards", 8) + "decisions\n";
  for (const auto& s : students) {
    out += pad_right("#" + std::to_string(s.student_id), 9) +
           pad_right(policy_name(s.policy), 10) +
           pad_right(s.completed ? (s.succeeded ? "yes" : "fail") : "no", 6) +
           pad_right(std::to_string(s.score), 7) +
           pad_right(std::to_string(s.steps), 7) +
           pad_right(std::to_string(s.items_collected), 7) +
           pad_right(std::to_string(s.rewards), 8) +
           std::to_string(s.decisions) + "\n";
  }
  return out;
}

}  // namespace vgbl
