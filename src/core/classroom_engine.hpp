// Shared building blocks for the two classroom engines (DESIGN.md §5i):
// the legacy thread-per-student path in classroom.cpp and the
// discrete-event path in src/sim/classroom_des.cpp. Everything here is
// inline on purpose — src/sim uses these helpers without linking the
// classroom engine itself (vgbl_core links vgbl_sim, not the other way
// around), and both engines sharing the exact aggregation arithmetic is
// what makes their summaries bit-identical.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "core/classroom.hpp"
#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/wall_clock.hpp"

namespace vgbl::classroom_engine {

/// Classroom-subsystem metrics, including the LearningTracker aggregates
/// (interactions, decisions, rewards) so the lecturer-facing §3.3 reward
/// view and the ops view share one export path. All increments happen in
/// the deterministic post-barrier aggregation loop — never on worker
/// threads mid-run — so instrumentation cannot perturb scheduling.
struct ClassroomMetrics {
  obs::Counter& students;
  obs::Counter& steps;
  obs::Counter& completions;
  obs::Counter& successes;
  obs::Counter& resumed;
  obs::Counter& interactions;
  obs::Counter& decisions;
  obs::Counter& rewards;
  obs::Counter& items_collected;
  obs::Histogram& student_wall_ms;
  obs::Histogram& rewards_per_student;
  obs::Gauge& steps_per_sec;

  static ClassroomMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static ClassroomMetrics m{
        reg.counter("classroom_students_total", "students simulated"),
        reg.counter("classroom_steps_total", "bot steps executed"),
        reg.counter("classroom_completions_total",
                    "students who finished their game"),
        reg.counter("classroom_successes_total",
                    "students who finished successfully"),
        reg.counter("classroom_resumed_total",
                    "students whose run resumed from a session store"),
        reg.counter("classroom_interactions_total",
                    "LearningTracker interactions across students"),
        reg.counter("classroom_decisions_total",
                    "LearningTracker decisions across students"),
        reg.counter("classroom_rewards_total",
                    "LearningTracker rewards earned across students"),
        reg.counter("classroom_items_collected_total",
                    "LearningTracker items collected across students"),
        reg.histogram("classroom_student_wall_ms",
                      obs::exponential_buckets(0.25, 2.0, 14),
                      "wall time to simulate one student"),
        reg.histogram("classroom_rewards_per_student",
                      obs::linear_buckets(0, 1, 16),
                      "rewards earned by one student"),
        reg.gauge("classroom_steps_per_sec",
                  "bot-step throughput of the latest classroom run")};
    return m;
  }
};

/// Policy for the 0-based student `index` under the options' policy mix.
inline BotPolicy student_policy(const ClassroomOptions& options, int index) {
  return options.policies.empty()
             ? BotPolicy::kExplorer
             : options.policies[static_cast<size_t>(index) %
                                options.policies.size()];
}

/// Fills the summary-facing fields of `r` from a finished session.
inline void fill_student_result(StudentResult& r, const GameSession& session,
                                const SimClock& clock, const BotResult& bot) {
  r.completed = bot.completed;
  r.succeeded = bot.succeeded;
  r.steps = bot.steps;
  r.score = session.score();
  r.play_seconds = to_seconds(clock.now());
  r.decisions = static_cast<int>(session.tracker().decisions().size());
  r.items_collected =
      static_cast<int>(session.tracker().items_collected().size());
  r.rewards = static_cast<int>(session.tracker().rewards_earned().size());
  r.interactions = static_cast<int>(session.tracker().interactions().size());
  r.unlocks = session.rewards().unlock_log();
  r.badge_points = session.rewards().total_bonus_points();
}

/// Commits a finished student's unlock log to the shared badge store from
/// whichever worker finished it (the concurrency the store's sharded locks
/// exist for). Durable-store failures do not fail the simulation — the
/// in-memory summary is already complete.
inline void commit_unlocks(rewards::BadgeStore* badge_store,
                           const std::string& student,
                           const StudentResult& r) {
  if (badge_store == nullptr || r.unlocks.empty()) return;
  auto committed = badge_store->commit(student, r.unlocks);
  (void)committed;
}

/// Post-barrier aggregation over the per-student result slots: metrics,
/// cohort means and the ranked leaderboard, all in index order. Both
/// engines fill slots however they like (thread pool, event shards) and
/// funnel through this one function, so summary bits cannot depend on the
/// engine. `run_started_us` is the obs::wall_now_us() stamp from before
/// the run (throughput gauge only — observe-only by contract).
inline ClassroomSummary aggregate_classroom_results(
    std::vector<std::optional<StudentResult>> results,
    const ClassroomOptions& options, i64 run_started_us) {
  ClassroomSummary summary;
  f64 interactions = 0;
  ClassroomMetrics& metrics = ClassroomMetrics::get();
  for (auto& slot : results) {
    if (!slot.has_value()) continue;
    interactions += static_cast<f64>(slot->interactions);
    VGBL_COUNT(metrics.students);
    VGBL_COUNT(metrics.steps, static_cast<u64>(std::max(0, slot->steps)));
    if (slot->completed) VGBL_COUNT(metrics.completions);
    if (slot->succeeded) VGBL_COUNT(metrics.successes);
    if (slot->resumed) VGBL_COUNT(metrics.resumed);
    VGBL_COUNT(metrics.interactions, static_cast<u64>(slot->interactions));
    VGBL_COUNT(metrics.decisions, static_cast<u64>(slot->decisions));
    VGBL_COUNT(metrics.rewards, static_cast<u64>(slot->rewards));
    VGBL_COUNT(metrics.items_collected,
               static_cast<u64>(slot->items_collected));
    VGBL_OBSERVE(metrics.student_wall_ms, slot->wall_ms);
    VGBL_OBSERVE(metrics.rewards_per_student, static_cast<f64>(slot->rewards));
    summary.students.push_back(std::move(*slot));
  }
  if (obs::enabled()) {
    const f64 elapsed =
        static_cast<f64>(obs::wall_now_us() - run_started_us) / 1e6;
    u64 total_steps = 0;
    for (const auto& s : summary.students) {
      total_steps += static_cast<u64>(std::max(0, s.steps));
    }
    VGBL_GAUGE_SET(metrics.steps_per_sec,
                   elapsed > 0 ? static_cast<f64>(total_steps) / elapsed : 0);
  }

  const f64 n = static_cast<f64>(
      std::max<size_t>(1, summary.students.size()));
  for (const auto& s : summary.students) {
    summary.completion_rate += s.completed ? 1.0 : 0.0;
    summary.mean_score += static_cast<f64>(s.score);
    summary.mean_play_seconds += s.play_seconds;
  }
  summary.completion_rate /= n;
  summary.mean_score /= n;
  summary.mean_play_seconds /= n;
  summary.mean_interactions = interactions / n;

  if (options.reward_rules != nullptr) {
    std::vector<rewards::LeaderboardRow> rows;
    for (const auto& s : summary.students) {
      rewards::LeaderboardRow row;
      row.student_id = "student-" + std::to_string(s.student_id);
      row.badges = static_cast<int>(s.unlocks.size());
      row.badge_points = s.badge_points;
      // Ledger totals already include badge bonuses; the row keeps the
      // gameplay score separate so total_points() counts bonuses once.
      row.score = s.score - s.badge_points;
      for (const auto& u : s.unlocks) row.badge_names.push_back(u.badge);
      rows.push_back(std::move(row));
    }
    summary.leaderboard = rewards::build_leaderboard(std::move(rows));
    rewards::export_leaderboard_metrics(summary.leaderboard);
  }
  return summary;
}

}  // namespace vgbl::classroom_engine
