// Ready-made demonstration games, authored through the public Editor API.
// `classroom_repair` is the paper's §3.2 worked example implemented
// verbatim; `treasure_hunt` is a larger branching adventure exercising
// combining, rewards and weighted transitions. Shared by the examples, the
// integration tests and the benchmarks.
#pragma once

#include "author/project.hpp"
#include "util/result.hpp"

namespace vgbl {

/// The paper's worked example (§3.2): an NPC teacher reports a broken
/// classroom computer; the player examines it, discovers the dead power
/// supply, travels to the market scenario, buys the part, returns and
/// installs it, earning a reward. Scenarios: classroom ⇄ market.
[[nodiscard]] Result<Project> build_classroom_repair_project(u64 seed = 42);

/// A four-scenario adventure (beach → cave/library → vault): find the map
/// and the key, combine them into a marked map, unlock the vault, reach
/// the terminal treasure scenario. Exercises combine rules, weighted
/// transitions, hidden objects and score bonuses.
[[nodiscard]] Result<Project> build_treasure_hunt_project(u64 seed = 1337);

/// Minimal two-scenario game used by the quickstart example and smoke
/// tests: one button switches scenes, one collectable ends the game.
[[nodiscard]] Result<Project> build_quickstart_project(u64 seed = 7);

/// A one-scenario science class: the teacher NPC offers a knowledge-check
/// quiz; passing it (≥2/3 correct) earns the scholar badge and ends the
/// game. Failing lets the player retake it. Exercises the quiz subsystem
/// end to end (§3.2 knowledge delivery made measurable).
[[nodiscard]] Result<Project> build_science_quiz_project(u64 seed = 77);

/// A synthetic project with `scenario_count` scenarios in a chain and
/// `objects_per_scenario` clickable objects each — the scalable workload
/// for authoring/serialization benchmarks (E1, E10).
[[nodiscard]] Result<Project> build_scaled_project(int scenario_count,
                                     int objects_per_scenario,
                                     int rules_per_object = 1, u64 seed = 5);

}  // namespace vgbl
