#include "core/platform.hpp"

namespace vgbl {

Result<PlaythroughResult> play_scripted(
    std::shared_ptr<const GameBundle> bundle, const InputScript& script,
    SessionOptions options) {
  SimClock clock;
  GameSession session(std::move(bundle), &clock, options);
  if (auto st = session.start(); !st.ok()) return st.error();

  ScriptRunner runner(&session, &clock);
  if (auto st = runner.run(script); !st.ok()) return st.error();

  PlaythroughResult result;
  result.game_over = session.game_over();
  result.succeeded = session.succeeded();
  result.score = session.score();
  result.learning_report = session.tracker().report(clock.now());
  result.final_screen = render_runtime_view(session);
  return result;
}

}  // namespace vgbl
