// Classroom simulation: many simulated students playing one bundle, each
// with their own session, clock and behavioural policy. Produces the
// class-level learning summary a lecturer would review (and the workload
// for the multi-client experiments).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "author/bundle.hpp"
#include "net/streaming.hpp"
#include "persist/session_store.hpp"
#include "rewards/badge_store.hpp"
#include "rewards/evaluator.hpp"
#include "rewards/leaderboard.hpp"
#include "rewards/rules.hpp"
#include "runtime/script.hpp"

namespace vgbl {

struct StudentResult {
  int student_id = 0;
  BotPolicy policy = BotPolicy::kExplorer;
  bool completed = false;
  bool succeeded = false;
  int steps = 0;
  i64 score = 0;
  f64 play_seconds = 0;
  int decisions = 0;
  int items_collected = 0;
  int rewards = 0;
  int interactions = 0;
  /// True when the student's run was suspended to a SessionStore mid-way
  /// and finished in a second, resumed session.
  bool resumed = false;
  /// Badges unlocked during the run (empty unless ClassroomOptions
  /// carried a reward rule set). The ordered unlock log is the student's
  /// canonical badge stream — encode_unlock_log() bytes over it are the
  /// determinism-contract artifact.
  std::vector<rewards::Unlock> unlocks;
  i64 badge_points = 0;  ///< bonus points across `unlocks`
  /// Wall-clock time spent simulating this student. Measurement only —
  /// every other field is covered by the determinism contract, this one
  /// varies run to run by construction.
  f64 wall_ms = 0;
};

struct ClassroomSummary {
  std::vector<StudentResult> students;
  f64 completion_rate = 0;
  f64 mean_score = 0;
  f64 mean_play_seconds = 0;
  f64 mean_interactions = 0;
  /// Ranked standings over the cohort (empty without reward rules).
  /// Built post-barrier in student-id order, so it is bit-identical
  /// across worker-thread counts like every other summary field.
  rewards::Leaderboard leaderboard;

  [[nodiscard]] std::string report() const;
};

struct ClassroomOptions {
  int student_count = 8;
  int max_steps_per_student = 400;
  /// Policy mix: students cycle through these.
  std::vector<BotPolicy> policies{BotPolicy::kExplorer, BotPolicy::kSpeedrun,
                                  BotPolicy::kRandom};
  u64 seed = 99;
  /// When set, every student plays through the store (lesson-interrupted
  /// classroom): half the step budget, checkpoint + session teardown, then
  /// resume from disk for the remaining half. Exercises the full
  /// suspend/recover path under emergent bot play.
  SessionStore* store = nullptr;
  /// Worker threads running students concurrently. 0 runs everything on
  /// the calling thread; N spins up a ThreadPool of N workers (the caller
  /// participates too). Every value produces the same ClassroomSummary:
  /// each student's RNG seed is a pure function of (seed, student_id), so
  /// no thread count, scheduling order or interleaving can leak into the
  /// results.
  int worker_threads = 0;
  /// Reward rules evaluated inline in every student's session. Null keeps
  /// rewards off (empty leaderboard, exactly the pre-rewards behaviour).
  /// For store-backed runs the SessionStore's own SessionOptions must
  /// carry the same rule set — the store constructs the sessions.
  const rewards::RewardRuleSet* reward_rules = nullptr;
  /// Durable badge store; when set, each worker commits its student's
  /// unlock log as the run finishes (commits are idempotent per rule, so
  /// re-running a classroom over the same store does not double-grant).
  rewards::BadgeStore* badge_store = nullptr;
};

/// Derives the bot seed for one student purely from the classroom seed and
/// the 1-based student id — the determinism contract behind the parallel
/// engine (DESIGN.md §5c). Exposed so tests can pin the scheme.
u64 classroom_student_seed(u64 classroom_seed, int student_id);

/// Runs every student to completion (or step budget) — sequentially, or
/// across `options.worker_threads` workers with bit-identical results.
ClassroomSummary simulate_classroom(std::shared_ptr<const GameBundle> bundle,
                                    const ClassroomOptions& options);

/// Delivery half of the classroom story: the cohort streams its scenario
/// walks over the simulated shared link, under an injectable fault profile.
struct StreamReplayOptions {
  int client_count = 16;
  u64 seed = 99;
  /// Scenario-walk length cap per student (see random_student_path).
  int max_hops = 12;
  /// FaultSchedule::profile name: "clean", "iid2", "bursty", "flap",
  /// "degraded" or "stress". "iid2" also raises the iid loss rate to 2%.
  std::string fault_profile = "clean";
  /// Base delivery config (link shape, ARQ knobs); the fault profile is
  /// applied on top. Defaults to the 40 Mbit school downlink.
  StreamingConfig streaming = classroom_link_defaults();
  MicroTime deadline = seconds(600);

  static StreamingConfig classroom_link_defaults();
};

struct StreamReplaySummary {
  StreamServer::Aggregate aggregate;
  StreamServer::ArqStats arq;
  MicroTime end_time = 0;   // sim time when the last client finished
  u64 packets_sent = 0;
  u64 packets_lost = 0;

  [[nodiscard]] std::string report() const;
};

/// Streams the cohort over the simulated link. Each client's path is
/// derived from classroom_student_seed(seed, id) — the same seed that
/// drives the gameplay cohort drives the delivery cohort, and results are
/// bit-identical across reruns of a seed.
StreamReplaySummary replay_classroom_stream(const GameBundle& bundle,
                                            const StreamReplayOptions& options);

}  // namespace vgbl
