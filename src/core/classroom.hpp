// Classroom simulation: many simulated students playing one bundle, each
// with their own session, clock and behavioural policy. Produces the
// class-level learning summary a lecturer would review (and the workload
// for the multi-client experiments).
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "author/bundle.hpp"
#include "net/streaming.hpp"
#include "persist/session_store.hpp"
#include "rewards/badge_store.hpp"
#include "rewards/evaluator.hpp"
#include "rewards/leaderboard.hpp"
#include "rewards/rules.hpp"
#include "runtime/script.hpp"
#include "util/text.hpp"

namespace vgbl {

struct StudentResult {
  int student_id = 0;
  BotPolicy policy = BotPolicy::kExplorer;
  bool completed = false;
  bool succeeded = false;
  int steps = 0;
  i64 score = 0;
  f64 play_seconds = 0;
  int decisions = 0;
  int items_collected = 0;
  int rewards = 0;
  int interactions = 0;
  /// True when the student's run was suspended to a SessionStore mid-way
  /// and finished in a second, resumed session.
  bool resumed = false;
  /// Badges unlocked during the run (empty unless ClassroomOptions
  /// carried a reward rule set). The ordered unlock log is the student's
  /// canonical badge stream — encode_unlock_log() bytes over it are the
  /// determinism-contract artifact.
  std::vector<rewards::Unlock> unlocks;
  i64 badge_points = 0;  ///< bonus points across `unlocks`
  /// Wall-clock time spent simulating this student. Measurement only —
  /// every other field is covered by the determinism contract, this one
  /// varies run to run by construction.
  f64 wall_ms = 0;
};

struct ClassroomSummary {
  std::vector<StudentResult> students;
  f64 completion_rate = 0;
  f64 mean_score = 0;
  f64 mean_play_seconds = 0;
  f64 mean_interactions = 0;
  /// Ranked standings over the cohort (empty without reward rules).
  /// Built post-barrier in student-id order, so it is bit-identical
  /// across worker-thread counts like every other summary field.
  rewards::Leaderboard leaderboard;

  [[nodiscard]] std::string report() const;
};

/// Which engine executes the cohort. Both produce bit-identical
/// ClassroomSummary fields for the same options (the differential test in
/// tests/classroom_differential_test.cpp holds them to it).
enum class ClassroomEngine {
  /// Discrete-event scheduler (src/sim): every student is an event stream
  /// on one sharded timeline. Scales to district-size cohorts.
  kDes,
  /// Historical thread-per-student path on the ThreadPool — kept as the
  /// differential-testing oracle for the DES port.
  kLegacyThreads,
};

struct ClassroomOptions {
  int student_count = 8;
  int max_steps_per_student = 400;
  /// Policy mix: students cycle through these.
  std::vector<BotPolicy> policies{BotPolicy::kExplorer, BotPolicy::kSpeedrun,
                                  BotPolicy::kRandom};
  u64 seed = 99;
  /// When set, every student plays through the store (lesson-interrupted
  /// classroom): half the step budget, checkpoint + session teardown, then
  /// resume from disk for the remaining half. Exercises the full
  /// suspend/recover path under emergent bot play.
  SessionStore* store = nullptr;
  /// Worker threads running students concurrently. 0 runs everything on
  /// the calling thread; N spins up a ThreadPool of N workers (the caller
  /// participates too). Every value produces the same ClassroomSummary:
  /// each student's RNG seed is a pure function of (seed, student_id), so
  /// no thread count, scheduling order or interleaving can leak into the
  /// results.
  int worker_threads = 0;
  /// Reward rules evaluated inline in every student's session. Null keeps
  /// rewards off (empty leaderboard, exactly the pre-rewards behaviour).
  /// For store-backed runs the SessionStore's own SessionOptions must
  /// carry the same rule set — the store constructs the sessions.
  const rewards::RewardRuleSet* reward_rules = nullptr;
  /// Durable badge store; when set, each worker commits its student's
  /// unlock log as the run finishes (commits are idempotent per rule, so
  /// re-running a classroom over the same store does not double-grant).
  rewards::BadgeStore* badge_store = nullptr;
  /// Execution engine; every engine/thread/shard combination produces the
  /// same summary bits.
  ClassroomEngine engine = ClassroomEngine::kDes;
  /// DES engine only: event-queue shards. 0 derives one shard per worker
  /// thread (minimum 1). Any value is bit-identical to any other.
  int des_shards = 0;
};

/// Derives the bot seed for one student purely from the classroom seed and
/// the 1-based student id — the determinism contract behind the parallel
/// engine (DESIGN.md §5c). Exposed so tests can pin the scheme. Inline so
/// src/sim can derive seeds without linking the classroom engine itself:
/// one splitmix step decorrelates adjacent classroom seeds, a golden-ratio
/// stride separates adjacent students, and a second splitmix step whitens
/// the result. No shared generator is consulted, so the seed — and
/// therefore the whole student run — is independent of execution order.
inline u64 classroom_student_seed(u64 classroom_seed, int student_id) {
  u64 state = classroom_seed;
  (void)splitmix64(state);
  state += static_cast<u64>(static_cast<u32>(student_id)) *
           0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

/// Order-sensitive FNV-1a fingerprint over every ClassroomSummary field the
/// determinism contract covers — per-student results, encoded unlock logs
/// and the ranked leaderboard; wall_ms is excluded by contract. The
/// DES-vs-legacy differential test, bench_district and `vgbl district` all
/// compare runs through this one helper. Inline so src/sim can fingerprint
/// per-classroom summaries without linking the classroom engine.
inline u64 classroom_fingerprint(const ClassroomSummary& summary) {
  u64 h = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis
  auto mix_byte = [&h](u8 b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  auto mix = [&mix_byte](u64 v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<u8>(v >> (i * 8)));
    }
  };
  auto mix_f = [&mix](f64 v) {
    u64 bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  };
  auto mix_s = [&mix, &mix_byte](const std::string& s) {
    mix(s.size());
    for (char c : s) mix_byte(static_cast<u8>(c));
  };
  mix(summary.students.size());
  for (const StudentResult& s : summary.students) {
    mix(static_cast<u64>(s.student_id));
    mix(static_cast<u64>(s.policy));
    mix((s.completed ? 1u : 0u) | (s.succeeded ? 2u : 0u) |
        (s.resumed ? 4u : 0u));
    mix(static_cast<u64>(s.steps));
    mix(static_cast<u64>(s.score));
    mix_f(s.play_seconds);
    mix(static_cast<u64>(s.decisions));
    mix(static_cast<u64>(s.items_collected));
    mix(static_cast<u64>(s.rewards));
    mix(static_cast<u64>(s.interactions));
    mix(static_cast<u64>(s.badge_points));
    for (u8 byte : rewards::encode_unlock_log(s.unlocks)) mix_byte(byte);
  }
  mix_f(summary.completion_rate);
  mix_f(summary.mean_score);
  mix_f(summary.mean_play_seconds);
  mix_f(summary.mean_interactions);
  mix(summary.leaderboard.rows.size());
  for (const rewards::LeaderboardRow& row : summary.leaderboard.rows) {
    mix(static_cast<u64>(row.rank));
    mix_s(row.student_id);
    mix(static_cast<u64>(row.badges));
    mix(static_cast<u64>(row.badge_points));
    mix(static_cast<u64>(row.score));
    for (const std::string& badge : row.badge_names) mix_s(badge);
  }
  return h;
}

/// Runs every student to completion (or step budget) — sequentially, or
/// across `options.worker_threads` workers with bit-identical results.
ClassroomSummary simulate_classroom(std::shared_ptr<const GameBundle> bundle,
                                    const ClassroomOptions& options);

/// Delivery half of the classroom story: the cohort streams its scenario
/// walks over the simulated shared link, under an injectable fault profile.
struct StreamReplayOptions {
  int client_count = 16;
  u64 seed = 99;
  /// Scenario-walk length cap per student (see random_student_path).
  int max_hops = 12;
  /// FaultSchedule::profile name: "clean", "iid2", "bursty", "flap",
  /// "degraded" or "stress". "iid2" also raises the iid loss rate to 2%.
  std::string fault_profile = "clean";
  /// Base delivery config (link shape, ARQ knobs); the fault profile is
  /// applied on top. Defaults to the 40 Mbit school downlink.
  StreamingConfig streaming = classroom_link_defaults();
  MicroTime deadline = seconds(600);

  static StreamingConfig classroom_link_defaults();
};

struct StreamReplaySummary {
  StreamServer::Aggregate aggregate;
  StreamServer::ArqStats arq;
  MicroTime end_time = 0;   // sim time when the last client finished
  u64 packets_sent = 0;
  u64 packets_lost = 0;

  [[nodiscard]] std::string report() const;
};

// Inline (like the fingerprint helpers above) so src/sim's district runner
// can shape links and print streaming lines without linking vgbl_core.
inline StreamingConfig StreamReplayOptions::classroom_link_defaults() {
  StreamingConfig config;
  config.network.bandwidth_bps = 40'000'000;  // 40 Mbit school downlink
  config.network.base_latency = milliseconds(15);
  config.network.jitter = milliseconds(5);
  config.network.loss_rate = 0.002;
  config.prefetch_enabled = true;
  return config;
}

inline std::string StreamReplaySummary::report() const {
  std::string out;
  out += "startup " + format_double(aggregate.mean_startup_ms, 1) + " ms (p95 " +
         format_double(aggregate.p95_startup_ms, 1) + "), rebuffer ratio " +
         format_double(aggregate.mean_rebuffer_ratio, 3) + ", " +
         std::to_string(aggregate.total_rebuffer_events) + " stall(s), " +
         std::to_string(aggregate.prefetch_hits) + " prefetch hit(s)\n";
  out += "delivery: " + std::to_string(packets_sent) + " packet(s) sent, " +
         std::to_string(packets_lost) + " lost, " +
         std::to_string(aggregate.retransmits) + " retransmit(s), " +
         std::to_string(aggregate.nacks_sent) + " nack(s), " +
         std::to_string(arq.abandoned) + " abandoned, " +
         std::to_string(aggregate.frames_skipped) + " frame(s) skipped, " +
         std::to_string(aggregate.unfinished_clients) +
         " unfinished client(s)\n";
  return out;
}

/// Streams the cohort over the simulated link. Each client's path is
/// derived from classroom_student_seed(seed, id) — the same seed that
/// drives the gameplay cohort drives the delivery cohort, and results are
/// bit-identical across reruns of a seed.
StreamReplaySummary replay_classroom_stream(const GameBundle& bundle,
                                            const StreamReplayOptions& options);

}  // namespace vgbl
