// The one-include facade for downstream users: author a project, publish
// it to a bundle, and play it — the full pipeline of the paper's system in
// three calls. Everything here is a thin composition of the underlying
// modules; use them directly for fine control.
#pragma once

#include <memory>

#include "author/bundle.hpp"
#include "author/editor.hpp"
#include "author/importer.hpp"
#include "author/serialize.hpp"
#include "core/classroom.hpp"
#include "core/demo_games.hpp"
#include "runtime/render_text.hpp"
#include "runtime/script.hpp"
#include "runtime/session.hpp"

namespace vgbl {

/// Publishes a project into a loaded, playable bundle.
[[nodiscard]] inline Result<std::shared_ptr<const GameBundle>> publish(
    const Project& project, const BundleOptions& options) {
  auto bundle = build_and_load(project, options);
  if (!bundle.ok()) return bundle.error();
  return std::shared_ptr<const GameBundle>(
      std::make_shared<GameBundle>(std::move(bundle.value())));
}
inline Result<std::shared_ptr<const GameBundle>> publish(
    const Project& project) {
  return publish(project, BundleOptions{});
}

/// Result of a full scripted playthrough.
struct PlaythroughResult {
  bool game_over = false;
  bool succeeded = false;
  i64 score = 0;
  std::string learning_report;
  std::string final_screen;  // ASCII rendering of the last frame
};

/// Plays `script` against a fresh session of `bundle` on a simulated
/// clock; convenience wrapper used by examples and integration tests.
[[nodiscard]] Result<PlaythroughResult> play_scripted(
    std::shared_ptr<const GameBundle> bundle, const InputScript& script,
    SessionOptions options = SessionOptions{});

}  // namespace vgbl
