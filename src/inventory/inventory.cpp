#include "inventory/inventory.hpp"

#include <algorithm>

namespace vgbl {

Status ItemCatalog::add(ItemDef def) {
  if (!def.id.valid()) return invalid_argument("item id must be non-zero");
  if (def.name.empty()) return invalid_argument("item name must not be empty");
  if (find(def.id)) {
    return already_exists("item id " + std::to_string(def.id.value));
  }
  if (def.stackable && def.max_stack < 2) def.max_stack = 99;
  if (!def.stackable) def.max_stack = 1;
  items_.push_back(std::move(def));
  return {};
}

const ItemDef* ItemCatalog::find(ItemId id) const {
  for (const auto& i : items_) {
    if (i.id == id) return &i;
  }
  return nullptr;
}

const ItemDef* ItemCatalog::find_by_name(std::string_view name) const {
  for (const auto& i : items_) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

Status Inventory::add(ItemId item, int count) {
  if (count <= 0) return invalid_argument("count must be positive");
  const ItemDef* def = catalog_ ? catalog_->find(item) : nullptr;
  if (!def) return not_found("item id " + std::to_string(item.value));

  // Dry-run capacity check so failure leaves the backpack untouched.
  int remaining = count;
  if (def->stackable) {
    for (const auto& slot : slots_) {
      if (slot.item == item) {
        remaining -= std::min(remaining, def->max_stack - slot.count);
      }
    }
  }
  const int per_slot = def->stackable ? def->max_stack : 1;
  const int new_slots = (std::max(0, remaining) + per_slot - 1) / per_slot;
  if (used_slots() + new_slots > capacity_) {
    return resource_exhausted("backpack full");
  }

  // Commit: top up existing stacks, then open new slots.
  remaining = count;
  if (def->stackable) {
    for (auto& slot : slots_) {
      if (slot.item == item && remaining > 0) {
        const int take = std::min(remaining, def->max_stack - slot.count);
        slot.count += take;
        remaining -= take;
      }
    }
  }
  while (remaining > 0) {
    const int take = std::min(remaining, per_slot);
    slots_.push_back({item, take});
    remaining -= take;
  }
  return {};
}

Status Inventory::remove(ItemId item, int count) {
  if (count <= 0) return invalid_argument("count must be positive");
  if (count_of(item) < count) {
    return failed_precondition("not enough of item " +
                               std::to_string(item.value));
  }
  // Drain from the last slots first (most recently acquired).
  for (auto it = slots_.rbegin(); it != slots_.rend() && count > 0; ++it) {
    if (it->item != item) continue;
    const int take = std::min(count, it->count);
    it->count -= take;
    count -= take;
  }
  std::erase_if(slots_, [](const InventorySlot& s) { return s.count == 0; });
  return {};
}

int Inventory::count_of(ItemId item) const {
  int n = 0;
  for (const auto& slot : slots_) {
    if (slot.item == item) n += slot.count;
  }
  return n;
}

int Inventory::total_items() const {
  int n = 0;
  for (const auto& slot : slots_) n += slot.count;
  return n;
}

std::vector<ItemId> Inventory::rewards() const {
  std::vector<ItemId> out;
  if (!catalog_) return out;
  for (const auto& slot : slots_) {
    const ItemDef* def = catalog_->find(slot.item);
    if (def && def->is_reward) out.push_back(slot.item);
  }
  return out;
}

const CombineRule* CombineTable::find(ItemId a, ItemId b) const {
  for (const auto& r : rules_) {
    if ((r.a == a && r.b == b) || (r.a == b && r.b == a)) return &r;
  }
  return nullptr;
}

Result<ItemId> CombineTable::combine(Inventory& inventory, ItemId a,
                                     ItemId b) const {
  const CombineRule* rule = find(a, b);
  if (!rule) return not_found("no combine rule for these items");
  if (!inventory.has(a) || !inventory.has(b)) {
    return failed_precondition("player does not hold both items");
  }
  if (a == b && inventory.count_of(a) < 2) {
    return failed_precondition("combining an item with itself needs two");
  }

  if (rule->consume_inputs) {
    // Remove inputs first; if adding the result then fails (backpack full
    // is impossible here since we freed ≥1 slot-equivalent, but item could
    // be unknown), roll back.
    (void)inventory.remove(a, 1);
    (void)inventory.remove(b, 1);
    if (auto st = inventory.add(rule->result); !st.ok()) {
      (void)inventory.add(a, 1);
      (void)inventory.add(b, 1);
      return st.error();
    }
  } else {
    if (auto st = inventory.add(rule->result); !st.ok()) return st.error();
  }
  return rule->result;
}

void ScoreLedger::award(i64 points, std::string reason, MicroTime when) {
  total_ += points;
  entries_.push_back({points, std::move(reason), when});
}

}  // namespace vgbl
