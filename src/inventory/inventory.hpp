// Backpack, item catalogue, combine rules, score ledger and rewards.
// Paper §3.1: "the players have a backpack to collect items in game. An
// inventory window is used for displaying what items the player owned."
// Paper §3.3: reward objects are distinct from ordinary items, granted on
// completing requests/missions, and carry designer-configured bonuses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

struct ItemDef {
  ItemId id;
  std::string name;
  std::string description;
  std::string icon;  // Sprite::icon name
  bool stackable = false;
  int max_stack = 1;
  /// Reward objects (§3.3): displayed in a separate inventory section and
  /// counted as achievements, not usable props.
  bool is_reward = false;
  i64 bonus_points = 0;  // score granted when this item is received
};

/// All item definitions of a project.
class ItemCatalog {
 public:
  Status add(ItemDef def);
  [[nodiscard]] const ItemDef* find(ItemId id) const;
  [[nodiscard]] const ItemDef* find_by_name(std::string_view name) const;
  [[nodiscard]] const std::vector<ItemDef>& all() const { return items_; }
  [[nodiscard]] size_t size() const { return items_.size(); }

 private:
  std::vector<ItemDef> items_;
};

/// One backpack slot.
struct InventorySlot {
  ItemId item;
  int count = 0;
};

/// The player's backpack. Slot-limited like classic adventure games;
/// stackable items share a slot up to their max stack.
class Inventory {
 public:
  explicit Inventory(const ItemCatalog* catalog, int slot_capacity = 12)
      : catalog_(catalog), capacity_(slot_capacity) {}

  /// Adds `count` of `item`. All-or-nothing: fails with kResourceExhausted
  /// if the backpack cannot hold the full amount, kNotFound for unknown
  /// items.
  Status add(ItemId item, int count = 1);

  /// Removes `count`; fails with kFailedPrecondition if not enough held.
  Status remove(ItemId item, int count = 1);

  [[nodiscard]] bool has(ItemId item) const { return count_of(item) > 0; }
  [[nodiscard]] int count_of(ItemId item) const;
  [[nodiscard]] const std::vector<InventorySlot>& slots() const {
    return slots_;
  }
  [[nodiscard]] int used_slots() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] int capacity() const { return capacity_; }
  /// Total items across all slots.
  [[nodiscard]] int total_items() const;

  /// Reward-kind items held (for the inventory window's achievements row).
  [[nodiscard]] std::vector<ItemId> rewards() const;

 private:
  const ItemCatalog* catalog_;
  int capacity_;
  std::vector<InventorySlot> slots_;
};

/// Designer-defined combination: using item `a` with item `b` yields
/// `result` (order-insensitive). Consumed inputs are removed.
struct CombineRule {
  ItemId a;
  ItemId b;
  ItemId result;
  bool consume_inputs = true;
  std::string description;
};

class CombineTable {
 public:
  void add(CombineRule rule) { rules_.push_back(std::move(rule)); }
  [[nodiscard]] const CombineRule* find(ItemId a, ItemId b) const;
  [[nodiscard]] const std::vector<CombineRule>& rules() const { return rules_; }

  /// Applies a matching rule to the inventory: removes inputs (if
  /// consuming), adds the result. Fails when no rule matches or inventory
  /// constraints block the exchange; on failure the inventory is unchanged.
  [[nodiscard]] Result<ItemId> combine(Inventory& inventory, ItemId a, ItemId b) const;

 private:
  std::vector<CombineRule> rules_;
};

/// Append-only score history ("players can get bonus if they make the
/// right decisions", §3.3). The lecturer-facing report reads the entries.
class ScoreLedger {
 public:
  void award(i64 points, std::string reason, MicroTime when);
  [[nodiscard]] i64 total() const { return total_; }

  struct Entry {
    i64 points;
    std::string reason;
    MicroTime when;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  i64 total_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace vgbl
