#include "net/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vgbl {

namespace {

struct StreamMetrics {
  obs::Counter& frames_sent;
  obs::Counter& segments_played;
  obs::Counter& segment_switches;
  obs::Counter& prefetch_hits;
  obs::Counter& rebuffer_events;
  obs::Histogram& startup_delay_ms;
  obs::Histogram& segment_fetch_ms;

  static StreamMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StreamMetrics m{
        reg.counter("stream_frames_sent_total",
                    "video frames handed to the simulated link"),
        reg.counter("stream_segments_played_total",
                    "segments played to completion across clients"),
        reg.counter("stream_segment_switches_total",
                    "segment-to-segment transitions after startup"),
        reg.counter("stream_prefetch_hits_total",
                    "segment switches served entirely from buffer"),
        reg.counter("stream_rebuffer_events_total",
                    "times a client's buffer ran dry mid-segment"),
        reg.histogram("stream_startup_delay_ms",
                      obs::exponential_buckets(1.0, 2.0, 14),
                      "sim time from first request to first frame"),
        reg.histogram("stream_segment_fetch_ms",
                      obs::exponential_buckets(0.5, 2.0, 14),
                      "sim time from segment request to playable buffer")};
    return m;
  }
};

}  // namespace

StreamClient::StreamClient(u32 id, const VideoContainer* container,
                           std::vector<SegmentId> path,
                           const StreamingConfig& config)
    : id_(id), container_(container), path_(std::move(path)), config_(config) {
  if (path_.empty()) {
    finished_ = true;
  } else {
    start_segment(0);
  }
}

SegmentId StreamClient::current_segment() const {
  if (finished_ || path_pos_ >= path_.size()) return {};
  return path_[path_pos_];
}

std::vector<SegmentId> StreamClient::upcoming_segments(int max_count) const {
  std::vector<SegmentId> out;
  for (size_t i = path_pos_ + 1;
       i < path_.size() && static_cast<int>(out.size()) < max_count; ++i) {
    out.push_back(path_[i]);
  }
  return out;
}

int StreamClient::next_needed_frame(SegmentId segment) const {
  auto it = received_frames_.find(segment.value);
  return it == received_frames_.end() ? 0 : it->second;
}

void StreamClient::on_packet(const Packet& packet, MicroTime now) {
  stats_.bytes_received += packet.size;
  if (!packet.frame_complete) return;
  int& received = received_frames_[packet.segment];
  if (packet.frame_index < received) return;  // duplicate
  if (packet.frame_index == received) {
    ++received;
    // Stitch in any out-of-order frames that are now contiguous.
    auto& pending = out_of_order_[packet.segment];
    while (!pending.empty() && *pending.begin() == received) {
      pending.erase(pending.begin());
      ++received;
    }
  } else {
    out_of_order_[packet.segment].insert(packet.frame_index);
  }
  (void)now;
}

void StreamClient::start_segment(MicroTime now) {
  segment_requested_at_ = now;
  state_ = PlayState::kBuffering;
  state_since_ = now;
  presented_in_segment_ = 0;
}

void StreamClient::tick(MicroTime now) {
  if (finished_) return;
  const ContainerSegment* seg = container_->segment_by_id(current_segment());
  if (!seg) {
    finished_ = true;
    return;
  }
  const int received = next_needed_frame(current_segment());
  const MicroTime frame_period = 1'000'000 / std::max(1, container_->fps());

  switch (state_) {
    case PlayState::kBuffering: {
      const int threshold =
          std::min(config_.startup_buffer_frames, seg->frame_count);
      if (received >= threshold) {
        // Buffer primed: start presenting.
        StreamMetrics& metrics = StreamMetrics::get();
        if (!first_frame_presented_) {
          stats_.startup_delay = now - segment_requested_at_;
          first_frame_presented_ = true;
          metrics.startup_delay_ms.observe(to_millis(stats_.startup_delay));
        } else {
          ++stats_.segment_switches;
          metrics.segment_switches.increment();
          stats_.switch_delay_total += now - segment_requested_at_;
          if (now == segment_requested_at_) {
            ++stats_.prefetch_hits;  // switch served entirely from buffer
            metrics.prefetch_hits.increment();
          }
        }
        metrics.segment_fetch_ms.observe(to_millis(now - segment_requested_at_));
        if (obs::enabled()) {
          // Segment fetch is not a lexical scope — it opens in
          // start_segment() and closes here — so the span is recorded by
          // hand rather than via SpanScope.
          obs::TraceEvent fetch;
          fetch.name = "stream.segment_fetch";
          fetch.sim_start = segment_requested_at_;
          fetch.sim_end = now;
          fetch.wall_ms = 0;
          obs::TraceLog::global().record(fetch);
        }
        state_ = PlayState::kPlaying;
        state_since_ = now;
        next_frame_due_ = now;
      }
      break;
    }
    case PlayState::kPlaying: {
      stats_.play_time += now - state_since_;
      state_since_ = now;
      while (next_frame_due_ <= now &&
             presented_in_segment_ < seg->frame_count) {
        if (presented_in_segment_ < received) {
          ++presented_in_segment_;
          ++stats_.frames_presented;
          next_frame_due_ += frame_period;
        } else {
          // Buffer ran dry mid-segment.
          state_ = PlayState::kStalled;
          state_since_ = now;
          ++stats_.rebuffer_events;
          StreamMetrics::get().rebuffer_events.increment();
          return;
        }
      }
      if (presented_in_segment_ >= seg->frame_count) {
        ++stats_.segments_played;
        StreamMetrics::get().segments_played.increment();
        ++path_pos_;
        if (path_pos_ >= path_.size()) {
          finished_ = true;
        } else {
          start_segment(now);
          tick(now);  // may start playing immediately if prefetched
        }
      }
      break;
    }
    case PlayState::kStalled: {
      stats_.rebuffer_time += now - state_since_;
      state_since_ = now;
      if (received - presented_in_segment_ >=
          std::min(config_.resume_buffer_frames,
                   seg->frame_count - presented_in_segment_)) {
        state_ = PlayState::kPlaying;
        next_frame_due_ = now;
      }
      break;
    }
  }
}

StreamServer::StreamServer(const VideoContainer* container,
                           StreamingConfig config, u64 seed)
    : container_(container),
      config_(config),
      network_(config.network, seed) {}

StreamClient& StreamServer::add_client(std::vector<SegmentId> path) {
  const u32 id = static_cast<u32>(clients_.size()) + 1;
  clients_.push_back(
      std::make_unique<StreamClient>(id, container_, std::move(path), config_));
  return *clients_.back();
}

bool StreamServer::pump_client(StreamClient& client, MicroTime now) {
  if (client.finished()) return false;

  // Service order: current segment first, then prefetch candidates.
  std::vector<SegmentId> wanted{client.current_segment()};
  if (config_.prefetch_enabled) {
    for (SegmentId s : client.upcoming_segments(config_.prefetch_fanout)) {
      wanted.push_back(s);
    }
  }

  for (SegmentId seg_id : wanted) {
    const ContainerSegment* seg = container_->segment_by_id(seg_id);
    if (!seg) continue;
    int& progress = send_progress_[{client.id(), seg_id.value}];
    if (progress >= seg->frame_count) continue;

    auto data = container_->frame_data(seg->first_frame + progress);
    if (!data.ok()) continue;
    Packet p;
    p.flow = client.id();
    p.sequence = ++flow_sequence_[client.id()];
    p.segment = seg_id.value;
    p.frame_index = progress;
    p.frame_complete = true;
    p.size = static_cast<u32>(data.value().size());
    const auto arrival = network_.send(p, now);
    if (arrival) {
      ++progress;  // lost packets are retransmitted (progress holds)
      StreamMetrics::get().frames_sent.increment();
    }
    return true;
  }
  return false;
}

MicroTime StreamServer::run(MicroTime deadline) {
  MicroTime now = 0;
  const MicroTime step = milliseconds(2);
  size_t rr = 0;  // round-robin cursor

  while (now < deadline) {
    // Deliver arrived packets.
    for (const Packet& p : network_.poll(now)) {
      if (p.flow >= 1 && p.flow <= clients_.size()) {
        clients_[p.flow - 1]->on_packet(p, now);
      }
    }
    // Advance playback models.
    bool all_finished = true;
    for (auto& c : clients_) {
      c->tick(now);
      all_finished &= c->finished();
    }
    if (all_finished) return now;

    // Fill the link fairly: round-robin one frame per client while the
    // link has capacity at this instant.
    size_t idle_count = 0;
    while (network_.can_send(now) && idle_count < clients_.size()) {
      StreamClient& c = *clients_[rr % clients_.size()];
      ++rr;
      if (pump_client(c, now)) {
        idle_count = 0;
      } else {
        ++idle_count;
      }
    }
    now += step;
  }
  return now;
}

StreamServer::Aggregate StreamServer::aggregate() const {
  Aggregate agg;
  if (clients_.empty()) return agg;
  std::vector<f64> startups;
  for (const auto& c : clients_) {
    const ClientStats& s = c->stats();
    startups.push_back(to_millis(s.startup_delay));
    agg.mean_startup_ms += to_millis(s.startup_delay);
    agg.mean_rebuffer_ratio += s.rebuffer_ratio();
    agg.total_rebuffer_events += s.rebuffer_events;
    agg.mean_switch_ms += s.mean_switch_ms();
    agg.prefetch_hits += s.prefetch_hits;
  }
  agg.mean_startup_ms /= static_cast<f64>(clients_.size());
  agg.mean_rebuffer_ratio /= static_cast<f64>(clients_.size());
  agg.mean_switch_ms /= static_cast<f64>(clients_.size());
  std::sort(startups.begin(), startups.end());
  agg.p95_startup_ms =
      startups[static_cast<size_t>(std::ceil(0.95 * startups.size())) - 1];
  agg.bytes_sent = network_.stats().bytes_sent;
  return agg;
}

std::vector<SegmentId> random_student_path(const ScenarioGraph& graph,
                                           int max_hops, Rng& rng) {
  std::vector<SegmentId> path;
  ScenarioId current = graph.start();
  for (int hop = 0; hop <= max_hops; ++hop) {
    const Scenario* s = graph.find(current);
    if (!s) break;
    path.push_back(s->segment);
    if (s->terminal) break;
    const auto edges = graph.out_edges(current);
    if (edges.empty()) break;
    // Weighted pick.
    f64 total = 0;
    for (const auto* e : edges) total += std::max(0.01, e->weight);
    f64 pick = rng.uniform() * total;
    const ScenarioTransition* chosen = edges.back();
    for (const auto* e : edges) {
      pick -= std::max(0.01, e->weight);
      if (pick <= 0) {
        chosen = e;
        break;
      }
    }
    current = chosen->to;
  }
  return path;
}

}  // namespace vgbl
