#include "net/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vgbl {

namespace {

constexpr MicroTime kNever = std::numeric_limits<MicroTime>::max();

struct StreamMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_skipped;
  obs::Counter& segments_played;
  obs::Counter& segment_switches;
  obs::Counter& prefetch_hits;
  obs::Counter& rebuffer_events;
  obs::Counter& retransmits;
  obs::Counter& nacks_sent;
  obs::Histogram& startup_delay_ms;
  obs::Histogram& segment_fetch_ms;
  obs::Histogram& rtt_ms;

  static StreamMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StreamMetrics m{
        reg.counter("stream_frames_sent_total",
                    "video frames handed to the simulated link"),
        reg.counter("stream_frames_skipped_total",
                    "frames given up past their retransmission deadline"),
        reg.counter("stream_segments_played_total",
                    "segments played to completion across clients"),
        reg.counter("stream_segment_switches_total",
                    "segment-to-segment transitions after startup"),
        reg.counter("stream_prefetch_hits_total",
                    "segment switches served entirely from buffer"),
        reg.counter("stream_rebuffer_events_total",
                    "times a client's buffer ran dry mid-segment"),
        reg.counter("net_retransmits_total",
                    "packets re-sent by the ARQ layer (NACK or timeout)"),
        reg.counter("net_nack_sent_total",
                    "NACK entries clients put on the feedback uplink"),
        reg.histogram("stream_startup_delay_ms",
                      obs::exponential_buckets(1.0, 2.0, 14),
                      "sim time from first request to first frame"),
        reg.histogram("stream_segment_fetch_ms",
                      obs::exponential_buckets(0.5, 2.0, 14),
                      "sim time from segment request to playable buffer"),
        reg.histogram("net_rtt_ms", obs::exponential_buckets(1.0, 2.0, 14),
                      "ARQ round-trip time (send -> cumulative ack)")};
    return m;
  }
};

}  // namespace

StreamClient::StreamClient(u32 id, const VideoContainer* container,
                           std::vector<SegmentId> path,
                           const StreamingConfig& config)
    : id_(id), container_(container), path_(std::move(path)), config_(config) {
  if (path_.empty()) {
    finished_ = true;
  } else {
    start_segment(0);
  }
}

SegmentId StreamClient::current_segment() const {
  if (finished_ || path_pos_ >= path_.size()) return {};
  return path_[path_pos_];
}

std::vector<SegmentId> StreamClient::upcoming_segments(int max_count) const {
  std::vector<SegmentId> out;
  for (size_t i = path_pos_ + 1;
       i < path_.size() && static_cast<int>(out.size()) < max_count; ++i) {
    out.push_back(path_[i]);
  }
  return out;
}

int StreamClient::next_needed_frame(SegmentId segment) const {
  auto it = buffers_.find(segment.value);
  return it == buffers_.end() ? 0 : it->second.prefix;
}

void StreamClient::advance_prefix(SegmentBuffer& buf) {
  while (!buf.pending.empty() && *buf.pending.begin() == buf.prefix) {
    buf.pending.erase(buf.pending.begin());
    ++buf.prefix;
  }
}

void StreamClient::on_packet(const Packet& packet, MicroTime now) {
  stats_.bytes_received += packet.size;

  // ARQ receive state. Retransmissions reuse the original sequence number,
  // so the sequence space directly identifies what is still missing.
  if (packet.sequence == rx_cum_ + 1) {
    ++rx_cum_;
    while (!rx_above_cum_.empty() && *rx_above_cum_.begin() == rx_cum_ + 1) {
      rx_above_cum_.erase(rx_above_cum_.begin());
      ++rx_cum_;
    }
  } else if (packet.sequence > rx_cum_) {
    rx_above_cum_.insert(packet.sequence);
  }
  rx_highest_ = std::max(rx_highest_, packet.sequence);
  missing_since_.erase(packet.sequence);
  missing_since_.erase(missing_since_.begin(),
                       missing_since_.upper_bound(rx_cum_));

  if (!packet.frame_complete) return;
  SegmentBuffer& buf = buffers_[packet.segment];
  if (packet.frame_index < buf.prefix ||
      buf.pending.count(packet.frame_index)) {
    return;  // duplicate (or a retransmission that lost the race to a skip)
  }
  if (packet.frame_index == buf.prefix) {
    ++buf.prefix;
    advance_prefix(buf);
  } else {
    buf.pending.insert(packet.frame_index);
  }
  (void)now;
}

std::optional<FeedbackPacket> StreamClient::make_feedback(MicroTime now) {
  if (now < next_feedback_at_) return std::nullopt;

  // Register newly observed sequence gaps so NACKs can be aged: a gap must
  // outlive the jitter-reordering window before the client asks for it.
  if (!rx_above_cum_.empty()) {
    u64 expect = rx_cum_ + 1;
    for (u64 seq : rx_above_cum_) {
      for (u64 gap = expect; gap < seq; ++gap) {
        missing_since_.try_emplace(gap, now);
      }
      expect = seq + 1;
    }
  }

  const MicroTime grace =
      config_.nack_grace > 0
          ? config_.nack_grace
          : std::max<MicroTime>(2 * config_.network.jitter, milliseconds(4));
  FeedbackPacket fb;
  fb.flow = id_;
  fb.cumulative_ack = rx_cum_;
  for (const auto& [seq, since] : missing_since_) {
    if (static_cast<int>(fb.nacks.size()) >= config_.max_nacks_per_feedback) {
      break;
    }
    if (now - since >= grace) fb.nacks.push_back(seq);
  }

  // Change-driven: silence when there is nothing new to report keeps the
  // thin uplink from drowning in keepalives.
  if (rx_cum_ == last_fed_back_cum_ && fb.nacks.empty()) return std::nullopt;
  last_fed_back_cum_ = rx_cum_;
  next_feedback_at_ = now + config_.feedback_interval;
  ++stats_.feedback_packets;
  stats_.nacks_sent += static_cast<int>(fb.nacks.size());
  if (!fb.nacks.empty()) {
    VGBL_COUNT(StreamMetrics::get().nacks_sent, fb.nacks.size());
  }
  return fb;
}

void StreamClient::start_segment(MicroTime now) {
  segment_requested_at_ = now;
  state_ = PlayState::kBuffering;
  state_since_ = now;
  presented_in_segment_ = 0;
  blocked_frame_ = -1;
  blocked_since_ = now;
}

void StreamClient::skip_blocked_frames(SegmentBuffer& buf) {
  // Give up on the whole missing run: everything up to the next frame that
  // actually arrived (or just the head frame when nothing has). The skip
  // is charged to `frames_skipped` when presentation passes the frame.
  const int until =
      buf.pending.empty() ? buf.prefix + 1 : *buf.pending.begin();
  while (buf.prefix < until) {
    buf.skipped.insert(buf.prefix);
    ++buf.prefix;
  }
  advance_prefix(buf);
}

void StreamClient::tick(MicroTime now) {
  if (finished_) return;
  const ContainerSegment* seg = container_->segment_by_id(current_segment());
  if (!seg) {
    finished_ = true;
    return;
  }
  SegmentBuffer& buf = buffers_[current_segment().value];
  const MicroTime frame_period = 1'000'000 / std::max(1, container_->fps());

  if (state_ == PlayState::kStalled) {
    stats_.rebuffer_time += now - state_since_;
    state_since_ = now;
  }

  // Graceful degradation: while blocked (buffering or stalled), a gap that
  // has pinned the buffer prefix past the skip deadline is given up rather
  // than letting its retransmission deadline blow the playback budget.
  // Progress (the prefix advancing) resets the timer, so a slow-but-alive
  // link never triggers skips.
  if (state_ != PlayState::kPlaying && buf.prefix < seg->frame_count) {
    if (buf.prefix != blocked_frame_) {
      blocked_frame_ = buf.prefix;
      blocked_since_ = now;
    } else if (now - blocked_since_ >= config_.frame_skip_deadline) {
      skip_blocked_frames(buf);
      blocked_frame_ = buf.prefix;
      blocked_since_ = now;
      if (state_ == PlayState::kStalled) {
        // The deadline is blown: resume immediately and present the skip
        // instead of waiting out the resume threshold.
        state_ = PlayState::kPlaying;
        state_since_ = now;
        next_frame_due_ = now;
      }
    }
  }

  switch (state_) {
    case PlayState::kBuffering: {
      const int threshold =
          std::min(config_.startup_buffer_frames, seg->frame_count);
      if (buf.prefix >= threshold) {
        // Buffer primed: start presenting.
        if (obs::enabled()) {
          StreamMetrics& metrics = StreamMetrics::get();
          if (!stats_.started) {
            VGBL_OBSERVE(metrics.startup_delay_ms,
                         to_millis(now - segment_requested_at_));
          } else {
            VGBL_COUNT(metrics.segment_switches);
            if (now == segment_requested_at_) {
              VGBL_COUNT(metrics.prefetch_hits);
            }
          }
          VGBL_OBSERVE(metrics.segment_fetch_ms,
                       to_millis(now - segment_requested_at_));
          // Segment fetch is not a lexical scope — it opens in
          // start_segment() and closes here — so the span is recorded by
          // hand through obs::record_span rather than via VGBL_SPAN.
          obs::record_span("stream.segment_fetch", segment_requested_at_, now);
        }
        if (!stats_.started) {
          stats_.startup_delay = now - segment_requested_at_;
          stats_.started = true;
        } else {
          ++stats_.segment_switches;
          stats_.switch_delay_total += now - segment_requested_at_;
          if (now == segment_requested_at_) {
            ++stats_.prefetch_hits;  // switch served entirely from buffer
          }
        }
        state_ = PlayState::kPlaying;
        state_since_ = now;
        next_frame_due_ = now;
      }
      break;
    }
    case PlayState::kPlaying: {
      while (next_frame_due_ <= now &&
             presented_in_segment_ < seg->frame_count) {
        if (presented_in_segment_ < buf.prefix) {
          if (buf.skipped.count(presented_in_segment_)) {
            ++stats_.frames_skipped;
            VGBL_COUNT(StreamMetrics::get().frames_skipped);
          } else {
            ++stats_.frames_presented;
          }
          ++presented_in_segment_;
          next_frame_due_ += frame_period;
        } else {
          // Buffer ran dry mid-segment — at the missing frame's due time,
          // not at this tick: only the interval up to the last presentable
          // frame counts as play time, the rest is rebuffering.
          const MicroTime stall_start =
              std::max(state_since_, next_frame_due_);
          stats_.play_time += stall_start - state_since_;
          state_ = PlayState::kStalled;
          state_since_ = stall_start;
          ++stats_.rebuffer_events;
          VGBL_COUNT(StreamMetrics::get().rebuffer_events);
          blocked_frame_ = buf.prefix;
          blocked_since_ = stall_start;
          return;
        }
      }
      stats_.play_time += now - state_since_;
      state_since_ = now;
      if (presented_in_segment_ >= seg->frame_count) {
        ++stats_.segments_played;
        VGBL_COUNT(StreamMetrics::get().segments_played);
        ++path_pos_;
        if (path_pos_ >= path_.size()) {
          finished_ = true;
        } else {
          start_segment(now);
          tick(now);  // may start playing immediately if prefetched
        }
      }
      break;
    }
    case PlayState::kStalled: {
      if (buf.prefix - presented_in_segment_ >=
          std::min(config_.resume_buffer_frames,
                   seg->frame_count - presented_in_segment_)) {
        state_ = PlayState::kPlaying;
        state_since_ = now;
        next_frame_due_ = now;
      }
      break;
    }
  }
}

StreamServer::StreamServer(const VideoContainer* container,
                           StreamingConfig config, u64 seed)
    : container_(container),
      config_(config),
      network_(config.network, config.faults, seed),
      feedback_(
          NetworkConfig{.bandwidth_bps = config.feedback_bandwidth_bps,
                        .base_latency = config.network.base_latency,
                        .jitter = config.network.jitter,
                        .loss_rate = config.feedback_loss_rate,
                        .mtu_bytes = config.network.mtu_bytes},
          config.faults, [seed] {
            u64 s = seed + 1;
            return splitmix64(s);
          }()) {}

StreamClient& StreamServer::add_client(std::vector<SegmentId> path) {
  const u32 id = static_cast<u32>(clients_.size()) + 1;
  clients_.push_back(
      std::make_unique<StreamClient>(id, container_, std::move(path), config_));
  return *clients_.back();
}

MicroTime StreamServer::rto(const FlowArq& arq) const {
  if (!arq.rtt_valid) return config_.initial_rto;
  const auto estimate = static_cast<MicroTime>(arq.srtt + 4.0 * arq.rttvar);
  return std::clamp(estimate, config_.min_rto, config_.max_rto);
}

void StreamServer::on_feedback(const FeedbackPacket& fb, MicroTime now) {
  ++arq_stats_.feedback_received;
  FlowArq& arq = arq_[fb.flow];

  // The cumulative ACK clears the unacked window. RTT sample from the
  // newest acked first-transmission (Karn's rule: a retransmitted packet's
  // ack is ambiguous, so it never feeds the estimator).
  bool have_sample = false;
  MicroTime sample = 0;
  auto it = arq.unacked.begin();
  while (it != arq.unacked.end() && it->first <= fb.cumulative_ack) {
    if (it->second.retries == 0) {
      have_sample = true;
      sample = now - it->second.last_sent;
    }
    it = arq.unacked.erase(it);
  }
  if (have_sample) {
    const f64 s = static_cast<f64>(sample);
    if (!arq.rtt_valid) {
      arq.srtt = s;
      arq.rttvar = s / 2;
      arq.rtt_valid = true;
    } else {
      arq.rttvar = 0.75 * arq.rttvar + 0.25 * std::abs(arq.srtt - s);
      arq.srtt = 0.875 * arq.srtt + 0.125 * s;
    }
    VGBL_OBSERVE(StreamMetrics::get().rtt_ms, to_millis(sample));
  }

  for (u64 seq : fb.nacks) {
    auto entry = arq.unacked.find(seq);
    if (entry == arq.unacked.end()) continue;  // acked or abandoned already
    ++arq_stats_.nacks_received;
    UnackedPacket& u = entry->second;
    // A retransmission may already be in flight; only re-raise once the
    // previous attempt has had half an RTO to land.
    if (u.queued || now - u.last_sent < rto(arq) / 2) continue;
    if (static_cast<int>(retransmit_queue_.size()) >=
        config_.max_retransmit_queue) {
      ++arq_stats_.queue_overflow;
      continue;
    }
    u.queued = true;
    retransmit_queue_.emplace_back(fb.flow, seq);
  }
}

void StreamServer::check_timeouts(MicroTime now) {
  for (auto& [flow, arq] : arq_) {
    if (arq.unacked.empty() || now < arq.next_timeout_at) continue;
    const MicroTime base = rto(arq);
    MicroTime next = kNever;
    auto it = arq.unacked.begin();
    while (it != arq.unacked.end()) {
      UnackedPacket& u = it->second;
      if (u.queued) {
        ++it;  // awaiting resend; its deadline restarts then
        continue;
      }
      const MicroTime backoff = std::min(
          static_cast<MicroTime>(base << std::min(u.retries, 6)),
          config_.max_rto);
      const MicroTime deadline = u.last_sent + backoff;
      if (now < deadline) {
        next = std::min(next, deadline);
        ++it;
        continue;
      }
      ++arq_stats_.timeouts;
      if (u.retries >= config_.max_retries) {
        // Unrecoverable within budget: the client's frame-skip path takes
        // over from here.
        ++arq_stats_.abandoned;
        it = arq.unacked.erase(it);
        continue;
      }
      if (static_cast<int>(retransmit_queue_.size()) >=
          config_.max_retransmit_queue) {
        ++arq_stats_.queue_overflow;
        next = std::min(next, now + config_.min_rto);  // retry the enqueue
        ++it;
        continue;
      }
      u.queued = true;
      retransmit_queue_.emplace_back(flow, it->first);
      ++it;
    }
    arq.next_timeout_at = next;
  }
}

bool StreamServer::send_one_retransmit(MicroTime now) {
  while (!retransmit_queue_.empty()) {
    const auto [flow, seq] = retransmit_queue_.front();
    retransmit_queue_.pop_front();
    auto fit = arq_.find(flow);
    if (fit == arq_.end()) continue;
    auto it = fit->second.unacked.find(seq);
    if (it == fit->second.unacked.end()) continue;  // acked in the meantime
    UnackedPacket& u = it->second;
    u.queued = false;
    network_.send(u.packet, now);
    u.last_sent = now;
    ++u.retries;
    ++arq_stats_.retransmits;
    VGBL_COUNT(StreamMetrics::get().retransmits);
    const MicroTime backoff = std::min(
        static_cast<MicroTime>(rto(fit->second) << std::min(u.retries, 6)),
        config_.max_rto);
    fit->second.next_timeout_at =
        std::min(fit->second.next_timeout_at, now + backoff);
    return true;
  }
  return false;
}

bool StreamServer::pump_client(StreamClient& client, MicroTime now) {
  if (client.finished()) return false;
  FlowArq& arq = arq_[client.id()];
  // ARQ flow control: a full window means the link (or the client) is not
  // keeping up — pushing more new frames would only grow server state.
  if (static_cast<int>(arq.unacked.size()) >= config_.max_unacked_per_flow) {
    return false;
  }

  // Service order: current segment first, then prefetch candidates.
  std::vector<SegmentId> wanted{client.current_segment()};
  if (config_.prefetch_enabled) {
    for (SegmentId s : client.upcoming_segments(config_.prefetch_fanout)) {
      wanted.push_back(s);
    }
  }

  for (SegmentId seg_id : wanted) {
    const ContainerSegment* seg = container_->segment_by_id(seg_id);
    if (!seg) continue;
    int& progress = send_progress_[{client.id(), seg_id.value}];
    if (progress >= seg->frame_count) continue;

    auto data = container_->frame_data(seg->first_frame + progress);
    if (!data.ok()) continue;
    Packet p;
    p.flow = client.id();
    p.sequence = ++flow_sequence_[client.id()];
    p.segment = seg_id.value;
    p.frame_index = progress;
    p.frame_complete = true;
    p.size = static_cast<u32>(data.value().size());
    network_.send(p, now);
    // The sender cannot see loss: progress always advances, and recovery
    // is the ARQ loop's job (NACK or timeout -> retransmit).
    ++progress;
    VGBL_COUNT(StreamMetrics::get().frames_sent);
    UnackedPacket u;
    u.packet = p;
    u.last_sent = now;
    arq.next_timeout_at = std::min(arq.next_timeout_at, now + rto(arq));
    arq.unacked.emplace(p.sequence, u);
    return true;
  }
  return false;
}

bool StreamServer::step(MicroTime now) {
  // Deliver arrived packets.
  for (const Packet& p : network_.poll(now)) {
    if (p.flow >= 1 && p.flow <= clients_.size()) {
      clients_[p.flow - 1]->on_packet(p, now);
    }
  }
  // Process client feedback and fire retransmission timeouts.
  for (const FeedbackPacket& fb : feedback_.poll(now)) {
    on_feedback(fb, now);
  }
  check_timeouts(now);

  // Advance playback models.
  bool all_finished = true;
  for (auto& c : clients_) {
    c->tick(now);
    all_finished &= c->finished();
  }
  if (all_finished) return true;

  // Clients put feedback on the uplink — self-paced, change-driven, and
  // subject to the thin reverse link's backpressure.
  for (size_t i = 0; i < clients_.size() && feedback_.can_send(now); ++i) {
    StreamClient& c = *clients_[fb_rr_ % clients_.size()];
    ++fb_rr_;
    if (auto fb = c.make_feedback(now)) {
      feedback_.send(std::move(*fb), now);
    }
  }

  // Fill the link: pending retransmissions first (they are blocking
  // someone's playback right now), then new frames round-robin while
  // capacity remains at this instant.
  while (network_.can_send(now) && send_one_retransmit(now)) {
  }
  size_t idle_count = 0;
  while (network_.can_send(now) && idle_count < clients_.size()) {
    StreamClient& c = *clients_[rr_ % clients_.size()];
    ++rr_;
    if (pump_client(c, now)) {
      idle_count = 0;
    } else {
      ++idle_count;
    }
  }
  return false;
}

MicroTime StreamServer::run(MicroTime deadline) {
  MicroTime now = 0;
  while (now < deadline) {
    if (step(now)) return now;
    now += kStepInterval;
  }
  return now;
}

StreamServer::Aggregate StreamServer::aggregate() const {
  Aggregate agg;
  if (clients_.empty()) return agg;
  // Startup percentiles cover only clients that actually presented a
  // frame; averaging a zero for clients the deadline cut off would drag
  // the startup numbers down exactly when the network is worst.
  std::vector<f64> startups;
  for (const auto& c : clients_) {
    const ClientStats& s = c->stats();
    if (s.started) startups.push_back(to_millis(s.startup_delay));
    if (!c->finished()) ++agg.unfinished_clients;
    agg.mean_rebuffer_ratio += s.rebuffer_ratio();
    agg.total_rebuffer_events += s.rebuffer_events;
    agg.mean_switch_ms += s.mean_switch_ms();
    agg.prefetch_hits += s.prefetch_hits;
    agg.frames_skipped += s.frames_skipped;
    agg.nacks_sent += static_cast<u64>(s.nacks_sent);
  }
  agg.mean_rebuffer_ratio /= static_cast<f64>(clients_.size());
  agg.mean_switch_ms /= static_cast<f64>(clients_.size());
  if (!startups.empty()) {
    for (f64 s : startups) agg.mean_startup_ms += s;
    agg.mean_startup_ms /= static_cast<f64>(startups.size());
    std::sort(startups.begin(), startups.end());
    agg.p95_startup_ms =
        startups[static_cast<size_t>(std::ceil(0.95 * startups.size())) - 1];
  }
  agg.retransmits = arq_stats_.retransmits;
  agg.bytes_sent = network_.stats().bytes_sent;
  return agg;
}

std::vector<SegmentId> random_student_path(const ScenarioGraph& graph,
                                           int max_hops, Rng& rng) {
  std::vector<SegmentId> path;
  ScenarioId current = graph.start();
  for (int hop = 0; hop < max_hops; ++hop) {
    const Scenario* s = graph.find(current);
    if (!s) break;
    path.push_back(s->segment);
    if (s->terminal) break;
    const auto edges = graph.out_edges(current);
    if (edges.empty()) break;
    // Weighted pick.
    f64 total = 0;
    for (const auto* e : edges) total += std::max(0.01, e->weight);
    f64 pick = rng.uniform() * total;
    const ScenarioTransition* chosen = edges.back();
    for (const auto* e : edges) {
      pick -= std::max(0.01, e->weight);
      if (pick <= 0) {
        chosen = e;
        break;
      }
    }
    current = chosen->to;
  }
  return path;
}

}  // namespace vgbl
