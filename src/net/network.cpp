#include "net/network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace vgbl {

namespace {

struct NetMetrics {
  obs::Counter& packets_sent;
  obs::Counter& packets_lost;
  obs::Counter& bytes_sent;
  obs::Histogram& queueing_delay_ms;

  static NetMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static NetMetrics m{
        reg.counter("net_packets_sent_total",
                    "packets offered to the simulated link"),
        reg.counter("net_packets_lost_total", "packets dropped by loss model"),
        reg.counter("net_bytes_sent_total",
                    "payload bytes offered to the simulated link"),
        reg.histogram("net_queueing_delay_ms",
                      obs::exponential_buckets(0.01, 2.0, 16),
                      "sim time a packet waited for the shared link")};
    return m;
  }
};

}  // namespace

std::optional<MicroTime> SimulatedNetwork::send(Packet packet, MicroTime now) {
  const MicroTime start = std::max(now, link_busy_until_);
  if (obs::enabled()) {
    NetMetrics& metrics = NetMetrics::get();
    metrics.packets_sent.increment();
    metrics.bytes_sent.add(packet.size);
    metrics.queueing_delay_ms.observe(to_millis(start - now));
  }
  // Serialization delay on the shared link: size / bandwidth.
  const MicroTime ser =
      static_cast<MicroTime>(static_cast<u64>(packet.size) * 8'000'000 /
                             std::max<u64>(1, config_.bandwidth_bps));
  link_busy_until_ = start + ser;

  ++stats_.packets_sent;
  stats_.bytes_sent += packet.size;

  if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
    ++stats_.packets_lost;
    NetMetrics::get().packets_lost.increment();
    return std::nullopt;
  }

  MicroTime jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<MicroTime>(rng_.below(
        static_cast<u64>(config_.jitter)));
  }
  // Stamp the moment serialization actually started, not the send call:
  // when the link was busy the packet queued until `link_busy_until_`, and
  // `sent_at` is how that queueing delay becomes observable downstream.
  packet.sent_at = start;
  packet.arrives_at = link_busy_until_ + config_.base_latency + jitter;

  // Keep the in-flight queue sorted by arrival; jitter can reorder tails.
  auto it = std::upper_bound(
      in_flight_.begin(), in_flight_.end(), packet,
      [](const Packet& a, const Packet& b) { return a.arrives_at < b.arrives_at; });
  in_flight_.insert(it, packet);
  return packet.arrives_at;
}

std::vector<Packet> SimulatedNetwork::poll(MicroTime now) {
  std::vector<Packet> out;
  while (!in_flight_.empty() && in_flight_.front().arrives_at <= now) {
    out.push_back(in_flight_.front());
    in_flight_.pop_front();
  }
  return out;
}

}  // namespace vgbl
