#include "net/network.hpp"

#include <algorithm>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"

namespace vgbl {

namespace {

struct NetMetrics {
  obs::Counter& packets_sent;
  obs::Counter& packets_lost;
  obs::Counter& bytes_sent;
  obs::Histogram& queueing_delay_ms;

  static NetMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static NetMetrics m{
        reg.counter("net_packets_sent_total",
                    "packets offered to the simulated link"),
        reg.counter("net_packets_lost_total", "packets dropped by loss model"),
        reg.counter("net_bytes_sent_total",
                    "payload bytes offered to the simulated link"),
        reg.histogram("net_queueing_delay_ms",
                      obs::exponential_buckets(0.01, 2.0, 16),
                      "sim time a packet waited for the shared link")};
    return m;
  }
};

}  // namespace

bool FaultSchedule::in_outage(MicroTime now) const {
  for (const Window& w : outages) {
    if (now >= w.start && now < w.end) return true;
  }
  return false;
}

f64 FaultSchedule::bandwidth_scale(MicroTime now) const {
  f64 scale = 1.0;
  for (const Degradation& d : degradations) {
    if (now >= d.window.start && now < d.window.end) {
      scale = std::min(scale, d.bandwidth_scale);
    }
  }
  return scale;
}

FaultSchedule FaultSchedule::profile(std::string_view name) {
  FaultSchedule s;
  const bool bursty = name == "bursty" || name == "stress";
  if (bursty) {
    // Stationary Bad fraction = 0.02 / (0.02 + 0.25) ~= 7.4%, so the
    // average loss is ~2% — but clustered into multi-packet bursts instead
    // of iid drops, which is what breaks naive buffering.
    s.ge_loss_good = 0.001;
    s.ge_loss_bad = 0.25;
    s.ge_good_to_bad = 0.02;
    s.ge_bad_to_good = 0.25;
  }
  if (name == "flap" || name == "stress") {
    s.outages.push_back({seconds(10), seconds(10) + milliseconds(1500)});
  }
  if (name == "degraded" || name == "stress") {
    s.degradations.push_back({{seconds(15), seconds(45)}, 0.35});
  }
  return s;  // "clean", "iid2" and unknown names: no schedule faults
}

bool LossProcess::lost(MicroTime at, Rng& rng) {
  bool lost = schedule_.in_outage(at);
  if (schedule_.ge_enabled()) {
    ge_bad_ = ge_bad_ ? !rng.chance(schedule_.ge_bad_to_good)
                      : rng.chance(schedule_.ge_good_to_bad);
    const f64 p = ge_bad_ ? schedule_.ge_loss_bad : schedule_.ge_loss_good;
    if (p > 0 && rng.chance(p)) lost = true;
  }
  if (iid_ > 0 && rng.chance(iid_)) lost = true;
  return lost;
}

MicroTime SimulatedNetwork::send(Packet packet, MicroTime now) {
  const MicroTime start = std::max(now, link_busy_until_);
  if (obs::enabled()) {
    NetMetrics& metrics = NetMetrics::get();
    VGBL_COUNT(metrics.packets_sent);
    VGBL_COUNT(metrics.bytes_sent, packet.size);
    VGBL_OBSERVE(metrics.queueing_delay_ms, to_millis(start - now));
  }
  // Serialization delay on the shared link: size / effective bandwidth
  // (degradation windows shrink the pipe mid-run).
  const u64 bps = std::max<u64>(
      1, static_cast<u64>(static_cast<f64>(config_.bandwidth_bps) *
                          loss_.schedule().bandwidth_scale(start)));
  const MicroTime ser =
      static_cast<MicroTime>(static_cast<u64>(packet.size) * 8'000'000 / bps);
  link_busy_until_ = start + ser;

  ++stats_.packets_sent;
  stats_.bytes_sent += packet.size;

  MicroTime jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<MicroTime>(rng_.below(
        static_cast<u64>(config_.jitter)));
  }
  // Stamp the moment serialization actually started, not the send call:
  // when the link was busy the packet queued until `link_busy_until_`, and
  // `sent_at` is how that queueing delay becomes observable downstream.
  packet.sent_at = start;
  packet.arrives_at = link_busy_until_ + config_.base_latency + jitter;

  if (loss_.lost(start, rng_)) {
    // The sender cannot see this: the arrival time is still returned, the
    // packet just never reaches `poll`. Only the receiver's silence (and
    // its feedback, if any) reveals the loss.
    ++stats_.packets_lost;
    VGBL_COUNT(NetMetrics::get().packets_lost);
    return packet.arrives_at;
  }

  // Keep the in-flight queue sorted by arrival; jitter can reorder tails.
  auto it = std::upper_bound(
      in_flight_.begin(), in_flight_.end(), packet,
      [](const Packet& a, const Packet& b) { return a.arrives_at < b.arrives_at; });
  in_flight_.insert(it, packet);
  return packet.arrives_at;
}

std::vector<Packet> SimulatedNetwork::poll(MicroTime now) {
  std::vector<Packet> out;
  while (!in_flight_.empty() && in_flight_.front().arrives_at <= now) {
    out.push_back(in_flight_.front());
    in_flight_.pop_front();
  }
  return out;
}

MicroTime FeedbackLink::send(FeedbackPacket packet, MicroTime now) {
  const MicroTime start = std::max(now, link_busy_until_);
  const u32 size = packet.wire_size();
  const u64 bps = std::max<u64>(
      1, static_cast<u64>(static_cast<f64>(config_.bandwidth_bps) *
                          loss_.schedule().bandwidth_scale(start)));
  const MicroTime ser =
      static_cast<MicroTime>(static_cast<u64>(size) * 8'000'000 / bps);
  link_busy_until_ = start + ser;

  ++stats_.packets_sent;
  stats_.bytes_sent += size;

  MicroTime jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<MicroTime>(rng_.below(
        static_cast<u64>(config_.jitter)));
  }
  packet.sent_at = start;
  packet.arrives_at = link_busy_until_ + config_.base_latency + jitter;

  if (loss_.lost(start, rng_)) {
    ++stats_.packets_lost;
    return packet.arrives_at;
  }

  const MicroTime arrives = packet.arrives_at;
  auto it = std::upper_bound(in_flight_.begin(), in_flight_.end(), packet,
                             [](const FeedbackPacket& a,
                                const FeedbackPacket& b) {
                               return a.arrives_at < b.arrives_at;
                             });
  in_flight_.insert(it, std::move(packet));
  return arrives;
}

std::vector<FeedbackPacket> FeedbackLink::poll(MicroTime now) {
  std::vector<FeedbackPacket> out;
  while (!in_flight_.empty() && in_flight_.front().arrives_at <= now) {
    out.push_back(std::move(in_flight_.front()));
    in_flight_.pop_front();
  }
  return out;
}

}  // namespace vgbl
