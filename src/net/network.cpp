#include "net/network.hpp"

#include <algorithm>

namespace vgbl {

std::optional<MicroTime> SimulatedNetwork::send(Packet packet, MicroTime now) {
  const MicroTime start = std::max(now, link_busy_until_);
  // Serialization delay on the shared link: size / bandwidth.
  const MicroTime ser =
      static_cast<MicroTime>(static_cast<u64>(packet.size) * 8'000'000 /
                             std::max<u64>(1, config_.bandwidth_bps));
  link_busy_until_ = start + ser;

  ++stats_.packets_sent;
  stats_.bytes_sent += packet.size;

  if (config_.loss_rate > 0 && rng_.chance(config_.loss_rate)) {
    ++stats_.packets_lost;
    return std::nullopt;
  }

  MicroTime jitter = 0;
  if (config_.jitter > 0) {
    jitter = static_cast<MicroTime>(rng_.below(
        static_cast<u64>(config_.jitter)));
  }
  // Stamp the moment serialization actually started, not the send call:
  // when the link was busy the packet queued until `link_busy_until_`, and
  // `sent_at` is how that queueing delay becomes observable downstream.
  packet.sent_at = start;
  packet.arrives_at = link_busy_until_ + config_.base_latency + jitter;

  // Keep the in-flight queue sorted by arrival; jitter can reorder tails.
  auto it = std::upper_bound(
      in_flight_.begin(), in_flight_.end(), packet,
      [](const Packet& a, const Packet& b) { return a.arrives_at < b.arrives_at; });
  in_flight_.insert(it, packet);
  return packet.arrives_at;
}

std::vector<Packet> SimulatedNetwork::poll(MicroTime now) {
  std::vector<Packet> out;
  while (!in_flight_.empty() && in_flight_.front().arrives_at <= now) {
    out.push_back(in_flight_.front());
    in_flight_.pop_front();
  }
  return out;
}

}  // namespace vgbl
