// Simulated packet network: a shared bottleneck link with serialization
// delay, propagation latency, jitter and random loss. This is the
// interactive-TV delivery substrate the paper's related work situates the
// system in (§2: PC-based systems "integrating network, video encoding and
// transmission technologies") — simulated because this environment has no
// real network (DESIGN.md §2).
//
// Honesty contract: loss is only observable at the receiver. `send` never
// tells the caller whether a packet survived — a lost packet simply never
// comes out of `poll`. Senders that need reliability must run an ARQ loop
// over the `FeedbackLink` reverse channel (see net/streaming.hpp).
//
// Fault injection: a `FaultSchedule` layers deterministic, seedable fault
// scenarios on top of the base iid loss rate — Gilbert–Elliott burst loss,
// hard outage windows (link flap) and mid-run bandwidth degradation — so
// tests, benches and the CLI can select delivery-robustness profiles.
#pragma once

#include <deque>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

struct NetworkConfig {
  /// Shared downlink capacity (the school's pipe, shared by all students).
  u64 bandwidth_bps = 20'000'000;
  MicroTime base_latency = milliseconds(20);
  MicroTime jitter = milliseconds(4);
  f64 loss_rate = 0.0;
  u32 mtu_bytes = 1400;
};

/// Injectable fault scenarios, evaluated per packet at serialization start.
/// All randomness comes from the owning link's seeded Rng, so a schedule is
/// bit-identical across reruns of the same seed.
struct FaultSchedule {
  /// Gilbert–Elliott burst loss: a two-state Markov chain advanced once per
  /// packet. The Good state loses packets with `ge_loss_good`, the Bad
  /// state with `ge_loss_bad`; the transition probabilities shape how long
  /// loss bursts last.
  f64 ge_loss_good = 0.0;
  f64 ge_loss_bad = 0.0;
  f64 ge_good_to_bad = 0.0;  // per-packet P(Good -> Bad)
  f64 ge_bad_to_good = 0.0;  // per-packet P(Bad -> Good)

  struct Window {
    MicroTime start = 0;
    MicroTime end = 0;  // half-open: [start, end)
  };
  /// Link flap: hard outage windows. Every packet whose serialization
  /// starts inside a window is lost (the bytes go into a dead link).
  std::vector<Window> outages;

  struct Degradation {
    Window window;
    f64 bandwidth_scale = 1.0;  // effective = bandwidth_bps * scale
  };
  /// Mid-run bandwidth degradation windows (congestion, throttling).
  std::vector<Degradation> degradations;

  [[nodiscard]] bool ge_enabled() const {
    return ge_good_to_bad > 0 || ge_loss_good > 0;
  }
  [[nodiscard]] bool empty() const {
    return !ge_enabled() && outages.empty() && degradations.empty();
  }
  [[nodiscard]] bool in_outage(MicroTime now) const;
  /// Smallest bandwidth scale among active degradation windows (1.0 when
  /// none are active).
  [[nodiscard]] f64 bandwidth_scale(MicroTime now) const;

  /// Named fault profiles for tests/benches/CLI:
  ///   "clean"    — no faults
  ///   "iid2"     — (no schedule faults; pair with loss_rate 0.02)
  ///   "bursty"   — Gilbert–Elliott, ~2% average loss in bursts
  ///   "flap"     — one hard 1.5s outage at t=10s
  ///   "degraded" — bandwidth drops to 35% over t=[15s, 45s)
  ///   "stress"   — bursty + flap + degradation combined
  /// Unknown names return the clean schedule.
  static FaultSchedule profile(std::string_view name);
};

/// Per-link loss decision: hard outages, the Gilbert–Elliott chain, then
/// the base iid rate. Owns the chain state; draws from the caller's Rng so
/// loss stays deterministic per link seed.
class LossProcess {
 public:
  LossProcess(f64 iid_loss, FaultSchedule schedule)
      : iid_(iid_loss), schedule_(std::move(schedule)) {}

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  bool lost(MicroTime at, Rng& rng);

 private:
  f64 iid_;
  FaultSchedule schedule_;
  bool ge_bad_ = false;
};

/// One in-flight transfer unit. Payloads are modelled by size only — the
/// receiver validates against the container, so carrying real bytes would
/// only slow the simulation down.
struct Packet {
  u32 flow = 0;        // client id
  u64 sequence = 0;    // per-flow sequence number (reused on retransmit)
  u32 size = 0;        // bytes on the wire
  u32 segment = 0;     // video segment this chunk belongs to
  int frame_index = -1;  // frame index *within* the segment
  bool frame_complete = false;  // last packet of its frame
  MicroTime sent_at = 0;     // when serialization started (>= the send
                             // call when the link was busy — the gap is
                             // the queueing delay)
  MicroTime arrives_at = 0;
};

class SimulatedNetwork {
 public:
  SimulatedNetwork(NetworkConfig config, u64 seed = 7)
      : SimulatedNetwork(config, FaultSchedule{}, seed) {}
  SimulatedNetwork(NetworkConfig config, FaultSchedule faults, u64 seed = 7)
      : config_(config),
        loss_(config.loss_rate, std::move(faults)),
        rng_(seed) {}

  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] const FaultSchedule& faults() const {
    return loss_.schedule();
  }

  /// True when the link can start serialising another packet at `now`
  /// (i.e. the sender is not blocked by backpressure).
  [[nodiscard]] bool can_send(MicroTime now) const {
    return link_busy_until_ <= now;
  }
  [[nodiscard]] MicroTime busy_until() const { return link_busy_until_; }

  /// Enqueues a packet at `now`. Serialization occupies the shared link;
  /// the packet arrives after latency+jitter. Returns the arrival time
  /// unconditionally — the sender cannot observe loss. A lost packet still
  /// consumed link time (the bytes were transmitted, just corrupted or
  /// flapped en route); it just never comes out of `poll`.
  MicroTime send(Packet packet, MicroTime now);

  /// All packets that have arrived by `now`, in arrival order.
  std::vector<Packet> poll(MicroTime now);

  struct Stats {
    u64 packets_sent = 0;
    u64 packets_lost = 0;
    u64 bytes_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  NetworkConfig config_;
  LossProcess loss_;
  Rng rng_;
  MicroTime link_busy_until_ = 0;
  std::deque<Packet> in_flight_;  // sorted by arrival (jitter is bounded)
  Stats stats_;
};

/// Client -> server control message on the reverse link: a cumulative ACK
/// ("I have every sequence <= this") plus the specific gaps the client
/// still wants retransmitted.
struct FeedbackPacket {
  u32 flow = 0;
  u64 cumulative_ack = 0;
  std::vector<u64> nacks;
  MicroTime sent_at = 0;
  MicroTime arrives_at = 0;

  [[nodiscard]] u32 wire_size() const {
    return 16 + 8 * static_cast<u32>(nacks.size());
  }
};

/// The small reverse link carrying client feedback. Same physics as the
/// downlink — serialization on a (much smaller) shared pipe, latency,
/// jitter, loss, and the same fault schedule shape (a flapped link is dead
/// in both directions) — so the ARQ loop has to survive lost and delayed
/// feedback, not just lost data.
class FeedbackLink {
 public:
  FeedbackLink(NetworkConfig config, FaultSchedule faults, u64 seed)
      : config_(config),
        loss_(config.loss_rate, std::move(faults)),
        rng_(seed) {}

  [[nodiscard]] bool can_send(MicroTime now) const {
    return link_busy_until_ <= now;
  }

  /// Same honesty contract as the downlink: returns the arrival time, the
  /// sender cannot observe loss.
  MicroTime send(FeedbackPacket packet, MicroTime now);
  std::vector<FeedbackPacket> poll(MicroTime now);

  struct Stats {
    u64 packets_sent = 0;
    u64 packets_lost = 0;
    u64 bytes_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  NetworkConfig config_;
  LossProcess loss_;
  Rng rng_;
  MicroTime link_busy_until_ = 0;
  std::deque<FeedbackPacket> in_flight_;
  Stats stats_;
};

}  // namespace vgbl
