// Simulated packet network: a shared bottleneck link with serialization
// delay, propagation latency, jitter and random loss. This is the
// interactive-TV delivery substrate the paper's related work situates the
// system in (§2: PC-based systems "integrating network, video encoding and
// transmission technologies") — simulated because this environment has no
// real network (DESIGN.md §2).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/types.hpp"

namespace vgbl {

struct NetworkConfig {
  /// Shared downlink capacity (the school's pipe, shared by all students).
  u64 bandwidth_bps = 20'000'000;
  MicroTime base_latency = milliseconds(20);
  MicroTime jitter = milliseconds(4);
  f64 loss_rate = 0.0;
  u32 mtu_bytes = 1400;
};

/// One in-flight transfer unit. Payloads are modelled by size only — the
/// receiver validates against the container, so carrying real bytes would
/// only slow the simulation down.
struct Packet {
  u32 flow = 0;        // client id
  u64 sequence = 0;    // per-flow sequence number
  u32 size = 0;        // bytes on the wire
  u32 segment = 0;     // video segment this chunk belongs to
  int frame_index = -1;  // frame index *within* the segment
  bool frame_complete = false;  // last packet of its frame
  MicroTime sent_at = 0;     // when serialization started (>= the send
                             // call when the link was busy — the gap is
                             // the queueing delay)
  MicroTime arrives_at = 0;
};

class SimulatedNetwork {
 public:
  SimulatedNetwork(NetworkConfig config, u64 seed = 7)
      : config_(config), rng_(seed) {}

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// True when the link can start serialising another packet at `now`
  /// (i.e. the sender is not blocked by backpressure).
  [[nodiscard]] bool can_send(MicroTime now) const {
    return link_busy_until_ <= now;
  }
  [[nodiscard]] MicroTime busy_until() const { return link_busy_until_; }

  /// Enqueues a packet at `now`. Serialization occupies the shared link;
  /// the packet arrives after latency+jitter unless lost. Returns the
  /// arrival time (lost packets return nullopt but still consumed link
  /// time — the bytes were transmitted, just corrupted en route).
  std::optional<MicroTime> send(Packet packet, MicroTime now);

  /// All packets that have arrived by `now`, in arrival order.
  std::vector<Packet> poll(MicroTime now);

  struct Stats {
    u64 packets_sent = 0;
    u64 packets_lost = 0;
    u64 bytes_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  NetworkConfig config_;
  Rng rng_;
  MicroTime link_busy_until_ = 0;
  std::deque<Packet> in_flight_;  // sorted by arrival (jitter is bounded)
  Stats stats_;
};

}  // namespace vgbl
