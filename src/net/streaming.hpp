// Scenario-aware video streaming: a server pushing segment frames to many
// student clients over the simulated network, with optional branch-aware
// prefetch (the server pre-pushes the segments reachable from the client's
// current scenario, ordered by transition weight). Evaluated in E9.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "scenario/scenario_graph.hpp"
#include "video/container.hpp"

namespace vgbl {

struct StreamingConfig {
  NetworkConfig network;
  /// Client starts playback once this many frames are buffered.
  int startup_buffer_frames = 8;
  /// After a stall, resume once this many frames are buffered.
  int resume_buffer_frames = 6;
  /// Branch-aware prefetch of likely next segments (the ablation knob).
  bool prefetch_enabled = true;
  /// Cap on prefetch: only this many candidate segments per scenario.
  int prefetch_fanout = 2;
};

/// Per-client playback statistics.
struct ClientStats {
  MicroTime startup_delay = 0;     // request -> first frame presented
  int rebuffer_events = 0;
  MicroTime rebuffer_time = 0;     // total stalled time
  MicroTime play_time = 0;         // time spent actually presenting
  int frames_presented = 0;
  int segments_played = 0;
  u64 bytes_received = 0;
  int prefetch_hits = 0;   // segment switches served entirely from buffer
  int segment_switches = 0;        // switches after the first segment
  MicroTime switch_delay_total = 0;  // request -> playing, summed over switches

  [[nodiscard]] f64 mean_switch_ms() const {
    return segment_switches
               ? to_millis(switch_delay_total) / segment_switches
               : 0.0;
  }
  [[nodiscard]] f64 rebuffer_ratio() const {
    const f64 total = static_cast<f64>(play_time + rebuffer_time);
    return total > 0 ? static_cast<f64>(rebuffer_time) / total : 0.0;
  }
};

/// A student's streaming receiver + player model. The "path" the student
/// takes is a pre-computed walk over the scenario graph (each segment is
/// watched to its end before switching — interaction timing is abstracted
/// to segment granularity at this layer).
class StreamClient {
 public:
  StreamClient(u32 id, const VideoContainer* container,
               std::vector<SegmentId> path, const StreamingConfig& config);

  [[nodiscard]] u32 id() const { return id_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }

  /// The segment the client currently needs (invalid when finished).
  [[nodiscard]] SegmentId current_segment() const;
  /// Segments after the current one on the client's path (for prefetch).
  [[nodiscard]] std::vector<SegmentId> upcoming_segments(int max_count) const;

  /// Frames of `segment` the client still needs (server-side pull model:
  /// the server asks each client what to send next).
  [[nodiscard]] int next_needed_frame(SegmentId segment) const;

  void on_packet(const Packet& packet, MicroTime now);
  /// Advances the playback model to `now`.
  void tick(MicroTime now);

 private:
  void start_segment(MicroTime now);

  u32 id_;
  const VideoContainer* container_;
  std::vector<SegmentId> path_;
  StreamingConfig config_;

  size_t path_pos_ = 0;
  bool finished_ = false;

  // Receive state per segment: count of *contiguous* frames from the
  // segment start, plus out-of-order arrivals waiting to be stitched in
  // (network jitter can reorder packets).
  std::map<u32, int> received_frames_;
  std::map<u32, std::set<int>> out_of_order_;

  // Playback state for the current segment.
  enum class PlayState { kBuffering, kPlaying, kStalled };
  PlayState state_ = PlayState::kBuffering;
  MicroTime segment_requested_at_ = 0;
  MicroTime state_since_ = 0;
  MicroTime next_frame_due_ = 0;
  int presented_in_segment_ = 0;
  bool first_frame_presented_ = false;

  ClientStats stats_;
};

/// The streaming server: walks all clients round-robin, pushing the next
/// needed frame of each client's current segment, then (if idle capacity
/// remains and prefetch is on) frames of upcoming segments.
class StreamServer {
 public:
  StreamServer(const VideoContainer* container, StreamingConfig config,
               u64 seed = 11);

  StreamClient& add_client(std::vector<SegmentId> path);

  /// Runs the simulation until all clients finish or `deadline` passes.
  /// Returns the end time.
  MicroTime run(MicroTime deadline);

  [[nodiscard]] const std::vector<std::unique_ptr<StreamClient>>& clients()
      const {
    return clients_;
  }
  [[nodiscard]] const SimulatedNetwork& network() const { return network_; }

  struct Aggregate {
    f64 mean_startup_ms = 0;
    f64 mean_rebuffer_ratio = 0;
    f64 p95_startup_ms = 0;
    f64 mean_switch_ms = 0;   // scenario-switch latency (prefetch target)
    int prefetch_hits = 0;
    int total_rebuffer_events = 0;
    u64 bytes_sent = 0;
  };
  [[nodiscard]] Aggregate aggregate() const;

 private:
  /// Sends one pending frame-chunk for `client`; returns false when the
  /// client needs nothing (fully buffered / finished).
  bool pump_client(StreamClient& client, MicroTime now);

  const VideoContainer* container_;
  StreamingConfig config_;
  SimulatedNetwork network_;
  std::vector<std::unique_ptr<StreamClient>> clients_;
  std::map<u32, u64> flow_sequence_;
  // Per (client, segment) send progress: next frame index to transmit.
  std::map<std::pair<u32, u32>, int> send_progress_;
};

/// Builds a plausible student path: a weighted random walk over the graph
/// from the start scenario until a terminal scenario (or `max_hops`).
std::vector<SegmentId> random_student_path(const ScenarioGraph& graph,
                                           int max_hops, Rng& rng);

}  // namespace vgbl
