// Scenario-aware video streaming: a server pushing segment frames to many
// student clients over the simulated network, with optional branch-aware
// prefetch (the server pre-pushes the segments reachable from the client's
// current scenario, ordered by transition weight). Evaluated in E9.
//
// Reliable delivery (DESIGN.md §5e): the sender cannot observe loss, so
// the server runs per-flow ARQ driven by client feedback on a small
// reverse link — cumulative ACKs clear the unacked window, NACKs trigger
// fast retransmits, and an RTT-derived timeout with exponential backoff
// catches the cases feedback loss hides. Retransmissions sit in a bounded
// queue that gets link priority over new frames and prefetch. When a frame
// cannot be recovered inside the playback budget the client skips it
// (counted in `frames_skipped`) instead of stalling forever.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "scenario/scenario_graph.hpp"
#include "video/container.hpp"

namespace vgbl {

struct StreamingConfig {
  NetworkConfig network;
  /// Injectable downlink fault scenario (see FaultSchedule::profile). The
  /// feedback link shares the outage/degradation windows — a flapped link
  /// is dead in both directions.
  FaultSchedule faults;

  /// Client starts playback once this many frames are buffered.
  int startup_buffer_frames = 8;
  /// After a stall, resume once this many frames are buffered.
  int resume_buffer_frames = 6;
  /// Branch-aware prefetch of likely next segments (the ablation knob).
  bool prefetch_enabled = true;
  /// Cap on prefetch: only this many candidate segments per scenario.
  int prefetch_fanout = 2;

  // --- feedback uplink (client -> server) ---
  /// Reverse-link capacity. Small by design: feedback competes for a thin
  /// shared uplink, so ACK/NACK delivery is neither free nor instant.
  u64 feedback_bandwidth_bps = 2'000'000;
  /// Feedback loss rate (the ARQ loop must survive lost ACKs/NACKs too).
  f64 feedback_loss_rate = 0.0;
  /// Minimum spacing between feedback packets per client; feedback is also
  /// change-driven (nothing new to report -> nothing sent).
  MicroTime feedback_interval = milliseconds(15);
  /// A gap must stay missing this long before it is NACKed, so jitter
  /// reordering does not trigger spurious retransmits. Defaulted from
  /// jitter when 0.
  MicroTime nack_grace = 0;
  /// NACK entries per feedback packet (keeps the uplink packet small).
  int max_nacks_per_feedback = 32;

  // --- server ARQ ---
  /// Pending-retransmission queue bound, across all flows. When full, new
  /// retransmit requests are dropped (a later NACK or timeout re-raises
  /// them) — the queue can never grow without bound during an outage.
  int max_retransmit_queue = 256;
  /// Retransmissions per packet before the server abandons it (the client
  /// recovers via frame skip).
  int max_retries = 10;
  /// Per-flow cap on sent-but-unacked packets; new frames wait (ARQ flow
  /// control) when the window is full, so server state stays bounded even
  /// when the link is dead.
  int max_unacked_per_flow = 256;
  MicroTime min_rto = milliseconds(40);
  MicroTime max_rto = seconds(3);
  /// Retransmission timeout before the first RTT sample arrives.
  MicroTime initial_rto = milliseconds(250);

  // --- graceful degradation ---
  /// When the client has been blocked on the same missing frame this long,
  /// it gives the frame up and skips it rather than stalling forever.
  MicroTime frame_skip_deadline = milliseconds(400);
};

/// Per-client playback statistics.
struct ClientStats {
  MicroTime startup_delay = 0;     // request -> first frame presented
  bool started = false;            // presented at least one frame
  int rebuffer_events = 0;
  MicroTime rebuffer_time = 0;     // total stalled time
  MicroTime play_time = 0;         // time spent actually presenting
  int frames_presented = 0;
  int frames_skipped = 0;  // unrecoverable frames skipped to keep playing
  int segments_played = 0;
  u64 bytes_received = 0;
  int prefetch_hits = 0;   // segment switches served entirely from buffer
  int segment_switches = 0;        // switches after the first segment
  MicroTime switch_delay_total = 0;  // request -> playing, summed over switches
  int nacks_sent = 0;              // NACK entries put on the uplink
  int feedback_packets = 0;        // feedback packets put on the uplink

  [[nodiscard]] f64 mean_switch_ms() const {
    return segment_switches
               ? to_millis(switch_delay_total) / segment_switches
               : 0.0;
  }
  [[nodiscard]] f64 rebuffer_ratio() const {
    const f64 total = static_cast<f64>(play_time + rebuffer_time);
    return total > 0 ? static_cast<f64>(rebuffer_time) / total : 0.0;
  }
};

/// A student's streaming receiver + player model. The "path" the student
/// takes is a pre-computed walk over the scenario graph (each segment is
/// watched to its end before switching — interaction timing is abstracted
/// to segment granularity at this layer).
class StreamClient {
 public:
  StreamClient(u32 id, const VideoContainer* container,
               std::vector<SegmentId> path, const StreamingConfig& config);

  [[nodiscard]] u32 id() const { return id_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const ClientStats& stats() const { return stats_; }

  /// The segment the client currently needs (invalid when finished).
  [[nodiscard]] SegmentId current_segment() const;
  /// Segments after the current one on the client's path (for prefetch).
  [[nodiscard]] std::vector<SegmentId> upcoming_segments(int max_count) const;

  /// First frame of `segment` not yet available to the player (arrived
  /// frames and skip decisions both count as available).
  [[nodiscard]] int next_needed_frame(SegmentId segment) const;

  void on_packet(const Packet& packet, MicroTime now);
  /// Advances the playback model to `now`.
  void tick(MicroTime now);

  /// Builds the next feedback packet (cumulative ACK + aged NACKs) when
  /// the pacing interval has elapsed and there is something new to report.
  [[nodiscard]] std::optional<FeedbackPacket> make_feedback(MicroTime now);

 private:
  void start_segment(MicroTime now);
  /// Receive state of one segment: `prefix` frames from the start are
  /// available (arrived or skipped); `pending` holds available frames past
  /// the first gap; `skipped` marks the give-up decisions.
  struct SegmentBuffer {
    int prefix = 0;
    std::set<int> pending;
    std::set<int> skipped;
  };
  void advance_prefix(SegmentBuffer& buf);
  /// Gives up on the blocking gap of the current segment: marks the run of
  /// missing frames up to the next arrived frame (at least one) skipped.
  void skip_blocked_frames(SegmentBuffer& buf);

  u32 id_;
  const VideoContainer* container_;
  std::vector<SegmentId> path_;
  StreamingConfig config_;

  size_t path_pos_ = 0;
  bool finished_ = false;

  std::map<u32, SegmentBuffer> buffers_;

  // ARQ receive state (per-flow sequence space).
  u64 rx_cum_ = 0;                 // every sequence <= this has arrived
  u64 rx_highest_ = 0;             // highest sequence seen
  std::set<u64> rx_above_cum_;     // arrived sequences past the first gap
  std::map<u64, MicroTime> missing_since_;  // gap -> first observed missing
  u64 last_fed_back_cum_ = 0;
  MicroTime next_feedback_at_ = 0;

  // Playback state for the current segment.
  enum class PlayState { kBuffering, kPlaying, kStalled };
  PlayState state_ = PlayState::kBuffering;
  MicroTime segment_requested_at_ = 0;
  MicroTime state_since_ = 0;
  MicroTime next_frame_due_ = 0;
  int presented_in_segment_ = 0;
  // Frame-skip deadline tracking: how long the head of the current
  // segment's gap has been blocking us.
  int blocked_frame_ = -1;
  MicroTime blocked_since_ = 0;

  ClientStats stats_;
};

/// The streaming server: walks all clients round-robin, pushing the next
/// needed frame of each client's current segment, then (if idle capacity
/// remains and prefetch is on) frames of upcoming segments. Pending
/// retransmissions always go first.
class StreamServer {
 public:
  StreamServer(const VideoContainer* container, StreamingConfig config,
               u64 seed = 11);

  StreamClient& add_client(std::vector<SegmentId> path);

  /// Scheduler cadence of the delivery loop: one step() every 2 ms of sim
  /// time, both inside run() and when a DES actor (src/sim) drives the
  /// server on a shared timeline.
  static constexpr MicroTime kStepInterval = milliseconds(2);

  /// One delivery step at sim time `now`: deliver arrived packets, process
  /// feedback, fire ARQ timeouts, advance every client's playback, then
  /// fill the link (retransmits first, new frames round-robin). Returns
  /// true once every client has finished. Exposed so a discrete-event
  /// timeline can interleave many servers; run() is exactly this in a
  /// kStepInterval loop, so the two drive modes are step-for-step
  /// identical.
  bool step(MicroTime now);

  /// Runs the simulation until all clients finish or `deadline` passes.
  /// Returns the end time.
  MicroTime run(MicroTime deadline);

  [[nodiscard]] const std::vector<std::unique_ptr<StreamClient>>& clients()
      const {
    return clients_;
  }
  [[nodiscard]] const SimulatedNetwork& network() const { return network_; }
  [[nodiscard]] const FeedbackLink& feedback_link() const { return feedback_; }

  struct ArqStats {
    u64 retransmits = 0;       // packets re-sent (NACK or timeout)
    u64 nacks_received = 0;    // NACK entries processed
    u64 feedback_received = 0; // feedback packets processed
    u64 timeouts = 0;          // RTO expirations
    u64 abandoned = 0;         // packets dropped after max_retries
    u64 queue_overflow = 0;    // retransmit requests dropped (queue full)
  };
  [[nodiscard]] const ArqStats& arq_stats() const { return arq_stats_; }

  struct Aggregate {
    /// Startup stats cover clients that presented at least one frame;
    /// clients the deadline cut off before first light are counted in
    /// `unfinished_clients`, not averaged in as zero.
    f64 mean_startup_ms = 0;
    f64 p95_startup_ms = 0;
    f64 mean_rebuffer_ratio = 0;
    f64 mean_switch_ms = 0;   // scenario-switch latency (prefetch target)
    int prefetch_hits = 0;
    int total_rebuffer_events = 0;
    int frames_skipped = 0;
    int unfinished_clients = 0;  // clients not finished when run() returned
    u64 retransmits = 0;
    u64 nacks_sent = 0;
    u64 bytes_sent = 0;
  };
  [[nodiscard]] Aggregate aggregate() const;

 private:
  struct UnackedPacket {
    Packet packet;
    MicroTime last_sent = 0;
    int retries = 0;
    bool queued = false;  // sitting in the retransmit queue
  };
  struct FlowArq {
    std::map<u64, UnackedPacket> unacked;
    // Jacobson/Karn RTT estimation (microseconds).
    f64 srtt = 0;
    f64 rttvar = 0;
    bool rtt_valid = false;
    MicroTime next_timeout_at = 0;  // earliest RTO among unacked entries
  };

  /// Sends one pending frame-chunk for `client`; returns false when the
  /// client needs nothing (fully buffered / finished / window full).
  bool pump_client(StreamClient& client, MicroTime now);
  void on_feedback(const FeedbackPacket& fb, MicroTime now);
  void check_timeouts(MicroTime now);
  /// Current retransmission timeout for one flow (before backoff).
  [[nodiscard]] MicroTime rto(const FlowArq& arq) const;
  /// Re-sends one queued retransmission; false when the queue is empty.
  bool send_one_retransmit(MicroTime now);

  const VideoContainer* container_;
  StreamingConfig config_;
  SimulatedNetwork network_;
  FeedbackLink feedback_;
  std::vector<std::unique_ptr<StreamClient>> clients_;
  std::map<u32, u64> flow_sequence_;
  std::map<u32, FlowArq> arq_;
  std::deque<std::pair<u32, u64>> retransmit_queue_;  // (flow, sequence)
  ArqStats arq_stats_;
  // Per (client, segment) send progress: next frame index to transmit.
  std::map<std::pair<u32, u32>, int> send_progress_;
  // Round-robin cursors, persistent across steps: new frames / feedback
  // uplink access.
  size_t rr_ = 0;
  size_t fb_rr_ = 0;
};

/// Builds a plausible student path: a weighted random walk over the graph
/// from the start scenario, at most `max_hops` segments long (shorter when
/// a terminal scenario or dead end is reached first).
std::vector<SegmentId> random_student_path(const ScenarioGraph& graph,
                                           int max_hops, Rng& rng);

}  // namespace vgbl
