#include "concurrency/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/wall_clock.hpp"
#include "util/thread_annotations.hpp"

namespace vgbl {

namespace {

struct PoolMetrics {
  obs::Counter& tasks;
  obs::Counter& idle_us;
  obs::Gauge& queue_depth;

  static PoolMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static PoolMetrics m{
        reg.counter("pool_tasks_total", "tasks executed by pool workers"),
        reg.counter("pool_idle_us_total",
                    "wall time workers spent waiting for work"),
        reg.gauge("pool_queue_depth",
                  "tasks queued but not yet started (approximate)")};
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : queue_(1024) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& w : workers_) w.join();
}

void ThreadPool::note_submitted() {
  VGBL_GAUGE_ADD(PoolMetrics::get().queue_depth, 1);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::optional<std::function<void()>> task;
    if (obs::enabled()) {
      const i64 idle_start_us = obs::wall_now_us();
      task = queue_.pop();
      auto& m = PoolMetrics::get();
      VGBL_COUNT(m.idle_us,
                 static_cast<u64>(obs::wall_now_us() - idle_start_us));
      if (task) {
        VGBL_GAUGE_ADD(m.queue_depth, -1);
        VGBL_COUNT(m.tasks);
      }
    } else {
      task = queue_.pop();
    }
    if (!task) return;
    (*task)();
  }
}

void ThreadPool::parallel_for_chunks(i64 begin, i64 end,
                                     const std::function<void(i64, i64)>& fn,
                                     i64 grain) {
  if (begin >= end) return;
  const i64 total = end - begin;
  if (grain <= 0) {
    grain = std::max<i64>(1, total / (static_cast<i64>(thread_count()) * 4));
  }
  const i64 chunks = (total + grain - 1) / grain;
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }

  // The submitting thread steals chunks too, so progress is guaranteed even
  // if all workers are busy with unrelated tasks.
  auto next = std::make_shared<std::atomic<i64>>(0);
  auto remaining = std::make_shared<std::atomic<i64>>(chunks);
  Mutex done_mutex;
  std::condition_variable_any done_cv;

  auto run_chunks = [=, &fn]() {
    while (true) {
      const i64 c = next->fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return false;
      const i64 lo = begin + c * grain;
      const i64 hi = std::min(end, lo + grain);
      fn(lo, hi);
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) return true;
    }
  };

  const i64 helpers =
      std::min<i64>(static_cast<i64>(thread_count()), chunks - 1);
  for (i64 i = 0; i < helpers; ++i) {
    const bool accepted = queue_.try_push([run_chunks, &done_mutex, &done_cv] {
      if (run_chunks()) {
        MutexLock lock(done_mutex);
        done_cv.notify_all();
      }
    });
    if (accepted) note_submitted();
  }
  if (run_chunks()) {
    done_cv.notify_all();
  }

  UniqueLock lock(done_mutex);
  while (remaining->load(std::memory_order_acquire) != 0) {
    done_cv.wait(lock);
  }
}

void ThreadPool::parallel_for(i64 begin, i64 end,
                              const std::function<void(i64)>& fn, i64 grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](i64 lo, i64 hi) {
        for (i64 i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

}  // namespace vgbl
