// Bounded MPMC blocking queue. Backbone of the media pipeline stages and the
// stream server's per-client work feeds. Closing the queue wakes all waiters
// so pipelines shut down deterministically.
#pragma once

#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "util/thread_annotations.hpp"

namespace vgbl {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available. Returns false if the queue was closed
  /// before the element could be enqueued.
  bool push(T item) VGBL_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) {
      not_full_.wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) VGBL_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available or the queue is closed and
  /// drained; nullopt signals end-of-stream.
  std::optional<T> pop() VGBL_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      not_empty_.wait(lock);
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() VGBL_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed: producers fail fast, consumers drain remaining
  /// elements then observe end-of-stream.
  void close() VGBL_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const VGBL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] size_t size() const VGBL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mutex_;
  // condition_variable_any: takes any BasicLockable, so it waits on the
  // annotated UniqueLock directly (libstdc++'s condition_variable would
  // force std::unique_lock<std::mutex> and lose the capability tracking).
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> items_ VGBL_GUARDED_BY(mutex_);
  bool closed_ VGBL_GUARDED_BY(mutex_) = false;
};

}  // namespace vgbl
