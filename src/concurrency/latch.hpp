// Reusable countdown latch and a double-buffer exchange helper used by the
// compositor (render thread writes the back buffer, presenter reads front).
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/types.hpp"

namespace vgbl {

/// Like std::latch but resettable, so pipeline stages can reuse one
/// instance per frame.
class CountdownLatch {
 public:
  explicit CountdownLatch(i64 count) : count_(count) {}

  void count_down(i64 n = 1) {
    std::lock_guard lock(mutex_);
    count_ -= n;
    if (count_ <= 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return count_ <= 0; });
  }

  void reset(i64 count) {
    std::lock_guard lock(mutex_);
    count_ = count;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  i64 count_;
};

/// Two-slot swap buffer: the producer publishes a complete value, the
/// consumer always reads the most recent published value. Stale reads are
/// allowed (video presentation tolerates dropped frames); torn reads are not.
template <typename T>
class DoubleBuffer {
 public:
  void publish(T value) {
    std::lock_guard lock(mutex_);
    back_ = std::move(value);
    ++version_;
  }

  /// Returns the newest value and its version. Version 0 means nothing has
  /// been published yet (value is default-constructed).
  [[nodiscard]] std::pair<T, u64> snapshot() const {
    std::lock_guard lock(mutex_);
    return {back_, version_};
  }

  [[nodiscard]] u64 version() const {
    std::lock_guard lock(mutex_);
    return version_;
  }

 private:
  mutable std::mutex mutex_;
  T back_{};
  u64 version_ = 0;
};

}  // namespace vgbl
