// Reusable countdown latch and a double-buffer exchange helper used by the
// compositor (render thread writes the back buffer, presenter reads front).
#pragma once

#include <condition_variable>
#include <utility>

#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace vgbl {

/// Like std::latch but resettable, so pipeline stages can reuse one
/// instance per frame.
class CountdownLatch {
 public:
  explicit CountdownLatch(i64 count) : count_(count) {}

  void count_down(i64 n = 1) VGBL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    count_ -= n;
    if (count_ <= 0) cv_.notify_all();
  }

  void wait() VGBL_EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (count_ > 0) {
      cv_.wait(lock);
    }
  }

  void reset(i64 count) VGBL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    count_ = count;
  }

 private:
  Mutex mutex_;
  std::condition_variable_any cv_;
  i64 count_ VGBL_GUARDED_BY(mutex_);
};

/// Two-slot swap buffer: the producer publishes a complete value, the
/// consumer always reads the most recent published value. Stale reads are
/// allowed (video presentation tolerates dropped frames); torn reads are not.
template <typename T>
class DoubleBuffer {
 public:
  void publish(T value) VGBL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    back_ = std::move(value);
    ++version_;
  }

  /// Returns the newest value and its version. Version 0 means nothing has
  /// been published yet (value is default-constructed).
  [[nodiscard]] std::pair<T, u64> snapshot() const VGBL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return {back_, version_};
  }

  [[nodiscard]] u64 version() const VGBL_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return version_;
  }

 private:
  mutable Mutex mutex_;
  T back_ VGBL_GUARDED_BY(mutex_){};
  u64 version_ VGBL_GUARDED_BY(mutex_) = 0;
};

}  // namespace vgbl
