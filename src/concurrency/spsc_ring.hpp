// Wait-free single-producer/single-consumer ring buffer. Used on the
// decoder→presenter hand-off where exactly one thread sits on each side and
// lock overhead would show up at per-frame granularity.
#pragma once

#include <atomic>
#include <cassert>
#include <new>
#include <optional>
#include <vector>

namespace vgbl {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr size_t kCacheLineSize = std::hardware_destructive_interference_size;
#else
inline constexpr size_t kCacheLineSize = 64;
#endif

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; one slot is sacrificed to
  /// distinguish full from empty.
  explicit SpscRing(size_t capacity) {
    size_t n = 2;
    while (n < capacity + 1) n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T item) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    slots_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T item = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return item;
  }

  [[nodiscard]] size_t size() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
};

}  // namespace vgbl
