// Fixed-size worker pool with a shared task queue. Submission returns
// std::future; `parallel_for` partitions an index range across workers with
// the submitting thread participating (so a 1-worker pool still overlaps).
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "util/types.hpp"

namespace vgbl {

class ThreadPool {
 public:
  /// Creates `threads` workers (at least 1). Tasks submitted after
  /// destruction begins are rejected by the closed queue.
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueues a task; the returned future observes its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    const bool accepted = queue_.push([task] { (*task)(); });
    if (!accepted) {
      // Pool already shut down: run inline so the future is always satisfied.
      (*task)();
    } else {
      note_submitted();
    }
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations finish. Grain defaults to a heuristic that yields ~4 chunks
  /// per worker to balance load without drowning the queue.
  void parallel_for(i64 begin, i64 end, const std::function<void(i64)>& fn,
                    i64 grain = 0);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lets callers hoist
  /// per-chunk setup out of the inner loop.
  void parallel_for_chunks(i64 begin, i64 end,
                           const std::function<void(i64, i64)>& fn,
                           i64 grain = 0);

 private:
  void worker_loop();
  /// Observability hooks (src/obs): queue-depth gauge and task counters.
  /// No-ops while metrics are disabled.
  void note_submitted();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace vgbl
