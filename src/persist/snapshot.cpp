#include "persist/snapshot.hpp"

#include "util/bitstream.hpp"
#include "util/crc32.hpp"

namespace vgbl {
namespace {

// Section tags (four printable characters, little-endian).
constexpr u32 tag4(char a, char b, char c, char d) {
  return static_cast<u32>(static_cast<u8>(a)) |
         static_cast<u32>(static_cast<u8>(b)) << 8 |
         static_cast<u32>(static_cast<u8>(c)) << 16 |
         static_cast<u32>(static_cast<u8>(d)) << 24;
}
constexpr u32 kSectionMeta = tag4('M', 'E', 'T', 'A');
constexpr u32 kSectionCore = tag4('C', 'O', 'R', 'E');
constexpr u32 kSectionActive = tag4('A', 'C', 'T', 'V');
constexpr u32 kSectionTracker = tag4('T', 'R', 'C', 'K');
constexpr u32 kSectionLog = tag4('E', 'L', 'O', 'G');
constexpr u32 kSectionRewards = tag4('R', 'E', 'W', 'D');

std::string tag_name(u32 tag) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>(tag >> (8 * i));
    s[static_cast<size_t>(i)] = (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return s;
}

// --- id-set codec: exp-Golomb deltas over a sorted list (util/bitstream) ----

void put_id_set(ByteWriter& w, const std::vector<u32>& sorted) {
  BitWriter bits;
  bits.put_ue(static_cast<u32>(sorted.size()));
  u32 prev = 0;
  for (u32 v : sorted) {
    bits.put_ue(v - prev);
    prev = v;
  }
  w.put_blob(std::move(bits).finish());
}

[[nodiscard]] Result<std::vector<u32>> get_id_set(ByteReader& r) {
  auto blob = r.blob();
  if (!blob.ok()) return blob.error();
  BitReader bits(blob.value());
  auto count = bits.ue();
  if (!count.ok()) return count.error();
  if (count.value() > blob.value().size() * 8) {
    return corrupt_data("id set count exceeds payload");
  }
  std::vector<u32> out;
  out.reserve(count.value());
  u32 prev = 0;
  for (u32 i = 0; i < count.value(); ++i) {
    auto delta = bits.ue();
    if (!delta.ok()) return delta.error();
    prev += delta.value();
    out.push_back(prev);
  }
  return out;
}

// --- section payload writers ------------------------------------------------

void write_meta(ByteWriter& w, const SnapshotMeta& meta) {
  w.put_string(meta.student_id);
  w.put_string(meta.bundle_title);
  w.put_varint(meta.sequence);
  w.put_varint(meta.step_count);
  w.put_i64(meta.sim_time);
}

void write_core(ByteWriter& w, const SessionState& s) {
  w.put_i64(s.now);
  w.put_u32(s.scenario.value);
  u8 bits = 0;
  bits |= s.started ? 1 << 0 : 0;
  bits |= s.game_over ? 1 << 1 : 0;
  bits |= s.success ? 1 << 2 : 0;
  bits |= s.segment_end_fired ? 1 << 3 : 0;
  bits |= s.player_active ? 1 << 4 : 0;
  bits |= s.avatar_walking ? 1 << 5 : 0;
  bits |= s.has_pending_interaction ? 1 << 6 : 0;
  w.put_u8(bits);
  w.put_i64(s.scenario_entered_at);
  w.put_i64(s.player_start);

  w.put_varint(s.inventory.size());
  for (const auto& e : s.inventory) {
    w.put_varint(e.item);
    w.put_svarint(e.count);
  }
  w.put_varint(s.ledger.size());
  for (const auto& e : s.ledger) {
    w.put_svarint(e.points);
    w.put_string(e.reason);
    w.put_i64(e.when);
  }
  w.put_varint(s.flags.size());
  for (const auto& f : s.flags) w.put_string(f);
  put_id_set(w, s.visited);
  put_id_set(w, s.disarmed);
  w.put_varint(s.visibility.size());
  for (const auto& v : s.visibility) {
    w.put_varint(v.object);
    w.put_u8(v.visible ? 1 : 0);
  }
  w.put_varint(s.timers.size());
  for (const auto& t : s.timers) {
    w.put_varint(t.rule);
    w.put_i64(t.fire_at);
  }
  w.put_i32(s.avatar_position.x);
  w.put_i32(s.avatar_position.y);
  if (s.avatar_walking) {
    w.put_i32(s.avatar_target.x);
    w.put_i32(s.avatar_target.y);
  }
  if (s.has_pending_interaction) {
    w.put_u8(s.pending_trigger);
    w.put_u32(s.pending_object);
    w.put_u32(s.pending_item);
  }
}

void write_active(ByteWriter& w, const SessionState& s) {
  u8 bits = 0;
  bits |= s.in_dialogue ? 1 << 0 : 0;
  bits |= s.in_quiz ? 1 << 1 : 0;
  bits |= s.has_message ? 1 << 2 : 0;
  bits |= s.has_image ? 1 << 3 : 0;
  w.put_u8(bits);
  if (s.in_dialogue) {
    w.put_u32(s.dialogue_id);
    w.put_varint(s.dialogue_path.size());
    for (u32 v : s.dialogue_path) w.put_varint(v);
    w.put_varint(s.dialogue_consumed_tags);
  }
  if (s.in_quiz) {
    w.put_u32(s.quiz_id);
    w.put_varint(s.quiz_answers.size());
    for (u32 v : s.quiz_answers) w.put_varint(v);
  }
  if (s.has_message) {
    w.put_string(s.message_text);
    w.put_i64(s.message_shown_at);
    w.put_i64(s.message_timeout);
  }
  if (s.has_image) {
    w.put_string(s.image_icon);
    w.put_i64(s.image_shown_at);
  }
}

void write_tracker(ByteWriter& w, const LearningTracker::State& t) {
  w.put_varint(t.visits.size());
  for (const auto& v : t.visits) {
    w.put_u32(v.id.value);
    w.put_string(v.name);
    w.put_i64(v.entered);
    w.put_i64(v.left);
  }
  w.put_varint(t.interactions.size());
  for (const auto& i : t.interactions) {
    w.put_string(i.kind);
    w.put_string(i.target);
    w.put_i64(i.when);
  }
  w.put_varint(t.decisions.size());
  for (const auto& d : t.decisions) {
    w.put_string(d.context);
    w.put_string(d.choice);
    w.put_i64(d.when);
  }
  w.put_varint(t.items.size());
  for (const auto& i : t.items) w.put_string(i);
  w.put_varint(t.rewards.size());
  for (const auto& r : t.rewards) w.put_string(r);
  w.put_varint(t.resources.size());
  for (const auto& [title, when] : t.resources) {
    w.put_string(title);
    w.put_i64(when);
  }
  w.put_svarint(t.score);
  w.put_u8(static_cast<u8>((t.finished ? 1 : 0) | (t.success ? 2 : 0)));
  w.put_i64(t.finished_at);
}

void write_log(ByteWriter& w, const std::vector<SessionLogEntry>& log) {
  w.put_varint(log.size());
  for (const auto& e : log) {
    w.put_i64(e.when);
    w.put_string(e.text);
  }
}

void write_rewards(ByteWriter& w, const rewards::EvaluatorState& s) {
  w.put_varint(s.interactions_seen);
  w.put_varint(s.items_seen);
  w.put_varint(s.decisions_seen);
  w.put_varint(s.visits_seen);
  w.put_svarint(s.streak_length);
  w.put_i64(s.streak_last);
  w.put_u8(static_cast<u8>((s.streak_active ? 1 : 0) |
                           (s.completion_seen ? 2 : 0)));
  w.put_varint(s.scenarios_explored.size());
  for (const auto& name : s.scenarios_explored) w.put_string(name);
  w.put_varint(s.progress.size());
  for (i64 p : s.progress) w.put_svarint(p);
  w.put_varint(s.unlocked.size());
  for (u8 u : s.unlocked) w.put_u8(u);
  // Same per-unlock layout as rewards::encode_unlock_log, so the stream
  // embedded in a snapshot stays byte-comparable with live logs.
  w.put_varint(s.unlocks.size());
  for (const auto& u : s.unlocks) {
    w.put_i64(u.sim_time);
    w.put_u32(u.rule_id);
    w.put_string(u.badge);
    w.put_svarint(u.points);
  }
}

// --- section payload readers ------------------------------------------------

// The readers below deliberately return on the *first* failed accessor:
// every Result is checked, so corrupt payloads surface as kCorruptData.

#define VGBL_READ(var, expr)                  \
  auto var##_r = (expr);                      \
  if (!var##_r.ok()) return var##_r.error(); \
  auto var = std::move(var##_r).value()

[[nodiscard]] Result<u64> read_count(ByteReader& r, size_t per_element_floor) {
  auto count = r.varint();
  if (!count.ok()) return count.error();
  if (per_element_floor > 0 &&
      count.value() > r.remaining() / per_element_floor + 1) {
    return corrupt_data("element count exceeds payload size");
  }
  return count.value();
}

Status read_meta(ByteReader& r, SnapshotMeta& meta) {
  VGBL_READ(student, r.string());
  VGBL_READ(title, r.string());
  VGBL_READ(sequence, r.varint());
  VGBL_READ(steps, r.varint());
  VGBL_READ(sim_time, r.i64_());
  meta.student_id = std::move(student);
  meta.bundle_title = std::move(title);
  meta.sequence = sequence;
  meta.step_count = steps;
  meta.sim_time = sim_time;
  return {};
}

Status read_core(ByteReader& r, SessionState& s) {
  VGBL_READ(now, r.i64_());
  VGBL_READ(scenario, r.u32_());
  VGBL_READ(bits, r.u8_());
  VGBL_READ(entered_at, r.i64_());
  VGBL_READ(player_start, r.i64_());
  s.now = now;
  s.scenario = ScenarioId{scenario};
  s.started = bits & 1 << 0;
  s.game_over = bits & 1 << 1;
  s.success = bits & 1 << 2;
  s.segment_end_fired = bits & 1 << 3;
  s.player_active = bits & 1 << 4;
  s.avatar_walking = bits & 1 << 5;
  s.has_pending_interaction = bits & 1 << 6;
  s.scenario_entered_at = entered_at;
  s.player_start = player_start;

  VGBL_READ(inv_count, read_count(r, 2));
  for (u64 i = 0; i < inv_count; ++i) {
    VGBL_READ(item, r.varint());
    VGBL_READ(count, r.svarint());
    s.inventory.push_back(
        {static_cast<u32>(item), static_cast<i32>(count)});
  }
  VGBL_READ(ledger_count, read_count(r, 10));
  for (u64 i = 0; i < ledger_count; ++i) {
    VGBL_READ(points, r.svarint());
    VGBL_READ(reason, r.string());
    VGBL_READ(when, r.i64_());
    s.ledger.push_back({points, std::move(reason), when});
  }
  VGBL_READ(flag_count, read_count(r, 1));
  for (u64 i = 0; i < flag_count; ++i) {
    VGBL_READ(flag, r.string());
    s.flags.push_back(std::move(flag));
  }
  VGBL_READ(visited, get_id_set(r));
  VGBL_READ(disarmed, get_id_set(r));
  s.visited = std::move(visited);
  s.disarmed = std::move(disarmed);
  VGBL_READ(vis_count, read_count(r, 2));
  for (u64 i = 0; i < vis_count; ++i) {
    VGBL_READ(object, r.varint());
    VGBL_READ(visible, r.u8_());
    s.visibility.push_back({static_cast<u32>(object), visible != 0});
  }
  VGBL_READ(timer_count, read_count(r, 9));
  for (u64 i = 0; i < timer_count; ++i) {
    VGBL_READ(rule, r.varint());
    VGBL_READ(fire_at, r.i64_());
    s.timers.push_back({static_cast<u32>(rule), fire_at});
  }
  VGBL_READ(ax, r.i32_());
  VGBL_READ(ay, r.i32_());
  s.avatar_position = {ax, ay};
  if (s.avatar_walking) {
    VGBL_READ(tx, r.i32_());
    VGBL_READ(ty, r.i32_());
    s.avatar_target = {tx, ty};
  }
  if (s.has_pending_interaction) {
    VGBL_READ(trigger, r.u8_());
    VGBL_READ(object, r.u32_());
    VGBL_READ(item, r.u32_());
    s.pending_trigger = trigger;
    s.pending_object = object;
    s.pending_item = item;
  }
  return {};
}

Status read_active(ByteReader& r, SessionState& s) {
  VGBL_READ(bits, r.u8_());
  s.in_dialogue = bits & 1 << 0;
  s.in_quiz = bits & 1 << 1;
  s.has_message = bits & 1 << 2;
  s.has_image = bits & 1 << 3;
  if (s.in_dialogue) {
    VGBL_READ(id, r.u32_());
    VGBL_READ(count, read_count(r, 1));
    s.dialogue_id = id;
    for (u64 i = 0; i < count; ++i) {
      VGBL_READ(input, r.varint());
      s.dialogue_path.push_back(static_cast<u32>(input));
    }
    VGBL_READ(consumed, r.varint());
    s.dialogue_consumed_tags = static_cast<u32>(consumed);
  }
  if (s.in_quiz) {
    VGBL_READ(id, r.u32_());
    VGBL_READ(count, read_count(r, 1));
    s.quiz_id = id;
    for (u64 i = 0; i < count; ++i) {
      VGBL_READ(answer, r.varint());
      s.quiz_answers.push_back(static_cast<u32>(answer));
    }
  }
  if (s.has_message) {
    VGBL_READ(text, r.string());
    VGBL_READ(shown_at, r.i64_());
    VGBL_READ(timeout, r.i64_());
    s.message_text = std::move(text);
    s.message_shown_at = shown_at;
    s.message_timeout = timeout;
  }
  if (s.has_image) {
    VGBL_READ(icon, r.string());
    VGBL_READ(shown_at, r.i64_());
    s.image_icon = std::move(icon);
    s.image_shown_at = shown_at;
  }
  return {};
}

Status read_tracker(ByteReader& r, LearningTracker::State& t) {
  VGBL_READ(visit_count, read_count(r, 14));
  for (u64 i = 0; i < visit_count; ++i) {
    VGBL_READ(id, r.u32_());
    VGBL_READ(name, r.string());
    VGBL_READ(entered, r.i64_());
    VGBL_READ(left, r.i64_());
    t.visits.push_back({ScenarioId{id}, std::move(name), entered, left});
  }
  VGBL_READ(interaction_count, read_count(r, 10));
  for (u64 i = 0; i < interaction_count; ++i) {
    VGBL_READ(kind, r.string());
    VGBL_READ(target, r.string());
    VGBL_READ(when, r.i64_());
    t.interactions.push_back({std::move(kind), std::move(target), when});
  }
  VGBL_READ(decision_count, read_count(r, 10));
  for (u64 i = 0; i < decision_count; ++i) {
    VGBL_READ(context, r.string());
    VGBL_READ(choice, r.string());
    VGBL_READ(when, r.i64_());
    t.decisions.push_back({std::move(context), std::move(choice), when});
  }
  VGBL_READ(item_count, read_count(r, 1));
  for (u64 i = 0; i < item_count; ++i) {
    VGBL_READ(item, r.string());
    t.items.push_back(std::move(item));
  }
  VGBL_READ(reward_count, read_count(r, 1));
  for (u64 i = 0; i < reward_count; ++i) {
    VGBL_READ(reward, r.string());
    t.rewards.push_back(std::move(reward));
  }
  VGBL_READ(resource_count, read_count(r, 9));
  for (u64 i = 0; i < resource_count; ++i) {
    VGBL_READ(title, r.string());
    VGBL_READ(when, r.i64_());
    t.resources.emplace_back(std::move(title), when);
  }
  VGBL_READ(score, r.svarint());
  VGBL_READ(bits, r.u8_());
  VGBL_READ(finished_at, r.i64_());
  t.score = score;
  t.finished = bits & 1;
  t.success = bits & 2;
  t.finished_at = finished_at;
  return {};
}

Status read_log(ByteReader& r, std::vector<SessionLogEntry>& log) {
  VGBL_READ(count, read_count(r, 9));
  for (u64 i = 0; i < count; ++i) {
    VGBL_READ(when, r.i64_());
    VGBL_READ(text, r.string());
    log.push_back({when, std::move(text)});
  }
  return {};
}

Status read_rewards(ByteReader& r, rewards::EvaluatorState& s) {
  VGBL_READ(interactions_seen, r.varint());
  VGBL_READ(items_seen, r.varint());
  VGBL_READ(decisions_seen, r.varint());
  VGBL_READ(visits_seen, r.varint());
  VGBL_READ(streak_length, r.svarint());
  VGBL_READ(streak_last, r.i64_());
  VGBL_READ(bits, r.u8_());
  s.interactions_seen = static_cast<u32>(interactions_seen);
  s.items_seen = static_cast<u32>(items_seen);
  s.decisions_seen = static_cast<u32>(decisions_seen);
  s.visits_seen = static_cast<u32>(visits_seen);
  s.streak_length = streak_length;
  s.streak_last = streak_last;
  s.streak_active = bits & 1;
  s.completion_seen = bits & 2;
  VGBL_READ(scenario_count, read_count(r, 1));
  for (u64 i = 0; i < scenario_count; ++i) {
    VGBL_READ(name, r.string());
    s.scenarios_explored.push_back(std::move(name));
  }
  VGBL_READ(progress_count, read_count(r, 1));
  for (u64 i = 0; i < progress_count; ++i) {
    VGBL_READ(p, r.svarint());
    s.progress.push_back(p);
  }
  VGBL_READ(unlocked_count, read_count(r, 1));
  for (u64 i = 0; i < unlocked_count; ++i) {
    VGBL_READ(u, r.u8_());
    s.unlocked.push_back(u);
  }
  VGBL_READ(unlock_count, read_count(r, 14));
  for (u64 i = 0; i < unlock_count; ++i) {
    VGBL_READ(when, r.i64_());
    VGBL_READ(rule, r.u32_());
    VGBL_READ(badge, r.string());
    VGBL_READ(points, r.svarint());
    s.unlocks.push_back({when, rule, std::move(badge), points});
  }
  return {};
}

#undef VGBL_READ

template <typename Fn>
void emit_section(ByteWriter& out, u32 tag, Fn&& fill) {
  ByteWriter payload;
  fill(payload);
  out.put_u32(tag);
  out.put_u32(static_cast<u32>(payload.size()));
  const Bytes body = std::move(payload).take();
  out.put_raw(body.data(), body.size());
  out.put_u32(crc32(body));
}

/// Parses and CRC-verifies the framing, returning payload views by tag.
/// Shared by decode_snapshot and inspect_snapshot.
struct ParsedSections {
  u16 version = 0;
  std::vector<std::pair<u32, std::span<const u8>>> sections;
};

[[nodiscard]] Result<ParsedSections> parse_sections(std::span<const u8> data) {
  ByteReader r(data);
  auto magic = r.u32_();
  if (!magic.ok() || magic.value() != kSnapshotMagic) {
    return corrupt_data("not a VGSS snapshot (bad magic)");
  }
  auto version = r.u16_();
  if (!version.ok()) return corrupt_data("truncated snapshot header");
  auto section_count = r.u16_();
  auto header_crc = r.u32_();
  if (!section_count.ok() || !header_crc.ok()) {
    return corrupt_data("truncated snapshot header");
  }
  if (header_crc.value() != crc32(data.subspan(0, 8))) {
    return corrupt_data("snapshot header crc mismatch");
  }
  if (version.value() != kSnapshotVersion) {
    return unsupported("snapshot format version " +
                       std::to_string(version.value()) +
                       " (reader supports " +
                       std::to_string(kSnapshotVersion) + ")");
  }
  ParsedSections out;
  out.version = version.value();
  for (u16 i = 0; i < section_count.value(); ++i) {
    auto tag = r.u32_();
    auto size = r.u32_();
    if (!tag.ok() || !size.ok()) return corrupt_data("truncated section header");
    auto payload = r.view(size.value());
    if (!payload.ok()) return corrupt_data("truncated section payload");
    auto stored_crc = r.u32_();
    if (!stored_crc.ok()) return corrupt_data("truncated section crc");
    if (stored_crc.value() != crc32(payload.value())) {
      return corrupt_data("section '" + tag_name(tag.value()) +
                          "' crc mismatch");
    }
    out.sections.emplace_back(tag.value(), payload.value());
  }
  return out;
}

}  // namespace

Bytes encode_snapshot(const SessionState& state, const SnapshotMeta& meta) {
  ByteWriter header;
  header.put_u32(kSnapshotMagic);
  header.put_u16(kSnapshotVersion);
  header.put_u16(6);  // section count
  ByteWriter out;
  const Bytes head = std::move(header).take();
  out.put_raw(head.data(), head.size());
  out.put_u32(crc32(head));

  emit_section(out, kSectionMeta,
               [&](ByteWriter& w) { write_meta(w, meta); });
  emit_section(out, kSectionCore,
               [&](ByteWriter& w) { write_core(w, state); });
  emit_section(out, kSectionActive,
               [&](ByteWriter& w) { write_active(w, state); });
  emit_section(out, kSectionTracker,
               [&](ByteWriter& w) { write_tracker(w, state.tracker); });
  emit_section(out, kSectionLog,
               [&](ByteWriter& w) { write_log(w, state.log); });
  emit_section(out, kSectionRewards,
               [&](ByteWriter& w) { write_rewards(w, state.rewards); });
  return std::move(out).take();
}

Result<DecodedSnapshot> decode_snapshot(std::span<const u8> data) {
  auto parsed = parse_sections(data);
  if (!parsed.ok()) return parsed.error();

  DecodedSnapshot out;
  bool have_meta = false;
  bool have_core = false;
  for (const auto& [tag, payload] : parsed.value().sections) {
    ByteReader r(payload);
    Status st;
    if (tag == kSectionMeta) {
      st = read_meta(r, out.meta);
      have_meta = st.ok();
    } else if (tag == kSectionCore) {
      st = read_core(r, out.state);
      have_core = st.ok();
    } else if (tag == kSectionActive) {
      st = read_active(r, out.state);
    } else if (tag == kSectionTracker) {
      st = read_tracker(r, out.state.tracker);
    } else if (tag == kSectionLog) {
      st = read_log(r, out.state.log);
    } else if (tag == kSectionRewards) {
      st = read_rewards(r, out.state.rewards);
    }  // unknown tags: skipped for forward compatibility
    if (!st.ok()) {
      return corrupt_data("section '" + tag_name(tag) +
                          "': " + st.error().message);
    }
  }
  if (!have_meta || !have_core) {
    return corrupt_data("snapshot missing required META/CORE sections");
  }
  return out;
}

Result<SnapshotInfo> inspect_snapshot(std::span<const u8> data) {
  auto parsed = parse_sections(data);
  if (!parsed.ok()) return parsed.error();
  SnapshotInfo info;
  info.version = parsed.value().version;
  info.total_bytes = data.size();
  bool have_meta = false;
  for (const auto& [tag, payload] : parsed.value().sections) {
    info.sections.push_back({tag, tag_name(tag), payload.size()});
    if (tag == kSectionMeta) {
      ByteReader r(payload);
      if (auto st = read_meta(r, info.meta); !st.ok()) return st.error();
      have_meta = true;
    }
  }
  if (!have_meta) return corrupt_data("snapshot missing META section");
  return info;
}

}  // namespace vgbl
