#include "persist/session_store.hpp"

#include <algorithm>
#include <filesystem>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace vgbl {

namespace fs = std::filesystem;

namespace {

struct StoreMetrics {
  obs::Counter& opens;
  obs::Counter& recoveries;
  obs::Counter& replayed_steps;
  obs::Counter& applies;
  obs::Counter& checkpoints;
  obs::Counter& compactions;
  obs::Counter& snapshot_bytes;
  obs::Histogram& checkpoint_ms;
  obs::Histogram& open_ms;

  static StoreMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static StoreMetrics m{
        reg.counter("persist_opens_total", "sessions opened via the store"),
        reg.counter("persist_recoveries_total",
                    "opens that restored state from disk"),
        reg.counter("persist_replayed_steps_total",
                    "journal steps replayed during recovery"),
        reg.counter("persist_applies_total",
                    "inputs applied through the write-ahead path"),
        reg.counter("persist_checkpoints_total", "snapshots written"),
        reg.counter("persist_compactions_total",
                    "journal compactions after a checkpoint"),
        reg.counter("persist_snapshot_bytes_total",
                    "bytes of snapshot data written"),
        reg.histogram("persist_checkpoint_ms",
                      obs::exponential_buckets(0.05, 2.0, 14),
                      "wall time of one checkpoint (snapshot + compaction)"),
        reg.histogram("persist_open_ms",
                      obs::exponential_buckets(0.05, 2.0, 14),
                      "wall time of one store open (load + replay)")};
    return m;
  }
};

constexpr const char* kSnapshotSuffix = ".snap";
constexpr const char* kJournalSuffix = ".journal";

Status validate_student_id(const std::string& id) {
  if (id.empty()) return invalid_argument("student id must not be empty");
  if (id.find('/') != std::string::npos ||
      id.find('\\') != std::string::npos || id == "." || id == "..") {
    return invalid_argument("student id '" + id +
                            "' must not contain path separators");
  }
  return {};
}

}  // namespace

// --- PersistedSession -------------------------------------------------------

PersistedSession::PersistedSession(std::shared_ptr<const GameBundle> bundle,
                                   SessionOptions options,
                                   CheckpointPolicy policy,
                                   std::string student_id,
                                   std::string snapshot_path,
                                   std::string journal_path,
                                   Mutex* store_mutex)
    : bundle_(std::move(bundle)),
      session_(std::make_unique<GameSession>(bundle_, &clock_, options)),
      runner_(session_.get(), &clock_),
      policy_(policy),
      student_id_(std::move(student_id)),
      snapshot_path_(std::move(snapshot_path)),
      journal_path_(std::move(journal_path)),
      store_mutex_(store_mutex) {}

Status PersistedSession::apply(const ScriptStep& step) {
  MutexLock lock(*store_mutex_);
  return apply_locked(step);
}

Status PersistedSession::apply_locked(const ScriptStep& step) {
  VGBL_COUNT(StoreMetrics::get().applies);
  if (session_->game_over()) return {};  // mirrors ScriptRunner::run
  if (!journal_.has_value()) {
    return failed_precondition("session's journal is not open");
  }
  // Write-ahead: the step reaches disk before it touches the session, so a
  // crash mid-apply replays it on recovery instead of losing it.
  if (auto st = journal_->append_step(step); !st.ok()) return st;
  ++step_count_;
  ++steps_since_checkpoint_;
  if (auto st = runner_.run_step(step); !st.ok()) return st;
  clock_.advance(ScriptRunner::Options{}.step_pause);
  session_->tick();

  const bool steps_due = policy_.every_steps > 0 &&
                         steps_since_checkpoint_ >= policy_.every_steps;
  const bool time_due =
      policy_.every_sim_time > 0 &&
      clock_.now() - last_checkpoint_time_ >= policy_.every_sim_time;
  if (steps_due || time_due) return checkpoint_locked();
  return {};
}

Status PersistedSession::checkpoint() {
  MutexLock lock(*store_mutex_);
  return checkpoint_locked();
}

Status PersistedSession::checkpoint_locked() {
  StoreMetrics& metrics = StoreMetrics::get();
  VGBL_SPAN("persist.checkpoint", &clock_);
  VGBL_TIMER(metrics.checkpoint_ms);
  SnapshotMeta meta;
  meta.sequence = sequence_ + 1;
  meta.step_count = step_count_;
  meta.sim_time = clock_.now();
  meta.student_id = student_id_;
  meta.bundle_title = bundle_->meta.title;
  const Bytes data = encode_snapshot(session_->capture_state(), meta);
  if (auto st = write_binary_file_atomic(snapshot_path_, data); !st.ok()) {
    return st;
  }
  sequence_ = meta.sequence;
  ++checkpoints_taken_;
  VGBL_COUNT(metrics.checkpoints);
  VGBL_COUNT(metrics.snapshot_bytes, data.size());
  // Compact: everything journaled so far is in the snapshot now, so the
  // journal restarts as a lone barrier carrying the snapshot's sequence.
  auto writer = JournalWriter::create(journal_path_);
  if (!writer.ok()) return writer.error();
  VGBL_COUNT(metrics.compactions);
  journal_ = std::move(writer).value();
  if (auto st = journal_->append_barrier(sequence_, step_count_); !st.ok()) {
    return st;
  }
  steps_since_checkpoint_ = 0;
  last_checkpoint_time_ = clock_.now();
  return {};
}

// --- SessionStore -----------------------------------------------------------

SessionStore::SessionStore(SessionStoreOptions options)
    : options_(std::move(options)) {}

Mutex& SessionStore::student_mutex(const std::string& student_id) const {
  return shards_[std::hash<std::string>{}(student_id) % kLockShards];
}

Status SessionStore::ensure_directory() {
  MutexLock lock(directory_mutex_);
  if (directory_ready_) return {};
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    return io_error("cannot create store directory '" + options_.directory +
                    "': " + ec.message());
  }
  directory_ready_ = true;
  return {};
}

std::string SessionStore::snapshot_path(const std::string& student_id) const {
  return (fs::path(options_.directory) / (student_id + kSnapshotSuffix))
      .string();
}

std::string SessionStore::journal_path(const std::string& student_id) const {
  return (fs::path(options_.directory) / (student_id + kJournalSuffix))
      .string();
}

bool SessionStore::has_session(const std::string& student_id) const {
  std::error_code ec;
  return fs::exists(snapshot_path(student_id), ec) ||
         fs::exists(journal_path(student_id), ec);
}

std::vector<std::string> SessionStore::list_students() const {
  std::vector<std::string> students;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.directory, ec)) {
    const std::string name = entry.path().filename().string();
    for (const char* suffix : {kSnapshotSuffix, kJournalSuffix}) {
      const size_t len = std::string(suffix).size();
      if (name.size() > len && name.ends_with(suffix)) {
        students.push_back(name.substr(0, name.size() - len));
      }
    }
  }
  std::sort(students.begin(), students.end());
  students.erase(std::unique(students.begin(), students.end()),
                 students.end());
  return students;
}

Status SessionStore::remove_session(const std::string& student_id) {
  if (auto st = validate_student_id(student_id); !st.ok()) return st;
  MutexLock lock(student_mutex(student_id));
  std::error_code ec;
  fs::remove(snapshot_path(student_id), ec);
  if (ec) return io_error("cannot remove snapshot: " + ec.message());
  fs::remove(journal_path(student_id), ec);
  if (ec) return io_error("cannot remove journal: " + ec.message());
  return {};
}

Result<std::unique_ptr<PersistedSession>> SessionStore::open_session(
    std::shared_ptr<const GameBundle> bundle, const std::string& student_id) {
  if (auto st = validate_student_id(student_id); !st.ok()) return st.error();
  if (!bundle) return invalid_argument("bundle must not be null");
  if (auto st = ensure_directory(); !st.ok()) return st.error();

  StoreMetrics& metrics = StoreMetrics::get();
  VGBL_COUNT(metrics.opens);
  VGBL_SPAN("persist.open");
  VGBL_TIMER(metrics.open_ms);

  // no-naked-new allowlist: PersistedSession's constructor is private (only
  // the store may create one), which make_unique cannot reach; the result
  // is owned by the unique_ptr on the same line.
  std::unique_ptr<PersistedSession> ps(new PersistedSession(
      bundle, options_.session, options_.policy, student_id,
      snapshot_path(student_id), journal_path(student_id),
      &student_mutex(student_id)));
  // Hold the student's shard for the whole open: read snapshot, replay
  // journal, rewrite both. A concurrent open/checkpoint for the same
  // student serialises here; other students use different shards.
  MutexLock lock(*ps->store_mutex_);

  // 1. Latest snapshot, when one exists.
  bool have_snapshot = false;
  auto snap_data = read_binary_file(ps->snapshot_path_);
  if (snap_data.ok()) {
    auto decoded = decode_snapshot(snap_data.value());
    if (!decoded.ok()) return decoded.error();
    const auto& meta = decoded.value().meta;
    if (meta.bundle_title != bundle->meta.title) {
      return failed_precondition(
          "stored session for '" + student_id + "' belongs to bundle '" +
          meta.bundle_title + "', not '" + bundle->meta.title + "'");
    }
    ps->clock_.advance_to(decoded.value().state.now);
    if (auto st = ps->session_->restore_state(decoded.value().state);
        !st.ok()) {
      return st.error();
    }
    ps->sequence_ = meta.sequence;
    ps->step_count_ = meta.step_count;
    have_snapshot = true;
  } else if (snap_data.error().code != ErrorCode::kNotFound) {
    return snap_data.error();
  }
  if (!have_snapshot) {
    if (auto st = ps->session_->start(); !st.ok()) return st.error();
  }

  // 2. Journal tail: replay the steps not yet folded into the snapshot.
  bool have_journal = false;
  auto journal = read_journal_file(ps->journal_path_);
  if (journal.ok()) {
    have_journal = true;
    for (const auto& step :
         steps_after_barrier(journal.value(), ps->sequence_)) {
      ++ps->step_count_;
      ++ps->replayed_steps_;
      if (ps->session_->game_over()) continue;
      // A step that failed live fails identically here (determinism), and
      // failed steps are not paced — exactly what apply() did.
      if (!ps->runner_.run_step(step).ok()) continue;
      ps->clock_.advance(ScriptRunner::Options{}.step_pause);
      ps->session_->tick();
    }
  } else if (journal.error().code != ErrorCode::kNotFound) {
    return journal.error();
  }

  ps->resumed_ = have_snapshot || have_journal;
  if (ps->resumed_) {
    VGBL_COUNT(metrics.recoveries);
    VGBL_COUNT(metrics.replayed_steps, static_cast<u64>(ps->replayed_steps_));
  }
  // 3. Fold any replayed tail into a fresh snapshot and compact (also
  // replaces a stale journal left by a crash between snapshot rename and
  // compaction). A brand-new session just gets its empty journal +
  // barrier(0).
  if (ps->resumed_) {
    if (auto st = ps->checkpoint_locked(); !st.ok()) return st.error();
  } else {
    auto writer = JournalWriter::create(ps->journal_path_);
    if (!writer.ok()) return writer.error();
    ps->journal_ = std::move(writer).value();
    if (auto st = ps->journal_->append_barrier(0, 0); !st.ok()) {
      return st.error();
    }
  }
  return ps;
}

}  // namespace vgbl
