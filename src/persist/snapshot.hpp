// Versioned binary session snapshots. A snapshot serialises one
// GameSession's full mutable state (runtime/session_state.hpp) plus a
// small metadata record, framed for integrity:
//
//   header   magic u32 | version u16 | section_count u16 | crc32(header)
//   section  tag u32 | payload_size u32 | payload | crc32(payload)   (xN)
//
// Corrupt or truncated files are rejected with a typed kCorruptData
// Result — never undefined behaviour. Unknown section tags and trailing
// bytes inside known sections are skipped, so newer writers stay readable
// by older readers (forward compatibility); bumping kSnapshotVersion is
// reserved for breaking layout changes. Scalars ride the little-endian
// ByteWriter/ByteReader primitives; the dense id sets (visited scenarios,
// disarmed rules) use the bitstream's exp-Golomb codes over sorted deltas.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "runtime/session_state.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace vgbl {

inline constexpr u32 kSnapshotMagic = 0x53534756;  // "VGSS" little-endian
inline constexpr u16 kSnapshotVersion = 1;

/// Bookkeeping stored alongside the state: which student, which
/// checkpoint generation, and how many journaled inputs it includes (the
/// journal's recovery barrier references `sequence`).
struct SnapshotMeta {
  u64 sequence = 0;    ///< checkpoint generation, monotonically increasing
  u64 step_count = 0;  ///< journaled input steps included in this snapshot
  MicroTime sim_time = 0;
  std::string student_id;
  std::string bundle_title;  ///< sanity check against resuming a wrong bundle
};

Bytes encode_snapshot(const SessionState& state, const SnapshotMeta& meta);

struct DecodedSnapshot {
  SnapshotMeta meta;
  SessionState state;
};
[[nodiscard]] Result<DecodedSnapshot> decode_snapshot(std::span<const u8> data);

/// Shallow structural read for tooling (`vgbl inspect-snapshot`): header,
/// metadata and the section table, without materialising the state.
struct SnapshotSectionInfo {
  u32 tag = 0;
  std::string name;  ///< four-character tag, printable
  size_t payload_bytes = 0;
};
struct SnapshotInfo {
  u16 version = 0;
  SnapshotMeta meta;
  std::vector<SnapshotSectionInfo> sections;
  size_t total_bytes = 0;
};
[[nodiscard]] Result<SnapshotInfo> inspect_snapshot(std::span<const u8> data);

}  // namespace vgbl
