// Write-ahead input journal: an append-only, CRC-framed log of the
// ScriptSteps applied to a session since its last snapshot, plus barrier
// records marking snapshot checkpoints. Recovery = load the latest valid
// snapshot, then replay the journal records that follow the barrier whose
// sequence matches it (see session_store.hpp for the full protocol).
//
//   file header  magic u32 | version u16 | reserved u16 | crc32(header)
//   record       kind u8 | payload_size u32 | payload | crc32(payload)
//
// Failure semantics distinguish a *torn tail* from *corruption*: a record
// cut short by the end of the file is the expected shape of a crash during
// append, so readers drop it and report the journal recoverable. A record
// that is fully present but fails its CRC means the file was damaged after
// the fact, and the whole journal is rejected with kCorruptData.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "runtime/script.hpp"
#include "util/bytes.hpp"
#include "util/fileio.hpp"
#include "util/result.hpp"

namespace vgbl {

inline constexpr u32 kJournalMagic = 0x4A534756;  // "VGSJ" little-endian
inline constexpr u16 kJournalVersion = 1;

struct JournalRecord {
  enum class Kind : u8 { kStep = 1, kBarrier = 2 };
  Kind kind = Kind::kStep;
  ScriptStep step;            ///< meaningful when kind == kStep
  u64 barrier_sequence = 0;   ///< snapshot sequence, when kind == kBarrier
  u64 barrier_step_count = 0; ///< steps covered by that snapshot
};

/// Appends records to a journal file, flushing after every write so the
/// log-before-apply ordering survives a crash of the process.
///
/// Not internally synchronised, deliberately: a writer is always owned by
/// one PersistedSession and every append runs under that student's store
/// shard (apply_locked/checkpoint_locked, see thread_annotations.hpp), or
/// by a single-threaded caller (tests, CLI). Adding a mutex here would
/// hide lock-discipline bugs the shard annotations now catch.
class JournalWriter {
 public:
  /// Creates (or truncates) `path` and writes a fresh file header.
  [[nodiscard]] static Result<JournalWriter> create(const std::string& path);
  /// Opens an existing journal for appending. The readable prefix is
  /// validated first; a torn tail is trimmed, corruption is rejected.
  [[nodiscard]] static Result<JournalWriter> open(const std::string& path);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  Status append_step(const ScriptStep& step);
  Status append_barrier(u64 snapshot_sequence, u64 step_count);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] u64 bytes_written() const { return bytes_written_; }

 private:
  JournalWriter(std::FILE* file, std::string path, u64 size)
      : file_(file), path_(std::move(path)), bytes_written_(size) {}
  Status append_record(JournalRecord::Kind kind, const Bytes& payload);

  std::FILE* file_ = nullptr;
  std::string path_;
  u64 bytes_written_ = 0;
};

struct JournalContents {
  std::vector<JournalRecord> records;
  /// Byte length of the prefix that parsed cleanly (file-header included).
  size_t valid_bytes = 0;
  /// True when a torn record at the end of the file was dropped.
  bool torn_tail = false;
};

/// Parses journal bytes. Torn tails are trimmed (crash recovery); bad
/// magic, version or CRC anywhere else returns a typed error.
[[nodiscard]] Result<JournalContents> parse_journal(std::span<const u8> data);

/// Reads and parses a journal file. kNotFound when the file is absent.
[[nodiscard]] Result<JournalContents> read_journal_file(const std::string& path);

/// The steps to replay on top of a snapshot with `snapshot_sequence`:
/// everything after the last barrier whose sequence matches. Returns an
/// empty list when no such barrier exists — then every journaled step is
/// already folded into the snapshot (a crash hit between the snapshot
/// rename and the journal compaction) or the journal belongs to an older
/// generation; replaying would double-apply inputs.
std::vector<ScriptStep> steps_after_barrier(const JournalContents& journal,
                                            u64 snapshot_sequence);

// The shared file helpers (read_binary_file / write_binary_file_atomic)
// moved to util/fileio.hpp so non-persist stores (src/rewards) can share
// them; the include above keeps existing callers compiling.

}  // namespace vgbl
