// Crash-recoverable session store: manages suspended/resumable game
// sessions on disk, keyed by student id. Per student it keeps two files in
// the store directory:
//
//   <student>.snap     latest snapshot (written atomically: tmp + rename)
//   <student>.journal  write-ahead log of inputs since that snapshot
//
// Protocol. Every input is journaled *before* it is applied (WAL), so a
// crash at any point loses at most the in-flight step. A checkpoint
// captures the session state, writes the snapshot atomically, then
// compacts the journal down to a single barrier record carrying the new
// snapshot's sequence number. Recovery loads the snapshot and replays only
// the journal steps that follow a barrier matching its sequence — if the
// crash hit between the snapshot rename and the compaction, no matching
// barrier exists and the journaled steps (already folded into the
// snapshot) are correctly ignored.
//
// Sessions are deterministic under SimClock, so a resumed session driven
// with the remaining inputs produces the same SessionEvent log as an
// uninterrupted run.
//
// Concurrency. The store is safe to share across threads as long as each
// thread works on its own student ids: a pool of sharded mutexes keyed by
// student id serialises open/apply/checkpoint/remove for the same student
// (so writes to one <id>.snap/<id>.journal pair never interleave) while
// different students proceed without contention. The store must outlive
// every PersistedSession it opened — sessions lock through a pointer into
// the store's shard array.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "persist/journal.hpp"
#include "persist/snapshot.hpp"
#include "runtime/script.hpp"
#include "runtime/session.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_annotations.hpp"

namespace vgbl {

/// When to take an automatic checkpoint during `PersistedSession::apply`.
/// Both triggers may be active at once; 0 disables a trigger. With both
/// disabled only explicit `checkpoint()` calls persist progress (the
/// journal still protects every step).
struct CheckpointPolicy {
  u64 every_steps = 25;
  MicroTime every_sim_time = 0;
};

struct SessionStoreOptions {
  std::string directory;
  CheckpointPolicy policy;
  SessionOptions session;  ///< forwarded to every GameSession it creates
};

/// A live session bound to its on-disk snapshot + journal. Created by
/// `SessionStore::open_session`; owns the clock, the session and the
/// journal writer. Not movable — the GameSession holds a pointer to the
/// embedded clock.
class PersistedSession {
 public:
  PersistedSession(const PersistedSession&) = delete;
  PersistedSession& operator=(const PersistedSession&) = delete;

  [[nodiscard]] GameSession& session() { return *session_; }
  [[nodiscard]] const GameSession& session() const { return *session_; }
  [[nodiscard]] SimClock& clock() { return clock_; }
  [[nodiscard]] const std::string& student_id() const { return student_id_; }

  /// True when this session was restored from disk (snapshot and/or
  /// journal found) rather than started fresh.
  [[nodiscard]] bool resumed() const { return resumed_; }
  /// Journal steps replayed on top of the snapshot during open.
  [[nodiscard]] u64 replayed_steps() const { return replayed_steps_; }
  /// Inputs applied across all runs of this session.
  [[nodiscard]] u64 step_count() const { return step_count_; }
  /// Sequence of the latest snapshot on disk (0: none yet).
  [[nodiscard]] u64 checkpoint_sequence() const { return sequence_; }
  [[nodiscard]] u64 checkpoints_taken() const { return checkpoints_taken_; }

  /// Applies one input with write-ahead logging: journal the step, run it
  /// (with ScriptRunner pacing: step, then step_pause + tick), then take
  /// an automatic checkpoint when the policy says so. Mirrors
  /// `ScriptRunner::run` exactly so live, resumed and uninterrupted runs
  /// stay input-for-input identical: a no-op once the game is over, and a
  /// step that fails leaves the state unchanged (the journaled copy
  /// re-fails identically on recovery replay).
  Status apply(const ScriptStep& step) VGBL_EXCLUDES(*store_mutex_);

  /// Snapshots the current state and compacts the journal.
  Status checkpoint() VGBL_EXCLUDES(*store_mutex_);

 private:
  friend class SessionStore;
  PersistedSession(std::shared_ptr<const GameBundle> bundle,
                   SessionOptions options, CheckpointPolicy policy,
                   std::string student_id, std::string snapshot_path,
                   std::string journal_path, Mutex* store_mutex);

  /// Bodies of apply/checkpoint. VGBL_REQUIRES makes the "public method
  /// locks, `_locked` body requires the lock" convention compiler-checked:
  /// clang rejects any call path that can reach these without holding the
  /// student's shard.
  Status apply_locked(const ScriptStep& step) VGBL_REQUIRES(*store_mutex_);
  Status checkpoint_locked() VGBL_REQUIRES(*store_mutex_);

  std::shared_ptr<const GameBundle> bundle_;
  SimClock clock_;
  std::unique_ptr<GameSession> session_;
  ScriptRunner runner_;
  CheckpointPolicy policy_;

  std::string student_id_;
  std::string snapshot_path_;
  std::string journal_path_;
  std::optional<JournalWriter> journal_;
  /// The owning store's shard mutex for this student; file writes
  /// (journal appends, checkpoints) lock it so two sessions for the same
  /// student never interleave on-disk writes. Always non-null: the store
  /// passes it at construction, before any apply/checkpoint can run.
  Mutex* const store_mutex_;

  bool resumed_ = false;
  u64 replayed_steps_ = 0;
  u64 step_count_ = 0;
  u64 sequence_ = 0;
  u64 checkpoints_taken_ = 0;
  u64 steps_since_checkpoint_ = 0;
  MicroTime last_checkpoint_time_ = 0;
};

class SessionStore {
 public:
  explicit SessionStore(SessionStoreOptions options);

  /// Opens (resuming from disk) or creates (fresh, `start()`ed) the
  /// session for `student_id`. Typed errors: kCorruptData for damaged
  /// snapshot/journal files, kFailedPrecondition when the stored session
  /// belongs to a different bundle, kIoError on filesystem failure.
  [[nodiscard]] Result<std::unique_ptr<PersistedSession>> open_session(
      std::shared_ptr<const GameBundle> bundle, const std::string& student_id);

  /// True when any persisted files exist for this student.
  [[nodiscard]] bool has_session(const std::string& student_id) const;

  /// Students with persisted state in the store directory, sorted.
  [[nodiscard]] std::vector<std::string> list_students() const;

  /// Deletes the student's snapshot and journal. Missing files are fine.
  Status remove_session(const std::string& student_id);

  [[nodiscard]] std::string snapshot_path(const std::string& student_id) const;
  [[nodiscard]] std::string journal_path(const std::string& student_id) const;
  [[nodiscard]] const SessionStoreOptions& options() const { return options_; }

 private:
  /// Shard count: a power of two well above typical per-store thread
  /// counts, so unrelated students rarely collide while the mutex array
  /// stays cache-friendly.
  static constexpr size_t kLockShards = 32;

  [[nodiscard]] Mutex& student_mutex(const std::string& student_id) const;
  /// Creates the store directory once (idempotent, mutex-guarded so
  /// concurrent first opens do not race the existence check).
  Status ensure_directory();

  SessionStoreOptions options_;
  mutable std::array<Mutex, kLockShards> shards_;
  Mutex directory_mutex_;
  bool directory_ready_ VGBL_GUARDED_BY(directory_mutex_) = false;
};

}  // namespace vgbl
