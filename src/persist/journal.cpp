#include "persist/journal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "obs/macros.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/crc32.hpp"

namespace vgbl {
namespace {

struct JournalMetrics {
  obs::Counter& appends;
  obs::Counter& bytes;
  obs::Histogram& append_ms;

  static JournalMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static JournalMetrics m{
        reg.counter("persist_journal_appends_total",
                    "records appended to write-ahead journals"),
        reg.counter("persist_journal_bytes_total",
                    "framed bytes appended to write-ahead journals"),
        reg.histogram("persist_journal_append_ms",
                      obs::exponential_buckets(0.01, 2.0, 14),
                      "wall time of one journal append (write + flush)")};
    return m;
  }
};

Error file_error(const std::string& what, const std::string& path) {
  return io_error(what + " '" + path + "': " + std::strerror(errno));
}

void write_step_payload(ByteWriter& w, const ScriptStep& s) {
  w.put_u8(static_cast<u8>(s.op));
  w.put_string(s.object_name);
  w.put_string(s.item_name);
  w.put_string(s.second_item_name);
  w.put_varint(s.choice);
  w.put_i64(s.wait_time);
  w.put_i32(s.point.x);
  w.put_i32(s.point.y);
}

[[nodiscard]] Result<ScriptStep> read_step_payload(std::span<const u8> payload) {
  ByteReader r(payload);
  auto op = r.u8_();
  if (!op.ok()) return op.error();
  if (op.value() > static_cast<u8>(ScriptStep::Op::kClickPoint)) {
    return corrupt_data("journal step has unknown op " +
                        std::to_string(op.value()));
  }
  auto object = r.string();
  auto item = r.string();
  auto second = r.string();
  auto choice = r.varint();
  auto wait_time = r.i64_();
  auto px = r.i32_();
  auto py = r.i32_();
  if (!object.ok()) return object.error();
  if (!item.ok()) return item.error();
  if (!second.ok()) return second.error();
  if (!choice.ok()) return choice.error();
  if (!wait_time.ok()) return wait_time.error();
  if (!px.ok()) return px.error();
  if (!py.ok()) return py.error();
  ScriptStep s;
  s.op = static_cast<ScriptStep::Op>(op.value());
  s.object_name = std::move(object).value();
  s.item_name = std::move(item).value();
  s.second_item_name = std::move(second).value();
  s.choice = static_cast<size_t>(choice.value());
  s.wait_time = wait_time.value();
  s.point = {px.value(), py.value()};
  return s;
}

Bytes journal_header() {
  ByteWriter w;
  w.put_u32(kJournalMagic);
  w.put_u16(kJournalVersion);
  w.put_u16(0);  // reserved
  w.put_u32(crc32(w.bytes()));
  return std::move(w).take();
}

}  // namespace

// --- JournalWriter ----------------------------------------------------------

Result<JournalWriter> JournalWriter::create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return file_error("cannot create journal", path);
  const Bytes header = journal_header();
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size() ||
      std::fflush(f) != 0) {
    std::fclose(f);
    return file_error("cannot write journal header", path);
  }
  std::fclose(f);
  // Keep the live handle in append mode: every record then lands at the
  // file's current end even if another handle compacts (truncates) the
  // journal in between — two live sessions for the same student can
  // interleave records, but a stale buffered offset can never punch a
  // hole in the log.
  f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return file_error("cannot open journal", path);
  return JournalWriter(f, path, header.size());
}

Result<JournalWriter> JournalWriter::open(const std::string& path) {
  auto existing = read_journal_file(path);
  if (!existing.ok()) {
    if (existing.error().code == ErrorCode::kNotFound) return create(path);
    return existing.error();
  }
  // Trim a torn tail before appending so the new record starts at a clean
  // boundary (otherwise it would be glued onto half of an old one).
  if (existing.value().torn_tail) {
    std::error_code ec;
    std::filesystem::resize_file(path, existing.value().valid_bytes, ec);
    if (ec) {
      return io_error("cannot trim torn journal tail '" + path +
                      "': " + ec.message());
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return file_error("cannot open journal", path);
  return JournalWriter(f, path, existing.value().valid_bytes);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      bytes_written_(other.bytes_written_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    bytes_written_ = other.bytes_written_;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status JournalWriter::append_record(JournalRecord::Kind kind,
                                    const Bytes& payload) {
  if (file_ == nullptr) {
    return failed_precondition("journal writer was moved-from or closed");
  }
  JournalMetrics& metrics = JournalMetrics::get();
  VGBL_SPAN("persist.journal_append");
  VGBL_TIMER(metrics.append_ms);
  ByteWriter frame;
  frame.put_u8(static_cast<u8>(kind));
  frame.put_u32(static_cast<u32>(payload.size()));
  frame.put_raw(payload.data(), payload.size());
  frame.put_u32(crc32(payload));
  const Bytes bytes = std::move(frame).take();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0) {
    return file_error("cannot append to journal", path_);
  }
  bytes_written_ += bytes.size();
  VGBL_COUNT(metrics.appends);
  VGBL_COUNT(metrics.bytes, bytes.size());
  return {};
}

Status JournalWriter::append_step(const ScriptStep& step) {
  ByteWriter payload;
  write_step_payload(payload, step);
  return append_record(JournalRecord::Kind::kStep, payload.bytes());
}

Status JournalWriter::append_barrier(u64 snapshot_sequence, u64 step_count) {
  ByteWriter payload;
  payload.put_varint(snapshot_sequence);
  payload.put_varint(step_count);
  return append_record(JournalRecord::Kind::kBarrier, payload.bytes());
}

// --- reading ----------------------------------------------------------------

Result<JournalContents> parse_journal(std::span<const u8> data) {
  ByteReader r(data);
  auto magic = r.u32_();
  if (!magic.ok() || magic.value() != kJournalMagic) {
    return corrupt_data("not a VGSJ journal (bad magic)");
  }
  auto version = r.u16_();
  auto reserved = r.u16_();
  auto header_crc = r.u32_();
  if (!version.ok() || !reserved.ok() || !header_crc.ok()) {
    return corrupt_data("truncated journal header");
  }
  if (header_crc.value() != crc32(data.subspan(0, 8))) {
    return corrupt_data("journal header crc mismatch");
  }
  if (version.value() != kJournalVersion) {
    return unsupported("journal format version " +
                       std::to_string(version.value()) + " (reader supports " +
                       std::to_string(kJournalVersion) + ")");
  }

  JournalContents out;
  out.valid_bytes = r.position();
  ByteReader rec(data);
  (void)rec.skip(out.valid_bytes);
  while (!rec.at_end()) {
    const size_t record_start = rec.position();
    auto kind = rec.u8_();
    auto size = rec.u32_();
    if (!kind.ok() || !size.ok()) {
      out.torn_tail = true;  // header of the record itself was cut short
      break;
    }
    auto payload = rec.view(size.value());
    auto stored_crc = rec.u32_();
    if (!payload.ok() || !stored_crc.ok()) {
      out.torn_tail = true;  // payload or trailer cut short: crash tail
      break;
    }
    if (stored_crc.value() != crc32(payload.value())) {
      // The record is fully present but damaged — that is corruption, not
      // a torn append, so reject the journal.
      return corrupt_data("journal record at byte " +
                          std::to_string(record_start) + " crc mismatch");
    }
    JournalRecord record;
    if (kind.value() == static_cast<u8>(JournalRecord::Kind::kStep)) {
      auto step = read_step_payload(payload.value());
      if (!step.ok()) {
        return corrupt_data("journal step record at byte " +
                            std::to_string(record_start) +
                            ": " + step.error().message);
      }
      record.kind = JournalRecord::Kind::kStep;
      record.step = std::move(step).value();
    } else if (kind.value() ==
               static_cast<u8>(JournalRecord::Kind::kBarrier)) {
      ByteReader pr(payload.value());
      auto sequence = pr.varint();
      auto steps = pr.varint();
      if (!sequence.ok() || !steps.ok()) {
        return corrupt_data("journal barrier record at byte " +
                            std::to_string(record_start) + " is malformed");
      }
      record.kind = JournalRecord::Kind::kBarrier;
      record.barrier_sequence = sequence.value();
      record.barrier_step_count = steps.value();
    } else {
      return corrupt_data("journal record at byte " +
                          std::to_string(record_start) +
                          " has unknown kind " +
                          std::to_string(kind.value()));
    }
    out.records.push_back(std::move(record));
    out.valid_bytes = rec.position();
  }
  return out;
}

Result<JournalContents> read_journal_file(const std::string& path) {
  auto data = read_binary_file(path);
  if (!data.ok()) return data.error();
  return parse_journal(data.value());
}

std::vector<ScriptStep> steps_after_barrier(const JournalContents& journal,
                                            u64 snapshot_sequence) {
  // Find the last matching barrier; steps before it (or with no matching
  // barrier at all) are already folded into the snapshot.
  std::ptrdiff_t barrier = -1;
  for (size_t i = 0; i < journal.records.size(); ++i) {
    const auto& rec = journal.records[i];
    if (rec.kind == JournalRecord::Kind::kBarrier &&
        rec.barrier_sequence == snapshot_sequence) {
      barrier = static_cast<std::ptrdiff_t>(i);
    }
  }
  std::vector<ScriptStep> steps;
  if (barrier < 0) return steps;
  for (size_t i = static_cast<size_t>(barrier) + 1;
       i < journal.records.size(); ++i) {
    if (journal.records[i].kind == JournalRecord::Kind::kStep) {
      steps.push_back(journal.records[i].step);
    }
  }
  return steps;
}

}  // namespace vgbl
