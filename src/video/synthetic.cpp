#include "video/synthetic.hpp"

#include <algorithm>
#include <cmath>

namespace vgbl {
namespace {

struct Prop {
  Rect rect;
  Color color;
};

struct Character {
  f64 x, y;
  f64 vx, vy;
  i32 radius;
  Color color;
};

/// Per-scene renderer state derived deterministically from the clip rng.
struct SceneState {
  std::vector<Prop> props;
  std::vector<Character> characters;
};

SceneState init_scene(const SceneStyle& style, i32 w, i32 h, Rng& rng) {
  SceneState st;
  for (int i = 0; i < style.prop_count; ++i) {
    const i32 pw = static_cast<i32>(rng.range(w / 10, w / 4));
    const i32 ph = static_cast<i32>(rng.range(h / 10, h / 3));
    const Rect r{static_cast<i32>(rng.range(0, std::max(1, w - pw))),
                 static_cast<i32>(rng.range(h / 3, std::max(h / 3 + 1, h - ph))),
                 pw, ph};
    const Color c{static_cast<u8>(rng.range(30, 220)),
                  static_cast<u8>(rng.range(30, 220)),
                  static_cast<u8>(rng.range(30, 220))};
    st.props.push_back({r, c});
  }
  for (int i = 0; i < style.character_count; ++i) {
    Character ch;
    ch.radius = static_cast<i32>(rng.range(h / 20 + 2, h / 10 + 2));
    ch.x = static_cast<f64>(rng.range(ch.radius, std::max<i64>(ch.radius + 1, w - ch.radius)));
    ch.y = static_cast<f64>(rng.range(ch.radius, std::max<i64>(ch.radius + 1, h - ch.radius)));
    const f64 angle = rng.uniform() * 6.2831853;
    ch.vx = std::cos(angle) * style.motion_speed;
    ch.vy = std::sin(angle) * style.motion_speed;
    ch.color = Color{static_cast<u8>(rng.range(60, 250)),
                     static_cast<u8>(rng.range(60, 250)),
                     static_cast<u8>(rng.range(60, 250))};
    st.characters.push_back(ch);
  }
  return st;
}

void step_scene(SceneState& st, i32 w, i32 h) {
  for (auto& ch : st.characters) {
    ch.x += ch.vx;
    ch.y += ch.vy;
    if (ch.x < ch.radius || ch.x > w - ch.radius) {
      ch.vx = -ch.vx;
      ch.x = std::clamp(ch.x, static_cast<f64>(ch.radius),
                        static_cast<f64>(w - ch.radius));
    }
    if (ch.y < ch.radius || ch.y > h - ch.radius) {
      ch.vy = -ch.vy;
      ch.y = std::clamp(ch.y, static_cast<f64>(ch.radius),
                        static_cast<f64>(h - ch.radius));
    }
  }
}

void render_scene(Frame& frame, const SceneStyle& style, const SceneState& st,
                  Rng& noise_rng) {
  frame.fill_gradient(frame.bounds(), style.background_top,
                      style.background_bottom);
  for (const auto& prop : st.props) {
    frame.fill_rect(prop.rect, prop.color);
    frame.draw_rect(prop.rect, colors::kBlack);
  }
  for (const auto& ch : st.characters) {
    frame.fill_circle({static_cast<i32>(ch.x), static_cast<i32>(ch.y)},
                      ch.radius, ch.color);
  }
  if (style.noise_level > 0) {
    auto data = frame.data();
    for (auto& v : data) {
      const f64 n = noise_rng.normal(0.0, style.noise_level);
      v = static_cast<u8>(std::clamp(static_cast<f64>(v) + n, 0.0, 255.0));
    }
  }
}

}  // namespace

SceneStyle scene_style(const std::string& name) {
  // Hand-tuned palettes; each reads as a distinct "place" to both humans
  // and the histogram detector.
  if (name == "classroom") {
    return {{235, 230, 210}, {180, 160, 130}, 4, 2, 1.5, 0.0};
  }
  if (name == "market") {
    return {{250, 210, 120}, {200, 120, 60}, 6, 4, 2.5, 0.0};
  }
  if (name == "street") {
    return {{135, 196, 235}, {90, 90, 100}, 5, 3, 3.0, 0.0};
  }
  if (name == "lab") {
    return {{210, 225, 235}, {150, 170, 190}, 5, 1, 1.0, 0.0};
  }
  if (name == "cave") {
    return {{40, 35, 45}, {15, 12, 20}, 3, 1, 1.0, 0.0};
  }
  if (name == "beach") {
    return {{135, 206, 250}, {222, 200, 160}, 2, 2, 2.0, 0.0};
  }
  if (name == "library") {
    return {{120, 80, 50}, {60, 40, 25}, 7, 1, 0.8, 0.0};
  }
  if (name == "office") {
    return {{200, 200, 205}, {140, 140, 150}, 5, 2, 1.2, 0.0};
  }
  // Unknown name: derive a stable pseudo-random style from the name hash so
  // arbitrary scenario labels still get distinct looks.
  u64 h = 1469598103934665603ULL;
  for (char c : name) h = (h ^ static_cast<u8>(c)) * 1099511628211ULL;
  Rng rng(h);
  SceneStyle style;
  style.background_top = {static_cast<u8>(rng.range(40, 240)),
                          static_cast<u8>(rng.range(40, 240)),
                          static_cast<u8>(rng.range(40, 240))};
  style.background_bottom = {static_cast<u8>(rng.range(10, 200)),
                             static_cast<u8>(rng.range(10, 200)),
                             static_cast<u8>(rng.range(10, 200))};
  style.prop_count = static_cast<int>(rng.range(2, 6));
  style.character_count = static_cast<int>(rng.range(1, 4));
  style.motion_speed = 1.0 + rng.uniform() * 2.5;
  return style;
}

Clip generate_clip(const ClipSpec& spec) {
  Clip clip;
  clip.width = spec.width;
  clip.height = spec.height;
  clip.fps = spec.fps;

  std::vector<std::pair<std::string, int>> scene_frames;
  for (const auto& scene : spec.scenes) {
    scene_frames.emplace_back(scene.name, scene.duration_frames);
  }
  clip.audio = synthesize_clip_audio(scene_frames, spec.fps);

  Rng rng(spec.seed);
  int frame_index = 0;
  for (const auto& scene : spec.scenes) {
    if (frame_index > 0) clip.ground_truth_cuts.push_back(frame_index);
    Rng scene_rng = rng.fork();
    Rng noise_rng = rng.fork();
    SceneState state = init_scene(scene.style, spec.width, spec.height, scene_rng);
    for (int f = 0; f < scene.duration_frames; ++f) {
      Frame frame = Frame::rgb(spec.width, spec.height);
      render_scene(frame, scene.style, state, noise_rng);
      step_scene(state, spec.width, spec.height);
      clip.frames.push_back(std::move(frame));
      clip.scene_of_frame.push_back(scene.name);
      ++frame_index;
    }
  }
  return clip;
}

ClipSpec make_demo_spec(int scene_count, int frames_per_scene, i32 width,
                        i32 height, u64 seed) {
  static const char* kNames[] = {"classroom", "market", "street", "lab",
                                 "cave",      "beach",  "library", "office"};
  ClipSpec spec;
  spec.width = width;
  spec.height = height;
  spec.seed = seed;
  for (int i = 0; i < scene_count; ++i) {
    const std::string name =
        i < 8 ? kNames[i] : ("scene_" + std::to_string(i));
    spec.scenes.push_back({name, scene_style(name), frames_per_scene});
  }
  return spec;
}

}  // namespace vgbl
