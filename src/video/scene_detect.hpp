// Scene-cut detection and shot→scenario segmentation. This is the paper's
// §4.1 "divide the video file into several small video segments as
// scenarios" step: the authoring tool imports a clip, detects hard cuts via
// luma-histogram distance, then groups visually similar consecutive shots
// ("same place or characters") into scenario-sized segments.
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"
#include "video/frame.hpp"

namespace vgbl {

struct SceneDetectConfig {
  int histogram_bins = 16;  // per channel
  /// A cut is declared when the χ² distance between consecutive frame
  /// histograms exceeds mean + k·stddev of the clip's distances AND the
  /// absolute floor. The adaptive part suppresses false cuts in noisy or
  /// high-motion footage; the floor suppresses them in near-static footage.
  f64 adaptive_k = 3.0;
  f64 absolute_floor = 0.12;
  /// Minimum frames between cuts (debounce; shots shorter than this merge).
  int min_shot_length = 6;
};

/// One detected shot: [first_frame, first_frame + frame_count).
struct Shot {
  int first_frame = 0;
  int frame_count = 0;
  Color signature;  // mean color of the shot's middle frame
};

/// χ² distance between two normalised histograms, in [0, 2].
[[nodiscard]] f64 chi_square_distance(const std::vector<f64>& a,
                                      const std::vector<f64>& b);

/// Returns frame indices where a new shot begins (never includes 0).
[[nodiscard]] std::vector<int> detect_cuts(const std::vector<Frame>& frames,
                                           const SceneDetectConfig& config = {});

/// Splits frames into shots at the detected cuts.
[[nodiscard]] std::vector<Shot> detect_shots(const std::vector<Frame>& frames,
                                             const SceneDetectConfig& config = {});

struct SegmentationConfig {
  SceneDetectConfig detect;
  /// Two adjacent shots merge into one scenario segment when the χ²
  /// distance between their middle-frame color histograms is below this —
  /// "a series of continuous shots with the same place or characters".
  f64 merge_threshold = 0.2;
};

/// A scenario-sized video segment produced by the authoring import step.
struct VideoSegment {
  int first_frame = 0;
  int frame_count = 0;
  std::string suggested_name;  // "segment_0" etc.; designers rename later
};

/// Shot grouping: merges visually continuous shots into scenario segments.
[[nodiscard]] std::vector<VideoSegment> segment_scenarios(
    const std::vector<Frame>& frames, const SegmentationConfig& config = {});

/// Precision/recall of detected cuts vs ground truth (E4 scoring). A
/// detection within `tolerance` frames of a true cut counts as a hit.
struct CutScore {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;

  [[nodiscard]] f64 precision() const {
    const int denom = true_positives + false_positives;
    return denom ? static_cast<f64>(true_positives) / denom : 1.0;
  }
  [[nodiscard]] f64 recall() const {
    const int denom = true_positives + false_negatives;
    return denom ? static_cast<f64>(true_positives) / denom : 1.0;
  }
  [[nodiscard]] f64 f1() const {
    const f64 p = precision();
    const f64 r = recall();
    return (p + r) > 0 ? 2 * p * r / (p + r) : 0.0;
  }
};

[[nodiscard]] CutScore score_cuts(const std::vector<int>& detected,
                                  const std::vector<int>& ground_truth,
                                  int tolerance = 1);

}  // namespace vgbl
