// Audio substrate: mono 16-bit PCM buffers, a deterministic per-scene
// ambience synthesiser (the stand-in for the soundtrack of the paper's
// filmed video), and an IMA ADPCM codec (4:1) for bundling. The container
// carries one optional audio track aligned to the video timeline; the
// player exposes clock-aligned sample windows (headless "playback").
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/types.hpp"

namespace vgbl {

struct AudioBuffer {
  int sample_rate = 8000;  // mono
  std::vector<i16> samples;

  [[nodiscard]] bool empty() const { return samples.empty(); }
  [[nodiscard]] f64 duration_seconds() const {
    return sample_rate > 0
               ? static_cast<f64>(samples.size()) / sample_rate
               : 0.0;
  }

  bool operator==(const AudioBuffer&) const = default;
};

/// Deterministic ambience for one scene: a chord of low sine partials with
/// a slow tremolo, voiced from a hash of the scene name so each "place"
/// sounds distinct. `duration_samples` at `sample_rate`.
[[nodiscard]] AudioBuffer synthesize_ambience(const std::string& scene_name,
                                              size_t duration_samples,
                                              int sample_rate = 8000);

/// Concatenates per-scene ambiences to match a clip's scene durations.
/// (frames / fps seconds per scene.)
[[nodiscard]] AudioBuffer synthesize_clip_audio(
    const std::vector<std::pair<std::string, int>>& scene_frames, int fps,
    int sample_rate = 8000);

// --- IMA ADPCM (4 bits/sample, mono) ------------------------------------------

/// Encodes PCM to IMA ADPCM. Output layout: varint sample count, i16
/// initial predictor, u8 initial step index, then ceil(n/2) nibble bytes.
[[nodiscard]] Bytes adpcm_encode(const AudioBuffer& pcm);

/// Decodes an adpcm_encode stream. `sample_rate` is carried externally
/// (the container header).
[[nodiscard]] Result<AudioBuffer> adpcm_decode(std::span<const u8> data, int sample_rate);

/// Signal-to-noise ratio of a decoded buffer vs the original, in dB.
[[nodiscard]] f64 audio_snr(const AudioBuffer& original,
                            const AudioBuffer& decoded);

}  // namespace vgbl
