#include "video/scene_detect.hpp"

#include <algorithm>
#include <cmath>

namespace vgbl {

f64 chi_square_distance(const std::vector<f64>& a, const std::vector<f64>& b) {
  f64 acc = 0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const f64 sum = a[i] + b[i];
    if (sum <= 0) continue;
    const f64 diff = a[i] - b[i];
    acc += diff * diff / sum;
  }
  return acc;
}

std::vector<int> detect_cuts(const std::vector<Frame>& frames,
                             const SceneDetectConfig& config) {
  std::vector<int> cuts;
  if (frames.size() < 2) return cuts;

  // Pass 1: per-adjacent-pair χ² distances over color histograms (luma
  // alone misses equal-brightness location changes).
  std::vector<f64> dist(frames.size() - 1, 0.0);
  std::vector<f64> prev_hist = frames[0].color_histogram(config.histogram_bins);
  for (size_t i = 1; i < frames.size(); ++i) {
    std::vector<f64> hist = frames[i].color_histogram(config.histogram_bins);
    dist[i - 1] = chi_square_distance(prev_hist, hist);
    prev_hist = std::move(hist);
  }

  // Pass 2: adaptive threshold from *robust* statistics (median + MAD).
  // Mean/stddev would be inflated by the cut spikes themselves — a clip
  // with many cuts would then miss its weaker cuts — whereas the median
  // tracks ordinary inter-frame motion regardless of how many cuts exist.
  std::vector<f64> sorted = dist;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const f64 median = sorted[sorted.size() / 2];
  std::vector<f64> deviations(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    deviations[i] = std::abs(dist[i] - median);
  }
  std::nth_element(deviations.begin(), deviations.begin() + deviations.size() / 2,
                   deviations.end());
  const f64 mad = deviations[deviations.size() / 2];
  const f64 robust_sigma = 1.4826 * mad;  // MAD -> stddev for normal data
  const f64 threshold = std::max(
      config.absolute_floor, median + config.adaptive_k * robust_sigma);

  // Pass 3: declare cuts, debounced by min_shot_length. A cut between
  // frames i and i+1 means frame i+1 starts a new shot.
  int last_cut = 0;
  for (size_t i = 0; i < dist.size(); ++i) {
    const int cut_frame = static_cast<int>(i) + 1;
    if (dist[i] > threshold && cut_frame - last_cut >= config.min_shot_length) {
      cuts.push_back(cut_frame);
      last_cut = cut_frame;
    }
  }
  return cuts;
}

std::vector<Shot> detect_shots(const std::vector<Frame>& frames,
                               const SceneDetectConfig& config) {
  std::vector<Shot> shots;
  if (frames.empty()) return shots;
  std::vector<int> cuts = detect_cuts(frames, config);
  cuts.push_back(static_cast<int>(frames.size()));

  int start = 0;
  for (int cut : cuts) {
    Shot shot;
    shot.first_frame = start;
    shot.frame_count = cut - start;
    shot.signature = frames[static_cast<size_t>(start + shot.frame_count / 2)]
                         .mean_color();
    shots.push_back(shot);
    start = cut;
  }
  return shots;
}

std::vector<VideoSegment> segment_scenarios(const std::vector<Frame>& frames,
                                            const SegmentationConfig& config) {
  std::vector<VideoSegment> segments;
  const std::vector<Shot> shots = detect_shots(frames, config.detect);
  if (shots.empty()) return segments;

  const auto shot_histogram = [&](const Shot& s) {
    const size_t mid = static_cast<size_t>(s.first_frame + s.frame_count / 2);
    return frames[mid].color_histogram(config.detect.histogram_bins);
  };

  VideoSegment current{shots[0].first_frame, shots[0].frame_count, ""};
  std::vector<f64> signature = shot_histogram(shots[0]);
  for (size_t i = 1; i < shots.size(); ++i) {
    std::vector<f64> hist = shot_histogram(shots[i]);
    if (chi_square_distance(hist, signature) < config.merge_threshold) {
      current.frame_count += shots[i].frame_count;  // same place: merge
    } else {
      current.suggested_name = "segment_" + std::to_string(segments.size());
      segments.push_back(current);
      current = {shots[i].first_frame, shots[i].frame_count, ""};
      signature = std::move(hist);
    }
  }
  current.suggested_name = "segment_" + std::to_string(segments.size());
  segments.push_back(current);
  return segments;
}

CutScore score_cuts(const std::vector<int>& detected,
                    const std::vector<int>& ground_truth, int tolerance) {
  CutScore score;
  std::vector<bool> matched(ground_truth.size(), false);
  for (int d : detected) {
    bool hit = false;
    for (size_t i = 0; i < ground_truth.size(); ++i) {
      if (!matched[i] && std::abs(ground_truth[i] - d) <= tolerance) {
        matched[i] = true;
        hit = true;
        break;
      }
    }
    if (hit) {
      ++score.true_positives;
    } else {
      ++score.false_positives;
    }
  }
  for (bool m : matched) {
    if (!m) ++score.false_negatives;
  }
  return score;
}

}  // namespace vgbl
