// Video codec: GOP-structured encoder/decoder with three modes.
//
//   kRle      — lossless intra run-length coding; P-frames code the temporal
//               byte-difference against the previous frame (still lossless).
//   kDct      — lossy 8×8 DCT with quantisation; I-frames code pixels,
//               P-frames code the residual against the encoder's own
//               *reconstruction* (closed loop, so decoder drift is zero).
//   kRaw      — uncompressed; baseline for E3.
//
// Every encoded frame carries a header (mode, dimensions) and a CRC-32 of
// the payload so corruption is detected instead of mis-decoded.
#pragma once

#include <optional>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "video/frame.hpp"

namespace vgbl {

enum class CodecMode : u8 { kRaw = 0, kRle = 1, kDct = 2 };

const char* codec_mode_name(CodecMode mode);

struct CodecConfig {
  CodecMode mode = CodecMode::kDct;
  /// Keyframe interval: an I-frame every `gop_size` frames. 1 = all-intra.
  int gop_size = 12;
  /// DCT quantiser scale (1 fine .. 64 coarse); ignored by kRaw/kRle.
  /// The frame header stores this as one byte, so kDct encoding validates
  /// it to [1, 255] — out-of-range values are kInvalidArgument, never a
  /// silent truncation that would desync encoder and decoder tables.
  int quality = 16;
};

struct EncodedFrame {
  bool keyframe = false;
  Bytes data;
};

/// Stateful encoder: feed frames in presentation order.
class Encoder {
 public:
  explicit Encoder(CodecConfig config) : config_(config) {}

  [[nodiscard]] const CodecConfig& config() const { return config_; }

  /// Encodes the next frame. All frames of a stream must share dimensions
  /// and format; violations return kInvalidArgument.
  [[nodiscard]] Result<EncodedFrame> encode(const Frame& frame);

  /// Forces the next frame to be a keyframe (used at segment boundaries so
  /// every scenario starts seekable).
  void request_keyframe() { force_keyframe_ = true; }

 private:
  EncodedFrame encode_intra(const Frame& frame);
  EncodedFrame encode_inter(const Frame& frame);

  CodecConfig config_;
  int frames_since_key_ = 0;
  bool force_keyframe_ = true;  // first frame is always a keyframe
  std::optional<Frame> reference_;  // decoder-identical reconstruction
  Size stream_size_{};
  std::optional<PixelFormat> stream_format_;
  Frame recon_scratch_;  ///< reused DCT closed-loop reconstruction target
  Bytes diff_scratch_;   ///< reused RLE temporal-residual buffer
  Bytes rle_scratch_;    ///< reused RLE output buffer
};

/// Stateful decoder: feed encoded frames in order; seeks restart at a
/// keyframe via `reset()`.
class Decoder {
 public:
  Decoder() = default;

  [[nodiscard]] Result<Frame> decode(std::span<const u8> data);

  /// Decodes a run of consecutive frames, appending to `out`. Equivalent to
  /// calling decode() per frame, but prediction chains through the frames
  /// already appended to `out`, so the reference copy that per-frame decode
  /// pays on every frame happens once per batch. On error the valid prefix
  /// stays in `out` and the decoder reference is the last decoded frame,
  /// exactly as per-frame decoding would have left it.
  Status decode_batch(std::span<const std::span<const u8>> frames,
                      std::vector<Frame>& out);
  Status decode_batch(std::span<const EncodedFrame> frames,
                      std::vector<Frame>& out);

  /// Drops inter-frame prediction state (call before decoding from a
  /// keyframe that is not the stream start).
  void reset() { reference_.reset(); }

 private:
  std::optional<Frame> reference_;
  Bytes rle_scratch_;  ///< reused inter-RLE residual buffer
};

/// Convenience: encode a whole clip (keyframe forced at `segment_starts`).
struct EncodedStream {
  CodecConfig config;
  i32 width = 0;
  i32 height = 0;
  PixelFormat format = PixelFormat::kRgb24;
  int fps = 24;
  std::vector<EncodedFrame> frames;

  [[nodiscard]] u64 total_bytes() const {
    u64 n = 0;
    for (const auto& f : frames) n += f.data.size();
    return n;
  }
};

[[nodiscard]] Result<EncodedStream> encode_stream(const std::vector<Frame>& frames,
                                    const CodecConfig& config, int fps = 24,
                                    const std::vector<int>& segment_starts = {});

/// Decodes the entire stream back to frames.
[[nodiscard]] Result<std::vector<Frame>> decode_stream(const EncodedStream& stream);

}  // namespace vgbl
