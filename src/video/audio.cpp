#include "video/audio.hpp"

#include <algorithm>
#include <cmath>

namespace vgbl {
namespace {

// Standard IMA ADPCM tables.
constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                 -1, -1, -1, -1, 2, 4, 6, 8};

struct AdpcmState {
  int predictor = 0;
  int index = 0;

  u8 encode_sample(int sample) {
    const int step = kStepTable[index];
    int diff = sample - predictor;
    u8 nibble = 0;
    if (diff < 0) {
      nibble = 8;
      diff = -diff;
    }
    // Quantise diff against step/4, step/2, step.
    int delta = 0;
    if (diff >= step) {
      nibble |= 4;
      diff -= step;
      delta += step;
    }
    if (diff >= step / 2) {
      nibble |= 2;
      diff -= step / 2;
      delta += step / 2;
    }
    if (diff >= step / 4) {
      nibble |= 1;
      delta += step / 4;
    }
    delta += step / 8;
    predictor += (nibble & 8) ? -delta : delta;
    predictor = std::clamp(predictor, -32768, 32767);
    index = std::clamp(index + kIndexTable[nibble], 0, 88);
    return nibble;
  }

  i16 decode_nibble(u8 nibble) {
    const int step = kStepTable[index];
    int delta = step / 8;
    if (nibble & 1) delta += step / 4;
    if (nibble & 2) delta += step / 2;
    if (nibble & 4) delta += step;
    predictor += (nibble & 8) ? -delta : delta;
    predictor = std::clamp(predictor, -32768, 32767);
    index = std::clamp(index + kIndexTable[nibble], 0, 88);
    return static_cast<i16>(predictor);
  }
};

}  // namespace

AudioBuffer synthesize_ambience(const std::string& scene_name,
                                size_t duration_samples, int sample_rate) {
  // Voice the chord from the scene-name hash: a root in ~55–110 Hz plus a
  // fifth and an octave, each with its own amplitude.
  u64 h = 14695981039346656037ULL;
  for (char c : scene_name) h = (h ^ static_cast<u8>(c)) * 1099511628211ULL;

  const f64 root = 55.0 + static_cast<f64>(h % 56);
  const f64 partials[3] = {root, root * 1.5, root * 2.0};
  const f64 amps[3] = {0.45, 0.25 + static_cast<f64>((h >> 8) % 20) / 100.0,
                       0.15};
  const f64 tremolo_hz = 0.2 + static_cast<f64>((h >> 16) % 10) / 20.0;

  AudioBuffer out;
  out.sample_rate = sample_rate;
  out.samples.resize(duration_samples);
  const f64 two_pi = 6.283185307179586;
  for (size_t i = 0; i < duration_samples; ++i) {
    const f64 t = static_cast<f64>(i) / sample_rate;
    f64 v = 0;
    for (int p = 0; p < 3; ++p) {
      v += amps[p] * std::sin(two_pi * partials[p] * t);
    }
    v *= 0.8 + 0.2 * std::sin(two_pi * tremolo_hz * t);  // slow tremolo
    // Short fade at both ends to avoid clicks at scene boundaries.
    const size_t fade = std::min<size_t>(sample_rate / 50, duration_samples / 2);
    if (i < fade) v *= static_cast<f64>(i) / static_cast<f64>(fade);
    if (duration_samples - i <= fade) {
      v *= static_cast<f64>(duration_samples - i) / static_cast<f64>(fade);
    }
    out.samples[i] = static_cast<i16>(std::clamp(v * 12000.0, -32768.0, 32767.0));
  }
  return out;
}

AudioBuffer synthesize_clip_audio(
    const std::vector<std::pair<std::string, int>>& scene_frames, int fps,
    int sample_rate) {
  AudioBuffer out;
  out.sample_rate = sample_rate;
  for (const auto& [name, frames] : scene_frames) {
    const size_t samples = static_cast<size_t>(
        static_cast<i64>(frames) * sample_rate / std::max(1, fps));
    AudioBuffer scene = synthesize_ambience(name, samples, sample_rate);
    out.samples.insert(out.samples.end(), scene.samples.begin(),
                       scene.samples.end());
  }
  return out;
}

Bytes adpcm_encode(const AudioBuffer& pcm) {
  ByteWriter w(pcm.samples.size() / 2 + 16);
  w.put_varint(pcm.samples.size());
  if (pcm.samples.empty()) return std::move(w).take();

  AdpcmState state;
  state.predictor = pcm.samples[0];
  w.put_u16(static_cast<u16>(pcm.samples[0]));
  w.put_u8(0);  // initial step index

  u8 pending = 0;
  bool half = false;
  // First sample is the seed; encode from the second on.
  for (size_t i = 1; i < pcm.samples.size(); ++i) {
    const u8 nibble = state.encode_sample(pcm.samples[i]);
    if (!half) {
      pending = nibble;
      half = true;
    } else {
      w.put_u8(static_cast<u8>(pending | (nibble << 4)));
      half = false;
    }
  }
  if (half) w.put_u8(pending);
  return std::move(w).take();
}

Result<AudioBuffer> adpcm_decode(std::span<const u8> data, int sample_rate) {
  ByteReader r(data);
  auto count = r.varint();
  if (!count.ok()) return count.error();
  AudioBuffer out;
  out.sample_rate = sample_rate;
  if (count.value() == 0) return out;
  if (count.value() > (1ULL << 32)) {
    return corrupt_data("implausible audio sample count");
  }
  auto seed = r.u16_();
  auto index = r.u8_();
  if (!seed.ok() || !index.ok()) return corrupt_data("truncated audio header");

  out.samples.reserve(static_cast<size_t>(count.value()));
  out.samples.push_back(static_cast<i16>(seed.value()));

  AdpcmState state;
  state.predictor = static_cast<i16>(seed.value());
  state.index = std::min<int>(index.value(), 88);

  size_t remaining = static_cast<size_t>(count.value()) - 1;
  while (remaining > 0) {
    auto byte = r.u8_();
    if (!byte.ok()) return corrupt_data("truncated audio payload");
    out.samples.push_back(state.decode_nibble(byte.value() & 0x0F));
    --remaining;
    if (remaining > 0) {
      out.samples.push_back(state.decode_nibble(byte.value() >> 4));
      --remaining;
    }
  }
  return out;
}

f64 audio_snr(const AudioBuffer& original, const AudioBuffer& decoded) {
  if (original.samples.empty() ||
      original.samples.size() != decoded.samples.size()) {
    return 0.0;
  }
  f64 signal = 0;
  f64 noise = 0;
  for (size_t i = 0; i < original.samples.size(); ++i) {
    const f64 s = original.samples[i];
    const f64 n = s - decoded.samples[i];
    signal += s * s;
    noise += n * n;
  }
  if (noise == 0) return 1e9;
  if (signal == 0) return 0.0;
  return 10.0 * std::log10(signal / noise);
}

}  // namespace vgbl
