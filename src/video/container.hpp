// IVC ("Interactive Video Container") — the bundle-embeddable video file
// format: codec parameters, a per-frame index (offset/size/keyframe), and a
// segment table mapping scenario segments onto frame ranges. The segment
// table is what makes the container *interactive*: the runtime jumps
// between segments in response to player actions (paper §2.1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "video/audio.hpp"
#include "video/codec.hpp"

namespace vgbl {

struct ContainerSegment {
  SegmentId id;
  std::string name;
  int first_frame = 0;
  int frame_count = 0;
};

struct FrameIndexEntry {
  u64 offset = 0;  // into the frame-data blob
  u32 size = 0;
  bool keyframe = false;
};

/// Serialises an encoded stream + segment table into one byte blob.
/// `audio` (optional) is ADPCM-compressed into a trailing track aligned to
/// the video timeline; pass nullptr for silent containers.
[[nodiscard]] Bytes mux_container(const EncodedStream& stream,
                                  const std::vector<ContainerSegment>& segments,
                                  const AudioBuffer* audio);
inline Bytes mux_container(const EncodedStream& stream,
                           const std::vector<ContainerSegment>& segments) {
  return mux_container(stream, segments, nullptr);
}

/// Parsed container: owns the muxed bytes; frame payloads are views into it.
class VideoContainer {
 public:
  /// Parses and validates (magic, version, CRC, index consistency).
  [[nodiscard]] static Result<VideoContainer> parse(Bytes data);

  [[nodiscard]] i32 width() const { return width_; }
  [[nodiscard]] i32 height() const { return height_; }
  [[nodiscard]] int fps() const { return fps_; }
  [[nodiscard]] const CodecConfig& codec_config() const { return config_; }
  [[nodiscard]] PixelFormat pixel_format() const { return format_; }
  [[nodiscard]] int frame_count() const {
    return static_cast<int>(index_.size());
  }
  [[nodiscard]] const std::vector<ContainerSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] u64 total_bytes() const { return data_.size(); }

  /// The segment covering `frame`, if any.
  [[nodiscard]] const ContainerSegment* segment_at(int frame) const;
  [[nodiscard]] const ContainerSegment* segment_by_id(SegmentId id) const;
  [[nodiscard]] const ContainerSegment* segment_by_name(
      std::string_view name) const;

  /// Encoded payload of frame `i`.
  [[nodiscard]] Result<std::span<const u8>> frame_data(int i) const;
  [[nodiscard]] bool is_keyframe(int i) const {
    return i >= 0 && i < frame_count() && index_[static_cast<size_t>(i)].keyframe;
  }

  /// Largest keyframe index ≤ i (every stream starts with one).
  [[nodiscard]] int previous_keyframe(int i) const;

  /// Decoded audio track (empty buffer when the container is silent).
  [[nodiscard]] const AudioBuffer& audio() const { return audio_; }
  [[nodiscard]] bool has_audio() const { return !audio_.empty(); }
  /// Sample index corresponding to video frame `i`.
  [[nodiscard]] size_t audio_sample_for_frame(int i) const {
    if (fps_ <= 0) return 0;
    return static_cast<size_t>(static_cast<i64>(i) * audio_.sample_rate / fps_);
  }

 private:
  Bytes data_;
  size_t blob_offset_ = 0;
  i32 width_ = 0;
  i32 height_ = 0;
  int fps_ = 24;
  CodecConfig config_;
  PixelFormat format_ = PixelFormat::kRgb24;
  std::vector<FrameIndexEntry> index_;
  std::vector<ContainerSegment> segments_;
  AudioBuffer audio_;
};

/// Random-access decoder over a container. Sequential reads decode one
/// frame; seeks decode forward from the nearest preceding keyframe. An
/// optional LRU cache of decoded frames accelerates segment re-entry
/// (ablated in E8).
class VideoReader {
 public:
  explicit VideoReader(VideoContainer container, size_t cache_capacity = 0);

  [[nodiscard]] const VideoContainer& container() const { return container_; }

  /// Decodes frame `i` (0-based presentation order).
  [[nodiscard]] Result<Frame> read_frame(int i);

  /// First frame of a segment — the scenario-switch entry point.
  [[nodiscard]] Result<Frame> read_segment_start(SegmentId id);

  /// Decode statistics for benchmarking.
  struct Stats {
    u64 frames_decoded = 0;  // actual decode operations (incl. catch-up)
    u64 cache_hits = 0;
    u64 seeks = 0;  // reads that required a keyframe restart
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] Result<Frame> decode_at(int i);

  VideoContainer container_;
  Decoder decoder_;
  int next_sequential_ = 0;  // frame index the decoder state is poised at
  bool decoder_valid_ = false;

  // Tiny LRU: (frame index, decoded frame), most-recent at back.
  size_t cache_capacity_;
  std::vector<std::pair<int, Frame>> cache_;
  Stats stats_;
};

}  // namespace vgbl
