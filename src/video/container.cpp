#include "video/container.hpp"

#include <algorithm>

#include "util/crc32.hpp"

namespace vgbl {
namespace {

constexpr char kMagic[4] = {'I', 'V', 'C', '1'};
constexpr u16 kVersion = 1;

}  // namespace

Bytes mux_container(const EncodedStream& stream,
                    const std::vector<ContainerSegment>& segments,
                    const AudioBuffer* audio) {
  ByteWriter w(stream.total_bytes() + 4096);
  w.put_raw(kMagic, 4);
  w.put_u16(kVersion);
  w.put_u8(static_cast<u8>(stream.config.mode));
  w.put_u8(static_cast<u8>(stream.format));
  w.put_varint(static_cast<u64>(stream.config.gop_size));
  w.put_varint(static_cast<u64>(stream.config.quality));
  w.put_varint(static_cast<u64>(stream.width));
  w.put_varint(static_cast<u64>(stream.height));
  w.put_varint(static_cast<u64>(stream.fps));

  // Frame index: sizes + keyframe flags; offsets are reconstructed
  // cumulatively at parse time.
  w.put_varint(stream.frames.size());
  for (const auto& f : stream.frames) {
    w.put_varint(f.data.size());
    w.put_u8(f.keyframe ? 1 : 0);
  }

  w.put_varint(segments.size());
  for (const auto& s : segments) {
    w.put_varint(s.id.value);
    w.put_string(s.name);
    w.put_varint(static_cast<u64>(s.first_frame));
    w.put_varint(static_cast<u64>(s.frame_count));
  }

  // Frame data blob, CRC-protected as a whole (per-frame CRCs exist too).
  Bytes blob;
  blob.reserve(stream.total_bytes());
  for (const auto& f : stream.frames) {
    blob.insert(blob.end(), f.data.begin(), f.data.end());
  }
  w.put_u32(crc32(blob));
  w.put_varint(blob.size());
  w.put_raw(blob.data(), blob.size());

  // Optional trailing audio track ("AUD1"): readers that stop after the
  // frame blob simply ignore it, so silent-era containers stay readable.
  if (audio && !audio->empty()) {
    const Bytes adpcm = adpcm_encode(*audio);
    w.put_raw("AUD1", 4);
    w.put_varint(static_cast<u64>(audio->sample_rate));
    w.put_u32(crc32(adpcm));
    w.put_blob(adpcm);
  }
  return std::move(w).take();
}

Result<VideoContainer> VideoContainer::parse(Bytes data) {
  VideoContainer c;
  c.data_ = std::move(data);
  ByteReader r(c.data_);

  auto magic = r.view(4);
  if (!magic.ok() ||
      !std::equal(magic.value().begin(), magic.value().end(),
                  reinterpret_cast<const u8*>(kMagic))) {
    return corrupt_data("not an IVC container (bad magic)");
  }
  auto version = r.u16_();
  if (!version.ok()) return version.error();
  if (version.value() != kVersion) {
    return unsupported("IVC version " + std::to_string(version.value()));
  }

  auto mode = r.u8_();
  auto fmt = r.u8_();
  auto gop = r.varint();
  auto quality = r.varint();
  auto width = r.varint();
  auto height = r.varint();
  auto fps = r.varint();
  if (!mode.ok() || !fmt.ok() || !gop.ok() || !quality.ok() || !width.ok() ||
      !height.ok() || !fps.ok()) {
    return corrupt_data("truncated IVC header");
  }
  if (mode.value() > static_cast<u8>(CodecMode::kDct)) {
    return corrupt_data("unknown codec mode in container");
  }
  c.config_.mode = static_cast<CodecMode>(mode.value());
  c.config_.gop_size = static_cast<int>(gop.value());
  c.config_.quality = static_cast<int>(quality.value());
  c.format_ = static_cast<PixelFormat>(fmt.value());
  c.width_ = static_cast<i32>(width.value());
  c.height_ = static_cast<i32>(height.value());
  c.fps_ = static_cast<int>(fps.value());
  if (c.width_ <= 0 || c.height_ <= 0 || c.fps_ <= 0) {
    return corrupt_data("implausible container dimensions");
  }

  auto frame_count = r.varint();
  if (!frame_count.ok()) return frame_count.error();
  if (frame_count.value() > 10'000'000) {
    return corrupt_data("implausible frame count");
  }
  u64 offset = 0;
  c.index_.reserve(static_cast<size_t>(frame_count.value()));
  for (u64 i = 0; i < frame_count.value(); ++i) {
    auto size = r.varint();
    auto key = r.u8_();
    if (!size.ok() || !key.ok()) return corrupt_data("truncated frame index");
    c.index_.push_back({offset, static_cast<u32>(size.value()), key.value() != 0});
    offset += size.value();
  }

  auto segment_count = r.varint();
  if (!segment_count.ok()) return segment_count.error();
  if (segment_count.value() > 1'000'000) {
    return corrupt_data("implausible segment count");
  }
  for (u64 i = 0; i < segment_count.value(); ++i) {
    auto id = r.varint();
    auto name = r.string();
    auto first = r.varint();
    auto count = r.varint();
    if (!id.ok() || !name.ok() || !first.ok() || !count.ok()) {
      return corrupt_data("truncated segment table");
    }
    ContainerSegment seg;
    seg.id = SegmentId{static_cast<u32>(id.value())};
    seg.name = std::move(name.value());
    seg.first_frame = static_cast<int>(first.value());
    seg.frame_count = static_cast<int>(count.value());
    if (seg.first_frame < 0 ||
        seg.first_frame + seg.frame_count >
            static_cast<int>(c.index_.size())) {
      return corrupt_data("segment range outside frame index");
    }
    c.segments_.push_back(std::move(seg));
  }

  auto blob_crc = r.u32_();
  auto blob_size = r.varint();
  if (!blob_crc.ok() || !blob_size.ok()) {
    return corrupt_data("truncated container trailer");
  }
  if (blob_size.value() != offset) {
    return corrupt_data("frame data size does not match index");
  }
  if (blob_size.value() > r.remaining()) {
    return corrupt_data("container truncated: frame data missing");
  }
  c.blob_offset_ = r.position();
  auto blob = r.view(static_cast<size_t>(blob_size.value()));
  if (!blob.ok()) return blob.error();
  if (crc32(blob.value()) != blob_crc.value()) {
    return corrupt_data("frame data CRC mismatch");
  }

  // Optional audio track.
  if (r.remaining() >= 4) {
    auto marker = r.view(4);
    if (!marker.ok()) return marker.error();
    if (std::equal(marker.value().begin(), marker.value().end(),
                   reinterpret_cast<const u8*>("AUD1"))) {
      auto rate = r.varint();
      auto audio_crc = r.u32_();
      auto adpcm = r.blob();
      if (!rate.ok() || !audio_crc.ok() || !adpcm.ok()) {
        return corrupt_data("truncated audio track");
      }
      if (crc32(adpcm.value()) != audio_crc.value()) {
        return corrupt_data("audio track CRC mismatch");
      }
      auto decoded =
          adpcm_decode(adpcm.value(), static_cast<int>(rate.value()));
      if (!decoded.ok()) return decoded.error();
      c.audio_ = std::move(decoded.value());
    }
  }
  return c;
}

const ContainerSegment* VideoContainer::segment_at(int frame) const {
  for (const auto& s : segments_) {
    if (frame >= s.first_frame && frame < s.first_frame + s.frame_count) {
      return &s;
    }
  }
  return nullptr;
}

const ContainerSegment* VideoContainer::segment_by_id(SegmentId id) const {
  for (const auto& s : segments_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

const ContainerSegment* VideoContainer::segment_by_name(
    std::string_view name) const {
  for (const auto& s : segments_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Result<std::span<const u8>> VideoContainer::frame_data(int i) const {
  if (i < 0 || i >= frame_count()) {
    return out_of_range("frame index " + std::to_string(i));
  }
  const auto& e = index_[static_cast<size_t>(i)];
  return std::span<const u8>(data_.data() + blob_offset_ + e.offset, e.size);
}

int VideoContainer::previous_keyframe(int i) const {
  i = std::clamp(i, 0, frame_count() - 1);
  while (i > 0 && !index_[static_cast<size_t>(i)].keyframe) --i;
  return i;
}

VideoReader::VideoReader(VideoContainer container, size_t cache_capacity)
    : container_(std::move(container)), cache_capacity_(cache_capacity) {}

Result<Frame> VideoReader::read_frame(int i) {
  if (i < 0 || i >= container_.frame_count()) {
    return out_of_range("frame index " + std::to_string(i));
  }

  // Cache lookup (most recent at the back).
  for (auto it = cache_.rbegin(); it != cache_.rend(); ++it) {
    if (it->first == i) {
      ++stats_.cache_hits;
      Frame f = it->second;
      // Move to MRU position.
      std::rotate(it.base() - 1, it.base(), cache_.end());
      return f;
    }
  }

  Frame result;
  if (decoder_valid_ && i == next_sequential_) {
    auto f = decode_at(i);
    if (!f.ok()) return f;
    result = std::move(f.value());
  } else {
    // Seek: restart from the nearest preceding keyframe. The very first
    // read of a fresh reader is initial positioning, not a seek.
    if (decoder_valid_) ++stats_.seeks;
    const int key = container_.previous_keyframe(i);
    decoder_.reset();
    for (int j = key; j < i; ++j) {
      auto f = decode_at(j);
      if (!f.ok()) return f;
    }
    auto f = decode_at(i);
    if (!f.ok()) return f;
    result = std::move(f.value());
  }
  next_sequential_ = i + 1;
  decoder_valid_ = true;

  if (cache_capacity_ > 0) {
    if (cache_.size() >= cache_capacity_) cache_.erase(cache_.begin());
    cache_.emplace_back(i, result);
  }
  return result;
}

Result<Frame> VideoReader::read_segment_start(SegmentId id) {
  const ContainerSegment* seg = container_.segment_by_id(id);
  if (!seg) return not_found("segment id " + std::to_string(id.value));
  return read_frame(seg->first_frame);
}

Result<Frame> VideoReader::decode_at(int i) {
  auto data = container_.frame_data(i);
  if (!data.ok()) return data.error();
  ++stats_.frames_decoded;
  return decoder_.decode(data.value());
}

}  // namespace vgbl
