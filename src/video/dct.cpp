#include "video/dct.hpp"

#include <cmath>
#include <memory>

namespace vgbl {
namespace {

/// Cosine basis C[k][n] = c(k) * cos((2n+1)kπ/16) plus its transpose,
/// precomputed once. The transpose gives the column passes a contiguous
/// inner loop without changing any accumulation order.
struct Basis {
  f32 c[kDctBlockSize][kDctBlockSize];   // c[k][n]
  f32 ct[kDctBlockSize][kDctBlockSize];  // ct[n][k] == c[k][n]
  Basis() {
    const f64 pi = 3.14159265358979323846;
    for (int k = 0; k < kDctBlockSize; ++k) {
      const f64 scale = k == 0 ? std::sqrt(1.0 / kDctBlockSize)
                               : std::sqrt(2.0 / kDctBlockSize);
      for (int n = 0; n < kDctBlockSize; ++n) {
        c[k][n] = static_cast<f32>(
            scale * std::cos((2 * n + 1) * k * pi / (2 * kDctBlockSize)));
        ct[n][k] = c[k][n];
      }
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

// JPEG Annex K luminance quantisation table (quality scaling applied on top).
constexpr int kBaseQuant[kDctBlockArea] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

}  // namespace

const std::array<int, kDctBlockArea>& zigzag_order() {
  static const std::array<int, kDctBlockArea> order = [] {
    std::array<int, kDctBlockArea> o{};
    int idx = 0;
    for (int s = 0; s < 2 * kDctBlockSize - 1; ++s) {
      if (s % 2 == 0) {  // up-right
        for (int y = std::min(s, kDctBlockSize - 1);
             y >= 0 && s - y < kDctBlockSize; --y) {
          o[idx++] = y * kDctBlockSize + (s - y);
        }
      } else {  // down-left
        for (int x = std::min(s, kDctBlockSize - 1);
             x >= 0 && s - x < kDctBlockSize; --x) {
          o[idx++] = (s - x) * kDctBlockSize + x;
        }
      }
    }
    return o;
  }();
  return order;
}

void forward_dct(const DctBlock& spatial, DctBlock& freq) {
  const Basis& b = basis();
  // Separable: rows then columns. tmp is stored transposed (tmp[k][y]) so
  // the column pass reads contiguously; each output value still accumulates
  // its 8 products in the same n = 0..7 order as always.
  f32 tmp[kDctBlockArea];
  for (int y = 0; y < kDctBlockSize; ++y) {
    const f32* row = &spatial[y * kDctBlockSize];
    for (int k = 0; k < kDctBlockSize; ++k) {
      const f32* ck = b.c[k];
      f32 acc = 0;
      for (int n = 0; n < kDctBlockSize; ++n) acc += row[n] * ck[n];
      tmp[k * kDctBlockSize + y] = acc;
    }
  }
  for (int x = 0; x < kDctBlockSize; ++x) {
    const f32* col = &tmp[x * kDctBlockSize];  // former column x, contiguous
    for (int k = 0; k < kDctBlockSize; ++k) {
      const f32* ck = b.c[k];
      f32 acc = 0;
      for (int n = 0; n < kDctBlockSize; ++n) acc += col[n] * ck[n];
      freq[k * kDctBlockSize + x] = acc;
    }
  }
}

void inverse_dct(const DctBlock& freq, DctBlock& spatial) {
  const Basis& b = basis();
  f32 tmp[kDctBlockArea];
  for (int x = 0; x < kDctBlockSize; ++x) {
    // Gather column x once; the transposed basis keeps the k accumulation
    // (same k = 0..7 order) contiguous on both operands.
    f32 col[kDctBlockSize];
    for (int k = 0; k < kDctBlockSize; ++k) {
      col[k] = freq[k * kDctBlockSize + x];
    }
    for (int n = 0; n < kDctBlockSize; ++n) {
      const f32* ctn = b.ct[n];
      f32 acc = 0;
      for (int k = 0; k < kDctBlockSize; ++k) acc += col[k] * ctn[k];
      tmp[n * kDctBlockSize + x] = acc;
    }
  }
  for (int y = 0; y < kDctBlockSize; ++y) {
    const f32* row = &tmp[y * kDctBlockSize];
    for (int n = 0; n < kDctBlockSize; ++n) {
      const f32* ctn = b.ct[n];
      f32 acc = 0;
      for (int k = 0; k < kDctBlockSize; ++k) acc += row[k] * ctn[k];
      spatial[y * kDctBlockSize + n] = acc;
    }
  }
}

f32 quant_step(int index, int quality) {
  // quality 1 ≈ visually lossless, 16 ≈ JPEG default, 32+ coarse.
  const f32 scale = static_cast<f32>(quality) / 16.0f;
  const f32 step = static_cast<f32>(kBaseQuant[index]) * scale;
  return step < 1.0f ? 1.0f : step;
}

const QuantTable& quant_table(int quality) {
  // 256 tables × 64 steps × 4 bytes = 64 KiB, built once on first use
  // (thread-safe magic static). Indexing masks to the header-byte range so
  // decode-side lookups can never run off the array.
  static const auto tables = [] {
    auto t = std::make_unique<std::array<QuantTable, 256>>();
    for (int q = 0; q < 256; ++q) {
      for (int i = 0; i < kDctBlockArea; ++i) {
        (*t)[static_cast<size_t>(q)].step[static_cast<size_t>(i)] =
            quant_step(i, q);
      }
    }
    return t;
  }();
  return (*tables)[static_cast<size_t>(quality) & 0xFF];
}

void quantize(const DctBlock& freq, const QuantTable& table, QuantBlock& out) {
  // Same value as round(freq/quant_step): the cached step is the identical
  // f32, the division stays a division (a reciprocal would round
  // differently), and round_half_away is exactly lroundf.
  for (int i = 0; i < kDctBlockArea; ++i) {
    out[i] = round_half_away(freq[i] / table.step[static_cast<size_t>(i)]);
  }
}

void quantize(const DctBlock& freq, int quality, QuantBlock& out) {
  quantize(freq, quant_table(quality), out);
}

void dequantize(const QuantBlock& in, const QuantTable& table, DctBlock& freq) {
  for (int i = 0; i < kDctBlockArea; ++i) {
    freq[i] = static_cast<f32>(in[i]) * table.step[static_cast<size_t>(i)];
  }
}

void dequantize(const QuantBlock& in, int quality, DctBlock& freq) {
  dequantize(in, quant_table(quality), freq);
}

}  // namespace vgbl
