#include "video/dct.hpp"

#include <cmath>

namespace vgbl {
namespace {

/// Cosine basis C[k][n] = c(k) * cos((2n+1)kπ/16), precomputed once.
struct Basis {
  f32 c[kDctBlockSize][kDctBlockSize];
  Basis() {
    const f64 pi = 3.14159265358979323846;
    for (int k = 0; k < kDctBlockSize; ++k) {
      const f64 scale = k == 0 ? std::sqrt(1.0 / kDctBlockSize)
                               : std::sqrt(2.0 / kDctBlockSize);
      for (int n = 0; n < kDctBlockSize; ++n) {
        c[k][n] = static_cast<f32>(
            scale * std::cos((2 * n + 1) * k * pi / (2 * kDctBlockSize)));
      }
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

// JPEG Annex K luminance quantisation table (quality scaling applied on top).
constexpr int kBaseQuant[kDctBlockArea] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

}  // namespace

const std::array<int, kDctBlockArea>& zigzag_order() {
  static const std::array<int, kDctBlockArea> order = [] {
    std::array<int, kDctBlockArea> o{};
    int idx = 0;
    for (int s = 0; s < 2 * kDctBlockSize - 1; ++s) {
      if (s % 2 == 0) {  // up-right
        for (int y = std::min(s, kDctBlockSize - 1);
             y >= 0 && s - y < kDctBlockSize; --y) {
          o[idx++] = y * kDctBlockSize + (s - y);
        }
      } else {  // down-left
        for (int x = std::min(s, kDctBlockSize - 1);
             x >= 0 && s - x < kDctBlockSize; --x) {
          o[idx++] = (s - x) * kDctBlockSize + x;
        }
      }
    }
    return o;
  }();
  return order;
}

void forward_dct(const DctBlock& spatial, DctBlock& freq) {
  const Basis& b = basis();
  // Separable: rows then columns.
  DctBlock tmp;
  for (int y = 0; y < kDctBlockSize; ++y) {
    for (int k = 0; k < kDctBlockSize; ++k) {
      f32 acc = 0;
      for (int n = 0; n < kDctBlockSize; ++n) {
        acc += spatial[y * kDctBlockSize + n] * b.c[k][n];
      }
      tmp[y * kDctBlockSize + k] = acc;
    }
  }
  for (int x = 0; x < kDctBlockSize; ++x) {
    for (int k = 0; k < kDctBlockSize; ++k) {
      f32 acc = 0;
      for (int n = 0; n < kDctBlockSize; ++n) {
        acc += tmp[n * kDctBlockSize + x] * b.c[k][n];
      }
      freq[k * kDctBlockSize + x] = acc;
    }
  }
}

void inverse_dct(const DctBlock& freq, DctBlock& spatial) {
  const Basis& b = basis();
  DctBlock tmp;
  for (int x = 0; x < kDctBlockSize; ++x) {
    for (int n = 0; n < kDctBlockSize; ++n) {
      f32 acc = 0;
      for (int k = 0; k < kDctBlockSize; ++k) {
        acc += freq[k * kDctBlockSize + x] * b.c[k][n];
      }
      tmp[n * kDctBlockSize + x] = acc;
    }
  }
  for (int y = 0; y < kDctBlockSize; ++y) {
    for (int n = 0; n < kDctBlockSize; ++n) {
      f32 acc = 0;
      for (int k = 0; k < kDctBlockSize; ++k) {
        acc += tmp[y * kDctBlockSize + k] * b.c[k][n];
      }
      spatial[y * kDctBlockSize + n] = acc;
    }
  }
}

f32 quant_step(int index, int quality) {
  // quality 1 ≈ visually lossless, 16 ≈ JPEG default, 32+ coarse.
  const f32 scale = static_cast<f32>(quality) / 16.0f;
  const f32 step = static_cast<f32>(kBaseQuant[index]) * scale;
  return step < 1.0f ? 1.0f : step;
}

void quantize(const DctBlock& freq, int quality, QuantBlock& out) {
  for (int i = 0; i < kDctBlockArea; ++i) {
    out[i] = static_cast<i32>(std::lround(freq[i] / quant_step(i, quality)));
  }
}

void dequantize(const QuantBlock& in, int quality, DctBlock& freq) {
  for (int i = 0; i < kDctBlockArea; ++i) {
    freq[i] = static_cast<f32>(in[i]) * quant_step(i, quality);
  }
}

}  // namespace vgbl
