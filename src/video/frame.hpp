// Raster frame model. Frames are interleaved 8-bit buffers (RGB24 or GRAY8)
// with value semantics; all video processing (generation, codec, detection,
// compositing) operates on this type.
#pragma once

#include <span>
#include <vector>

#include "util/geometry.hpp"
#include "util/types.hpp"

namespace vgbl {

enum class PixelFormat : u8 { kGray8 = 1, kRgb24 = 3 };

struct Color {
  u8 r = 0;
  u8 g = 0;
  u8 b = 0;

  constexpr auto operator<=>(const Color&) const = default;

  /// ITU-R BT.601 luma.
  [[nodiscard]] constexpr u8 luma() const {
    return static_cast<u8>((299 * r + 587 * g + 114 * b) / 1000);
  }

  /// Linear blend towards `other` by t in [0,1] (t quantised to 1/256).
  [[nodiscard]] Color lerp(Color other, f64 t) const {
    const i32 k = static_cast<i32>(t * 256.0);
    auto mix = [&](u8 a, u8 b) {
      return static_cast<u8>((a * (256 - k) + b * k) >> 8);
    };
    return {mix(r, other.r), mix(g, other.g), mix(b, other.b)};
  }
};

namespace colors {
inline constexpr Color kBlack{0, 0, 0};
inline constexpr Color kWhite{255, 255, 255};
inline constexpr Color kRed{200, 40, 40};
inline constexpr Color kGreen{40, 180, 70};
inline constexpr Color kBlue{50, 80, 200};
inline constexpr Color kYellow{230, 210, 60};
inline constexpr Color kGray{128, 128, 128};
inline constexpr Color kSky{135, 196, 235};
inline constexpr Color kSand{222, 200, 160};
}  // namespace colors

class Frame {
 public:
  Frame() = default;
  Frame(i32 width, i32 height, PixelFormat format, Color fill = colors::kBlack);

  static Frame rgb(i32 width, i32 height, Color fill = colors::kBlack) {
    return {width, height, PixelFormat::kRgb24, fill};
  }
  static Frame gray(i32 width, i32 height, u8 value = 0) {
    Frame f(width, height, PixelFormat::kGray8);
    f.fill({value, value, value});
    return f;
  }

  [[nodiscard]] i32 width() const { return width_; }
  [[nodiscard]] i32 height() const { return height_; }
  [[nodiscard]] Size size() const { return {width_, height_}; }
  [[nodiscard]] Rect bounds() const { return {0, 0, width_, height_}; }
  [[nodiscard]] PixelFormat format() const { return format_; }
  [[nodiscard]] int channels() const { return static_cast<int>(format_); }
  [[nodiscard]] size_t stride() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(channels());
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<const u8> data() const { return data_; }
  [[nodiscard]] std::span<u8> data() { return data_; }

  /// Unchecked channel access; callers must stay in bounds.
  [[nodiscard]] u8 at(i32 x, i32 y, int c = 0) const {
    return data_[index(x, y, c)];
  }
  void set(i32 x, i32 y, int c, u8 v) { data_[index(x, y, c)] = v; }

  [[nodiscard]] Color pixel(i32 x, i32 y) const;
  void set_pixel(i32 x, i32 y, Color c);
  /// Alpha-blends `c` over the existing pixel (alpha in [0,255]).
  void blend_pixel(i32 x, i32 y, Color c, u8 alpha);

  void fill(Color c);
  /// Fills the intersection of `r` with the frame bounds.
  void fill_rect(Rect r, Color c);
  /// 1-pixel border inside `r`.
  void draw_rect(Rect r, Color c);
  /// Vertical linear gradient from `top` to `bottom` over `r`.
  void fill_gradient(Rect r, Color top, Color bottom);
  /// Filled circle, clipped.
  void fill_circle(Point center, i32 radius, Color c);
  /// Copies `src` onto this frame with its top-left at `at`, clipped.
  void blit(const Frame& src, Point at);

  /// Converts to single-channel luma (identity for gray frames).
  [[nodiscard]] Frame to_gray() const;

  /// 32-bin luma histogram normalised to sum 1.
  [[nodiscard]] std::vector<f64> luma_histogram(int bins = 32) const;

  /// Concatenated per-channel histogram (`bins_per_channel` bins each,
  /// normalised to sum 1 overall) — the scene-cut detector's frame
  /// signature. Catches hue changes that luma alone misses.
  [[nodiscard]] std::vector<f64> color_histogram(int bins_per_channel = 16) const;

  /// Mean color over the whole frame — cheap scene signature for shot
  /// grouping.
  [[nodiscard]] Color mean_color() const;

  bool operator==(const Frame& other) const = default;

 private:
  [[nodiscard]] size_t index(i32 x, i32 y, int c) const {
    return (static_cast<size_t>(y) * static_cast<size_t>(width_) +
            static_cast<size_t>(x)) *
               static_cast<size_t>(channels()) +
           static_cast<size_t>(c);
  }

  i32 width_ = 0;
  i32 height_ = 0;
  PixelFormat format_ = PixelFormat::kRgb24;
  std::vector<u8> data_;
};

/// Peak signal-to-noise ratio in dB between same-shape frames; +inf (1e9)
/// for identical frames. Used by codec quality tests and E3.
[[nodiscard]] f64 psnr(const Frame& a, const Frame& b);

/// Mean absolute per-channel difference; cheaper fidelity metric.
[[nodiscard]] f64 mean_abs_diff(const Frame& a, const Frame& b);

}  // namespace vgbl
