// 8×8 block DCT used by the lossy codec path. Forward transform takes
// centred pixel values (−128..127), quantises with a JPEG-style table scaled
// by a quality factor; the inverse reverses both steps. Encoder and decoder
// share these routines so the closed prediction loop stays bit-identical.
#pragma once

#include <array>

#include "util/types.hpp"

namespace vgbl {

inline constexpr int kDctBlockSize = 8;
inline constexpr int kDctBlockArea = kDctBlockSize * kDctBlockSize;

using DctBlock = std::array<f32, kDctBlockArea>;       // spatial or frequency
using QuantBlock = std::array<i32, kDctBlockArea>;     // quantised coeffs

/// Zig-zag scan order mapping scan position -> block index.
[[nodiscard]] const std::array<int, kDctBlockArea>& zigzag_order();

/// Forward 8×8 type-II DCT (orthonormal).
void forward_dct(const DctBlock& spatial, DctBlock& freq);

/// Inverse 8×8 DCT.
void inverse_dct(const DctBlock& freq, DctBlock& spatial);

/// Quantisation step for coefficient index `i` at `quality` (1 = finest,
/// larger = coarser). Derived from the JPEG luminance table.
[[nodiscard]] f32 quant_step(int index, int quality);

/// Quantises a frequency block: out[i] = round(freq[i] / step(i)).
void quantize(const DctBlock& freq, int quality, QuantBlock& out);

/// Dequantises back into a frequency block.
void dequantize(const QuantBlock& in, int quality, DctBlock& freq);

}  // namespace vgbl
