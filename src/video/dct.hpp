// 8×8 block DCT used by the lossy codec path. Forward transform takes
// centred pixel values (−128..127), quantises with a JPEG-style table scaled
// by a quality factor; the inverse reverses both steps. Encoder and decoder
// share these routines so the closed prediction loop stays bit-identical.
//
// Hot-path contract (ISSUE 9): every routine here is pinned bit-exact by
// tests/codec_golden_test.cpp. Optimisations must preserve the floating-
// point operation order of each output value — reorganising memory layout
// is fine, reassociating accumulations is not.
#pragma once

#include <array>

#include "util/types.hpp"

namespace vgbl {

inline constexpr int kDctBlockSize = 8;
inline constexpr int kDctBlockArea = kDctBlockSize * kDctBlockSize;

using DctBlock = std::array<f32, kDctBlockArea>;       // spatial or frequency
using QuantBlock = std::array<i32, kDctBlockArea>;     // quantised coeffs

/// Zig-zag scan order mapping scan position -> block index.
[[nodiscard]] const std::array<int, kDctBlockArea>& zigzag_order();

/// Forward 8×8 type-II DCT (orthonormal).
void forward_dct(const DctBlock& spatial, DctBlock& freq);

/// Inverse 8×8 DCT.
void inverse_dct(const DctBlock& freq, DctBlock& spatial);

/// Quantisation step for coefficient index `i` at `quality` (1 = finest,
/// larger = coarser). Derived from the JPEG luminance table.
[[nodiscard]] f32 quant_step(int index, int quality);

/// Per-quality step table. The frame header stores quality as one byte, so
/// every reachable quality has a cached table — computed once per process
/// instead of one `quant_step` call per coefficient per block.
struct QuantTable {
  std::array<f32, kDctBlockArea> step;
};

/// Cached table for `quality` (taken mod 256, matching the header byte).
/// Values are exactly `quant_step(i, quality)`. Thread-safe.
[[nodiscard]] const QuantTable& quant_table(int quality);

/// Quantises a frequency block: out[i] = round(freq[i] / step(i)).
void quantize(const DctBlock& freq, const QuantTable& table, QuantBlock& out);
void quantize(const DctBlock& freq, int quality, QuantBlock& out);

/// Dequantises back into a frequency block.
void dequantize(const QuantBlock& in, const QuantTable& table, DctBlock& freq);
void dequantize(const QuantBlock& in, int quality, DctBlock& freq);

/// Exact `std::lround(v)` (round half away from zero) without the libm
/// call. The f32 → f64 widening makes the +/−0.5 comparison exact, so the
/// result matches lroundf for every finite input the codec can produce.
[[nodiscard]] inline i32 round_half_away(f32 v) {
  const f64 d = static_cast<f64>(v);
  const i32 t = static_cast<i32>(d);  // truncation toward zero, exact
  const f64 frac = d - static_cast<f64>(t);
  if (frac >= 0.5) return t + 1;
  if (frac <= -0.5) return t - 1;
  return t;
}

/// Exact `clamp(lroundf(v), 0, 255)`: values that round negative clamp to
/// 0 on both paths, so truncating `v + 0.5` in f64 (exact — f32 inputs
/// gain headroom in f64) matches the old formula for every input.
[[nodiscard]] inline u8 round_clamp_u8(f32 v) {
  const f64 d = static_cast<f64>(v) + 0.5;
  if (d <= 0.0) return 0;
  if (d >= 256.0) return 255;
  return static_cast<u8>(static_cast<i32>(d));
}

}  // namespace vgbl
