// Procedural video source. Substitutes for the paper's camera/video-file
// input (see DESIGN.md §2): generates multi-scene clips with hard cuts,
// per-scene palettes, static props and moving "characters", plus an exact
// ground-truth cut list that the scene-detection evaluation (E4) scores
// against.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "video/audio.hpp"
#include "video/frame.hpp"

namespace vgbl {

/// Visual style of one scene ("place"): background palette plus prop and
/// character counts. Distinct palettes model distinct filming locations.
struct SceneStyle {
  Color background_top;
  Color background_bottom;
  int prop_count = 3;       // static rectangles (furniture, signs, ...)
  int character_count = 2;  // bouncing circles (actors)
  f64 motion_speed = 2.0;   // pixels/frame for characters
  f64 noise_level = 0.0;    // stddev of additive sensor noise, 0 disables
};

/// One scripted scene: a style held for `duration_frames` frames.
struct SceneSpec {
  std::string name;
  SceneStyle style;
  int duration_frames = 48;
};

/// Full clip specification.
struct ClipSpec {
  i32 width = 320;
  i32 height = 240;
  int fps = 24;
  std::vector<SceneSpec> scenes;
  u64 seed = 1;
};

/// Generated clip: decoded frames plus ground truth.
struct Clip {
  i32 width = 0;
  i32 height = 0;
  int fps = 24;
  std::vector<Frame> frames;
  /// Per-scene ambience soundtrack aligned to the frames (8 kHz mono).
  AudioBuffer audio;
  /// Frame indices at which a new scene starts (excluding frame 0).
  std::vector<int> ground_truth_cuts;
  /// Scene name per frame (for segmentation-accuracy scoring).
  std::vector<std::string> scene_of_frame;
};

/// A small library of ready-made scene styles keyed by name; the examples
/// use these to build the paper's classroom/market scenarios.
[[nodiscard]] SceneStyle scene_style(const std::string& name);

/// Renders the clip. Deterministic for a given spec (including seed).
[[nodiscard]] Clip generate_clip(const ClipSpec& spec);

/// Convenience: a clip with `scene_count` visually distinct scenes of
/// `frames_per_scene` frames each, used throughout tests and benches.
[[nodiscard]] ClipSpec make_demo_spec(int scene_count, int frames_per_scene,
                                      i32 width = 320, i32 height = 240,
                                      u64 seed = 1);

}  // namespace vgbl
