#include "video/frame.hpp"

#include <algorithm>
#include <cmath>

namespace vgbl {

Frame::Frame(i32 width, i32 height, PixelFormat format, Color fill_color)
    : width_(std::max(0, width)),
      height_(std::max(0, height)),
      format_(format),
      data_(static_cast<size_t>(std::max(0, width)) *
            static_cast<size_t>(std::max(0, height)) *
            static_cast<size_t>(format)) {
  if (!data_.empty()) fill(fill_color);
}

Color Frame::pixel(i32 x, i32 y) const {
  if (format_ == PixelFormat::kGray8) {
    const u8 v = at(x, y, 0);
    return {v, v, v};
  }
  return {at(x, y, 0), at(x, y, 1), at(x, y, 2)};
}

void Frame::set_pixel(i32 x, i32 y, Color c) {
  if (format_ == PixelFormat::kGray8) {
    set(x, y, 0, c.luma());
    return;
  }
  set(x, y, 0, c.r);
  set(x, y, 1, c.g);
  set(x, y, 2, c.b);
}

void Frame::blend_pixel(i32 x, i32 y, Color c, u8 alpha) {
  if (alpha == 255) {
    set_pixel(x, y, c);
    return;
  }
  if (alpha == 0) return;
  const Color base = pixel(x, y);
  set_pixel(x, y, base.lerp(c, static_cast<f64>(alpha) / 255.0));
}

void Frame::fill(Color c) { fill_rect(bounds(), c); }

void Frame::fill_rect(Rect r, Color c) {
  const Rect clip = r.intersection(bounds());
  for (i32 y = clip.y; y < clip.bottom(); ++y) {
    for (i32 x = clip.x; x < clip.right(); ++x) {
      set_pixel(x, y, c);
    }
  }
}

void Frame::draw_rect(Rect r, Color c) {
  const Rect clip = r.intersection(bounds());
  if (clip.empty()) return;
  for (i32 x = clip.x; x < clip.right(); ++x) {
    set_pixel(x, clip.y, c);
    set_pixel(x, clip.bottom() - 1, c);
  }
  for (i32 y = clip.y; y < clip.bottom(); ++y) {
    set_pixel(clip.x, y, c);
    set_pixel(clip.right() - 1, y, c);
  }
}

void Frame::fill_gradient(Rect r, Color top, Color bottom) {
  const Rect clip = r.intersection(bounds());
  if (clip.empty() || r.height <= 0) return;
  for (i32 y = clip.y; y < clip.bottom(); ++y) {
    const f64 t = static_cast<f64>(y - r.y) / static_cast<f64>(r.height);
    const Color row = top.lerp(bottom, std::clamp(t, 0.0, 1.0));
    for (i32 x = clip.x; x < clip.right(); ++x) {
      set_pixel(x, y, row);
    }
  }
}

void Frame::fill_circle(Point center, i32 radius, Color c) {
  const Rect box{center.x - radius, center.y - radius, 2 * radius + 1,
                 2 * radius + 1};
  const Rect clip = box.intersection(bounds());
  const i64 r2 = static_cast<i64>(radius) * radius;
  for (i32 y = clip.y; y < clip.bottom(); ++y) {
    for (i32 x = clip.x; x < clip.right(); ++x) {
      const i64 dx = x - center.x;
      const i64 dy = y - center.y;
      if (dx * dx + dy * dy <= r2) set_pixel(x, y, c);
    }
  }
}

void Frame::blit(const Frame& src, Point at) {
  const Rect dst = Rect{at.x, at.y, src.width(), src.height()}.intersection(bounds());
  for (i32 y = dst.y; y < dst.bottom(); ++y) {
    for (i32 x = dst.x; x < dst.right(); ++x) {
      set_pixel(x, y, src.pixel(x - at.x, y - at.y));
    }
  }
}

Frame Frame::to_gray() const {
  if (format_ == PixelFormat::kGray8) return *this;
  Frame out(width_, height_, PixelFormat::kGray8);
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      out.set(x, y, 0, pixel(x, y).luma());
    }
  }
  return out;
}

std::vector<f64> Frame::luma_histogram(int bins) const {
  std::vector<f64> hist(static_cast<size_t>(bins), 0.0);
  if (empty() || bins <= 0) return hist;
  const bool gray = format_ == PixelFormat::kGray8;
  i64 count = 0;
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      const u8 v = gray ? at(x, y, 0) : pixel(x, y).luma();
      ++hist[static_cast<size_t>(v) * static_cast<size_t>(bins) / 256];
      ++count;
    }
  }
  for (auto& h : hist) h /= static_cast<f64>(count);
  return hist;
}

std::vector<f64> Frame::color_histogram(int bins_per_channel) const {
  std::vector<f64> hist(static_cast<size_t>(bins_per_channel) * 3, 0.0);
  if (empty() || bins_per_channel <= 0) return hist;
  const size_t b = static_cast<size_t>(bins_per_channel);
  i64 count = 0;
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      const Color c = pixel(x, y);
      ++hist[static_cast<size_t>(c.r) * b / 256];
      ++hist[b + static_cast<size_t>(c.g) * b / 256];
      ++hist[2 * b + static_cast<size_t>(c.b) * b / 256];
      count += 3;
    }
  }
  for (auto& h : hist) h /= static_cast<f64>(count);
  return hist;
}

Color Frame::mean_color() const {
  if (empty()) return {};
  u64 sum[3] = {0, 0, 0};
  for (i32 y = 0; y < height_; ++y) {
    for (i32 x = 0; x < width_; ++x) {
      const Color c = pixel(x, y);
      sum[0] += c.r;
      sum[1] += c.g;
      sum[2] += c.b;
    }
  }
  const u64 n = static_cast<u64>(width_) * static_cast<u64>(height_);
  return {static_cast<u8>(sum[0] / n), static_cast<u8>(sum[1] / n),
          static_cast<u8>(sum[2] / n)};
}

f64 psnr(const Frame& a, const Frame& b) {
  if (a.size() != b.size() || a.format() != b.format() || a.empty()) return 0;
  const auto da = a.data();
  const auto db = b.data();
  f64 mse = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    const f64 d = static_cast<f64>(da[i]) - static_cast<f64>(db[i]);
    mse += d * d;
  }
  mse /= static_cast<f64>(da.size());
  if (mse == 0) return 1e9;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

f64 mean_abs_diff(const Frame& a, const Frame& b) {
  if (a.size() != b.size() || a.format() != b.format() || a.empty()) return 255;
  const auto da = a.data();
  const auto db = b.data();
  f64 acc = 0;
  for (size_t i = 0; i < da.size(); ++i) {
    acc += std::abs(static_cast<f64>(da[i]) - static_cast<f64>(db[i]));
  }
  return acc / static_cast<f64>(da.size());
}

}  // namespace vgbl
