#include "video/codec.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitstream.hpp"
#include "util/crc32.hpp"
#include "video/dct.hpp"

namespace vgbl {
namespace {

enum class FrameType : u8 { kIntra = 0, kInter = 1 };

constexpr u8 kFrameMagic = 0xF5;

/// Run-length encodes raw bytes as (run, value) pairs, runs capped at 255.
Bytes rle_encode(std::span<const u8> data) {
  Bytes out;
  out.reserve(data.size() / 4 + 16);
  size_t i = 0;
  while (i < data.size()) {
    const u8 v = data[i];
    size_t run = 1;
    while (i + run < data.size() && data[i + run] == v && run < 255) ++run;
    out.push_back(static_cast<u8>(run));
    out.push_back(v);
    i += run;
  }
  return out;
}

Status rle_decode(std::span<const u8> in, std::span<u8> out) {
  size_t oi = 0;
  size_t ii = 0;
  while (ii + 1 < in.size() + 1 && ii < in.size()) {
    if (ii + 2 > in.size()) return corrupt_data("rle: dangling run byte");
    const u8 run = in[ii];
    const u8 value = in[ii + 1];
    ii += 2;
    if (run == 0) return corrupt_data("rle: zero-length run");
    if (oi + run > out.size()) return corrupt_data("rle: output overflow");
    std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(oi), run, value);
    oi += run;
  }
  if (oi != out.size()) return corrupt_data("rle: output underflow");
  return {};
}

/// Encodes one quantised block: DC then (zero-run, level) AC pairs with an
/// EOB sentinel (run==63 cannot precede a 64th coefficient).
void encode_block(BitWriter& bw, const QuantBlock& q) {
  const auto& zz = zigzag_order();
  bw.put_se(q[zz[0]]);
  int run = 0;
  for (int i = 1; i < kDctBlockArea; ++i) {
    const i32 level = q[zz[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    bw.put_ue(static_cast<u32>(run));
    bw.put_se(level);
    run = 0;
  }
  bw.put_ue(63);  // end of block
}

Status decode_block(BitReader& br, QuantBlock& q) {
  const auto& zz = zigzag_order();
  q.fill(0);
  auto dc = br.se();
  if (!dc.ok()) return dc.error();
  q[zz[0]] = dc.value();
  int pos = 1;
  while (pos < kDctBlockArea) {
    auto run = br.ue();
    if (!run.ok()) return run.error();
    if (run.value() == 63) return {};  // EOB
    pos += static_cast<int>(run.value());
    if (pos >= kDctBlockArea) return corrupt_data("dct: run past block end");
    auto level = br.se();
    if (!level.ok()) return level.error();
    if (level.value() == 0) return corrupt_data("dct: zero AC level");
    q[zz[pos]] = level.value();
    ++pos;
  }
  // Full block: still expect the EOB sentinel for framing consistency.
  auto eob = br.ue();
  if (!eob.ok()) return eob.error();
  if (eob.value() != 63) return corrupt_data("dct: missing EOB");
  return {};
}

/// DCT-codes `current` (optionally as a residual against `reference`) and
/// writes the reconstruction into `recon`.
Bytes dct_encode(const Frame& current, const Frame* reference, int quality,
                 Frame& recon) {
  const i32 w = current.width();
  const i32 h = current.height();
  const int channels = current.channels();
  const i32 bw_blocks = (w + kDctBlockSize - 1) / kDctBlockSize;
  const i32 bh_blocks = (h + kDctBlockSize - 1) / kDctBlockSize;

  BitWriter bits;
  DctBlock spatial, freq;
  QuantBlock q;

  recon = Frame(w, h, current.format());

  for (int c = 0; c < channels; ++c) {
    for (i32 by = 0; by < bh_blocks; ++by) {
      for (i32 bx = 0; bx < bw_blocks; ++bx) {
        // Gather the block, clamping at the frame edge (pixel replication).
        for (int yy = 0; yy < kDctBlockSize; ++yy) {
          for (int xx = 0; xx < kDctBlockSize; ++xx) {
            const i32 x = std::min<i32>(bx * kDctBlockSize + xx, w - 1);
            const i32 y = std::min<i32>(by * kDctBlockSize + yy, h - 1);
            f32 v = static_cast<f32>(current.at(x, y, c));
            if (reference) {
              v -= static_cast<f32>(reference->at(x, y, c));
            } else {
              v -= 128.0f;
            }
            spatial[yy * kDctBlockSize + xx] = v;
          }
        }
        forward_dct(spatial, freq);
        quantize(freq, quality, q);
        encode_block(bits, q);

        // Closed-loop reconstruction so the encoder reference matches the
        // decoder exactly.
        dequantize(q, quality, freq);
        inverse_dct(freq, spatial);
        for (int yy = 0; yy < kDctBlockSize; ++yy) {
          for (int xx = 0; xx < kDctBlockSize; ++xx) {
            const i32 x = bx * kDctBlockSize + xx;
            const i32 y = by * kDctBlockSize + yy;
            if (x >= w || y >= h) continue;
            f32 v = spatial[yy * kDctBlockSize + xx];
            if (reference) {
              v += static_cast<f32>(reference->at(x, y, c));
            } else {
              v += 128.0f;
            }
            recon.set(x, y, c,
                      static_cast<u8>(std::clamp(std::lround(v), 0L, 255L)));
          }
        }
      }
    }
  }
  return std::move(bits).finish();
}

Status dct_decode(std::span<const u8> payload, const Frame* reference,
                  int quality, Frame& out) {
  const i32 w = out.width();
  const i32 h = out.height();
  const int channels = out.channels();
  const i32 bw_blocks = (w + kDctBlockSize - 1) / kDctBlockSize;
  const i32 bh_blocks = (h + kDctBlockSize - 1) / kDctBlockSize;

  BitReader bits(payload);
  DctBlock spatial, freq;
  QuantBlock q;

  for (int c = 0; c < channels; ++c) {
    for (i32 by = 0; by < bh_blocks; ++by) {
      for (i32 bx = 0; bx < bw_blocks; ++bx) {
        if (auto st = decode_block(bits, q); !st.ok()) return st;
        dequantize(q, quality, freq);
        inverse_dct(freq, spatial);
        for (int yy = 0; yy < kDctBlockSize; ++yy) {
          for (int xx = 0; xx < kDctBlockSize; ++xx) {
            const i32 x = bx * kDctBlockSize + xx;
            const i32 y = by * kDctBlockSize + yy;
            if (x >= w || y >= h) continue;
            f32 v = spatial[yy * kDctBlockSize + xx];
            if (reference) {
              v += static_cast<f32>(reference->at(x, y, c));
            } else {
              v += 128.0f;
            }
            out.set(x, y, c,
                    static_cast<u8>(std::clamp(std::lround(v), 0L, 255L)));
          }
        }
      }
    }
  }
  return {};
}

EncodedFrame wrap_frame(CodecMode mode, FrameType type, const Frame& frame,
                        int quality, Bytes payload) {
  ByteWriter w(payload.size() + 32);
  w.put_u8(kFrameMagic);
  w.put_u8(static_cast<u8>(mode));
  w.put_u8(static_cast<u8>(type));
  w.put_u8(static_cast<u8>(frame.format()));
  w.put_u8(static_cast<u8>(quality));
  w.put_varint(static_cast<u64>(frame.width()));
  w.put_varint(static_cast<u64>(frame.height()));
  w.put_u32(crc32(payload));
  w.put_blob(payload);
  EncodedFrame out;
  out.keyframe = type == FrameType::kIntra;
  out.data = std::move(w).take();
  return out;
}

}  // namespace

const char* codec_mode_name(CodecMode mode) {
  switch (mode) {
    case CodecMode::kRaw:
      return "raw";
    case CodecMode::kRle:
      return "rle";
    case CodecMode::kDct:
      return "dct";
  }
  return "?";
}

Result<EncodedFrame> Encoder::encode(const Frame& frame) {
  if (frame.empty()) return invalid_argument("cannot encode empty frame");
  if (!stream_format_) {
    stream_format_ = frame.format();
    stream_size_ = frame.size();
  } else if (frame.format() != *stream_format_ || frame.size() != stream_size_) {
    return invalid_argument("frame dimensions/format changed mid-stream");
  }

  const bool intra = force_keyframe_ || !reference_ ||
                     (config_.gop_size > 0 &&
                      frames_since_key_ >= config_.gop_size - 1);
  force_keyframe_ = false;

  EncodedFrame out = intra ? encode_intra(frame) : encode_inter(frame);
  frames_since_key_ = intra ? 0 : frames_since_key_ + 1;
  return out;
}

EncodedFrame Encoder::encode_intra(const Frame& frame) {
  switch (config_.mode) {
    case CodecMode::kRaw: {
      reference_ = frame;
      return wrap_frame(config_.mode, FrameType::kIntra, frame, 0,
                        Bytes(frame.data().begin(), frame.data().end()));
    }
    case CodecMode::kRle: {
      reference_ = frame;
      return wrap_frame(config_.mode, FrameType::kIntra, frame, 0,
                        rle_encode(frame.data()));
    }
    case CodecMode::kDct: {
      Frame recon;
      Bytes payload = dct_encode(frame, nullptr, config_.quality, recon);
      reference_ = std::move(recon);
      return wrap_frame(config_.mode, FrameType::kIntra, frame,
                        config_.quality, std::move(payload));
    }
  }
  return {};
}

EncodedFrame Encoder::encode_inter(const Frame& frame) {
  switch (config_.mode) {
    case CodecMode::kRaw: {
      reference_ = frame;
      return wrap_frame(config_.mode, FrameType::kInter, frame, 0,
                        Bytes(frame.data().begin(), frame.data().end()));
    }
    case CodecMode::kRle: {
      // Temporal delta (mod-256) then RLE: static regions collapse to long
      // zero runs. Lossless because subtraction is exactly invertible.
      const auto cur = frame.data();
      const auto ref = reference_->data();
      Bytes diff(cur.size());
      for (size_t i = 0; i < cur.size(); ++i) {
        diff[i] = static_cast<u8>(cur[i] - ref[i]);
      }
      reference_ = frame;
      return wrap_frame(config_.mode, FrameType::kInter, frame, 0,
                        rle_encode(diff));
    }
    case CodecMode::kDct: {
      Frame recon;
      Bytes payload =
          dct_encode(frame, &*reference_, config_.quality, recon);
      reference_ = std::move(recon);
      return wrap_frame(config_.mode, FrameType::kInter, frame,
                        config_.quality, std::move(payload));
    }
  }
  return {};
}

Result<Frame> Decoder::decode(std::span<const u8> data) {
  ByteReader r(data);
  auto magic = r.u8_();
  if (!magic.ok() || magic.value() != kFrameMagic) {
    return corrupt_data("bad frame magic");
  }
  auto mode_b = r.u8_();
  auto type_b = r.u8_();
  auto fmt_b = r.u8_();
  auto quality_b = r.u8_();
  auto width_v = r.varint();
  auto height_v = r.varint();
  auto crc_v = r.u32_();
  auto payload_r = r.blob();
  if (!mode_b.ok() || !type_b.ok() || !fmt_b.ok() || !quality_b.ok() ||
      !width_v.ok() || !height_v.ok() || !crc_v.ok() || !payload_r.ok()) {
    return corrupt_data("truncated frame header");
  }
  if (mode_b.value() > static_cast<u8>(CodecMode::kDct)) {
    return corrupt_data("unknown codec mode");
  }
  const auto mode = static_cast<CodecMode>(mode_b.value());
  const auto type = static_cast<FrameType>(type_b.value());
  if (fmt_b.value() != static_cast<u8>(PixelFormat::kGray8) &&
      fmt_b.value() != static_cast<u8>(PixelFormat::kRgb24)) {
    return corrupt_data("unknown pixel format");
  }
  const auto format = static_cast<PixelFormat>(fmt_b.value());
  const int quality = quality_b.value();
  const i32 w = static_cast<i32>(width_v.value());
  const i32 h = static_cast<i32>(height_v.value());
  if (w <= 0 || h <= 0 || static_cast<u64>(w) * static_cast<u64>(h) > 64u << 20) {
    return corrupt_data("implausible frame dimensions");
  }
  const Bytes& payload = payload_r.value();
  if (crc32(payload) != crc_v.value()) {
    return corrupt_data("frame payload CRC mismatch");
  }

  const bool inter = type == FrameType::kInter;
  if (inter && mode != CodecMode::kRaw) {
    if (!reference_ || reference_->size() != Size{w, h} ||
        reference_->format() != format) {
      return failed_precondition("inter frame without matching reference");
    }
  }

  Frame out(w, h, format);
  switch (mode) {
    case CodecMode::kRaw: {
      if (payload.size() != out.data().size()) {
        return corrupt_data("raw payload size mismatch");
      }
      std::copy(payload.begin(), payload.end(), out.data().begin());
      break;
    }
    case CodecMode::kRle: {
      if (!inter) {
        if (auto st = rle_decode(payload, out.data()); !st.ok()) {
          return st.error();
        }
      } else {
        Bytes diff(out.data().size());
        if (auto st = rle_decode(payload, diff); !st.ok()) return st.error();
        const auto ref = reference_->data();
        auto dst = out.data();
        for (size_t i = 0; i < dst.size(); ++i) {
          dst[i] = static_cast<u8>(ref[i] + diff[i]);
        }
      }
      break;
    }
    case CodecMode::kDct: {
      const Frame* ref = inter ? &*reference_ : nullptr;
      if (auto st = dct_decode(payload, ref, quality, out); !st.ok()) {
        return st.error();
      }
      break;
    }
  }
  reference_ = out;
  return out;
}

Result<EncodedStream> encode_stream(const std::vector<Frame>& frames,
                                    const CodecConfig& config, int fps,
                                    const std::vector<int>& segment_starts) {
  if (frames.empty()) return invalid_argument("no frames to encode");
  EncodedStream stream;
  stream.config = config;
  stream.width = frames[0].width();
  stream.height = frames[0].height();
  stream.format = frames[0].format();
  stream.fps = fps;

  Encoder enc(config);
  size_t next_boundary = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    while (next_boundary < segment_starts.size() &&
           static_cast<size_t>(segment_starts[next_boundary]) < i) {
      ++next_boundary;
    }
    if (next_boundary < segment_starts.size() &&
        static_cast<size_t>(segment_starts[next_boundary]) == i) {
      enc.request_keyframe();
      ++next_boundary;
    }
    auto ef = enc.encode(frames[i]);
    if (!ef.ok()) return ef.error();
    stream.frames.push_back(std::move(ef.value()));
  }
  return stream;
}

Result<std::vector<Frame>> decode_stream(const EncodedStream& stream) {
  Decoder dec;
  std::vector<Frame> out;
  out.reserve(stream.frames.size());
  for (const auto& ef : stream.frames) {
    auto f = dec.decode(ef.data);
    if (!f.ok()) return f.error();
    out.push_back(std::move(f.value()));
  }
  return out;
}

}  // namespace vgbl
