#include "video/codec.hpp"

#include <algorithm>

#include "util/bitstream.hpp"
#include "util/crc32.hpp"
#include "video/dct.hpp"

namespace vgbl {
namespace {

enum class FrameType : u8 { kIntra = 0, kInter = 1 };

constexpr u8 kFrameMagic = 0xF5;

/// Run-length encodes raw bytes as (run, value) pairs, runs capped at 255.
void rle_encode(std::span<const u8> data, Bytes& out) {
  out.clear();
  out.reserve(data.size() / 4 + 16);
  size_t i = 0;
  while (i < data.size()) {
    const u8 v = data[i];
    size_t run = 1;
    while (i + run < data.size() && data[i + run] == v && run < 255) ++run;
    out.push_back(static_cast<u8>(run));
    out.push_back(v);
    i += run;
  }
}

Status rle_decode(std::span<const u8> in, std::span<u8> out) {
  size_t oi = 0;
  size_t ii = 0;
  while (ii < in.size()) {
    if (ii + 2 > in.size()) return corrupt_data("rle: dangling run byte");
    const u8 run = in[ii];
    const u8 value = in[ii + 1];
    ii += 2;
    if (run == 0) return corrupt_data("rle: zero-length run");
    if (oi + run > out.size()) return corrupt_data("rle: output overflow");
    std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(oi), run, value);
    oi += run;
  }
  if (oi != out.size()) return corrupt_data("rle: output underflow");
  return {};
}

/// Encodes one quantised block: DC then (zero-run, level) AC pairs with an
/// EOB sentinel (run==63 cannot precede a 64th coefficient).
void encode_block(BitWriter& bw, const QuantBlock& q) {
  const auto& zz = zigzag_order();
  bw.put_se(q[zz[0]]);
  int run = 0;
  for (int i = 1; i < kDctBlockArea; ++i) {
    const i32 level = q[zz[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    bw.put_ue(static_cast<u32>(run));
    bw.put_se(level);
    run = 0;
  }
  bw.put_ue(63);  // end of block
}

Status decode_block(BitReader& br, QuantBlock& q) {
  const auto& zz = zigzag_order();
  q.fill(0);
  auto dc = br.se();
  if (!dc.ok()) return dc.error();
  q[zz[0]] = dc.value();
  int pos = 1;
  while (pos < kDctBlockArea) {
    auto run = br.ue();
    if (!run.ok()) return run.error();
    if (run.value() == 63) return {};  // EOB
    pos += static_cast<int>(run.value());
    if (pos >= kDctBlockArea) return corrupt_data("dct: run past block end");
    auto level = br.se();
    if (!level.ok()) return level.error();
    if (level.value() == 0) return corrupt_data("dct: zero AC level");
    q[zz[pos]] = level.value();
    ++pos;
  }
  // Full block: still expect the EOB sentinel for framing consistency.
  auto eob = br.ue();
  if (!eob.ok()) return eob.error();
  if (eob.value() != 63) return corrupt_data("dct: missing EOB");
  return {};
}

/// Gathers one 8×8 block of centred (intra) or residual (inter) samples.
/// Interior blocks walk raw row pointers; only edge blocks pay the clamped
/// per-pixel path (pixel replication, unchanged).
void gather_block(const Frame& cur, const Frame* ref, int c, i32 bx, i32 by,
                  DctBlock& spatial) {
  const i32 w = cur.width();
  const i32 h = cur.height();
  const int ch = cur.channels();
  const i32 x0 = bx * kDctBlockSize;
  const i32 y0 = by * kDctBlockSize;
  if (x0 + kDctBlockSize <= w && y0 + kDctBlockSize <= h) {
    const u8* cb = cur.data().data();
    const u8* rb = ref ? ref->data().data() : nullptr;
    const size_t stride = cur.stride();
    for (int yy = 0; yy < kDctBlockSize; ++yy) {
      const size_t base = static_cast<size_t>(y0 + yy) * stride +
                          static_cast<size_t>(x0) * static_cast<size_t>(ch) +
                          static_cast<size_t>(c);
      const u8* crow = cb + base;
      f32* out = &spatial[static_cast<size_t>(yy) * kDctBlockSize];
      if (rb) {
        const u8* rrow = rb + base;
        for (int xx = 0; xx < kDctBlockSize; ++xx) {
          out[xx] = static_cast<f32>(crow[xx * ch]) -
                    static_cast<f32>(rrow[xx * ch]);
        }
      } else {
        for (int xx = 0; xx < kDctBlockSize; ++xx) {
          out[xx] = static_cast<f32>(crow[xx * ch]) - 128.0f;
        }
      }
    }
    return;
  }
  for (int yy = 0; yy < kDctBlockSize; ++yy) {
    for (int xx = 0; xx < kDctBlockSize; ++xx) {
      const i32 x = std::min<i32>(x0 + xx, w - 1);
      const i32 y = std::min<i32>(y0 + yy, h - 1);
      f32 v = static_cast<f32>(cur.at(x, y, c));
      if (ref) {
        v -= static_cast<f32>(ref->at(x, y, c));
      } else {
        v -= 128.0f;
      }
      spatial[yy * kDctBlockSize + xx] = v;
    }
  }
}

/// Scatters a reconstructed block back into `dst` (adding the prediction).
/// Shared by the encoder's closed loop and the decoder so both sides run
/// the identical rounding path.
void scatter_block(Frame& dst, const Frame* ref, int c, i32 bx, i32 by,
                   const DctBlock& spatial) {
  const i32 w = dst.width();
  const i32 h = dst.height();
  const int ch = dst.channels();
  const i32 x0 = bx * kDctBlockSize;
  const i32 y0 = by * kDctBlockSize;
  if (x0 + kDctBlockSize <= w && y0 + kDctBlockSize <= h) {
    u8* db = dst.data().data();
    const u8* rb = ref ? ref->data().data() : nullptr;
    const size_t stride = dst.stride();
    for (int yy = 0; yy < kDctBlockSize; ++yy) {
      const size_t base = static_cast<size_t>(y0 + yy) * stride +
                          static_cast<size_t>(x0) * static_cast<size_t>(ch) +
                          static_cast<size_t>(c);
      u8* drow = db + base;
      const f32* in = &spatial[static_cast<size_t>(yy) * kDctBlockSize];
      if (rb) {
        const u8* rrow = rb + base;
        for (int xx = 0; xx < kDctBlockSize; ++xx) {
          drow[xx * ch] =
              round_clamp_u8(in[xx] + static_cast<f32>(rrow[xx * ch]));
        }
      } else {
        for (int xx = 0; xx < kDctBlockSize; ++xx) {
          drow[xx * ch] = round_clamp_u8(in[xx] + 128.0f);
        }
      }
    }
    return;
  }
  for (int yy = 0; yy < kDctBlockSize; ++yy) {
    for (int xx = 0; xx < kDctBlockSize; ++xx) {
      const i32 x = x0 + xx;
      const i32 y = y0 + yy;
      if (x >= w || y >= h) continue;
      f32 v = spatial[yy * kDctBlockSize + xx];
      if (ref) {
        v += static_cast<f32>(ref->at(x, y, c));
      } else {
        v += 128.0f;
      }
      dst.set(x, y, c, round_clamp_u8(v));
    }
  }
}

/// DCT-codes `current` (optionally as a residual against `reference`) and
/// writes the reconstruction into `recon` (reused across frames).
Bytes dct_encode(const Frame& current, const Frame* reference,
                 const QuantTable& qt, Frame& recon) {
  const i32 w = current.width();
  const i32 h = current.height();
  const int channels = current.channels();
  const i32 bw_blocks = (w + kDctBlockSize - 1) / kDctBlockSize;
  const i32 bh_blocks = (h + kDctBlockSize - 1) / kDctBlockSize;

  BitWriter bits;
  DctBlock spatial, freq;
  QuantBlock q;

  // scatter_block writes every valid pixel, so a right-sized scratch frame
  // can be reused without clearing.
  if (recon.size() != current.size() || recon.format() != current.format()) {
    recon = Frame(w, h, current.format());
  }

  for (int c = 0; c < channels; ++c) {
    for (i32 by = 0; by < bh_blocks; ++by) {
      for (i32 bx = 0; bx < bw_blocks; ++bx) {
        gather_block(current, reference, c, bx, by, spatial);
        forward_dct(spatial, freq);
        quantize(freq, qt, q);
        encode_block(bits, q);

        // Closed-loop reconstruction so the encoder reference matches the
        // decoder exactly.
        dequantize(q, qt, freq);
        inverse_dct(freq, spatial);
        scatter_block(recon, reference, c, bx, by, spatial);
      }
    }
  }
  return std::move(bits).finish();
}

Status dct_decode(std::span<const u8> payload, const Frame* reference,
                  const QuantTable& qt, Frame& out) {
  const i32 w = out.width();
  const i32 h = out.height();
  const int channels = out.channels();
  const i32 bw_blocks = (w + kDctBlockSize - 1) / kDctBlockSize;
  const i32 bh_blocks = (h + kDctBlockSize - 1) / kDctBlockSize;

  BitReader bits(payload);
  DctBlock spatial, freq;
  QuantBlock q;

  for (int c = 0; c < channels; ++c) {
    for (i32 by = 0; by < bh_blocks; ++by) {
      for (i32 bx = 0; bx < bw_blocks; ++bx) {
        if (auto st = decode_block(bits, q); !st.ok()) return st;
        dequantize(q, qt, freq);
        inverse_dct(freq, spatial);
        scatter_block(out, reference, c, bx, by, spatial);
      }
    }
  }
  return {};
}

EncodedFrame wrap_frame(CodecMode mode, FrameType type, const Frame& frame,
                        int quality, std::span<const u8> payload) {
  ByteWriter w(payload.size() + 32);
  w.put_u8(kFrameMagic);
  w.put_u8(static_cast<u8>(mode));
  w.put_u8(static_cast<u8>(type));
  w.put_u8(static_cast<u8>(frame.format()));
  w.put_u8(static_cast<u8>(quality));
  w.put_varint(static_cast<u64>(frame.width()));
  w.put_varint(static_cast<u64>(frame.height()));
  w.put_u32(crc32(payload));
  w.put_blob(payload);
  EncodedFrame out;
  out.keyframe = type == FrameType::kIntra;
  out.data = std::move(w).take();
  return out;
}

/// Frame header plus a non-owning view of the checked payload.
struct ParsedFrame {
  CodecMode mode = CodecMode::kRaw;
  FrameType type = FrameType::kIntra;
  PixelFormat format = PixelFormat::kRgb24;
  int quality = 0;
  i32 width = 0;
  i32 height = 0;
  std::span<const u8> payload;
};

/// Parses and validates a frame header. The payload stays a view into
/// `data` — no copy — so `data` must outlive the returned struct.
[[nodiscard]] Result<ParsedFrame> parse_frame(std::span<const u8> data) {
  ByteReader r(data);
  auto magic = r.u8_();
  if (!magic.ok() || magic.value() != kFrameMagic) {
    return corrupt_data("bad frame magic");
  }
  auto mode_b = r.u8_();
  auto type_b = r.u8_();
  auto fmt_b = r.u8_();
  auto quality_b = r.u8_();
  auto width_v = r.varint();
  auto height_v = r.varint();
  auto crc_v = r.u32_();
  auto len_v = r.varint();
  if (!mode_b.ok() || !type_b.ok() || !fmt_b.ok() || !quality_b.ok() ||
      !width_v.ok() || !height_v.ok() || !crc_v.ok() || !len_v.ok()) {
    return corrupt_data("truncated frame header");
  }
  auto payload_v = r.view(static_cast<size_t>(len_v.value()));
  if (!payload_v.ok()) return corrupt_data("truncated frame header");
  if (mode_b.value() > static_cast<u8>(CodecMode::kDct)) {
    return corrupt_data("unknown codec mode");
  }
  if (fmt_b.value() != static_cast<u8>(PixelFormat::kGray8) &&
      fmt_b.value() != static_cast<u8>(PixelFormat::kRgb24)) {
    return corrupt_data("unknown pixel format");
  }
  ParsedFrame f;
  f.mode = static_cast<CodecMode>(mode_b.value());
  f.type = static_cast<FrameType>(type_b.value());
  f.format = static_cast<PixelFormat>(fmt_b.value());
  f.quality = quality_b.value();
  f.width = static_cast<i32>(width_v.value());
  f.height = static_cast<i32>(height_v.value());
  if (f.width <= 0 || f.height <= 0 ||
      static_cast<u64>(f.width) * static_cast<u64>(f.height) > 64u << 20) {
    return corrupt_data("implausible frame dimensions");
  }
  f.payload = payload_v.value();
  if (crc32(f.payload) != crc_v.value()) {
    return corrupt_data("frame payload CRC mismatch");
  }
  return f;
}

/// Decodes a parsed frame into `out` (allocated here if needed). `ref` is
/// the previous decoded frame or nullptr at a prediction-chain start.
Status decode_parsed(const ParsedFrame& f, const Frame* ref, Frame& out,
                     Bytes& rle_scratch) {
  const bool inter = f.type == FrameType::kInter;
  if (inter && f.mode != CodecMode::kRaw) {
    if (!ref || ref->size() != Size{f.width, f.height} ||
        ref->format() != f.format) {
      return failed_precondition("inter frame without matching reference");
    }
  }

  if (out.size() != Size{f.width, f.height} || out.format() != f.format) {
    out = Frame(f.width, f.height, f.format);
  }
  switch (f.mode) {
    case CodecMode::kRaw: {
      if (f.payload.size() != out.data().size()) {
        return corrupt_data("raw payload size mismatch");
      }
      std::copy(f.payload.begin(), f.payload.end(), out.data().begin());
      break;
    }
    case CodecMode::kRle: {
      if (!inter) {
        if (auto st = rle_decode(f.payload, out.data()); !st.ok()) return st;
      } else {
        rle_scratch.resize(out.data().size());
        if (auto st = rle_decode(f.payload, rle_scratch); !st.ok()) return st;
        const auto rd = ref->data();
        auto dst = out.data();
        for (size_t i = 0; i < dst.size(); ++i) {
          dst[i] = static_cast<u8>(rd[i] + rle_scratch[i]);
        }
      }
      break;
    }
    case CodecMode::kDct: {
      const Frame* pred = inter ? ref : nullptr;
      if (auto st = dct_decode(f.payload, pred, quant_table(f.quality), out);
          !st.ok()) {
        return st;
      }
      break;
    }
  }
  return {};
}

}  // namespace

const char* codec_mode_name(CodecMode mode) {
  switch (mode) {
    case CodecMode::kRaw:
      return "raw";
    case CodecMode::kRle:
      return "rle";
    case CodecMode::kDct:
      return "dct";
  }
  return "?";
}

Result<EncodedFrame> Encoder::encode(const Frame& frame) {
  if (frame.empty()) return invalid_argument("cannot encode empty frame");
  if (config_.mode == CodecMode::kDct &&
      (config_.quality < 1 || config_.quality > 255)) {
    return invalid_argument("dct quality out of range [1, 255]");
  }
  if (!stream_format_) {
    stream_format_ = frame.format();
    stream_size_ = frame.size();
  } else if (frame.format() != *stream_format_ || frame.size() != stream_size_) {
    return invalid_argument("frame dimensions/format changed mid-stream");
  }

  const bool intra = force_keyframe_ || !reference_ ||
                     (config_.gop_size > 0 &&
                      frames_since_key_ >= config_.gop_size - 1);
  force_keyframe_ = false;

  EncodedFrame out = intra ? encode_intra(frame) : encode_inter(frame);
  frames_since_key_ = intra ? 0 : frames_since_key_ + 1;
  return out;
}

EncodedFrame Encoder::encode_intra(const Frame& frame) {
  switch (config_.mode) {
    case CodecMode::kRaw: {
      reference_ = frame;
      return wrap_frame(config_.mode, FrameType::kIntra, frame, 0,
                        frame.data());
    }
    case CodecMode::kRle: {
      reference_ = frame;
      rle_encode(frame.data(), rle_scratch_);
      return wrap_frame(config_.mode, FrameType::kIntra, frame, 0,
                        rle_scratch_);
    }
    case CodecMode::kDct: {
      Bytes payload = dct_encode(frame, nullptr, quant_table(config_.quality),
                                 recon_scratch_);
      // Swap instead of move: the displaced reference becomes next frame's
      // right-sized scratch.
      if (!reference_) reference_.emplace();
      std::swap(*reference_, recon_scratch_);
      return wrap_frame(config_.mode, FrameType::kIntra, frame,
                        config_.quality, payload);
    }
  }
  return {};
}

EncodedFrame Encoder::encode_inter(const Frame& frame) {
  switch (config_.mode) {
    case CodecMode::kRaw: {
      reference_ = frame;
      return wrap_frame(config_.mode, FrameType::kInter, frame, 0,
                        frame.data());
    }
    case CodecMode::kRle: {
      // Temporal delta (mod-256) then RLE: static regions collapse to long
      // zero runs. Lossless because subtraction is exactly invertible.
      const auto cur = frame.data();
      const auto ref = reference_->data();
      diff_scratch_.resize(cur.size());
      for (size_t i = 0; i < cur.size(); ++i) {
        diff_scratch_[i] = static_cast<u8>(cur[i] - ref[i]);
      }
      reference_ = frame;
      rle_encode(diff_scratch_, rle_scratch_);
      return wrap_frame(config_.mode, FrameType::kInter, frame, 0,
                        rle_scratch_);
    }
    case CodecMode::kDct: {
      Bytes payload = dct_encode(frame, &*reference_,
                                 quant_table(config_.quality), recon_scratch_);
      std::swap(*reference_, recon_scratch_);
      return wrap_frame(config_.mode, FrameType::kInter, frame,
                        config_.quality, payload);
    }
  }
  return {};
}

Result<Frame> Decoder::decode(std::span<const u8> data) {
  auto pf = parse_frame(data);
  if (!pf.ok()) return pf.error();
  const Frame* ref = reference_ ? &*reference_ : nullptr;
  Frame out;
  if (auto st = decode_parsed(pf.value(), ref, out, rle_scratch_); !st.ok()) {
    return st.error();
  }
  reference_ = out;
  return out;
}

Status Decoder::decode_batch(std::span<const std::span<const u8>> frames,
                             std::vector<Frame>& out) {
  // Reserve up front: `ref` points into `out` while the batch runs, so the
  // vector must not reallocate mid-loop.
  out.reserve(out.size() + frames.size());
  const Frame* ref = reference_ ? &*reference_ : nullptr;
  size_t decoded = 0;
  Status result;
  for (const auto& data : frames) {
    auto pf = parse_frame(data);
    if (!pf.ok()) {
      result = pf.error();
      break;
    }
    out.emplace_back();
    if (auto st = decode_parsed(pf.value(), ref, out.back(), rle_scratch_);
        !st.ok()) {
      out.pop_back();
      result = st;
      break;
    }
    ref = &out.back();
    ++decoded;
  }
  if (decoded > 0) reference_ = out.back();
  return result;
}

Status Decoder::decode_batch(std::span<const EncodedFrame> frames,
                             std::vector<Frame>& out) {
  std::vector<std::span<const u8>> datas;
  datas.reserve(frames.size());
  for (const EncodedFrame& f : frames) datas.push_back(f.data);
  return decode_batch(datas, out);
}

Result<EncodedStream> encode_stream(const std::vector<Frame>& frames,
                                    const CodecConfig& config, int fps,
                                    const std::vector<int>& segment_starts) {
  if (frames.empty()) return invalid_argument("no frames to encode");
  for (size_t i = 0; i < segment_starts.size(); ++i) {
    const int s = segment_starts[i];
    if (s < 0 || static_cast<size_t>(s) >= frames.size()) {
      return invalid_argument("segment start out of range");
    }
    if (i > 0 && s <= segment_starts[i - 1]) {
      return invalid_argument("segment starts must be strictly increasing");
    }
  }
  EncodedStream stream;
  stream.config = config;
  stream.width = frames[0].width();
  stream.height = frames[0].height();
  stream.format = frames[0].format();
  stream.fps = fps;

  Encoder enc(config);
  size_t next_boundary = 0;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (next_boundary < segment_starts.size() &&
        static_cast<size_t>(segment_starts[next_boundary]) == i) {
      enc.request_keyframe();
      ++next_boundary;
    }
    auto ef = enc.encode(frames[i]);
    if (!ef.ok()) return ef.error();
    stream.frames.push_back(std::move(ef.value()));
  }
  return stream;
}

Result<std::vector<Frame>> decode_stream(const EncodedStream& stream) {
  Decoder dec;
  std::vector<Frame> out;
  if (auto st = dec.decode_batch(std::span(stream.frames), out); !st.ok()) {
    return st.error();
  }
  return out;
}

}  // namespace vgbl
