// vgbl — command-line front-end for the VGBL platform.
//
//   vgbl demo <classroom|treasure|quickstart|quiz> <out.vgbl>
//   vgbl lint <project.vgbl>
//   vgbl bundle <project.vgbl> <out.vgblb> [rle|dct] [quality]
//   vgbl info <bundle.vgblb>
//   vgbl play <bundle.vgblb> [explorer|random|speedrun] [max_steps]
//   vgbl figure1 <project.vgbl>
//   vgbl figure2 <bundle.vgblb>
//   vgbl screenshot <bundle.vgblb> <out.ppm>
//   vgbl save <bundle.vgblb> <store_dir> <student> [steps] [policy]
//   vgbl resume <bundle.vgblb> <store_dir> <student> [max_steps] [policy]
//   vgbl inspect-snapshot <file.snap>
//   vgbl classroom <bundle.vgblb> [students] [max_steps] [--threads N]
//                  [--seed S] [--store <dir>] [--stream] [--fault <profile>]
//                  [--metrics-out <file.json|file.prom>]
//                  [--rewards] [--badge-store <dir>]
//   vgbl district <bundle.vgblb> [--classrooms N] [--students M] [--steps K]
//                 [--seed S] [--threads T] [--shards N] [--stream]
//                 [--clients C] [--fault <profile>] [--rewards]
//                 [--persist <dir>] [--metrics-out <file>]
//   vgbl rewards inspect <store_dir>
//   vgbl metrics <scrape.json>
//   vgbl gen [--seed S] [--count N] [--out <dir>] [--threads N]
//            [--projects] [--repro <failure.json>]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "core/classroom.hpp"
#include "core/platform.hpp"
#include "sim/district.hpp"
#include "gen/generator.hpp"
#include "net/streaming.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "persist/session_store.hpp"
#include "rewards/badge_store.hpp"
#include "rewards/leaderboard.hpp"
#include "rewards/rules.hpp"
#include "runtime/compositor.hpp"
#include "util/text.hpp"

namespace {

using namespace vgbl;

[[nodiscard]] Result<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return io_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status write_file(const std::string& path, const void* data, size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return io_error("cannot create '" + path + "'");
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  return out.good() ? Status{} : Status(io_error("write failed for '" + path + "'"));
}

[[nodiscard]] Result<Project> load_project_file(const std::string& path) {
  auto text = read_file(path);
  if (!text.ok()) return text.error();
  return load_project_text(text.value());
}

[[nodiscard]] Result<GameBundle> load_bundle_file(const std::string& path) {
  auto data = read_file(path);
  if (!data.ok()) return data.error();
  Bytes bytes(data.value().begin(), data.value().end());
  return load_bundle(std::move(bytes));
}

int fail(const Error& error) {
  std::fprintf(stderr, "error: %s\n", error.to_string().c_str());
  return 1;
}

int cmd_demo(const std::string& which, const std::string& out) {
  Result<Project> project = which == "classroom" ? build_classroom_repair_project()
                            : which == "treasure" ? build_treasure_hunt_project()
                            : which == "quiz"     ? build_science_quiz_project()
                                                  : build_quickstart_project();
  if (!project.ok()) return fail(project.error());
  const std::string text = save_project_text(project.value());
  if (auto st = write_file(out, text.data(), text.size()); !st.ok()) {
    return fail(st.error());
  }
  std::printf("wrote %s (%s, %zu scenarios, %zu rules)\n", out.c_str(),
              format_bytes(text.size()).c_str(), project.value().graph.size(),
              project.value().rules.size());
  return 0;
}

int cmd_lint(const std::string& path) {
  auto project = load_project_file(path);
  if (!project.ok()) return fail(project.error());
  int errors = 0;
  for (const auto& issue : project.value().lint()) {
    std::printf("%s %s\n", issue.level == LintLevel::kError ? "E" : "W",
                issue.message.c_str());
    errors += issue.level == LintLevel::kError;
  }
  std::printf("%d error(s); project is %s\n", errors,
              errors == 0 ? "bundleable" : "NOT bundleable");
  return errors == 0 ? 0 : 2;
}

int cmd_bundle(const std::string& in, const std::string& out,
               const std::string& codec, int quality) {
  auto project = load_project_file(in);
  if (!project.ok()) return fail(project.error());
  BundleOptions options;
  options.codec.mode = codec == "rle" ? CodecMode::kRle : CodecMode::kDct;
  if (quality > 0) options.codec.quality = quality;
  auto bytes = build_bundle(project.value(), options);
  if (!bytes.ok()) return fail(bytes.error());
  if (auto st = write_file(out, bytes.value().data(), bytes.value().size());
      !st.ok()) {
    return fail(st.error());
  }
  std::printf("wrote %s (%s, codec=%s q=%d)\n", out.c_str(),
              format_bytes(bytes.value().size()).c_str(),
              codec_mode_name(options.codec.mode), options.codec.quality);
  return 0;
}

int cmd_info(const std::string& path) {
  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  const GameBundle& b = bundle.value();
  std::printf("title:      %s\n", b.meta.title.c_str());
  std::printf("author:     %s\n", b.meta.author.c_str());
  std::printf("video:      %dx%d @%d fps, %d frames, %s (%s, gop %d)\n",
              b.video->width(), b.video->height(), b.video->fps(),
              b.video->frame_count(),
              format_bytes(b.video->total_bytes()).c_str(),
              codec_mode_name(b.video->codec_config().mode),
              b.video->codec_config().gop_size);
  std::printf("scenarios:  %zu (start: %s)\n", b.graph.size(),
              b.graph.find(b.graph.start())
                  ? b.graph.find(b.graph.start())->name.c_str()
                  : "-");
  std::printf("objects:    %zu\n", b.objects.size());
  std::printf("items:      %zu\n", b.items.size());
  std::printf("rules:      %zu\n", b.rules.size());
  std::printf("dialogues:  %zu\n", b.dialogues.size());
  std::printf("quizzes:    %zu\n", b.quizzes.size());
  return 0;
}

int cmd_play(const std::string& path, const std::string& policy_name,
             int max_steps) {
  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  auto shared = std::make_shared<GameBundle>(std::move(bundle.value()));

  const BotPolicy policy = policy_name == "random"    ? BotPolicy::kRandom
                           : policy_name == "speedrun" ? BotPolicy::kSpeedrun
                                                       : BotPolicy::kExplorer;
  SimClock clock;
  GameSession session(shared, &clock);
  if (auto st = session.start(); !st.ok()) return fail(st.error());
  const BotResult result = run_bot(session, clock, policy, max_steps, 42);

  std::printf("%s\n", render_runtime_view(session).c_str());
  std::printf("%s\n", session.tracker().report(clock.now()).c_str());
  std::printf("bot: %s, %d steps, %s\n", policy_name.c_str(), result.steps,
              result.completed ? (result.succeeded ? "succeeded" : "failed")
                               : "did not finish");
  return result.succeeded ? 0 : 3;
}

int cmd_figure1(const std::string& path) {
  auto project = load_project_file(path);
  if (!project.ok()) return fail(project.error());
  std::printf("%s", render_authoring_view(project.value()).c_str());
  return 0;
}

int cmd_figure2(const std::string& path) {
  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  auto shared = std::make_shared<GameBundle>(std::move(bundle.value()));
  SimClock clock;
  GameSession session(shared, &clock);
  if (auto st = session.start(); !st.ok()) return fail(st.error());
  std::printf("%s", render_runtime_view(session).c_str());
  return 0;
}

int cmd_screenshot(const std::string& path, const std::string& out) {
  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  auto shared = std::make_shared<GameBundle>(std::move(bundle.value()));
  SimClock clock;
  GameSession session(shared, &clock);
  if (auto st = session.start(); !st.ok()) return fail(st.error());
  Compositor compositor;
  const Frame screen = compositor.render(session);
  if (!write_ppm(screen, out)) {
    return fail(io_error("cannot write '" + out + "'"));
  }
  std::printf("wrote %s (%dx%d)\n", out.c_str(), screen.width(),
              screen.height());
  return 0;
}

BotPolicy parse_policy(const std::string& name) {
  return name == "random"     ? BotPolicy::kRandom
         : name == "speedrun" ? BotPolicy::kSpeedrun
                              : BotPolicy::kExplorer;
}

int cmd_save(const std::string& path, const std::string& dir,
             const std::string& student, int steps,
             const std::string& policy_name) {
  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  auto shared = std::make_shared<GameBundle>(std::move(bundle.value()));

  SessionStore store({.directory = dir});
  auto opened = store.open_session(shared, student);
  if (!opened.ok()) return fail(opened.error());
  PersistedSession& ps = *opened.value();
  if (ps.resumed()) {
    std::printf("resuming '%s' at checkpoint %llu (%llu steps so far)\n",
                student.c_str(),
                static_cast<unsigned long long>(ps.checkpoint_sequence()),
                static_cast<unsigned long long>(ps.step_count()));
  }
  const BotResult bot = run_bot(ps.session(), ps.clock(),
                                parse_policy(policy_name), steps, 42);
  if (auto st = ps.checkpoint(); !st.ok()) return fail(st.error());
  std::printf(
      "saved '%s' after %d step(s): scenario '%s', score %lld, t=%.1fs\n",
      student.c_str(), bot.steps,
      ps.session().current_scenario_info()
          ? ps.session().current_scenario_info()->name.c_str()
          : "-",
      static_cast<long long>(ps.session().score()),
      to_seconds(ps.clock().now()));
  std::printf("snapshot: %s (sequence %llu)\n",
              store.snapshot_path(student).c_str(),
              static_cast<unsigned long long>(ps.checkpoint_sequence()));
  return 0;
}

int cmd_resume(const std::string& path, const std::string& dir,
               const std::string& student, int max_steps,
               const std::string& policy_name) {
  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  auto shared = std::make_shared<GameBundle>(std::move(bundle.value()));

  SessionStore store({.directory = dir});
  if (!store.has_session(student)) {
    return fail(not_found("no saved session for '" + student + "' in '" +
                          dir + "'"));
  }
  auto opened = store.open_session(shared, student);
  if (!opened.ok()) return fail(opened.error());
  PersistedSession& ps = *opened.value();
  std::printf("resumed '%s': scenario '%s', score %lld, t=%.1fs"
              " (%llu journal step(s) replayed)\n",
              student.c_str(),
              ps.session().current_scenario_info()
                  ? ps.session().current_scenario_info()->name.c_str()
                  : "-",
              static_cast<long long>(ps.session().score()),
              to_seconds(ps.clock().now()),
              static_cast<unsigned long long>(ps.replayed_steps()));

  const BotResult result = run_bot(ps.session(), ps.clock(),
                                   parse_policy(policy_name), max_steps, 43);
  if (auto st = ps.checkpoint(); !st.ok()) return fail(st.error());
  std::printf("%s\n", ps.session().tracker().report(ps.clock().now()).c_str());
  std::printf("bot: %s, %d step(s) after resume, %s\n", policy_name.c_str(),
              result.steps,
              result.completed ? (result.succeeded ? "succeeded" : "failed")
                               : "did not finish");
  return result.succeeded ? 0 : 3;
}

/// Delivery half of the multi-client story: the same cohort streams its
/// video over the simulated shared link (populating the net_* and
/// stream_* metrics — gameplay alone never touches the link), under the
/// selected fault profile.
void run_stream_cohort(const GameBundle& bundle, int clients, u64 seed,
                       const std::string& fault_profile) {
  StreamReplayOptions options;
  options.client_count = clients;
  options.seed = seed;
  options.fault_profile = fault_profile;
  options.deadline = seconds(300);
  const StreamReplaySummary summary = replay_classroom_stream(bundle, options);
  std::printf("streamed to %d client(s) under '%s' profile: %s sent\n%s",
              clients, fault_profile.c_str(),
              format_bytes(summary.aggregate.bytes_sent).c_str(),
              summary.report().c_str());
}

int write_metrics_scrape(const std::string& out) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().scrape();
  const std::string body = out.ends_with(".json")
                               ? obs::to_json(snap).dump(2) + "\n"
                               : obs::to_prometheus(snap);
  if (auto st = write_file(out, body.data(), body.size()); !st.ok()) {
    return fail(st.error());
  }
  std::string subsystems;
  for (const auto& s : snap.subsystems()) {
    subsystems += (subsystems.empty() ? "" : ", ") + s;
  }
  std::printf("wrote metrics scrape to %s (%zu counters, subsystems: %s)\n",
              out.c_str(), snap.counters.size(), subsystems.c_str());
  const auto spans = obs::TraceLog::global().snapshot();
  if (!spans.empty()) {
    std::printf("%s", obs::render_trace_summary(spans).c_str());
  }
  return 0;
}

int cmd_classroom(const std::string& path,
                  const std::vector<std::string>& rest) {
  ClassroomOptions options;
  options.student_count = 16;
  options.max_steps_per_student = 200;
  std::string store_dir;
  std::string badge_store_dir;
  std::string metrics_out;
  std::string fault_profile = "clean";
  bool stream = false;
  bool with_rewards = false;
  int positional = 0;
  for (size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    if (a == "--threads" && i + 1 < rest.size()) {
      options.worker_threads = std::atoi(rest[++i].c_str());
    } else if (a == "--seed" && i + 1 < rest.size()) {
      options.seed = std::strtoull(rest[++i].c_str(), nullptr, 10);
    } else if (a == "--shards" && i + 1 < rest.size()) {
      options.des_shards = std::atoi(rest[++i].c_str());
    } else if (a == "--legacy") {
      options.engine = ClassroomEngine::kLegacyThreads;
    } else if (a == "--store" && i + 1 < rest.size()) {
      store_dir = rest[++i];
    } else if (a == "--rewards") {
      with_rewards = true;
    } else if (a == "--badge-store" && i + 1 < rest.size()) {
      badge_store_dir = rest[++i];
      with_rewards = true;  // a badge store implies rewards
    } else if (a == "--metrics-out" && i + 1 < rest.size()) {
      metrics_out = rest[++i];
    } else if (a == "--stream") {
      stream = true;
    } else if (a == "--fault" && i + 1 < rest.size()) {
      fault_profile = rest[++i];
      stream = true;  // a fault profile only makes sense when streaming
    } else if (positional == 0) {
      options.student_count = std::atoi(a.c_str());
      ++positional;
    } else if (positional == 1) {
      options.max_steps_per_student = std::atoi(a.c_str());
      ++positional;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", a.c_str());
      return 64;
    }
  }
  if (options.student_count <= 0 || options.max_steps_per_student <= 0 ||
      options.worker_threads < 0) {
    std::fprintf(stderr, "students, max_steps must be > 0; threads >= 0\n");
    return 64;
  }

  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  auto shared = std::make_shared<GameBundle>(std::move(bundle.value()));

  if (with_rewards) {
    options.reward_rules = &rewards::RewardRuleSet::standard();
  }
  std::optional<SessionStore> store;
  if (!store_dir.empty()) {
    SessionStoreOptions store_options;
    store_options.directory = store_dir;
    // Store-backed sessions are constructed by the store, so the rule set
    // rides its session options.
    store_options.session.reward_rules = options.reward_rules;
    store.emplace(store_options);
    options.store = &*store;
  }
  std::unique_ptr<rewards::BadgeStore> badge_store;
  if (!badge_store_dir.empty()) {
    auto opened = rewards::BadgeStore::open({.directory = badge_store_dir});
    if (!opened.ok()) return fail(opened.error());
    badge_store = std::move(opened.value());
    options.badge_store = badge_store.get();
  }
  if (!metrics_out.empty()) obs::set_enabled(true);

  const auto t0 = std::chrono::steady_clock::now();
  const ClassroomSummary summary = simulate_classroom(shared, options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("%s", summary.report().c_str());
  std::printf(
      "simulated %zu student(s) in %.2fs on %d worker thread(s)%s "
      "(%.1f students/s)\n",
      summary.students.size(), elapsed, options.worker_threads,
      store_dir.empty() ? "" : " via session store",
      elapsed > 0 ? static_cast<double>(summary.students.size()) / elapsed
                  : 0.0);
  if (badge_store) {
    if (auto st = badge_store->checkpoint(); !st.ok()) return fail(st.error());
    std::printf("badge store: %s (%zu student(s), sequence %llu)\n",
                badge_store->directory().c_str(), badge_store->student_count(),
                static_cast<unsigned long long>(badge_store->sequence()));
  }
  if (stream) {
    run_stream_cohort(*shared, options.student_count, options.seed,
                      fault_profile);
  }
  if (!metrics_out.empty()) return write_metrics_scrape(metrics_out);
  return 0;
}

int cmd_district(const std::string& path,
                 const std::vector<std::string>& rest) {
  sim::DistrictOptions options;
  std::string metrics_out;
  for (size_t i = 0; i < rest.size(); ++i) {
    const std::string& a = rest[i];
    if (a == "--classrooms" && i + 1 < rest.size()) {
      options.classrooms = std::atoi(rest[++i].c_str());
    } else if (a == "--students" && i + 1 < rest.size()) {
      options.students_per_classroom = std::atoi(rest[++i].c_str());
    } else if (a == "--steps" && i + 1 < rest.size()) {
      options.max_steps_per_student = std::atoi(rest[++i].c_str());
    } else if (a == "--seed" && i + 1 < rest.size()) {
      options.seed = std::strtoull(rest[++i].c_str(), nullptr, 10);
    } else if (a == "--threads" && i + 1 < rest.size()) {
      options.worker_threads = std::atoi(rest[++i].c_str());
    } else if (a == "--shards" && i + 1 < rest.size()) {
      options.shards = std::atoi(rest[++i].c_str());
    } else if (a == "--rewards") {
      options.reward_rules = &rewards::RewardRuleSet::standard();
    } else if (a == "--persist" && i + 1 < rest.size()) {
      options.persist_dir = rest[++i];
    } else if (a == "--stream") {
      options.stream = true;
    } else if (a == "--clients" && i + 1 < rest.size()) {
      options.stream_clients = std::atoi(rest[++i].c_str());
      options.stream = true;
    } else if (a == "--fault" && i + 1 < rest.size()) {
      options.fault_profile = rest[++i];
      options.stream = true;  // a fault profile only makes sense streaming
    } else if (a == "--metrics-out" && i + 1 < rest.size()) {
      metrics_out = rest[++i];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", a.c_str());
      return 64;
    }
  }
  if (options.classrooms <= 0 || options.students_per_classroom <= 0 ||
      options.max_steps_per_student <= 0 || options.worker_threads < 0) {
    std::fprintf(stderr,
                 "classrooms, students, steps must be > 0; threads >= 0\n");
    return 64;
  }

  auto bundle = load_bundle_file(path);
  if (!bundle.ok()) return fail(bundle.error());
  auto shared = std::make_shared<GameBundle>(std::move(bundle.value()));
  if (!metrics_out.empty()) obs::set_enabled(true);

  auto summary = sim::run_district(shared, options);
  if (!summary.ok()) return fail(summary.error());
  const sim::DistrictSummary& district = summary.value();
  std::printf("%s", district.report().c_str());
  std::printf(
      "simulated %d student(s) across %zu classroom(s) in %.2fs on "
      "%d worker thread(s), %u shard(s) (%.1f students/s, %.0f events/s)\n",
      district.total_students(), district.classrooms.size(),
      district.wall_ms / 1000.0, options.worker_threads,
      options.shards > 0 ? static_cast<unsigned>(options.shards)
                         : static_cast<unsigned>(options.classrooms),
      district.wall_ms > 0
          ? static_cast<double>(district.total_students()) /
                (district.wall_ms / 1000.0)
          : 0.0,
      district.wall_ms > 0
          ? static_cast<double>(district.scheduler.events) /
                (district.wall_ms / 1000.0)
          : 0.0);
  if (!metrics_out.empty()) return write_metrics_scrape(metrics_out);
  return 0;
}

int cmd_metrics(const std::string& path) {
  auto text = read_file(path);
  if (!text.ok()) return fail(text.error());
  auto json = Json::parse(text.value());
  if (!json.ok()) return fail(json.error());
  auto snap = obs::snapshot_from_json(json.value());
  if (!snap.ok()) return fail(snap.error());
  std::printf("%s", obs::render_snapshot(snap.value()).c_str());
  return 0;
}

int cmd_inspect_snapshot(const std::string& path) {
  auto data = read_binary_file(path);
  if (!data.ok()) return fail(data.error());
  auto info = inspect_snapshot(data.value());
  if (!info.ok()) return fail(info.error());
  const SnapshotInfo& s = info.value();
  std::printf("snapshot:  %s (%s, format v%u)\n", path.c_str(),
              format_bytes(s.total_bytes).c_str(), s.version);
  std::printf("student:   %s\n", s.meta.student_id.c_str());
  std::printf("bundle:    %s\n", s.meta.bundle_title.c_str());
  std::printf("sequence:  %llu (after %llu input step(s))\n",
              static_cast<unsigned long long>(s.meta.sequence),
              static_cast<unsigned long long>(s.meta.step_count));
  std::printf("sim time:  %.1fs\n", to_seconds(s.meta.sim_time));
  std::printf("sections:\n");
  for (const auto& section : s.sections) {
    std::printf("  %s  %s\n", section.name.c_str(),
                format_bytes(section.payload_bytes).c_str());
  }
  return 0;
}

int cmd_rewards_inspect(const std::string& dir) {
  auto opened = rewards::BadgeStore::open({.directory = dir});
  if (!opened.ok()) return fail(opened.error());
  const rewards::BadgeStore& store = *opened.value();
  std::printf("badge store: %s (sequence %llu, %zu student(s))\n",
              store.directory().c_str(),
              static_cast<unsigned long long>(store.sequence()),
              store.student_count());
  for (const auto& record : store.all()) {
    std::printf("%s: %zu badge(s), %lld bonus point(s), %llu commit(s)\n",
                record.student_id.c_str(), record.grants.size(),
                static_cast<long long>(record.total_points),
                static_cast<unsigned long long>(record.commits));
    for (const auto& grant : record.grants) {
      std::printf("  %-20s rule %-3u %+5lld pts  t=%.1fs\n",
                  grant.badge.c_str(), grant.rule_id,
                  static_cast<long long>(grant.points),
                  to_seconds(grant.sim_time));
    }
  }
  std::printf("%s", rewards::leaderboard_from_store(store).report().c_str());
  return 0;
}

// FNV-1a over the bundle bytes — printed so two `vgbl gen` runs (or runs
// with different --threads) can be compared for bit-identity at a glance.
u64 fingerprint64(const Bytes& bytes) {
  u64 h = 0xcbf29ce484222325ULL;
  for (u8 b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

int cmd_gen(const std::vector<std::string>& args) {
  u64 seed = 1;
  int count = 1;
  int threads = 0;
  std::string out_dir = "gen-out";
  std::string repro_path;
  bool emit_projects = false;
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (args[i] == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (args[i] == "--count") {
      count = std::atoi(next().c_str());
    } else if (args[i] == "--threads") {
      threads = std::atoi(next().c_str());
    } else if (args[i] == "--out") {
      out_dir = next();
    } else if (args[i] == "--repro") {
      repro_path = next();
    } else if (args[i] == "--projects") {
      emit_projects = true;
    } else {
      std::fprintf(stderr, "error: unknown gen flag '%s'\n", args[i].c_str());
      return 64;
    }
  }

  if (!repro_path.empty()) {
    auto dump = gen::read_failure_dump(repro_path);
    if (!dump.ok()) return fail(dump.error());
    const gen::FailureDump& d = dump.value();
    std::printf("repro: property '%s' seed %llu\nparams: %s\n",
                d.property.c_str(), static_cast<unsigned long long>(d.seed),
                d.params.to_json().dump(-1).c_str());
    auto course = gen::generate_course(d.params, d.seed);
    if (!course.ok()) return fail(course.error());
    const std::string text = save_project_text(course.value().project);
    std::printf("regenerated project %s dump text (%zu bytes)\n",
                text == d.project_text ? "MATCHES" : "DIFFERS FROM",
                text.size());
    auto bundle = build_bundle(course.value().project);
    if (!bundle.ok()) return fail(bundle.error());
    std::printf("bundle: %s, fingerprint %016llx, solver %zu steps\n",
                format_bytes(bundle.value().size()).c_str(),
                static_cast<unsigned long long>(
                    fingerprint64(bundle.value())),
                course.value().solver.size());
    return text == d.project_text ? 0 : 3;
  }

  if (count < 1) {
    std::fprintf(stderr, "error: --count must be >= 1\n");
    return 64;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot create '%s': %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  auto corpus = gen::generate_corpus(seed, count, threads);
  if (!corpus.ok()) return fail(corpus.error());
  for (int i = 0; i < count; ++i) {
    const gen::GeneratedCourse& course = corpus.value()[static_cast<size_t>(i)];
    auto bytes = build_bundle(course.project);
    if (!bytes.ok()) return fail(bytes.error());
    char name[64];
    std::snprintf(name, sizeof(name), "gen-%llu-%03d",
                  static_cast<unsigned long long>(seed), i);
    const std::string base = out_dir + "/" + name;
    if (auto st = write_file(base + ".vgblb", bytes.value().data(),
                             bytes.value().size());
        !st.ok()) {
      return fail(st.error());
    }
    if (emit_projects) {
      const std::string text = save_project_text(course.project);
      if (auto st = write_file(base + ".vgbl", text.data(), text.size());
          !st.ok()) {
        return fail(st.error());
      }
    }
    std::printf("%s.vgblb  %9s  fingerprint %016llx  scenarios %zu  "
                "solver %zu steps  rules %zu\n",
                base.c_str(), format_bytes(bytes.value().size()).c_str(),
                static_cast<unsigned long long>(fingerprint64(bytes.value())),
                course.project.graph.size(), course.solver.size(),
                course.reward_rules.rules().size());
  }
  std::printf("wrote %d bundle(s) to %s/ (seed %llu, threads %d)\n", count,
              out_dir.c_str(), static_cast<unsigned long long>(seed), threads);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: vgbl <command> ...\n"
               "  demo <classroom|treasure|quickstart|quiz> <out.vgbl>\n"
               "  lint <project.vgbl>\n"
               "  bundle <project.vgbl> <out.vgblb> [rle|dct] [quality]\n"
               "  info <bundle.vgblb>\n"
               "  play <bundle.vgblb> [explorer|random|speedrun] [max_steps]\n"
               "  figure1 <project.vgbl>\n"
               "  figure2 <bundle.vgblb>\n"
               "  screenshot <bundle.vgblb> <out.ppm>\n"
               "  save <bundle.vgblb> <store_dir> <student> [steps] "
               "[policy]\n"
               "  resume <bundle.vgblb> <store_dir> <student> [max_steps] "
               "[policy]\n"
               "  inspect-snapshot <file.snap>\n"
               "  classroom <bundle.vgblb> [students] [max_steps] "
               "[--threads N] [--seed S] [--store <dir>] [--stream]\n"
               "            [--fault clean|iid2|bursty|flap|degraded|stress]\n"
               "            [--metrics-out <file.json|file.prom>]\n"
               "            [--rewards] [--badge-store <dir>]\n"
               "            [--shards N] [--legacy]\n"
               "  district <bundle.vgblb> [--classrooms N] [--students M]\n"
               "            [--steps K] [--seed S] [--threads T] [--shards N]\n"
               "            [--stream] [--clients C] [--fault <profile>]\n"
               "            [--rewards] [--persist <dir>]\n"
               "            [--metrics-out <file.json|file.prom>]\n"
               "  rewards inspect <store_dir>\n"
               "  metrics <scrape.json>\n"
               "  gen [--seed S] [--count N] [--out <dir>] [--threads N]\n"
               "      [--projects] [--repro <failure.json>]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 64;
  }
  const std::string cmd = argv[1];
  auto arg = [&](int i, const char* fallback = "") {
    return std::string(argc > i ? argv[i] : fallback);
  };
  if (cmd == "demo" && argc >= 4) return cmd_demo(arg(2), arg(3));
  if (cmd == "lint" && argc >= 3) return cmd_lint(arg(2));
  if (cmd == "bundle" && argc >= 4) {
    return cmd_bundle(arg(2), arg(3), arg(4, "dct"),
                      argc > 5 ? std::atoi(argv[5]) : 0);
  }
  if (cmd == "info" && argc >= 3) return cmd_info(arg(2));
  if (cmd == "play" && argc >= 3) {
    return cmd_play(arg(2), arg(3, "explorer"),
                    argc > 4 ? std::atoi(argv[4]) : 500);
  }
  if (cmd == "figure1" && argc >= 3) return cmd_figure1(arg(2));
  if (cmd == "figure2" && argc >= 3) return cmd_figure2(arg(2));
  if (cmd == "screenshot" && argc >= 4) return cmd_screenshot(arg(2), arg(3));
  if (cmd == "save" && argc >= 5) {
    return cmd_save(arg(2), arg(3), arg(4),
                    argc > 5 ? std::atoi(argv[5]) : 40, arg(6, "explorer"));
  }
  if (cmd == "resume" && argc >= 5) {
    return cmd_resume(arg(2), arg(3), arg(4),
                      argc > 5 ? std::atoi(argv[5]) : 500,
                      arg(6, "explorer"));
  }
  if (cmd == "inspect-snapshot" && argc >= 3) return cmd_inspect_snapshot(arg(2));
  if (cmd == "classroom" && argc >= 3) {
    return cmd_classroom(arg(2),
                         std::vector<std::string>(argv + 3, argv + argc));
  }
  if (cmd == "district" && argc >= 3) {
    return cmd_district(arg(2),
                        std::vector<std::string>(argv + 3, argv + argc));
  }
  if (cmd == "rewards" && argc >= 4 && arg(2) == "inspect") {
    return cmd_rewards_inspect(arg(3));
  }
  if (cmd == "metrics" && argc >= 3) return cmd_metrics(arg(2));
  if (cmd == "gen") {
    return cmd_gen(std::vector<std::string>(argv + 2, argv + argc));
  }
  usage();
  return 64;
}
