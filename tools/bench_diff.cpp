// bench-diff: regression gate over the BENCH_*.json perf artifacts.
// Compares the headline metric of freshly produced artifacts against the
// committed baselines (bench/baselines/) and fails on a regression beyond
// the tolerance — 10% by default, per the perf budget in DESIGN.md §5i.
//
//   bench-diff <baseline_dir> <fresh_dir> [--tolerance 0.10]
//   bench-diff <baseline.json> <fresh.json> [--tolerance 0.10]
//
// Directory mode pairs files by name (BENCH_*.json); a fresh artifact with
// no baseline is reported but does not fail the gate (commit the baseline
// to arm it), while a baseline whose fresh counterpart is missing fails —
// a silently skipped bench must not pass as "no regression". Artifacts
// carry their own polarity ("headline_direction": "higher" | "lower"), so
// throughput and latency headlines gate correctly without a table here.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Headline {
  std::string metric;
  std::string direction = "lower";
  double value = 0;
};

/// Extracts the raw value of a top-level `"key": <value>` pair. The
/// artifacts come from our own JsonArtifact writer (one field per line), so
/// a line scan is exact enough — no JSON library needed.
std::optional<std::string> field_value(const std::string& text,
                                       const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  size_t begin = at + needle.size();
  while (begin < text.size() && text[begin] == ' ') ++begin;
  size_t end = begin;
  while (end < text.size() && text[end] != ',' && text[end] != '\n') ++end;
  return text.substr(begin, end - begin);
}

std::string strip_quotes(std::string s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

std::optional<Headline> read_headline(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto value = field_value(text, "headline_value");
  if (!value) return std::nullopt;
  Headline h;
  h.value = std::strtod(value->c_str(), nullptr);
  if (const auto metric = field_value(text, "headline_metric")) {
    h.metric = strip_quotes(*metric);
  }
  if (const auto direction = field_value(text, "headline_direction")) {
    h.direction = strip_quotes(*direction);
  }
  return h;
}

/// Relative regression of `fresh` vs `baseline` honouring polarity:
/// positive means worse. 0 when the baseline value is 0 (nothing to
/// compare against).
double regression(const Headline& baseline, const Headline& fresh) {
  if (baseline.value == 0) return 0;
  const double delta = (fresh.value - baseline.value) / baseline.value;
  return baseline.direction == "higher" ? -delta : delta;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench-diff <baseline_dir|baseline.json> "
               "<fresh_dir|fresh.json> [--tolerance 0.10]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return usage();
  const fs::path baseline_root = positional[0];
  const fs::path fresh_root = positional[1];

  // Resolve the (baseline, fresh) pairs to compare.
  std::vector<std::pair<fs::path, fs::path>> pairs;
  if (fs::is_directory(baseline_root)) {
    if (!fs::is_directory(fresh_root)) {
      std::fprintf(stderr, "bench-diff: %s is a directory but %s is not\n",
                   baseline_root.string().c_str(),
                   fresh_root.string().c_str());
      return 2;
    }
    std::vector<fs::path> names;
    for (const auto& entry : fs::directory_iterator(baseline_root)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("BENCH_") && name.ends_with(".json")) {
        names.push_back(entry.path().filename());
      }
    }
    std::sort(names.begin(), names.end());
    for (const fs::path& name : names) {
      pairs.emplace_back(baseline_root / name, fresh_root / name);
    }
    // Fresh artifacts without a baseline: advisory only.
    for (const auto& entry : fs::directory_iterator(fresh_root)) {
      const std::string name = entry.path().filename().string();
      if (name.starts_with("BENCH_") && name.ends_with(".json") &&
          !fs::exists(baseline_root / name)) {
        std::printf("bench-diff: %s has no baseline (commit %s to arm it)\n",
                    name.c_str(), (baseline_root / name).string().c_str());
      }
    }
  } else {
    pairs.emplace_back(baseline_root, fresh_root);
  }
  if (pairs.empty()) {
    std::fprintf(stderr, "bench-diff: no BENCH_*.json baselines under %s\n",
                 baseline_root.string().c_str());
    return 2;
  }

  int failures = 0;
  for (const auto& [baseline_path, fresh_path] : pairs) {
    const auto baseline = read_headline(baseline_path);
    if (!baseline) {
      std::fprintf(stderr, "bench-diff: FAIL %s: unreadable or missing "
                           "headline_value\n",
                   baseline_path.string().c_str());
      ++failures;
      continue;
    }
    const auto fresh = read_headline(fresh_path);
    if (!fresh) {
      std::fprintf(stderr,
                   "bench-diff: FAIL %s: fresh artifact missing (did the "
                   "bench run?)\n",
                   fresh_path.string().c_str());
      ++failures;
      continue;
    }
    const double rel = regression(*baseline, *fresh);
    const bool failed = rel > tolerance;
    std::printf("bench-diff: %-4s %-28s %-24s %12.3f -> %12.3f (%+.1f%%)\n",
                failed ? "FAIL" : "ok",
                baseline_path.filename().string().c_str(),
                baseline->metric.c_str(), baseline->value, fresh->value,
                (baseline->direction == "higher" ? 1 : -1) * -rel * 100);
    if (failed) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench-diff: %d headline metric(s) regressed beyond "
                 "%.0f%% (or failed to compare)\n",
                 failures, tolerance * 100);
    return 1;
  }
  return 0;
}
