// vgbl-lint CLI: `vgbl-lint --rules lint_rules src tools`. Exit 0 when the
// tree is clean, 1 with one "file:line: [rule] message" diagnostic per
// violation otherwise, 2 on usage/config errors. Run from the repo root so
// rule directory prefixes (src/core, ...) match the walked paths.
//
// The scan pass (strip + per-file rules + symbol indexing) parallelizes
// over --jobs worker threads; output ordering is deterministic regardless.
// Per-pass wall times go to stderr so stdout stays machine-parseable.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vgbl-lint --rules <lint_rules> [--jobs N] <path>...\n"
               "  Lints C++ sources under each path (file or directory)\n"
               "  against the rules config. Run from the repo root.\n"
               "  --jobs N   scan worker threads (default: all cores;\n"
               "             output order is identical for any N)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string rules_path;
  std::vector<std::string> roots;
  int jobs = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      if (i + 1 >= argc) return usage();
      rules_path = argv[++i];
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) return usage();
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) return usage();
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (rules_path.empty() || roots.empty()) return usage();

  std::ifstream in(rules_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "vgbl-lint: cannot open rules file '%s'\n",
                 rules_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  std::string error;
  const auto rules = vgbl::lint::parse_rules(text.str(), &error);
  if (!rules.has_value()) {
    std::fprintf(stderr, "vgbl-lint: %s\n", error.c_str());
    return 2;
  }

  vgbl::lint::CrossTuOptions options;
  options.jobs = jobs;
  // The real tree keeps the config honest: stale sinks / order facts fail.
  options.require_facts = true;
  double scan_seconds = 0.0;
  double analyze_seconds = 0.0;
  options.scan_seconds = &scan_seconds;
  options.analyze_seconds = &analyze_seconds;
  const auto findings = vgbl::lint::lint_paths(roots, *rules, &error, options);
  if (!findings.has_value()) {
    std::fprintf(stderr, "vgbl-lint: %s\n", error.c_str());
    return 2;
  }
  std::fprintf(stderr, "vgbl-lint: scan %.0f ms, cross-TU analysis %.0f ms\n",
               scan_seconds * 1000.0, analyze_seconds * 1000.0);
  for (const auto& finding : *findings) {
    std::fprintf(stderr, "%s\n",
                 vgbl::lint::format_finding(finding).c_str());
  }
  if (!findings->empty()) {
    std::fprintf(stderr, "vgbl-lint: %zu violation(s)\n", findings->size());
    return 1;
  }
  return 0;
}
